//! NGAP-style encapsulation between the simulated O-CU and the AMF (3GPP 38.413).
//!
//! Carries NAS containers together with the RAN/AMF UE association
//! identifiers — the second interface the paper's telemetry pipeline taps.

use crate::codec::{decode_l3, encode_l3};
use crate::msg::L3Message;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use xsec_types::{Result, XsecError};

/// One NGAP message carrying a NAS container for a UE association.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NgapPdu {
    /// RAN UE NGAP ID (CU-local association number).
    pub ran_ue_id: u64,
    /// AMF UE NGAP ID (0 until the AMF assigns one).
    pub amf_ue_id: u64,
    /// `true` if the contained message travels UE → network.
    pub uplink: bool,
    /// The encoded NAS message.
    pub nas_container: Vec<u8>,
}

impl NgapPdu {
    /// Wraps an L3 message for transport toward/from the AMF.
    pub fn wrap(ran_ue_id: u64, amf_ue_id: u64, uplink: bool, msg: &L3Message) -> Self {
        NgapPdu { ran_ue_id, amf_ue_id, uplink, nas_container: encode_l3(msg) }
    }

    /// Decodes the contained L3 message.
    pub fn unwrap_l3(&self) -> Result<L3Message> {
        decode_l3(&self.nas_container)
    }

    /// Encodes the PDU for capture / transport.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(19 + self.nas_container.len());
        buf.put_u64(self.ran_ue_id);
        buf.put_u64(self.amf_ue_id);
        buf.put_u8(self.uplink as u8);
        buf.put_u16(self.nas_container.len() as u16);
        buf.put_slice(&self.nas_container);
        buf.to_vec()
    }

    /// Decodes a PDU from capture bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut buf = Bytes::copy_from_slice(bytes);
        if buf.remaining() < 19 {
            return Err(XsecError::Codec("truncated NGAP header".into()));
        }
        let ran_ue_id = buf.get_u64();
        let amf_ue_id = buf.get_u64();
        let uplink = match buf.get_u8() {
            0 => false,
            1 => true,
            other => return Err(XsecError::Codec(format!("bad direction flag {other}"))),
        };
        let len = buf.get_u16() as usize;
        if buf.remaining() != len {
            return Err(XsecError::Codec(format!(
                "NGAP container length mismatch: declared {len}, have {}",
                buf.remaining()
            )));
        }
        Ok(NgapPdu { ran_ue_id, amf_ue_id, uplink, nas_container: buf.copy_to_bytes(len).to_vec() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nas::NasMessage;

    #[test]
    fn wrap_and_unwrap_round_trip() {
        let msg = L3Message::Nas(NasMessage::AuthenticationRequest { rand: 5, autn: 6 });
        let pdu = NgapPdu::wrap(100, 200, false, &msg);
        assert_eq!(pdu.unwrap_l3().unwrap(), msg);
    }

    #[test]
    fn encode_decode_round_trip() {
        let msg = L3Message::Nas(NasMessage::AuthenticationResponse { res: 9 });
        let pdu = NgapPdu::wrap(1, 2, true, &msg);
        let back = NgapPdu::decode(&pdu.encode()).unwrap();
        assert_eq!(pdu, back);
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        let pdu = NgapPdu::wrap(
            1,
            2,
            true,
            &L3Message::Nas(NasMessage::SecurityModeComplete),
        );
        let bytes = pdu.encode();
        for cut in 0..bytes.len() {
            assert!(NgapPdu::decode(&bytes[..cut]).is_err());
        }
        let mut bad = bytes.clone();
        bad[16] = 7; // direction flag
        assert!(NgapPdu::decode(&bad).is_err());
    }
}
