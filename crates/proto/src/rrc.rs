//! RRC message model (3GPP 38.331 subset).

use crate::msg::{MessageKind, MobileIdentity};
use serde::{Deserialize, Serialize};
use std::fmt;
use xsec_types::{CipherAlg, EstablishmentCause, IntegrityAlg, ReleaseCause, Rnti};

/// An RRC message with the fields the telemetry and state machines consume.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RrcMessage {
    /// UL: first message on SRB0; carries the UE identity part and cause.
    SetupRequest {
        /// Random value or 5G-S-TMSI part used for contention resolution.
        ue_identity: u64,
        /// Why the UE wants a connection.
        cause: EstablishmentCause,
    },
    /// DL: the network grants SRB1 and assigns configuration.
    Setup,
    /// UL: completes establishment; carries the first NAS message
    /// (registration or service request) as a piggybacked container and the
    /// selected PLMN.
    SetupComplete {
        /// The dedicated NAS message container (already encoded).
        nas_container: Vec<u8>,
    },
    /// DL: the network rejects the establishment (congestion, barring).
    Reject {
        /// Back-off the UE must wait before retrying, in seconds.
        wait_time_s: u8,
    },
    /// DL: activates AS security with the selected algorithms.
    SecurityModeCommand {
        /// Selected ciphering algorithm.
        cipher: CipherAlg,
        /// Selected integrity algorithm.
        integrity: IntegrityAlg,
    },
    /// UL: acknowledges AS security activation.
    SecurityModeComplete,
    /// DL: (re)configures radio bearers; follows security activation.
    Reconfiguration,
    /// UL: acknowledges reconfiguration.
    ReconfigurationComplete,
    /// DL: releases the connection.
    Release {
        /// Why the network released the UE.
        cause: ReleaseCause,
    },
    /// DL: pages an idle UE by its temporary identity.
    Paging {
        /// The paged identity (normally a 5G-S-TMSI).
        ue_identity: MobileIdentity,
    },
    /// UL: requests re-establishment after radio link failure.
    ReestablishmentRequest {
        /// The C-RNTI the UE had before the failure.
        old_rnti: Rnti,
    },
    /// DL: grants re-establishment.
    Reestablishment,
    /// UL: carries a NAS message after connection establishment.
    UlInformationTransfer {
        /// The dedicated NAS message container (already encoded).
        nas_container: Vec<u8>,
    },
    /// DL: carries a NAS message toward the UE.
    DlInformationTransfer {
        /// The dedicated NAS message container (already encoded).
        nas_container: Vec<u8>,
    },
}

impl RrcMessage {
    /// The flat kind tag.
    pub fn kind(&self) -> MessageKind {
        match self {
            RrcMessage::SetupRequest { .. } => MessageKind::RrcSetupRequest,
            RrcMessage::Setup => MessageKind::RrcSetup,
            RrcMessage::SetupComplete { .. } => MessageKind::RrcSetupComplete,
            RrcMessage::Reject { .. } => MessageKind::RrcReject,
            RrcMessage::SecurityModeCommand { .. } => MessageKind::RrcSecurityModeCommand,
            RrcMessage::SecurityModeComplete => MessageKind::RrcSecurityModeComplete,
            RrcMessage::Reconfiguration => MessageKind::RrcReconfiguration,
            RrcMessage::ReconfigurationComplete => MessageKind::RrcReconfigurationComplete,
            RrcMessage::Release { .. } => MessageKind::RrcRelease,
            RrcMessage::Paging { .. } => MessageKind::RrcPaging,
            RrcMessage::ReestablishmentRequest { .. } => MessageKind::RrcReestablishmentRequest,
            RrcMessage::Reestablishment => MessageKind::RrcReestablishment,
            RrcMessage::UlInformationTransfer { .. } => MessageKind::RrcUlInformationTransfer,
            RrcMessage::DlInformationTransfer { .. } => MessageKind::RrcDlInformationTransfer,
        }
    }

    /// The NAS container carried by this message, if any.
    pub fn nas_container(&self) -> Option<&[u8]> {
        match self {
            RrcMessage::SetupComplete { nas_container }
            | RrcMessage::UlInformationTransfer { nas_container }
            | RrcMessage::DlInformationTransfer { nas_container } => Some(nas_container),
            _ => None,
        }
    }
}

impl fmt::Display for RrcMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrcMessage::SetupRequest { ue_identity, cause } => {
                write!(f, "RRCSetupRequest(id={ue_identity:#x}, cause={cause})")
            }
            RrcMessage::SecurityModeCommand { cipher, integrity } => {
                write!(f, "SecurityModeCommand({cipher}, {integrity})")
            }
            RrcMessage::Release { cause } => write!(f, "RRCRelease({cause})"),
            RrcMessage::Paging { ue_identity } => write!(f, "Paging({ue_identity})"),
            RrcMessage::Reject { wait_time_s } => write!(f, "RRCReject(wait={wait_time_s}s)"),
            RrcMessage::ReestablishmentRequest { old_rnti } => {
                write!(f, "RRCReestablishmentRequest(old={old_rnti})")
            }
            other => f.write_str(other.kind().name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_types::Tmsi;

    #[test]
    fn kind_mapping_is_consistent() {
        let msg = RrcMessage::SetupRequest { ue_identity: 1, cause: EstablishmentCause::MoData };
        assert_eq!(msg.kind(), MessageKind::RrcSetupRequest);
        assert_eq!(RrcMessage::Setup.kind(), MessageKind::RrcSetup);
        assert_eq!(
            RrcMessage::Release { cause: ReleaseCause::Normal }.kind(),
            MessageKind::RrcRelease
        );
    }

    #[test]
    fn nas_container_extraction() {
        let msg = RrcMessage::UlInformationTransfer { nas_container: vec![1, 2] };
        assert_eq!(msg.nas_container(), Some(&[1u8, 2][..]));
        assert_eq!(RrcMessage::Setup.nas_container(), None);
        let complete = RrcMessage::SetupComplete { nas_container: vec![9] };
        assert_eq!(complete.nas_container(), Some(&[9u8][..]));
    }

    #[test]
    fn display_shows_security_params() {
        let msg = RrcMessage::SecurityModeCommand {
            cipher: CipherAlg::Nea0,
            integrity: IntegrityAlg::Nia0,
        };
        assert_eq!(msg.to_string(), "SecurityModeCommand(NEA0, NIA0)");
    }

    #[test]
    fn display_shows_paged_identity() {
        let msg = RrcMessage::Paging {
            ue_identity: MobileIdentity::FiveGSTmsi(Tmsi(7)),
        };
        assert_eq!(msg.to_string(), "Paging(5g-s-tmsi-7)");
    }
}
