//! NAS message model (3GPP 24.501 subset).
//!
//! The registration/authentication/security-mode ladder here is the one the
//! paper's Figure 2 abstracts: `Reg. Req. → Auth. Req. → Auth. Resp.` in
//! benign traffic, with the identity-extraction attacks perturbing exactly
//! this exchange.

use crate::msg::{MessageKind, MobileIdentity};
use serde::{Deserialize, Serialize};
use std::fmt;
use xsec_types::{CipherAlg, IntegrityAlg, SecurityCapabilities, Tmsi};

/// Which identity an `IdentityRequest` demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdentityType {
    /// The concealed permanent identity (normal, privacy-preserving).
    Suci,
    /// The *plaintext* permanent identity — legitimate networks only fall
    /// back to this when no security context can be established; attackers
    /// request it outright.
    PlainSupi,
    /// The temporary identity.
    Tmsi,
}

impl fmt::Display for IdentityType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IdentityType::Suci => "SUCI",
            IdentityType::PlainSupi => "SUPI",
            IdentityType::Tmsi => "5G-S-TMSI",
        })
    }
}

/// Why a registration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NasRejectCause {
    /// Illegal UE (authentication failed).
    IllegalUe,
    /// PLMN not allowed.
    PlmnNotAllowed,
    /// Congestion.
    Congestion,
}

/// A NAS message with the fields the telemetry and state machines consume.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NasMessage {
    /// UL: initial registration; carries the UE identity and capabilities.
    RegistrationRequest {
        /// SUCI on first contact, 5G-S-TMSI on re-registration.
        identity: MobileIdentity,
        /// Advertised security capabilities.
        capabilities: SecurityCapabilities,
    },
    /// DL: registration succeeded; assigns a fresh temporary identity.
    RegistrationAccept {
        /// Newly allocated 5G-S-TMSI.
        new_tmsi: Tmsi,
    },
    /// UL: acknowledges the accept.
    RegistrationComplete,
    /// DL: registration rejected.
    RegistrationReject {
        /// Reject cause.
        cause: NasRejectCause,
    },
    /// DL: 5G-AKA challenge.
    AuthenticationRequest {
        /// Network random challenge.
        rand: u64,
        /// Authentication token proving network authenticity.
        autn: u64,
    },
    /// UL: challenge response.
    AuthenticationResponse {
        /// RES* value derived from the challenge.
        res: u64,
    },
    /// UL: the UE could not verify the network (e.g. MAC failure).
    AuthenticationFailure {
        /// 24.501 cause value (20 = MAC failure, 21 = sync failure).
        cause: u8,
    },
    /// DL: network gives up on authentication.
    AuthenticationReject,
    /// DL: asks the UE to identify itself.
    IdentityRequest {
        /// Which identity is demanded.
        id_type: IdentityType,
    },
    /// UL: the requested identity.
    IdentityResponse {
        /// The identity disclosed.
        identity: MobileIdentity,
    },
    /// DL: selects NAS security algorithms.
    SecurityModeCommand {
        /// Selected ciphering algorithm.
        cipher: CipherAlg,
        /// Selected integrity algorithm.
        integrity: IntegrityAlg,
        /// Echo of the capabilities the network *received* — lets the UE
        /// detect a capability-stripping MiTM (the 33.501 anti-bidding-down
        /// echo). The null-cipher attack forges this echo to match.
        replayed_capabilities: SecurityCapabilities,
    },
    /// UL: acknowledges NAS security.
    SecurityModeComplete,
    /// UL: the UE refuses the selected algorithms.
    SecurityModeReject {
        /// 24.501 cause value (23 = UE security capabilities mismatch).
        cause: u8,
    },
    /// UL: service request from idle.
    ServiceRequest {
        /// The temporary identity presented.
        tmsi: Tmsi,
    },
    /// DL: service request granted.
    ServiceAccept,
    /// UL: UE-initiated deregistration.
    DeregistrationRequest,
    /// DL: acknowledges deregistration.
    DeregistrationAccept,
    /// UL: asks for a PDU session (user-plane connectivity).
    PduSessionEstablishmentRequest {
        /// Requested session id.
        session_id: u8,
    },
    /// DL: grants the PDU session.
    PduSessionEstablishmentAccept {
        /// Granted session id.
        session_id: u8,
    },
}

impl NasMessage {
    /// The flat kind tag.
    pub fn kind(&self) -> MessageKind {
        match self {
            NasMessage::RegistrationRequest { .. } => MessageKind::NasRegistrationRequest,
            NasMessage::RegistrationAccept { .. } => MessageKind::NasRegistrationAccept,
            NasMessage::RegistrationComplete => MessageKind::NasRegistrationComplete,
            NasMessage::RegistrationReject { .. } => MessageKind::NasRegistrationReject,
            NasMessage::AuthenticationRequest { .. } => MessageKind::NasAuthenticationRequest,
            NasMessage::AuthenticationResponse { .. } => MessageKind::NasAuthenticationResponse,
            NasMessage::AuthenticationFailure { .. } => MessageKind::NasAuthenticationFailure,
            NasMessage::AuthenticationReject => MessageKind::NasAuthenticationReject,
            NasMessage::IdentityRequest { .. } => MessageKind::NasIdentityRequest,
            NasMessage::IdentityResponse { .. } => MessageKind::NasIdentityResponse,
            NasMessage::SecurityModeCommand { .. } => MessageKind::NasSecurityModeCommand,
            NasMessage::SecurityModeComplete => MessageKind::NasSecurityModeComplete,
            NasMessage::SecurityModeReject { .. } => MessageKind::NasSecurityModeReject,
            NasMessage::ServiceRequest { .. } => MessageKind::NasServiceRequest,
            NasMessage::ServiceAccept => MessageKind::NasServiceAccept,
            NasMessage::DeregistrationRequest => MessageKind::NasDeregistrationRequest,
            NasMessage::DeregistrationAccept => MessageKind::NasDeregistrationAccept,
            NasMessage::PduSessionEstablishmentRequest { .. } => {
                MessageKind::NasPduSessionEstablishmentRequest
            }
            NasMessage::PduSessionEstablishmentAccept { .. } => {
                MessageKind::NasPduSessionEstablishmentAccept
            }
        }
    }

    /// The mobile identity this message discloses over the air, if any.
    pub fn disclosed_identity(&self) -> Option<&MobileIdentity> {
        match self {
            NasMessage::RegistrationRequest { identity, .. }
            | NasMessage::IdentityResponse { identity } => Some(identity),
            _ => None,
        }
    }
}

impl fmt::Display for NasMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NasMessage::RegistrationRequest { identity, .. } => {
                write!(f, "RegistrationRequest({identity})")
            }
            NasMessage::RegistrationAccept { new_tmsi } => {
                write!(f, "RegistrationAccept(tmsi={new_tmsi})")
            }
            NasMessage::IdentityRequest { id_type } => write!(f, "IdentityRequest({id_type})"),
            NasMessage::IdentityResponse { identity } => write!(f, "IdentityResponse({identity})"),
            NasMessage::SecurityModeCommand { cipher, integrity, .. } => {
                write!(f, "NASSecurityModeCommand({cipher}, {integrity})")
            }
            NasMessage::ServiceRequest { tmsi } => write!(f, "ServiceRequest(tmsi={tmsi})"),
            other => f.write_str(other.kind().name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_types::{Plmn, Supi};

    #[test]
    fn kind_mapping_is_consistent() {
        let msg = NasMessage::AuthenticationRequest { rand: 1, autn: 2 };
        assert_eq!(msg.kind(), MessageKind::NasAuthenticationRequest);
        assert_eq!(
            NasMessage::SecurityModeComplete.kind(),
            MessageKind::NasSecurityModeComplete
        );
    }

    #[test]
    fn disclosed_identity_covers_registration_and_identity_response() {
        let suci = MobileIdentity::Suci { plmn: Plmn::TEST, concealed: 1 };
        let reg = NasMessage::RegistrationRequest {
            identity: suci,
            capabilities: SecurityCapabilities::full(),
        };
        assert_eq!(reg.disclosed_identity(), Some(&suci));

        let plain = MobileIdentity::PlainSupi(Supi::new(Plmn::TEST, 42));
        let resp = NasMessage::IdentityResponse { identity: plain };
        assert!(resp.disclosed_identity().unwrap().exposes_supi());

        assert_eq!(NasMessage::ServiceAccept.disclosed_identity(), None);
    }

    #[test]
    fn display_names_match_spec_spelling() {
        assert_eq!(
            NasMessage::IdentityRequest { id_type: IdentityType::PlainSupi }.to_string(),
            "IdentityRequest(SUPI)"
        );
        assert_eq!(NasMessage::DeregistrationRequest.to_string(), "DeregistrationRequest");
    }
}
