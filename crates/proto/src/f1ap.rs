//! F1AP-style encapsulation between the simulated O-DU and O-CU (3GPP 38.473).
//!
//! The real F1 Application Protocol carries RRC messages between DU and CU
//! together with the UE-association identifiers. The paper's telemetry
//! pipeline instruments exactly this interface ("we instrument the F1AP and
//! NGAP interface to obtain pcap streams"). Our PDU keeps the fields the
//! MobiFlow extractor reads: the DU's UE identifiers (RNTI + cell) and the
//! RRC container.

use crate::codec::{decode_l3, encode_l3};
use crate::msg::L3Message;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use xsec_types::{CellId, Result, Rnti, XsecError};

/// One F1AP message carrying an RRC container for a UE association.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct F1apPdu {
    /// gNB-DU UE F1AP ID (we use the DU-local association number).
    pub du_ue_id: u32,
    /// The UE's current C-RNTI.
    pub rnti: Rnti,
    /// Serving cell.
    pub cell: CellId,
    /// `true` if the contained message travels UE → network.
    pub uplink: bool,
    /// The encoded L3 (RRC, possibly with piggybacked NAS) message.
    pub rrc_container: Vec<u8>,
}

impl F1apPdu {
    /// Wraps an L3 message for transport.
    pub fn wrap(du_ue_id: u32, rnti: Rnti, cell: CellId, uplink: bool, msg: &L3Message) -> Self {
        F1apPdu { du_ue_id, rnti, cell, uplink, rrc_container: encode_l3(msg) }
    }

    /// Decodes the contained L3 message.
    pub fn unwrap_l3(&self) -> Result<L3Message> {
        decode_l3(&self.rrc_container)
    }

    /// Encodes the PDU for capture / transport.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(16 + self.rrc_container.len());
        buf.put_u32(self.du_ue_id);
        buf.put_u16(self.rnti.0);
        buf.put_u32(self.cell.0);
        buf.put_u8(self.uplink as u8);
        buf.put_u16(self.rrc_container.len() as u16);
        buf.put_slice(&self.rrc_container);
        buf.to_vec()
    }

    /// Decodes a PDU from capture bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut buf = Bytes::copy_from_slice(bytes);
        if buf.remaining() < 13 {
            return Err(XsecError::Codec("truncated F1AP header".into()));
        }
        let du_ue_id = buf.get_u32();
        let rnti = Rnti(buf.get_u16());
        let cell = CellId(buf.get_u32());
        let uplink = match buf.get_u8() {
            0 => false,
            1 => true,
            other => return Err(XsecError::Codec(format!("bad direction flag {other}"))),
        };
        let len = buf.get_u16() as usize;
        if buf.remaining() != len {
            return Err(XsecError::Codec(format!(
                "F1AP container length mismatch: declared {len}, have {}",
                buf.remaining()
            )));
        }
        Ok(F1apPdu { du_ue_id, rnti, cell, uplink, rrc_container: buf.copy_to_bytes(len).to_vec() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrc::RrcMessage;

    #[test]
    fn wrap_and_unwrap_round_trip() {
        let msg = L3Message::Rrc(RrcMessage::Setup);
        let pdu = F1apPdu::wrap(7, Rnti(0x5F), CellId(1), false, &msg);
        assert_eq!(pdu.unwrap_l3().unwrap(), msg);
    }

    #[test]
    fn encode_decode_round_trip() {
        let msg = L3Message::Rrc(RrcMessage::SetupComplete { nas_container: vec![1, 2, 3] });
        let pdu = F1apPdu::wrap(42, Rnti(0x1234), CellId(3), true, &msg);
        let bytes = pdu.encode();
        let back = F1apPdu::decode(&bytes).unwrap();
        assert_eq!(pdu, back);
        assert_eq!(back.unwrap_l3().unwrap(), msg);
    }

    #[test]
    fn decode_rejects_truncation() {
        let pdu = F1apPdu::wrap(1, Rnti(2), CellId(3), true, &L3Message::Rrc(RrcMessage::Setup));
        let bytes = pdu.encode();
        for cut in 0..bytes.len() {
            assert!(F1apPdu::decode(&bytes[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn decode_rejects_bad_direction_flag() {
        let pdu = F1apPdu::wrap(1, Rnti(2), CellId(3), true, &L3Message::Rrc(RrcMessage::Setup));
        let mut bytes = pdu.encode();
        bytes[10] = 9; // direction flag offset: 4 + 2 + 4
        assert!(F1apPdu::decode(&bytes).is_err());
    }
}
