//! Deterministic binary codec for L3 messages, plus length-prefixed framing.
//!
//! The encoding is a compact tag-then-fields format: one byte of
//! [`MessageKind::code`], followed by the variant's fields in declaration
//! order. It is *not* ASN.1 PER — the paper's telemetry pipeline also does
//! not re-encode PER; it parses captures into structured records. What
//! matters here is that encoding is total, decoding rejects malformed input
//! with a [`XsecError::Codec`] error instead of panicking, and
//! `decode(encode(m)) == m` for every message (property-tested below).
//!
//! Framing follows the classic length-prefix pattern for stream transports:
//! a `u32` big-endian length followed by that many payload bytes. The E2
//! crate reuses these helpers for its TCP transport.

use crate::msg::{L3Message, MessageKind, MobileIdentity};
use crate::nas::{IdentityType, NasMessage, NasRejectCause};
use crate::rrc::RrcMessage;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use xsec_types::{
    CipherAlg, EstablishmentCause, IntegrityAlg, Plmn, ReleaseCause, Result, Rnti,
    SecurityCapabilities, Supi, Tmsi, XsecError,
};

/// Maximum frame payload the framing layer will accept (1 MiB) — guards
/// stream readers against a corrupt or hostile length prefix.
pub const MAX_FRAME_LEN: usize = 1 << 20;

fn err(msg: impl Into<String>) -> XsecError {
    XsecError::Codec(msg.into())
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(err(format!("truncated input: need {n} bytes for {what}, have {}", buf.remaining())))
    } else {
        Ok(())
    }
}

// --- primitive field helpers -------------------------------------------------

fn put_identity(buf: &mut BytesMut, id: &MobileIdentity) {
    match id {
        MobileIdentity::Suci { plmn, concealed } => {
            buf.put_u8(0);
            buf.put_u16(plmn.mcc);
            buf.put_u16(plmn.mnc);
            buf.put_u64(*concealed);
        }
        MobileIdentity::FiveGSTmsi(tmsi) => {
            buf.put_u8(1);
            buf.put_u32(tmsi.0);
        }
        MobileIdentity::PlainSupi(supi) => {
            buf.put_u8(2);
            buf.put_u16(supi.plmn.mcc);
            buf.put_u16(supi.plmn.mnc);
            buf.put_u64(supi.msin);
        }
    }
}

fn get_identity(buf: &mut Bytes) -> Result<MobileIdentity> {
    need(buf, 1, "identity tag")?;
    match buf.get_u8() {
        0 => {
            need(buf, 12, "SUCI body")?;
            let plmn = Plmn { mcc: buf.get_u16(), mnc: buf.get_u16() };
            Ok(MobileIdentity::Suci { plmn, concealed: buf.get_u64() })
        }
        1 => {
            need(buf, 4, "TMSI body")?;
            Ok(MobileIdentity::FiveGSTmsi(Tmsi(buf.get_u32())))
        }
        2 => {
            need(buf, 12, "SUPI body")?;
            let plmn = Plmn { mcc: buf.get_u16(), mnc: buf.get_u16() };
            Ok(MobileIdentity::PlainSupi(Supi::new(plmn, buf.get_u64())))
        }
        tag => Err(err(format!("unknown identity tag {tag}"))),
    }
}

fn caps_to_byte(flags: &[bool; 4]) -> u8 {
    flags.iter().enumerate().fold(0u8, |acc, (i, set)| acc | ((*set as u8) << i))
}

fn caps_from_byte(byte: u8) -> [bool; 4] {
    [byte & 1 != 0, byte & 2 != 0, byte & 4 != 0, byte & 8 != 0]
}

fn put_capabilities(buf: &mut BytesMut, caps: &SecurityCapabilities) {
    buf.put_u8(caps_to_byte(&caps.ciphers));
    buf.put_u8(caps_to_byte(&caps.integrity));
}

fn get_capabilities(buf: &mut Bytes) -> Result<SecurityCapabilities> {
    need(buf, 2, "security capabilities")?;
    Ok(SecurityCapabilities {
        ciphers: caps_from_byte(buf.get_u8()),
        integrity: caps_from_byte(buf.get_u8()),
    })
}

fn put_container(buf: &mut BytesMut, container: &[u8]) {
    buf.put_u16(container.len() as u16);
    buf.put_slice(container);
}

fn get_container(buf: &mut Bytes) -> Result<Vec<u8>> {
    need(buf, 2, "container length")?;
    let len = buf.get_u16() as usize;
    need(buf, len, "container body")?;
    Ok(buf.copy_to_bytes(len).to_vec())
}

fn get_cipher(buf: &mut Bytes) -> Result<CipherAlg> {
    need(buf, 1, "cipher alg")?;
    let code = buf.get_u8();
    CipherAlg::from_code(code).ok_or_else(|| err(format!("bad cipher code {code}")))
}

fn get_integrity(buf: &mut Bytes) -> Result<IntegrityAlg> {
    need(buf, 1, "integrity alg")?;
    let code = buf.get_u8();
    IntegrityAlg::from_code(code).ok_or_else(|| err(format!("bad integrity code {code}")))
}

// --- top-level codec ----------------------------------------------------------

/// Encodes an L3 message into its binary form.
pub fn encode_l3(msg: &L3Message) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(32);
    buf.put_u8(msg.kind().code());
    match msg {
        L3Message::Rrc(rrc) => encode_rrc_body(rrc, &mut buf),
        L3Message::Nas(nas) => encode_nas_body(nas, &mut buf),
    }
    buf.to_vec()
}

fn encode_rrc_body(msg: &RrcMessage, buf: &mut BytesMut) {
    match msg {
        RrcMessage::SetupRequest { ue_identity, cause } => {
            buf.put_u64(*ue_identity);
            buf.put_u8(cause.code());
        }
        RrcMessage::Setup
        | RrcMessage::SecurityModeComplete
        | RrcMessage::Reconfiguration
        | RrcMessage::ReconfigurationComplete
        | RrcMessage::Reestablishment => {}
        RrcMessage::SetupComplete { nas_container }
        | RrcMessage::UlInformationTransfer { nas_container }
        | RrcMessage::DlInformationTransfer { nas_container } => {
            put_container(buf, nas_container)
        }
        RrcMessage::Reject { wait_time_s } => buf.put_u8(*wait_time_s),
        RrcMessage::SecurityModeCommand { cipher, integrity } => {
            buf.put_u8(cipher.code());
            buf.put_u8(integrity.code());
        }
        RrcMessage::Release { cause } => buf.put_u8(cause.code()),
        RrcMessage::Paging { ue_identity } => put_identity(buf, ue_identity),
        RrcMessage::ReestablishmentRequest { old_rnti } => buf.put_u16(old_rnti.0),
    }
}

fn encode_nas_body(msg: &NasMessage, buf: &mut BytesMut) {
    match msg {
        NasMessage::RegistrationRequest { identity, capabilities } => {
            put_identity(buf, identity);
            put_capabilities(buf, capabilities);
        }
        NasMessage::RegistrationAccept { new_tmsi } => buf.put_u32(new_tmsi.0),
        NasMessage::RegistrationComplete
        | NasMessage::AuthenticationReject
        | NasMessage::SecurityModeComplete
        | NasMessage::ServiceAccept
        | NasMessage::DeregistrationRequest
        | NasMessage::DeregistrationAccept => {}
        NasMessage::RegistrationReject { cause } => buf.put_u8(match cause {
            NasRejectCause::IllegalUe => 0,
            NasRejectCause::PlmnNotAllowed => 1,
            NasRejectCause::Congestion => 2,
        }),
        NasMessage::AuthenticationRequest { rand, autn } => {
            buf.put_u64(*rand);
            buf.put_u64(*autn);
        }
        NasMessage::AuthenticationResponse { res } => buf.put_u64(*res),
        NasMessage::AuthenticationFailure { cause } => buf.put_u8(*cause),
        NasMessage::IdentityRequest { id_type } => buf.put_u8(match id_type {
            IdentityType::Suci => 0,
            IdentityType::PlainSupi => 1,
            IdentityType::Tmsi => 2,
        }),
        NasMessage::IdentityResponse { identity } => put_identity(buf, identity),
        NasMessage::SecurityModeCommand { cipher, integrity, replayed_capabilities } => {
            buf.put_u8(cipher.code());
            buf.put_u8(integrity.code());
            put_capabilities(buf, replayed_capabilities);
        }
        NasMessage::SecurityModeReject { cause } => buf.put_u8(*cause),
        NasMessage::ServiceRequest { tmsi } => buf.put_u32(tmsi.0),
        NasMessage::PduSessionEstablishmentRequest { session_id }
        | NasMessage::PduSessionEstablishmentAccept { session_id } => buf.put_u8(*session_id),
    }
}

/// Decodes an L3 message from its binary form, rejecting malformed input.
pub fn decode_l3(bytes: &[u8]) -> Result<L3Message> {
    let mut buf = Bytes::copy_from_slice(bytes);
    need(&buf, 1, "message kind")?;
    let code = buf.get_u8();
    let kind = MessageKind::from_code(code)
        .ok_or_else(|| err(format!("unknown message kind code {code}")))?;
    let msg = decode_body(kind, &mut buf)?;
    if buf.has_remaining() {
        return Err(err(format!("{} trailing bytes after {}", buf.remaining(), kind)));
    }
    Ok(msg)
}

fn decode_body(kind: MessageKind, buf: &mut Bytes) -> Result<L3Message> {
    use MessageKind as K;
    let msg = match kind {
        K::RrcSetupRequest => {
            need(buf, 9, "setup request")?;
            let ue_identity = buf.get_u64();
            let code = buf.get_u8();
            let cause = EstablishmentCause::from_code(code)
                .ok_or_else(|| err(format!("bad establishment cause {code}")))?;
            L3Message::Rrc(RrcMessage::SetupRequest { ue_identity, cause })
        }
        K::RrcSetup => L3Message::Rrc(RrcMessage::Setup),
        K::RrcSetupComplete => {
            L3Message::Rrc(RrcMessage::SetupComplete { nas_container: get_container(buf)? })
        }
        K::RrcReject => {
            need(buf, 1, "reject wait time")?;
            L3Message::Rrc(RrcMessage::Reject { wait_time_s: buf.get_u8() })
        }
        K::RrcSecurityModeCommand => L3Message::Rrc(RrcMessage::SecurityModeCommand {
            cipher: get_cipher(buf)?,
            integrity: get_integrity(buf)?,
        }),
        K::RrcSecurityModeComplete => L3Message::Rrc(RrcMessage::SecurityModeComplete),
        K::RrcReconfiguration => L3Message::Rrc(RrcMessage::Reconfiguration),
        K::RrcReconfigurationComplete => L3Message::Rrc(RrcMessage::ReconfigurationComplete),
        K::RrcRelease => {
            need(buf, 1, "release cause")?;
            let code = buf.get_u8();
            let cause = ReleaseCause::from_code(code)
                .ok_or_else(|| err(format!("bad release cause {code}")))?;
            L3Message::Rrc(RrcMessage::Release { cause })
        }
        K::RrcPaging => L3Message::Rrc(RrcMessage::Paging { ue_identity: get_identity(buf)? }),
        K::RrcReestablishmentRequest => {
            need(buf, 2, "old rnti")?;
            L3Message::Rrc(RrcMessage::ReestablishmentRequest { old_rnti: Rnti(buf.get_u16()) })
        }
        K::RrcReestablishment => L3Message::Rrc(RrcMessage::Reestablishment),
        K::RrcUlInformationTransfer => {
            L3Message::Rrc(RrcMessage::UlInformationTransfer { nas_container: get_container(buf)? })
        }
        K::RrcDlInformationTransfer => {
            L3Message::Rrc(RrcMessage::DlInformationTransfer { nas_container: get_container(buf)? })
        }
        K::NasRegistrationRequest => L3Message::Nas(NasMessage::RegistrationRequest {
            identity: get_identity(buf)?,
            capabilities: get_capabilities(buf)?,
        }),
        K::NasRegistrationAccept => {
            need(buf, 4, "new tmsi")?;
            L3Message::Nas(NasMessage::RegistrationAccept { new_tmsi: Tmsi(buf.get_u32()) })
        }
        K::NasRegistrationComplete => L3Message::Nas(NasMessage::RegistrationComplete),
        K::NasRegistrationReject => {
            need(buf, 1, "reject cause")?;
            let cause = match buf.get_u8() {
                0 => NasRejectCause::IllegalUe,
                1 => NasRejectCause::PlmnNotAllowed,
                2 => NasRejectCause::Congestion,
                other => return Err(err(format!("bad NAS reject cause {other}"))),
            };
            L3Message::Nas(NasMessage::RegistrationReject { cause })
        }
        K::NasAuthenticationRequest => {
            need(buf, 16, "auth request")?;
            L3Message::Nas(NasMessage::AuthenticationRequest {
                rand: buf.get_u64(),
                autn: buf.get_u64(),
            })
        }
        K::NasAuthenticationResponse => {
            need(buf, 8, "auth response")?;
            L3Message::Nas(NasMessage::AuthenticationResponse { res: buf.get_u64() })
        }
        K::NasAuthenticationFailure => {
            need(buf, 1, "auth failure cause")?;
            L3Message::Nas(NasMessage::AuthenticationFailure { cause: buf.get_u8() })
        }
        K::NasAuthenticationReject => L3Message::Nas(NasMessage::AuthenticationReject),
        K::NasIdentityRequest => {
            need(buf, 1, "identity type")?;
            let id_type = match buf.get_u8() {
                0 => IdentityType::Suci,
                1 => IdentityType::PlainSupi,
                2 => IdentityType::Tmsi,
                other => return Err(err(format!("bad identity type {other}"))),
            };
            L3Message::Nas(NasMessage::IdentityRequest { id_type })
        }
        K::NasIdentityResponse => {
            L3Message::Nas(NasMessage::IdentityResponse { identity: get_identity(buf)? })
        }
        K::NasSecurityModeCommand => L3Message::Nas(NasMessage::SecurityModeCommand {
            cipher: get_cipher(buf)?,
            integrity: get_integrity(buf)?,
            replayed_capabilities: get_capabilities(buf)?,
        }),
        K::NasSecurityModeComplete => L3Message::Nas(NasMessage::SecurityModeComplete),
        K::NasSecurityModeReject => {
            need(buf, 1, "smc reject cause")?;
            L3Message::Nas(NasMessage::SecurityModeReject { cause: buf.get_u8() })
        }
        K::NasServiceRequest => {
            need(buf, 4, "service request tmsi")?;
            L3Message::Nas(NasMessage::ServiceRequest { tmsi: Tmsi(buf.get_u32()) })
        }
        K::NasServiceAccept => L3Message::Nas(NasMessage::ServiceAccept),
        K::NasDeregistrationRequest => L3Message::Nas(NasMessage::DeregistrationRequest),
        K::NasDeregistrationAccept => L3Message::Nas(NasMessage::DeregistrationAccept),
        K::NasPduSessionEstablishmentRequest => {
            need(buf, 1, "session id")?;
            L3Message::Nas(NasMessage::PduSessionEstablishmentRequest { session_id: buf.get_u8() })
        }
        K::NasPduSessionEstablishmentAccept => {
            need(buf, 1, "session id")?;
            L3Message::Nas(NasMessage::PduSessionEstablishmentAccept { session_id: buf.get_u8() })
        }
    };
    Ok(msg)
}

// --- framing -------------------------------------------------------------------

/// Writes length-prefixed frames into a growable buffer.
///
/// Used by the E2 TCP transport: each E2AP PDU becomes one frame, so message
/// boundaries survive the stream transport.
#[derive(Debug, Default)]
pub struct FrameWriter {
    buf: BytesMut,
}

impl FrameWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        FrameWriter::default()
    }

    /// Appends one frame.
    ///
    /// # Errors
    /// Rejects payloads larger than [`MAX_FRAME_LEN`].
    pub fn write_frame(&mut self, payload: &[u8]) -> Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(err(format!("frame of {} bytes exceeds cap", payload.len())));
        }
        self.buf.put_u32(payload.len() as u32);
        self.buf.put_slice(payload);
        Ok(())
    }

    /// Takes all buffered bytes, leaving the writer empty.
    pub fn take(&mut self) -> Vec<u8> {
        self.buf.split().to_vec()
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Incrementally splits a byte stream back into frames.
///
/// Feed arbitrary chunks with [`FrameReader::extend`]; complete frames become
/// available via [`FrameReader::next_frame`]. Partial frames are retained
/// until their remaining bytes arrive — the standard pattern for reading a
/// framed protocol off a TCP socket.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: BytesMut,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw stream bytes.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete frame, if one is fully buffered.
    ///
    /// # Errors
    /// Returns a codec error if the length prefix exceeds [`MAX_FRAME_LEN`]
    /// (a corrupt or hostile stream); the reader is then poisoned and the
    /// connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(err(format!("frame length {len} exceeds cap")));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        let frame = self.buf.split_to(len);
        Ok(Some(frame.to_vec()))
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xsec_types::SecurityCapabilities;

    fn sample_messages() -> Vec<L3Message> {
        vec![
            L3Message::Rrc(RrcMessage::SetupRequest {
                ue_identity: 0xDEAD_BEEF,
                cause: EstablishmentCause::MoSignalling,
            }),
            L3Message::Rrc(RrcMessage::Setup),
            L3Message::Rrc(RrcMessage::SetupComplete { nas_container: vec![1, 2, 3] }),
            L3Message::Rrc(RrcMessage::Reject { wait_time_s: 16 }),
            L3Message::Rrc(RrcMessage::SecurityModeCommand {
                cipher: CipherAlg::Nea2,
                integrity: IntegrityAlg::Nia2,
            }),
            L3Message::Rrc(RrcMessage::Release { cause: ReleaseCause::Congestion }),
            L3Message::Rrc(RrcMessage::Paging {
                ue_identity: MobileIdentity::FiveGSTmsi(Tmsi(77)),
            }),
            L3Message::Rrc(RrcMessage::ReestablishmentRequest { old_rnti: Rnti(0x1234) }),
            L3Message::Rrc(RrcMessage::UlInformationTransfer { nas_container: vec![] }),
            L3Message::Nas(NasMessage::RegistrationRequest {
                identity: MobileIdentity::Suci { plmn: Plmn::TEST, concealed: 42 },
                capabilities: SecurityCapabilities::full(),
            }),
            L3Message::Nas(NasMessage::RegistrationAccept { new_tmsi: Tmsi(0xCAFE) }),
            L3Message::Nas(NasMessage::AuthenticationRequest { rand: 7, autn: 8 }),
            L3Message::Nas(NasMessage::AuthenticationResponse { res: 9 }),
            L3Message::Nas(NasMessage::IdentityRequest {
                id_type: IdentityType::PlainSupi,
            }),
            L3Message::Nas(NasMessage::IdentityResponse {
                identity: MobileIdentity::PlainSupi(Supi::new(Plmn::TEST, 123)),
            }),
            L3Message::Nas(NasMessage::SecurityModeCommand {
                cipher: CipherAlg::Nea0,
                integrity: IntegrityAlg::Nia0,
                replayed_capabilities: SecurityCapabilities::null_only(),
            }),
            L3Message::Nas(NasMessage::ServiceRequest { tmsi: Tmsi(1) }),
            L3Message::Nas(NasMessage::PduSessionEstablishmentRequest { session_id: 5 }),
        ]
    }

    #[test]
    fn round_trip_all_samples() {
        for msg in sample_messages() {
            let bytes = encode_l3(&msg);
            let back = decode_l3(&bytes).unwrap_or_else(|e| panic!("{msg}: {e}"));
            assert_eq!(msg, back, "round trip failed for {msg}");
        }
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        assert!(decode_l3(&[250]).is_err());
    }

    #[test]
    fn decode_rejects_empty_input() {
        assert!(decode_l3(&[]).is_err());
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        for msg in sample_messages() {
            let bytes = encode_l3(&msg);
            for cut in 0..bytes.len() {
                assert!(
                    decode_l3(&bytes[..cut]).is_err(),
                    "truncated {msg} at {cut} bytes decoded successfully"
                );
            }
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = encode_l3(&L3Message::Rrc(RrcMessage::Setup));
        bytes.push(0xFF);
        assert!(decode_l3(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_bad_enum_codes() {
        // SecurityModeCommand with cipher code 9.
        let bytes = [MessageKind::RrcSecurityModeCommand.code(), 9, 0];
        assert!(decode_l3(&bytes).is_err());
        // IdentityRequest with type 9.
        let bytes = [MessageKind::NasIdentityRequest.code(), 9];
        assert!(decode_l3(&bytes).is_err());
    }

    #[test]
    fn framing_round_trip_with_fragmented_delivery() {
        let mut writer = FrameWriter::new();
        let payloads: Vec<Vec<u8>> =
            vec![vec![], vec![1], vec![2; 300], encode_l3(&L3Message::Rrc(RrcMessage::Setup))];
        for p in &payloads {
            writer.write_frame(p).unwrap();
        }
        let stream = writer.take();
        assert!(writer.is_empty());

        // Deliver the stream one byte at a time — the pathological TCP case.
        let mut reader = FrameReader::new();
        let mut seen = Vec::new();
        for byte in stream {
            reader.extend(&[byte]);
            while let Some(frame) = reader.next_frame().unwrap() {
                seen.push(frame);
            }
        }
        assert_eq!(seen, payloads);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn framing_rejects_oversized_length_prefix() {
        let mut reader = FrameReader::new();
        reader.extend(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn frame_writer_rejects_oversized_payload() {
        let mut writer = FrameWriter::new();
        assert!(writer.write_frame(&vec![0u8; MAX_FRAME_LEN + 1]).is_err());
    }

    // --- property tests ---------------------------------------------------

    fn arb_identity() -> impl Strategy<Value = MobileIdentity> {
        prop_oneof![
            (any::<u16>(), any::<u16>(), any::<u64>()).prop_map(|(mcc, mnc, concealed)| {
                MobileIdentity::Suci { plmn: Plmn { mcc, mnc }, concealed }
            }),
            any::<u32>().prop_map(|t| MobileIdentity::FiveGSTmsi(Tmsi(t))),
            (any::<u16>(), any::<u16>(), any::<u64>()).prop_map(|(mcc, mnc, msin)| {
                MobileIdentity::PlainSupi(Supi::new(Plmn { mcc, mnc }, msin))
            }),
        ]
    }

    fn arb_caps() -> impl Strategy<Value = SecurityCapabilities> {
        (any::<[bool; 4]>(), any::<[bool; 4]>())
            .prop_map(|(ciphers, integrity)| SecurityCapabilities { ciphers, integrity })
    }

    fn arb_message() -> impl Strategy<Value = L3Message> {
        prop_oneof![
            (any::<u64>(), 0u8..7).prop_map(|(id, c)| L3Message::Rrc(RrcMessage::SetupRequest {
                ue_identity: id,
                cause: EstablishmentCause::from_code(c).unwrap(),
            })),
            proptest::collection::vec(any::<u8>(), 0..128).prop_map(|c| L3Message::Rrc(
                RrcMessage::SetupComplete { nas_container: c }
            )),
            (0u8..4, 0u8..4).prop_map(|(c, i)| L3Message::Rrc(RrcMessage::SecurityModeCommand {
                cipher: CipherAlg::from_code(c).unwrap(),
                integrity: IntegrityAlg::from_code(i).unwrap(),
            })),
            arb_identity().prop_map(|id| L3Message::Rrc(RrcMessage::Paging { ue_identity: id })),
            (arb_identity(), arb_caps()).prop_map(|(identity, capabilities)| L3Message::Nas(
                NasMessage::RegistrationRequest { identity, capabilities }
            )),
            (any::<u64>(), any::<u64>()).prop_map(|(rand, autn)| L3Message::Nas(
                NasMessage::AuthenticationRequest { rand, autn }
            )),
            arb_identity()
                .prop_map(|identity| L3Message::Nas(NasMessage::IdentityResponse { identity })),
            (0u8..4, 0u8..4, arb_caps()).prop_map(|(c, i, caps)| L3Message::Nas(
                NasMessage::SecurityModeCommand {
                    cipher: CipherAlg::from_code(c).unwrap(),
                    integrity: IntegrityAlg::from_code(i).unwrap(),
                    replayed_capabilities: caps,
                }
            )),
            any::<u32>().prop_map(|t| L3Message::Nas(NasMessage::ServiceRequest { tmsi: Tmsi(t) })),
        ]
    }

    proptest! {
        #[test]
        fn prop_encode_decode_round_trip(msg in arb_message()) {
            let bytes = encode_l3(&msg);
            let back = decode_l3(&bytes).unwrap();
            prop_assert_eq!(msg, back);
        }

        #[test]
        fn prop_decode_never_panics_on_fuzz(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = decode_l3(&bytes); // must not panic, errors are fine
        }

        #[test]
        fn prop_framing_survives_arbitrary_chunking(
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..8),
            chunk_size in 1usize..16,
        ) {
            let mut writer = FrameWriter::new();
            for p in &payloads {
                writer.write_frame(p).unwrap();
            }
            let stream = writer.take();
            let mut reader = FrameReader::new();
            let mut seen = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                reader.extend(chunk);
                while let Some(frame) = reader.next_frame().unwrap() {
                    seen.push(frame);
                }
            }
            prop_assert_eq!(seen, payloads);
        }
    }
}
