//! Protocol state machines and conformance checking.
//!
//! Two consumers share this module:
//!
//! * the simulated network entities (`xsec-ran`) advance [`RrcState`] /
//!   [`NasState`] as they process messages, and
//! * the conformance checker [`ProcedureConformance`] replays an observed
//!   message sequence against the 3GPP procedure grammar and reports
//!   [`Violation`]s. The LLM expert's "sequence analysis" step and the
//!   rule-based baseline detector are built on it.
//!
//! The grammar is intentionally *permissive where the spec is permissive*:
//! retransmissions (the same message repeated) are tolerated and merely
//! counted, and an `IdentityRequest → IdentityResponse` exchange is legal
//! before authentication (24.501 §5.4.3) — which is exactly why the uplink
//! identity-extraction attack looks standards-compliant and is the hard case
//! in the paper's Table 3.

use crate::msg::{L3Message, MessageKind};
use crate::nas::NasMessage;
use serde::{Deserialize, Serialize};
use std::fmt;

/// UE-side RRC connection state (38.331 view, simplified).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RrcState {
    /// No connection.
    #[default]
    Idle,
    /// `RRCSetupRequest` sent, awaiting `RRCSetup`.
    SetupRequested,
    /// SRB1 established (after `RRCSetup`), `RRCSetupComplete` pending or sent.
    Connected,
    /// AS security activated via `SecurityModeCommand`/`Complete`.
    SecurityActivated,
}

/// UE-side NAS registration state (24.501 view, simplified).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum NasState {
    /// Not registered.
    #[default]
    Deregistered,
    /// `RegistrationRequest` sent.
    RegistrationInitiated,
    /// Authentication exchange in progress.
    Authenticating,
    /// NAS security mode exchange in progress.
    SecurityMode,
    /// Registered with the network.
    Registered,
}

/// A conformance finding on an observed sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// A message arrived that the procedure grammar does not allow in the
    /// current state (e.g. `IdentityResponse` while an `AuthenticationRequest`
    /// is outstanding — the downlink identity-extraction signature).
    OutOfOrder {
        /// The offending message kind.
        kind: MessageKind,
        /// Human-readable description of what was expected instead.
        expected: String,
    },
    /// A connection attempt was abandoned before completing authentication —
    /// one abandoned handshake is noise; a burst of them is the BTS DoS shape.
    AbandonedHandshake {
        /// The state the exchange reached before going silent.
        last_state: String,
    },
    /// The permanent identity crossed the air interface in plaintext.
    /// Ambiguous by itself (paper §5): flagged as a violation-level finding
    /// but the pipeline treats it as "needs analyst attention".
    PlaintextIdentityDisclosure,
    /// The session negotiated null ciphering and/or null integrity.
    NullSecurityNegotiated {
        /// `true` if ciphering is NEA0.
        null_cipher: bool,
        /// `true` if integrity is NIA0.
        null_integrity: bool,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OutOfOrder { kind, expected } => {
                write!(f, "out-of-order {kind}; expected {expected}")
            }
            Violation::AbandonedHandshake { last_state } => {
                write!(f, "handshake abandoned at {last_state}")
            }
            Violation::PlaintextIdentityDisclosure => {
                f.write_str("permanent identity disclosed in plaintext")
            }
            Violation::NullSecurityNegotiated { null_cipher, null_integrity } => write!(
                f,
                "null security negotiated (cipher={}, integrity={})",
                if *null_cipher { "NEA0" } else { "ok" },
                if *null_integrity { "NIA0" } else { "ok" }
            ),
        }
    }
}

/// Grammar phase of one UE connection, as seen from the network side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Nothing seen yet.
    Start,
    /// `RRCSetupRequest` seen.
    RrcRequested,
    /// `RRCSetup` sent.
    RrcGranted,
    /// `RRCSetupComplete` (with registration/service request) seen.
    RrcComplete,
    /// `AuthenticationRequest` outstanding.
    AuthPending,
    /// Authentication answered; NAS SMC may follow.
    Authenticated,
    /// NAS security established.
    NasSecured,
    /// Registration accepted.
    Registered,
    /// Connection released.
    Released,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Start => "start",
            Phase::RrcRequested => "rrc-requested",
            Phase::RrcGranted => "rrc-granted",
            Phase::RrcComplete => "rrc-complete",
            Phase::AuthPending => "auth-pending",
            Phase::Authenticated => "authenticated",
            Phase::NasSecured => "nas-secured",
            Phase::Registered => "registered",
            Phase::Released => "released",
        }
    }
}

/// Replays one UE connection's message sequence against the procedure
/// grammar, accumulating violations.
#[derive(Debug)]
pub struct ProcedureConformance {
    phase: Phase,
    last_kind: Option<MessageKind>,
    retransmissions: u32,
    identity_request_outstanding: bool,
    violations: Vec<Violation>,
}

impl Default for ProcedureConformance {
    fn default() -> Self {
        Self::new()
    }
}

impl ProcedureConformance {
    /// Starts a fresh conformance check for one connection.
    pub fn new() -> Self {
        ProcedureConformance {
            phase: Phase::Start,
            last_kind: None,
            retransmissions: 0,
            identity_request_outstanding: false,
            violations: Vec::new(),
        }
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Count of tolerated retransmissions (same kind repeated back-to-back).
    pub fn retransmissions(&self) -> u32 {
        self.retransmissions
    }

    /// Whether the sequence so far is fully conformant.
    pub fn is_conformant(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether the connection completed registration.
    pub fn reached_registered(&self) -> bool {
        matches!(self.phase, Phase::Registered)
    }

    /// Feeds the next observed message. Content-level checks (plaintext
    /// identity, null security) need the full message; sequence-level checks
    /// use only its kind.
    pub fn observe(&mut self, msg: &L3Message) {
        let kind = msg.kind();

        // Retransmission tolerance: an identical kind repeated back-to-back
        // is counted, not flagged — RLC retransmissions duplicate messages
        // and the paper explicitly attributes benign false positives to them.
        if self.last_kind == Some(kind) {
            self.retransmissions += 1;
            return;
        }
        self.last_kind = Some(kind);

        self.check_content(msg);
        self.advance(kind);
    }

    /// Feeds a whole sequence.
    pub fn observe_all<'a>(&mut self, msgs: impl IntoIterator<Item = &'a L3Message>) {
        for msg in msgs {
            self.observe(msg);
        }
    }

    /// Declares the connection over (released or went silent). If the
    /// exchange never reached registration and was not explicitly released,
    /// this records an abandoned handshake.
    pub fn finish(&mut self) {
        if !matches!(self.phase, Phase::Registered | Phase::Released | Phase::Start) {
            self.violations
                .push(Violation::AbandonedHandshake { last_state: self.phase.name().to_string() });
        }
    }

    fn check_content(&mut self, msg: &L3Message) {
        if let L3Message::Nas(nas) = msg {
            if let Some(identity) = nas.disclosed_identity() {
                if identity.exposes_supi() {
                    self.violations.push(Violation::PlaintextIdentityDisclosure);
                }
            }
            if let NasMessage::SecurityModeCommand { cipher, integrity, .. } = nas {
                if cipher.is_null() || integrity.is_null() {
                    self.violations.push(Violation::NullSecurityNegotiated {
                        null_cipher: cipher.is_null(),
                        null_integrity: integrity.is_null(),
                    });
                }
            }
        }
        if let L3Message::Rrc(crate::rrc::RrcMessage::SecurityModeCommand { cipher, integrity }) =
            msg
        {
            if cipher.is_null() || integrity.is_null() {
                self.violations.push(Violation::NullSecurityNegotiated {
                    null_cipher: cipher.is_null(),
                    null_integrity: integrity.is_null(),
                });
            }
        }
    }

    fn out_of_order(&mut self, kind: MessageKind, expected: &str) {
        self.violations
            .push(Violation::OutOfOrder { kind, expected: expected.to_string() });
    }

    fn advance(&mut self, kind: MessageKind) {
        use MessageKind as K;

        // Identity procedures are legal at any point after RRC completion
        // (24.501 §5.4.3) — this permissiveness is what lets the uplink
        // identity-extraction trace pass as conformant.
        match kind {
            K::NasIdentityRequest => {
                if matches!(self.phase, Phase::Start | Phase::RrcRequested | Phase::RrcGranted) {
                    self.out_of_order(kind, "an established RRC connection first");
                } else {
                    self.identity_request_outstanding = true;
                }
                return;
            }
            K::NasIdentityResponse => {
                if self.identity_request_outstanding {
                    self.identity_request_outstanding = false;
                } else if matches!(self.phase, Phase::AuthPending) {
                    // The Figure 2a signature: the UE answers an
                    // AuthenticationRequest with an IdentityResponse.
                    self.out_of_order(kind, "AuthenticationResponse to the outstanding challenge");
                } else {
                    self.out_of_order(kind, "a preceding IdentityRequest");
                }
                return;
            }
            // Paging and information transfer are carriers/asynchronous.
            K::RrcPaging | K::RrcUlInformationTransfer | K::RrcDlInformationTransfer => return,
            _ => {}
        }

        self.phase = match (self.phase, kind) {
            (Phase::Start, K::RrcSetupRequest) => Phase::RrcRequested,
            (Phase::Start, other) => {
                self.out_of_order(other, "RRCSetupRequest to open the connection");
                Phase::Start
            }
            (Phase::RrcRequested, K::RrcSetup) => Phase::RrcGranted,
            (Phase::RrcRequested, K::RrcReject) => Phase::Released,
            (Phase::RrcRequested, other) => {
                self.out_of_order(other, "RRCSetup or RRCReject");
                Phase::RrcRequested
            }
            (Phase::RrcGranted, K::RrcSetupComplete) => Phase::RrcComplete,
            (Phase::RrcGranted, other) => {
                self.out_of_order(other, "RRCSetupComplete");
                Phase::RrcGranted
            }
            // Registration/service request rides inside RRCSetupComplete; a
            // standalone RegistrationRequest right after is also accepted
            // (the simulator logs the piggybacked NAS separately).
            (Phase::RrcComplete, K::NasRegistrationRequest | K::NasServiceRequest) => {
                Phase::RrcComplete
            }
            (Phase::RrcComplete, K::NasAuthenticationRequest) => Phase::AuthPending,
            (Phase::RrcComplete, K::NasServiceAccept) => Phase::Registered,
            (Phase::RrcComplete, K::RrcRelease) => Phase::Released,
            (Phase::RrcComplete, other) => {
                self.out_of_order(other, "AuthenticationRequest (or ServiceAccept)");
                Phase::RrcComplete
            }
            (Phase::AuthPending, K::NasAuthenticationResponse | K::NasAuthenticationFailure) => {
                Phase::Authenticated
            }
            (Phase::AuthPending, K::RrcRelease) => Phase::Released,
            (Phase::AuthPending, other) => {
                self.out_of_order(other, "AuthenticationResponse");
                Phase::AuthPending
            }
            (Phase::Authenticated, K::NasSecurityModeCommand) => Phase::NasSecured,
            (Phase::Authenticated, K::NasAuthenticationReject | K::RrcRelease) => Phase::Released,
            (Phase::Authenticated, K::NasAuthenticationRequest) => Phase::AuthPending,
            (Phase::Authenticated, other) => {
                self.out_of_order(other, "NASSecurityModeCommand");
                Phase::Authenticated
            }
            (Phase::NasSecured, K::NasSecurityModeComplete | K::NasSecurityModeReject) => {
                Phase::NasSecured
            }
            (Phase::NasSecured, K::NasRegistrationAccept) => Phase::NasSecured,
            (Phase::NasSecured, K::NasRegistrationComplete) => Phase::Registered,
            (Phase::NasSecured, K::RrcSecurityModeCommand | K::RrcSecurityModeComplete) => {
                Phase::NasSecured
            }
            (Phase::NasSecured, K::RrcRelease) => Phase::Released,
            (Phase::NasSecured, other) => {
                self.out_of_order(other, "security/registration completion");
                Phase::NasSecured
            }
            (Phase::Registered, K::RrcRelease) => Phase::Released,
            (
                Phase::Registered,
                K::RrcSecurityModeCommand
                | K::RrcSecurityModeComplete
                | K::RrcReconfiguration
                | K::RrcReconfigurationComplete
                | K::NasPduSessionEstablishmentRequest
                | K::NasPduSessionEstablishmentAccept
                | K::NasDeregistrationRequest
                | K::NasDeregistrationAccept,
            ) => Phase::Registered,
            (Phase::Registered, other) => {
                self.out_of_order(other, "session traffic or release");
                Phase::Registered
            }
            (Phase::Released, K::RrcSetupRequest) => Phase::RrcRequested,
            (Phase::Released, other) => {
                self.out_of_order(other, "a new RRCSetupRequest");
                Phase::Released
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nas::IdentityType;
    use crate::rrc::RrcMessage;
    use crate::msg::MobileIdentity;
    use xsec_types::{
        CipherAlg, EstablishmentCause, IntegrityAlg, Plmn, SecurityCapabilities, Supi, Tmsi,
    };

    fn setup_request() -> L3Message {
        L3Message::Rrc(RrcMessage::SetupRequest {
            ue_identity: 1,
            cause: EstablishmentCause::MoSignalling,
        })
    }

    fn registration_request() -> L3Message {
        L3Message::Nas(NasMessage::RegistrationRequest {
            identity: MobileIdentity::Suci { plmn: Plmn::TEST, concealed: 7 },
            capabilities: SecurityCapabilities::full(),
        })
    }

    fn benign_ladder() -> Vec<L3Message> {
        vec![
            setup_request(),
            L3Message::Rrc(RrcMessage::Setup),
            L3Message::Rrc(RrcMessage::SetupComplete { nas_container: vec![] }),
            registration_request(),
            L3Message::Nas(NasMessage::AuthenticationRequest { rand: 1, autn: 2 }),
            L3Message::Nas(NasMessage::AuthenticationResponse { res: 3 }),
            L3Message::Nas(NasMessage::SecurityModeCommand {
                cipher: CipherAlg::Nea2,
                integrity: IntegrityAlg::Nia2,
                replayed_capabilities: SecurityCapabilities::full(),
            }),
            L3Message::Nas(NasMessage::SecurityModeComplete),
            L3Message::Nas(NasMessage::RegistrationAccept { new_tmsi: Tmsi(9) }),
            L3Message::Nas(NasMessage::RegistrationComplete),
        ]
    }

    #[test]
    fn benign_ladder_is_conformant() {
        let mut check = ProcedureConformance::new();
        let ladder = benign_ladder();
        check.observe_all(&ladder);
        check.finish();
        assert!(check.is_conformant(), "violations: {:?}", check.violations());
        assert!(check.reached_registered());
    }

    #[test]
    fn identity_response_to_auth_request_is_out_of_order() {
        // Figure 2a: the downlink identity-extraction attack makes the UE
        // answer the authentication challenge with an IdentityResponse.
        let mut check = ProcedureConformance::new();
        let mut ladder = benign_ladder()[..5].to_vec(); // up to AuthenticationRequest
        ladder.push(L3Message::Nas(NasMessage::IdentityResponse {
            identity: MobileIdentity::PlainSupi(Supi::new(Plmn::TEST, 42)),
        }));
        check.observe_all(&ladder);
        let violations = check.violations();
        assert!(violations.iter().any(|v| matches!(v, Violation::OutOfOrder { .. })));
        assert!(violations.contains(&Violation::PlaintextIdentityDisclosure));
    }

    #[test]
    fn legal_identity_procedure_is_conformant_but_flags_plaintext() {
        // The uplink identity-extraction shape: IdentityRequest arrives in a
        // legal position, the UE replies — no ordering violation, only the
        // (ambiguous) plaintext disclosure finding.
        let mut check = ProcedureConformance::new();
        let ladder = vec![
            setup_request(),
            L3Message::Rrc(RrcMessage::Setup),
            L3Message::Rrc(RrcMessage::SetupComplete { nas_container: vec![] }),
            registration_request(),
            L3Message::Nas(NasMessage::IdentityRequest { id_type: IdentityType::PlainSupi }),
            L3Message::Nas(NasMessage::IdentityResponse {
                identity: MobileIdentity::PlainSupi(Supi::new(Plmn::TEST, 42)),
            }),
        ];
        check.observe_all(&ladder);
        let ordering_violations: Vec<_> = check
            .violations()
            .iter()
            .filter(|v| matches!(v, Violation::OutOfOrder { .. }))
            .collect();
        assert!(ordering_violations.is_empty(), "unexpected: {ordering_violations:?}");
        assert!(check.violations().contains(&Violation::PlaintextIdentityDisclosure));
    }

    #[test]
    fn abandoned_handshake_is_flagged_on_finish() {
        // The BTS DoS per-connection shape: the flow stalls after the
        // authentication request and the connection goes silent.
        let mut check = ProcedureConformance::new();
        check.observe_all(&benign_ladder()[..5]);
        check.finish();
        assert!(check
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::AbandonedHandshake { .. })));
    }

    #[test]
    fn completed_session_is_not_abandoned() {
        let mut check = ProcedureConformance::new();
        let ladder = benign_ladder();
        check.observe_all(&ladder);
        check.finish();
        assert!(!check
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::AbandonedHandshake { .. })));
    }

    #[test]
    fn null_security_is_flagged() {
        let mut check = ProcedureConformance::new();
        let mut ladder = benign_ladder();
        ladder[6] = L3Message::Nas(NasMessage::SecurityModeCommand {
            cipher: CipherAlg::Nea0,
            integrity: IntegrityAlg::Nia0,
            replayed_capabilities: SecurityCapabilities::null_only(),
        });
        check.observe_all(&ladder);
        assert!(check.violations().contains(&Violation::NullSecurityNegotiated {
            null_cipher: true,
            null_integrity: true,
        }));
    }

    #[test]
    fn retransmissions_are_tolerated_and_counted() {
        let mut check = ProcedureConformance::new();
        let ladder = benign_ladder();
        // Duplicate the auth request (RLC retransmission).
        check.observe_all(&ladder[..5]);
        check.observe(&ladder[4]);
        check.observe_all(&ladder[5..]);
        check.finish();
        assert!(check.is_conformant(), "violations: {:?}", check.violations());
        assert_eq!(check.retransmissions(), 1);
    }

    #[test]
    fn nas_before_rrc_is_out_of_order() {
        let mut check = ProcedureConformance::new();
        check.observe(&registration_request());
        assert!(matches!(check.violations()[0], Violation::OutOfOrder { .. }));
    }

    #[test]
    fn reconnect_after_release_is_legal() {
        let mut check = ProcedureConformance::new();
        let mut ladder = benign_ladder();
        ladder.push(L3Message::Rrc(RrcMessage::Release {
            cause: xsec_types::ReleaseCause::Normal,
        }));
        ladder.push(setup_request());
        ladder.push(L3Message::Rrc(RrcMessage::Setup));
        check.observe_all(&ladder);
        assert!(check.is_conformant(), "violations: {:?}", check.violations());
    }

    #[test]
    fn empty_sequence_finishes_clean() {
        let mut check = ProcedureConformance::new();
        check.finish();
        assert!(check.is_conformant());
        assert!(!check.reached_registered());
    }
}
