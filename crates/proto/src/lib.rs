//! # xsec-proto
//!
//! The L3 control-protocol model for the simulated 5G network: RRC (3GPP
//! 38.331) and NAS (3GPP 24.501) message types, a compact binary wire codec,
//! the per-UE protocol state machines, and the F1AP/NGAP encapsulation that
//! carries these messages between the simulated O-DU, O-CU, and AMF.
//!
//! ## Scope
//!
//! This is the subset of the two protocols that the 6G-XSec telemetry and the
//! five evaluated attacks exercise: connection establishment, registration,
//! authentication, security-mode negotiation, identity procedures, paging,
//! session setup, and release. It is a *model*, not an ASN.1 PER
//! implementation — messages carry exactly the fields the MobiFlow telemetry
//! schema (paper Table 1) extracts, plus what the state machines need.
//!
//! ## Layering
//!
//! ```text
//!   UE ──Uu──> O-DU ──F1AP──> O-CU ──NGAP──> AMF
//!        RRC            RRC container   NAS container
//! ```
//!
//! * [`rrc::RrcMessage`] — the air-interface control messages.
//! * [`nas::NasMessage`] — the NAS messages piggybacked through RRC.
//! * [`msg::L3Message`] / [`msg::MessageKind`] — the unified vocabulary the
//!   featurizer and MobiFlow records use.
//! * [`codec`] — deterministic binary encoding with length-prefixed framing.
//! * [`state`] — UE-side RRC/NAS state machines and the network-side
//!   [`state::ProcedureConformance`] checker used both by the simulated CU
//!   and by the LLM expert's sequence analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod f1ap;
pub mod msg;
pub mod nas;
pub mod ngap;
pub mod rrc;
pub mod state;

pub use codec::{decode_l3, encode_l3, FrameReader, FrameWriter};
pub use f1ap::F1apPdu;
pub use msg::{Direction, L3Message, MessageKind, MobileIdentity};
pub use nas::NasMessage;
pub use ngap::NgapPdu;
pub use rrc::RrcMessage;
pub use state::{ProcedureConformance, RrcState, NasState, Violation};
