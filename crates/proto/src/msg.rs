//! The unified L3 message vocabulary.
//!
//! [`MessageKind`] is the flat, stable enumeration of every control message
//! the system knows about. It is the categorical "message" variable `m_i` of
//! the MobiFlow telemetry tuple (paper §3.1) and the primary feature of the
//! anomaly detectors, so its codes must stay stable across versions.

use crate::nas::NasMessage;
use crate::rrc::RrcMessage;
use serde::{Deserialize, Serialize};
use std::fmt;
use xsec_types::{Plmn, Supi, Tmsi};

/// Transmission direction relative to the UE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// UE → network.
    Uplink,
    /// Network → UE.
    Downlink,
}

impl Direction {
    /// `true` for uplink.
    pub fn is_uplink(self) -> bool {
        matches!(self, Direction::Uplink)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_uplink() { "UL" } else { "DL" })
    }
}

/// How a UE identifies itself inside NAS messages.
///
/// The privacy-critical distinction: a [`MobileIdentity::PlainSupi`] crossing
/// the air interface is exactly what identity-extraction attacks harvest;
/// benign 5G traffic conceals the permanent identity as a SUCI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MobileIdentity {
    /// Subscription Concealed Identifier — SUPI encrypted under the home
    /// network public key. We model concealment as an opaque nonce-keyed
    /// value: the network can resolve it, an observer cannot.
    Suci {
        /// Home PLMN (transmitted in clear as routing info).
        plmn: Plmn,
        /// The concealed (opaque) part.
        concealed: u64,
    },
    /// Temporary identity previously assigned by the AMF.
    FiveGSTmsi(Tmsi),
    /// Permanent identity in plaintext — should never appear over the air.
    PlainSupi(Supi),
}

impl MobileIdentity {
    /// Whether this identity exposes the permanent subscriber identity.
    pub fn exposes_supi(&self) -> bool {
        matches!(self, MobileIdentity::PlainSupi(_))
    }
}

impl fmt::Display for MobileIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobileIdentity::Suci { plmn, concealed } => write!(f, "suci-{plmn}-{concealed:016x}"),
            MobileIdentity::FiveGSTmsi(tmsi) => write!(f, "5g-s-tmsi-{tmsi}"),
            MobileIdentity::PlainSupi(supi) => write!(f, "{supi}"),
        }
    }
}

/// An L3 control message: either RRC or NAS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum L3Message {
    /// Radio Resource Control message (38.331).
    Rrc(RrcMessage),
    /// Non-Access-Stratum message (24.501).
    Nas(NasMessage),
}

impl L3Message {
    /// The flat kind tag of this message.
    pub fn kind(&self) -> MessageKind {
        match self {
            L3Message::Rrc(m) => m.kind(),
            L3Message::Nas(m) => m.kind(),
        }
    }

    /// The nominal direction of this message type.
    pub fn direction(&self) -> Direction {
        self.kind().direction()
    }
}

impl fmt::Display for L3Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            L3Message::Rrc(m) => write!(f, "{m}"),
            L3Message::Nas(m) => write!(f, "{m}"),
        }
    }
}

macro_rules! message_kinds {
    ($( $variant:ident => ($code:expr, $name:expr, $dir:ident) ),+ $(,)?) => {
        /// Flat enumeration of every L3 message type in the model.
        ///
        /// The numeric codes are the wire tags of the codec and the category
        /// indices of the one-hot featurizer; they are append-only.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum MessageKind {
            $($variant),+
        }

        impl MessageKind {
            /// Every kind, ordered by code.
            pub const ALL: &'static [MessageKind] = &[$(MessageKind::$variant),+];

            /// Stable numeric code (wire tag / feature index).
            pub fn code(self) -> u8 {
                match self { $(MessageKind::$variant => $code),+ }
            }

            /// Inverse of [`MessageKind::code`].
            pub fn from_code(code: u8) -> Option<Self> {
                match code { $($code => Some(MessageKind::$variant),)+ _ => None }
            }

            /// The 38.331 / 24.501 style message name.
            pub fn name(self) -> &'static str {
                match self { $(MessageKind::$variant => $name),+ }
            }

            /// Nominal direction of this message type.
            pub fn direction(self) -> Direction {
                match self { $(MessageKind::$variant => Direction::$dir),+ }
            }
        }
    };
}

message_kinds! {
    // --- RRC (codes 0..32) -------------------------------------------------
    RrcSetupRequest        => (0,  "RRCSetupRequest",            Uplink),
    RrcSetup               => (1,  "RRCSetup",                   Downlink),
    RrcSetupComplete       => (2,  "RRCSetupComplete",           Uplink),
    RrcReject              => (3,  "RRCReject",                  Downlink),
    RrcSecurityModeCommand => (4,  "SecurityModeCommand",        Downlink),
    RrcSecurityModeComplete=> (5,  "SecurityModeComplete",       Uplink),
    RrcReconfiguration     => (6,  "RRCReconfiguration",         Downlink),
    RrcReconfigurationComplete => (7, "RRCReconfigurationComplete", Uplink),
    RrcRelease             => (8,  "RRCRelease",                 Downlink),
    RrcPaging              => (9,  "Paging",                     Downlink),
    RrcReestablishmentRequest => (10, "RRCReestablishmentRequest", Uplink),
    RrcReestablishment     => (11, "RRCReestablishment",         Downlink),
    RrcUlInformationTransfer => (12, "ULInformationTransfer",    Uplink),
    RrcDlInformationTransfer => (13, "DLInformationTransfer",    Downlink),
    // --- NAS (codes 32..) --------------------------------------------------
    NasRegistrationRequest => (32, "RegistrationRequest",        Uplink),
    NasRegistrationAccept  => (33, "RegistrationAccept",         Downlink),
    NasRegistrationComplete=> (34, "RegistrationComplete",       Uplink),
    NasRegistrationReject  => (35, "RegistrationReject",         Downlink),
    NasAuthenticationRequest => (36, "AuthenticationRequest",    Downlink),
    NasAuthenticationResponse => (37, "AuthenticationResponse",  Uplink),
    NasAuthenticationFailure => (38, "AuthenticationFailure",    Uplink),
    NasAuthenticationReject => (39, "AuthenticationReject",      Downlink),
    NasIdentityRequest     => (40, "IdentityRequest",            Downlink),
    NasIdentityResponse    => (41, "IdentityResponse",           Uplink),
    NasSecurityModeCommand => (42, "NASSecurityModeCommand",     Downlink),
    NasSecurityModeComplete=> (43, "NASSecurityModeComplete",    Uplink),
    NasSecurityModeReject  => (44, "NASSecurityModeReject",      Uplink),
    NasServiceRequest      => (45, "ServiceRequest",             Uplink),
    NasServiceAccept       => (46, "ServiceAccept",              Downlink),
    NasDeregistrationRequest => (47, "DeregistrationRequest",    Uplink),
    NasDeregistrationAccept => (48, "DeregistrationAccept",      Downlink),
    NasPduSessionEstablishmentRequest => (49, "PDUSessionEstablishmentRequest", Uplink),
    NasPduSessionEstablishmentAccept  => (50, "PDUSessionEstablishmentAccept",  Downlink),
}

impl MessageKind {
    /// Whether this is an RRC-layer message.
    pub fn is_rrc(self) -> bool {
        self.code() < 32
    }

    /// Whether this is a NAS-layer message.
    pub fn is_nas(self) -> bool {
        !self.is_rrc()
    }

    /// The dense feature index of this kind (0-based, contiguous), used by
    /// the one-hot featurizer. Unlike [`MessageKind::code`] this has no gaps.
    pub fn feature_index(self) -> usize {
        Self::ALL.iter().position(|k| *k == self).expect("kind is in ALL")
    }

    /// Number of distinct message kinds (one-hot vocabulary size).
    pub fn vocabulary_size() -> usize {
        Self::ALL.len()
    }
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_for_all_kinds() {
        for kind in MessageKind::ALL {
            assert_eq!(MessageKind::from_code(kind.code()), Some(*kind));
        }
        assert_eq!(MessageKind::from_code(200), None);
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<u8> = MessageKind::ALL.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), MessageKind::ALL.len());
    }

    #[test]
    fn rrc_nas_split_at_32() {
        assert!(MessageKind::RrcSetupRequest.is_rrc());
        assert!(!MessageKind::RrcSetupRequest.is_nas());
        assert!(MessageKind::NasRegistrationRequest.is_nas());
        assert!(!MessageKind::NasRegistrationRequest.is_rrc());
    }

    #[test]
    fn feature_indices_are_dense() {
        for (i, kind) in MessageKind::ALL.iter().enumerate() {
            assert_eq!(kind.feature_index(), i);
        }
        assert_eq!(MessageKind::vocabulary_size(), MessageKind::ALL.len());
    }

    #[test]
    fn directions_match_3gpp_roles() {
        assert_eq!(MessageKind::RrcSetupRequest.direction(), Direction::Uplink);
        assert_eq!(MessageKind::RrcSetup.direction(), Direction::Downlink);
        assert_eq!(MessageKind::NasAuthenticationRequest.direction(), Direction::Downlink);
        assert_eq!(MessageKind::NasAuthenticationResponse.direction(), Direction::Uplink);
        assert_eq!(MessageKind::NasIdentityResponse.direction(), Direction::Uplink);
    }

    #[test]
    fn plain_supi_is_flagged_as_exposure() {
        use xsec_types::Plmn;
        let plain = MobileIdentity::PlainSupi(Supi::new(Plmn::TEST, 1));
        let suci = MobileIdentity::Suci { plmn: Plmn::TEST, concealed: 0xABCD };
        let tmsi = MobileIdentity::FiveGSTmsi(Tmsi(5));
        assert!(plain.exposes_supi());
        assert!(!suci.exposes_supi());
        assert!(!tmsi.exposes_supi());
    }

    #[test]
    fn identity_display_forms() {
        use xsec_types::Plmn;
        assert_eq!(
            MobileIdentity::Suci { plmn: Plmn::TEST, concealed: 0xAB }.to_string(),
            "suci-001.01-00000000000000ab"
        );
        assert_eq!(MobileIdentity::FiveGSTmsi(Tmsi(9)).to_string(), "5g-s-tmsi-9");
    }
}
