//! The semicolon-delimited MobiFlow wire encoding.
//!
//! Mirrors the format of the 5GSEC MobiFlow releases: a fixed field order,
//! `;` separators, `-` for absent optionals. The encoding is what the RIC
//! agent ships over E2 (as E2SM key-value payloads) and what the SDL stores;
//! it must round-trip exactly.
//!
//! ```text
//! v2;UE;<msg_id>;<ts_us>;<cell>;<rnti_hex>;<du_ue_id>;<UL|DL>;<msg_name>;
//!   <tmsi|- >;<supi|- >;<nea|- >;<nia|- >;<cause_code|- >;<release_code|- >
//! ```

use crate::record::{UeMobiFlow, MOBIFLOW_VERSION};
use xsec_proto::{Direction, MessageKind};
use xsec_types::{
    CellId, CipherAlg, EstablishmentCause, IntegrityAlg, Plmn, ReleaseCause, Result, Rnti, Supi,
    Timestamp, Tmsi, XsecError,
};

fn err(msg: impl Into<String>) -> XsecError {
    XsecError::Codec(msg.into())
}

/// Encodes a UE record into its line form.
pub fn encode_ue_record(r: &UeMobiFlow) -> String {
    let opt_u32 = |v: Option<u32>| v.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
    format!(
        "v{};UE;{};{};{};{:04x};{};{};{};{};{};{};{};{};{}",
        MOBIFLOW_VERSION,
        r.msg_id,
        r.timestamp.as_micros(),
        r.cell.0,
        r.rnti.0,
        r.du_ue_id,
        if r.direction.is_uplink() { "UL" } else { "DL" },
        r.msg.name(),
        r.tmsi.map(|t| t.0.to_string()).unwrap_or_else(|| "-".into()),
        r.supi
            .map(|s| format!("{:03}.{:02}.{}", s.plmn.mcc, s.plmn.mnc, s.msin))
            .unwrap_or_else(|| "-".into()),
        opt_u32(r.cipher_alg.map(|c| c.code() as u32)),
        opt_u32(r.integrity_alg.map(|i| i.code() as u32)),
        opt_u32(r.establishment_cause.map(|c| c.code() as u32)),
        opt_u32(r.release_cause.map(|c| c.code() as u32)),
    )
}

/// Decodes a UE record from its line form.
pub fn decode_ue_record(line: &str) -> Result<UeMobiFlow> {
    let fields: Vec<&str> = line.split(';').collect();
    if fields.len() != 15 {
        return Err(err(format!("expected 15 fields, got {}", fields.len())));
    }
    let version = fields[0]
        .strip_prefix('v')
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| err("bad version field"))?;
    if version != MOBIFLOW_VERSION {
        return Err(err(format!("unsupported MobiFlow version {version}")));
    }
    if fields[1] != "UE" {
        return Err(err(format!("expected UE record, got {:?}", fields[1])));
    }

    fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T> {
        s.parse().map_err(|_| err(format!("bad {what}: {s:?}")))
    }
    fn parse_opt<T: std::str::FromStr>(s: &str, what: &str) -> Result<Option<T>> {
        if s == "-" {
            Ok(None)
        } else {
            parse(s, what).map(Some)
        }
    }

    let msg_name = fields[8];
    let msg = MessageKind::ALL
        .iter()
        .copied()
        .find(|k| k.name() == msg_name)
        .ok_or_else(|| err(format!("unknown message name {msg_name:?}")))?;

    let direction = match fields[7] {
        "UL" => Direction::Uplink,
        "DL" => Direction::Downlink,
        other => return Err(err(format!("bad direction {other:?}"))),
    };

    let supi = if fields[10] == "-" {
        None
    } else {
        let parts: Vec<&str> = fields[10].split('.').collect();
        if parts.len() != 3 {
            return Err(err(format!("bad SUPI field {:?}", fields[10])));
        }
        Some(Supi::new(
            Plmn { mcc: parse(parts[0], "mcc")?, mnc: parse(parts[1], "mnc")? },
            parse(parts[2], "msin")?,
        ))
    };

    let cipher_alg = parse_opt::<u8>(fields[11], "cipher")?
        .map(|c| CipherAlg::from_code(c).ok_or_else(|| err(format!("bad cipher code {c}"))))
        .transpose()?;
    let integrity_alg = parse_opt::<u8>(fields[12], "integrity")?
        .map(|c| IntegrityAlg::from_code(c).ok_or_else(|| err(format!("bad integrity code {c}"))))
        .transpose()?;
    let establishment_cause = parse_opt::<u8>(fields[13], "cause")?
        .map(|c| {
            EstablishmentCause::from_code(c).ok_or_else(|| err(format!("bad cause code {c}")))
        })
        .transpose()?;
    let release_cause = parse_opt::<u8>(fields[14], "release cause")?
        .map(|c| ReleaseCause::from_code(c).ok_or_else(|| err(format!("bad release code {c}"))))
        .transpose()?;

    Ok(UeMobiFlow {
        msg_id: parse(fields[2], "msg_id")?,
        timestamp: Timestamp(parse(fields[3], "timestamp")?),
        cell: CellId(parse(fields[4], "cell")?),
        rnti: Rnti(
            u16::from_str_radix(fields[5], 16).map_err(|_| err(format!("bad rnti {:?}", fields[5])))?,
        ),
        du_ue_id: parse(fields[6], "du_ue_id")?,
        direction,
        msg,
        tmsi: parse_opt::<u32>(fields[9], "tmsi")?.map(Tmsi),
        supi,
        cipher_alg,
        integrity_alg,
        establishment_cause,
        release_cause,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> UeMobiFlow {
        UeMobiFlow {
            msg_id: 42,
            timestamp: Timestamp(123_456),
            cell: CellId(1),
            rnti: Rnti(0x4601),
            du_ue_id: 7,
            direction: Direction::Uplink,
            msg: MessageKind::NasRegistrationRequest,
            tmsi: Some(Tmsi(99)),
            supi: Some(Supi::new(Plmn::TEST, 12345)),
            cipher_alg: Some(CipherAlg::Nea2),
            integrity_alg: Some(IntegrityAlg::Nia2),
            establishment_cause: Some(EstablishmentCause::MoSignalling),
            release_cause: None,
        }
    }

    #[test]
    fn round_trip_full_record() {
        let r = sample();
        let line = encode_ue_record(&r);
        assert_eq!(decode_ue_record(&line).unwrap(), r);
    }

    #[test]
    fn round_trip_minimal_record() {
        let r = UeMobiFlow {
            tmsi: None,
            supi: None,
            cipher_alg: None,
            integrity_alg: None,
            establishment_cause: None,
            release_cause: None,
            ..sample()
        };
        let line = encode_ue_record(&r);
        assert!(line.contains(";-;-;-;-;-;-"), "optionals should encode as dashes: {line}");
        assert_eq!(decode_ue_record(&line).unwrap(), r);
    }

    #[test]
    fn encoded_form_is_stable() {
        // Pin the exact wire format — downstream parsers depend on it.
        let line = encode_ue_record(&sample());
        assert_eq!(
            line,
            "v2;UE;42;123456;1;4601;7;UL;RegistrationRequest;99;001.01.12345;2;2;3;-"
        );
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        for bad in [
            "",
            "v2;UE;1",                                        // too few fields
            "v1;UE;42;1;1;4601;7;UL;RegistrationRequest;-;-;-;-;-;-", // old version
            "v2;BS;42;1;1;4601;7;UL;RegistrationRequest;-;-;-;-;-;-", // wrong type
            "v2;UE;42;1;1;ZZZZ;7;UL;RegistrationRequest;-;-;-;-;-;-", // bad rnti
            "v2;UE;42;1;1;4601;7;XX;RegistrationRequest;-;-;-;-;-;-", // bad direction
            "v2;UE;42;1;1;4601;7;UL;NoSuchMessage;-;-;-;-;-;-",       // bad message
            "v2;UE;42;1;1;4601;7;UL;RegistrationRequest;-;-;9;-;-;-", // bad cipher code
            "v2;UE;42;1;1;4601;7;UL;RegistrationRequest;-;-;-;-;-;9", // bad release code
        ] {
            assert!(decode_ue_record(bad).is_err(), "accepted malformed line: {bad:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(
            msg_id in any::<u64>(),
            ts in any::<u64>(),
            rnti in any::<u16>(),
            du in any::<u32>(),
            kind_idx in 0usize..MessageKind::ALL.len(),
            uplink in any::<bool>(),
            tmsi in proptest::option::of(any::<u32>()),
            cipher in proptest::option::of(0u8..4),
            integ in proptest::option::of(0u8..4),
            cause in proptest::option::of(0u8..7),
        ) {
            let r = UeMobiFlow {
                msg_id,
                timestamp: Timestamp(ts),
                cell: CellId(1),
                rnti: Rnti(rnti),
                du_ue_id: du,
                direction: if uplink { Direction::Uplink } else { Direction::Downlink },
                msg: MessageKind::ALL[kind_idx],
                tmsi: tmsi.map(Tmsi),
                supi: None,
                cipher_alg: cipher.map(|c| CipherAlg::from_code(c).unwrap()),
                integrity_alg: integ.map(|c| IntegrityAlg::from_code(c).unwrap()),
                establishment_cause: cause.map(|c| EstablishmentCause::from_code(c).unwrap()),
                release_cause: None,
            };
            let line = encode_ue_record(&r);
            prop_assert_eq!(decode_ue_record(&line).unwrap(), r);
        }

        #[test]
        fn prop_decode_never_panics(line in "[ -~]{0,100}") {
            let _ = decode_ue_record(&line);
        }
    }
}
