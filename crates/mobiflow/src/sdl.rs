//! The Shared Data Layer (SDL) — the nRT-RIC's central store.
//!
//! The OSC reference platform backs this with Redis; ours is an in-process,
//! thread-safe, namespaced key-value store with the same access pattern: the
//! E2 termination writes telemetry in, xApps read it out, and a monotonically
//! increasing per-namespace version lets consumers poll for "anything new
//! since I last looked?" cheaply (the RIC layers push-notification on top).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

type Namespace = BTreeMap<String, Vec<u8>>;

#[derive(Default)]
struct Inner {
    namespaces: BTreeMap<String, Namespace>,
    versions: BTreeMap<String, u64>,
}

/// A cloneable handle to the shared store.
#[derive(Clone, Default)]
pub struct SharedDataLayer {
    inner: Arc<RwLock<Inner>>,
}

impl SharedDataLayer {
    /// Creates an empty SDL.
    pub fn new() -> Self {
        SharedDataLayer::default()
    }

    /// Writes `value` under `(namespace, key)`, bumping the namespace version.
    pub fn set(&self, namespace: &str, key: &str, value: Vec<u8>) {
        let mut inner = self.inner.write();
        inner.namespaces.entry(namespace.to_string()).or_default().insert(key.to_string(), value);
        *inner.versions.entry(namespace.to_string()).or_insert(0) += 1;
    }

    /// Reads the value under `(namespace, key)`.
    pub fn get(&self, namespace: &str, key: &str) -> Option<Vec<u8>> {
        self.inner.read().namespaces.get(namespace)?.get(key).cloned()
    }

    /// Deletes a key; returns whether it existed. Bumps the version if so.
    pub fn delete(&self, namespace: &str, key: &str) -> bool {
        let mut inner = self.inner.write();
        let existed = inner
            .namespaces
            .get_mut(namespace)
            .map(|ns| ns.remove(key).is_some())
            .unwrap_or(false);
        if existed {
            *inner.versions.entry(namespace.to_string()).or_insert(0) += 1;
        }
        existed
    }

    /// All keys in a namespace, sorted.
    pub fn keys(&self, namespace: &str) -> Vec<String> {
        self.inner
            .read()
            .namespaces
            .get(namespace)
            .map(|ns| ns.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of entries in a namespace.
    pub fn len(&self, namespace: &str) -> usize {
        self.inner.read().namespaces.get(namespace).map(|ns| ns.len()).unwrap_or(0)
    }

    /// Whether the namespace holds no entries.
    pub fn is_empty(&self, namespace: &str) -> bool {
        self.len(namespace) == 0
    }

    /// Monotonic version of a namespace: bumps on every write/delete.
    /// Pollers remember the last version they saw.
    pub fn version(&self, namespace: &str) -> u64 {
        self.inner.read().versions.get(namespace).copied().unwrap_or(0)
    }

    /// Reads every `(key, value)` in a namespace, sorted by key.
    pub fn scan(&self, namespace: &str) -> Vec<(String, Vec<u8>)> {
        self.inner
            .read()
            .namespaces
            .get(namespace)
            .map(|ns| ns.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn set_get_delete_round_trip() {
        let sdl = SharedDataLayer::new();
        sdl.set("mobiflow", "ue/1", b"record".to_vec());
        assert_eq!(sdl.get("mobiflow", "ue/1"), Some(b"record".to_vec()));
        assert!(sdl.delete("mobiflow", "ue/1"));
        assert_eq!(sdl.get("mobiflow", "ue/1"), None);
        assert!(!sdl.delete("mobiflow", "ue/1"));
    }

    #[test]
    fn namespaces_are_isolated() {
        let sdl = SharedDataLayer::new();
        sdl.set("a", "k", vec![1]);
        sdl.set("b", "k", vec![2]);
        assert_eq!(sdl.get("a", "k"), Some(vec![1]));
        assert_eq!(sdl.get("b", "k"), Some(vec![2]));
        assert_eq!(sdl.len("a"), 1);
    }

    #[test]
    fn versions_bump_on_mutation_only() {
        let sdl = SharedDataLayer::new();
        assert_eq!(sdl.version("ns"), 0);
        sdl.set("ns", "k", vec![]);
        assert_eq!(sdl.version("ns"), 1);
        let _ = sdl.get("ns", "k");
        let _ = sdl.keys("ns");
        assert_eq!(sdl.version("ns"), 1);
        sdl.delete("ns", "k");
        assert_eq!(sdl.version("ns"), 2);
        // Deleting a missing key does not bump.
        sdl.delete("ns", "k");
        assert_eq!(sdl.version("ns"), 2);
    }

    #[test]
    fn keys_and_scan_are_sorted() {
        let sdl = SharedDataLayer::new();
        sdl.set("ns", "b", vec![2]);
        sdl.set("ns", "a", vec![1]);
        sdl.set("ns", "c", vec![3]);
        assert_eq!(sdl.keys("ns"), vec!["a", "b", "c"]);
        let scan = sdl.scan("ns");
        assert_eq!(scan[0], ("a".to_string(), vec![1]));
        assert_eq!(scan[2], ("c".to_string(), vec![3]));
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        let sdl = SharedDataLayer::new();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let sdl = sdl.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        sdl.set("ns", &format!("{t}/{i}"), vec![t as u8]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sdl.len("ns"), 800);
        assert_eq!(sdl.version("ns"), 800);
    }
}
