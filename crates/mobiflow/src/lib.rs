//! # xsec-mobiflow
//!
//! The MOBIFLOW fine-grained security telemetry stream (Wen et al.,
//! EmergingWireless'22 — the paper's reference \[60\]), reproduced from
//! scratch: record schema, the semicolon-delimited wire encoding used by the
//! 5GSEC releases, extraction from raw F1AP/NGAP captures or from the
//! structured simulator event stream, and the Shared Data Layer (SDL) store
//! that xApps read it from.
//!
//! One [`UeMobiFlow`] record is produced per control message observed at the
//! RAN (paper §3.1):
//!
//! ```text
//! x_i = [t_i, m_i, p_1..p_k]   — timestamp, message, UE state parameters
//! ```
//!
//! The parameter set matches the paper's Table 1: RNTI, TMSI, SUPI (when
//! exposed), ciphering/integrity algorithms, and RRC establishment cause.
//!
//! [`BsMobiFlow`] aggregates per-interval base-station counters (connected
//! UEs, arrival rates, rejects) — the coarse view used for capacity-style
//! anomalies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod extract;
pub mod record;
pub mod sdl;

pub use codec::{decode_ue_record, encode_ue_record};
pub use extract::{
    extract_from_events, extract_from_events_at, extract_from_trace, BsAggregator,
    TelemetryStream,
};
pub use record::{BsMobiFlow, UeMobiFlow, MOBIFLOW_VERSION};
pub use sdl::SharedDataLayer;
