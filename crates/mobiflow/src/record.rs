//! MobiFlow record types.

use serde::{Deserialize, Serialize};
use xsec_proto::{Direction, MessageKind};
use xsec_types::{
    CellId, CipherAlg, EstablishmentCause, IntegrityAlg, ReleaseCause, Rnti, Supi, Timestamp,
    Tmsi,
};

/// Schema version tag carried by every encoded record.
pub const MOBIFLOW_VERSION: u32 = 2;

/// One per-message UE telemetry record — the `x_i` of the paper's time
/// series, with the Table 1 parameter set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UeMobiFlow {
    /// Monotonic record index within the stream.
    pub msg_id: u64,
    /// Observation timestamp.
    pub timestamp: Timestamp,
    /// Serving cell.
    pub cell: CellId,
    /// C-RNTI of the connection.
    pub rnti: Rnti,
    /// DU-local UE association id.
    pub du_ue_id: u32,
    /// Message direction.
    pub direction: Direction,
    /// The control message observed (`m_i`).
    pub msg: MessageKind,
    /// Temporary identity bound to the connection, if known.
    pub tmsi: Option<Tmsi>,
    /// Permanent identity, only when observed in plaintext in this message.
    pub supi: Option<Supi>,
    /// Active ciphering algorithm (None before security establishes).
    pub cipher_alg: Option<CipherAlg>,
    /// Active integrity algorithm.
    pub integrity_alg: Option<IntegrityAlg>,
    /// RRC establishment cause of the connection.
    pub establishment_cause: Option<EstablishmentCause>,
    /// Release cause, set only on `RRCRelease` records — abnormal teardown
    /// causes (congestion, network abort, radio-link failure) are a security
    /// state parameter in their own right.
    pub release_cause: Option<ReleaseCause>,
}

impl UeMobiFlow {
    /// Whether this record carries a plaintext permanent-identity exposure.
    pub fn exposes_supi(&self) -> bool {
        self.supi.is_some()
    }

    /// Whether the connection runs with null security (either algorithm).
    pub fn null_security(&self) -> bool {
        self.cipher_alg.map(CipherAlg::is_null).unwrap_or(false)
            || self.integrity_alg.map(IntegrityAlg::is_null).unwrap_or(false)
    }
}

/// Per-interval base-station aggregate record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BsMobiFlow {
    /// Interval start.
    pub window_start: Timestamp,
    /// Interval end (exclusive).
    pub window_end: Timestamp,
    /// Serving cell.
    pub cell: CellId,
    /// Control messages observed in the interval.
    pub message_count: u64,
    /// Distinct RNTIs active in the interval.
    pub distinct_rntis: u64,
    /// `RRCSetupRequest`s observed (connection arrival count).
    pub setup_requests: u64,
    /// `RRCReject`s observed (admission pressure).
    pub rejects: u64,
    /// Registrations accepted in the interval.
    pub registrations: u64,
}

impl BsMobiFlow {
    /// Connection arrival rate over the interval, per second.
    pub fn arrival_rate(&self) -> f64 {
        let span = self.window_end.saturating_since(self.window_start).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.setup_requests as f64 / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> UeMobiFlow {
        UeMobiFlow {
            msg_id: 1,
            timestamp: Timestamp(1000),
            cell: CellId(1),
            rnti: Rnti(0x4601),
            du_ue_id: 1,
            direction: Direction::Uplink,
            msg: MessageKind::RrcSetupRequest,
            tmsi: None,
            supi: None,
            cipher_alg: None,
            integrity_alg: None,
            establishment_cause: Some(EstablishmentCause::MoData),
            release_cause: None,
        }
    }

    #[test]
    fn exposure_and_null_security_predicates() {
        let mut r = record();
        assert!(!r.exposes_supi());
        assert!(!r.null_security());
        r.supi = Some(Supi::new(xsec_types::Plmn::TEST, 5));
        assert!(r.exposes_supi());
        r.cipher_alg = Some(CipherAlg::Nea2);
        r.integrity_alg = Some(IntegrityAlg::Nia0);
        assert!(r.null_security(), "null integrity alone counts");
    }

    #[test]
    fn arrival_rate_computation() {
        let bs = BsMobiFlow {
            window_start: Timestamp(0),
            window_end: Timestamp(2_000_000),
            cell: CellId(1),
            message_count: 100,
            distinct_rntis: 10,
            setup_requests: 30,
            rejects: 0,
            registrations: 10,
        };
        assert!((bs.arrival_rate() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn zero_length_window_has_zero_rate() {
        let bs = BsMobiFlow {
            window_start: Timestamp(5),
            window_end: Timestamp(5),
            cell: CellId(1),
            message_count: 0,
            distinct_rntis: 0,
            setup_requests: 9,
            rejects: 0,
            registrations: 0,
        };
        assert_eq!(bs.arrival_rate(), 0.0);
    }
}
