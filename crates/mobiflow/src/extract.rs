//! Telemetry extraction — the RIC agent's job.
//!
//! Two paths produce the same [`TelemetryStream`]:
//!
//! * [`extract_from_events`] reads the simulator's structured [`RanEvent`]s
//!   (fast path; also carries ground-truth labels for evaluation);
//! * [`extract_from_trace`] parses the raw F1AP/NGAP byte capture and
//!   *reconstructs* the per-connection state (security algorithms, TMSI,
//!   establishment cause) by replaying the messages — exactly what the
//!   paper's pipeline does to pcap streams. It carries no labels.
//!
//! The two paths agreeing on a full simulation run is one of the pipeline's
//! integration tests.

use crate::record::{BsMobiFlow, UeMobiFlow};
use std::collections::HashMap;
use xsec_netsim::TraceLog;
use xsec_proto::{Direction, F1apPdu, L3Message, MessageKind, NasMessage, NgapPdu, RrcMessage};
use xsec_ran::RanEvent;
use xsec_types::{
    CellId, CipherAlg, Duration, EstablishmentCause, IntegrityAlg, Result, Rnti, Tmsi,
    TrafficClass,
};

/// A labeled telemetry stream: `records[i]` has ground truth `labels[i]`.
#[derive(Debug, Clone, Default)]
pub struct TelemetryStream {
    /// The per-message records, in observation order.
    pub records: Vec<UeMobiFlow>,
    /// Ground-truth labels, parallel to `records`. All-benign when the
    /// stream was reconstructed from a raw capture.
    pub labels: Vec<TrafficClass>,
}

impl TelemetryStream {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates `(record, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&UeMobiFlow, TrafficClass)> {
        self.records.iter().zip(self.labels.iter().copied())
    }

    /// Count of attack-labeled records.
    pub fn attack_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_attack()).count()
    }
}

/// Builds the telemetry stream from structured simulator events.
pub fn extract_from_events(events: &[RanEvent]) -> TelemetryStream {
    extract_from_events_at(events, 0)
}

/// [`extract_from_events`] for an event *chunk*: record ids continue from
/// `first_msg_id` so a streaming driver extracting batch by batch produces
/// the same globally monotone `msg_id` sequence a one-shot extraction would.
pub fn extract_from_events_at(events: &[RanEvent], first_msg_id: u64) -> TelemetryStream {
    let mut stream = TelemetryStream::default();
    for (i, ev) in events.iter().enumerate() {
        stream.records.push(UeMobiFlow {
            msg_id: first_msg_id + i as u64,
            timestamp: ev.at,
            cell: ev.cell,
            rnti: ev.rnti,
            du_ue_id: ev.du_ue_id,
            direction: ev.direction,
            msg: ev.msg.kind(),
            tmsi: ev.tmsi,
            supi: ev.supi_exposed,
            cipher_alg: ev.cipher,
            integrity_alg: ev.integrity,
            establishment_cause: ev.establishment_cause,
            release_cause: match &ev.msg {
                L3Message::Rrc(RrcMessage::Release { cause }) => Some(*cause),
                _ => None,
            },
        });
        stream.labels.push(ev.label);
    }
    stream
}

/// Replay state per connection, reconstructed from the capture.
#[derive(Debug, Clone, Copy)]
struct ConnState {
    rnti: Rnti,
    cipher: Option<CipherAlg>,
    integrity: Option<IntegrityAlg>,
    cause: Option<EstablishmentCause>,
    tmsi: Option<Tmsi>,
}

impl Default for ConnState {
    fn default() -> Self {
        ConnState { rnti: Rnti(0), cipher: None, integrity: None, cause: None, tmsi: None }
    }
}

/// Builds the telemetry stream by parsing and replaying a raw capture.
///
/// # Errors
/// Fails on undecodable PDUs — a corrupt capture should be loud, not
/// silently half-parsed.
pub fn extract_from_trace(trace: &TraceLog) -> Result<TelemetryStream> {
    let mut stream = TelemetryStream::default();
    let mut conns: HashMap<u32, ConnState> = HashMap::new();

    for (i, rec) in trace.records().iter().enumerate() {
        let (conn, cell, msg, direction) = match rec.interface {
            "F1AP" => {
                let pdu = F1apPdu::decode(&rec.payload)?;
                let msg = pdu.unwrap_l3()?;
                let state = conns.entry(pdu.du_ue_id).or_default();
                state.rnti = pdu.rnti;
                (pdu.du_ue_id, pdu.cell, msg, direction_of(pdu.uplink))
            }
            "NGAP" => {
                let pdu = NgapPdu::decode(&rec.payload)?;
                let msg = pdu.unwrap_l3()?;
                (pdu.ran_ue_id as u32, CellId(1), msg, direction_of(pdu.uplink))
            }
            other => {
                return Err(xsec_types::XsecError::Codec(format!(
                    "unknown capture interface {other:?}"
                )))
            }
        };

        // Replay the message into the connection state *before* snapshotting
        // for fields set by this very message (cause), matching the
        // event-stream semantics where the snapshot is taken at the CU after
        // context creation/update.
        let state = conns.entry(conn).or_default();
        match &msg {
            L3Message::Rrc(RrcMessage::SetupRequest { cause, .. }) => {
                // A fresh connection starts clean.
                *state = ConnState { rnti: state.rnti, cause: Some(*cause), ..Default::default() };
            }
            L3Message::Nas(NasMessage::SecurityModeCommand { cipher, integrity, .. }) => {
                state.cipher = Some(*cipher);
                state.integrity = Some(*integrity);
            }
            L3Message::Nas(NasMessage::RegistrationAccept { new_tmsi }) => {
                state.tmsi = Some(*new_tmsi);
            }
            L3Message::Nas(NasMessage::ServiceRequest { tmsi }) => {
                state.tmsi = Some(*tmsi);
            }
            L3Message::Nas(NasMessage::RegistrationRequest {
                identity: xsec_proto::MobileIdentity::FiveGSTmsi(tmsi),
                ..
            }) => {
                state.tmsi = Some(*tmsi);
            }
            _ => {}
        }

        let supi = match &msg {
            L3Message::Nas(nas) => nas.disclosed_identity().and_then(|id| match id {
                xsec_proto::MobileIdentity::PlainSupi(supi) => Some(*supi),
                _ => None,
            }),
            _ => None,
        };

        stream.records.push(UeMobiFlow {
            msg_id: i as u64,
            timestamp: rec.at,
            cell,
            rnti: state.rnti,
            du_ue_id: conn,
            direction,
            msg: msg.kind(),
            tmsi: state.tmsi,
            supi,
            cipher_alg: state.cipher,
            integrity_alg: state.integrity,
            establishment_cause: state.cause,
            release_cause: match &msg {
                L3Message::Rrc(RrcMessage::Release { cause }) => Some(*cause),
                _ => None,
            },
        });
        stream.labels.push(TrafficClass::Benign); // captures carry no truth
    }
    Ok(stream)
}

fn direction_of(uplink: bool) -> Direction {
    if uplink {
        Direction::Uplink
    } else {
        Direction::Downlink
    }
}

/// Aggregates UE records into per-interval [`BsMobiFlow`] windows.
#[derive(Debug)]
pub struct BsAggregator {
    interval: Duration,
}

impl BsAggregator {
    /// Aggregator with the given window size.
    pub fn new(interval: Duration) -> Self {
        assert!(interval.as_micros() > 0, "interval must be positive");
        BsAggregator { interval }
    }

    /// Produces one BS record per interval covering the stream's time span.
    pub fn aggregate(&self, records: &[UeMobiFlow]) -> Vec<BsMobiFlow> {
        let Some(first) = records.first() else { return Vec::new() };
        let start = first.timestamp;
        let mut windows: Vec<BsMobiFlow> = Vec::new();
        for r in records {
            let idx =
                (r.timestamp.saturating_since(start).as_micros() / self.interval.as_micros()) as usize;
            while windows.len() <= idx {
                let n = windows.len() as u64;
                windows.push(BsMobiFlow {
                    window_start: start + Duration::from_micros(n * self.interval.as_micros()),
                    window_end: start
                        + Duration::from_micros((n + 1) * self.interval.as_micros()),
                    cell: r.cell,
                    message_count: 0,
                    distinct_rntis: 0,
                    setup_requests: 0,
                    rejects: 0,
                    registrations: 0,
                });
            }
            let w = &mut windows[idx];
            w.message_count += 1;
            match r.msg {
                MessageKind::RrcSetupRequest => w.setup_requests += 1,
                MessageKind::RrcReject => w.rejects += 1,
                MessageKind::NasRegistrationAccept => w.registrations += 1,
                _ => {}
            }
        }
        // Second pass for distinct RNTIs per window.
        for w in &mut windows {
            let mut rntis: Vec<u16> = records
                .iter()
                .filter(|r| r.timestamp >= w.window_start && r.timestamp < w.window_end)
                .map(|r| r.rnti.0)
                .collect();
            rntis.sort_unstable();
            rntis.dedup();
            w.distinct_rntis = rntis.len() as u64;
        }
        windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_ran::scenario::{Scenario, ScenarioConfig};
    use xsec_ran::sim::SimConfig;

    fn run_small(seed: u64) -> xsec_ran::sim::SimReport {
        let config = ScenarioConfig {
            sim: SimConfig {
                seed,
                channel: xsec_netsim::ChannelConfig::ideal(),
                horizon: xsec_types::Duration::from_secs(60),
                ..SimConfig::default()
            },
            benign_sessions: 12,
            ..ScenarioConfig::default()
        };
        Scenario::new(config).build().run()
    }

    #[test]
    fn event_extraction_preserves_counts_and_order() {
        let report = run_small(1);
        let stream = extract_from_events(&report.events);
        assert_eq!(stream.len(), report.events.len());
        assert!(stream.records.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        assert!(stream.records.iter().enumerate().all(|(i, r)| r.msg_id == i as u64));
        assert_eq!(stream.attack_count(), 0);
    }

    #[test]
    fn trace_extraction_matches_event_extraction() {
        let report = run_small(2);
        let from_events = extract_from_events(&report.events);
        let from_trace = extract_from_trace(&report.trace).unwrap();
        assert_eq!(from_events.len(), from_trace.len());
        for (a, b) in from_events.records.iter().zip(&from_trace.records) {
            assert_eq!(a.msg, b.msg, "message kinds diverge at msg_id {}", a.msg_id);
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.rnti, b.rnti, "rnti diverges at {}: {a:?} vs {b:?}", a.msg_id);
            assert_eq!(a.direction, b.direction);
            assert_eq!(a.cipher_alg, b.cipher_alg, "cipher diverges at {}", a.msg_id);
            assert_eq!(a.integrity_alg, b.integrity_alg);
            assert_eq!(a.supi, b.supi);
        }
    }

    #[test]
    fn trace_extraction_rejects_corrupt_capture() {
        let report = run_small(3);
        let mut trace = xsec_netsim::TraceLog::new();
        let mut rec = report.trace.records()[0].clone();
        rec.payload.truncate(3);
        trace.push(rec);
        assert!(extract_from_trace(&trace).is_err());
    }

    #[test]
    fn bs_aggregation_counts_setups_and_windows() {
        let report = run_small(4);
        let stream = extract_from_events(&report.events);
        let agg = BsAggregator::new(Duration::from_millis(500));
        let windows = agg.aggregate(&stream.records);
        assert!(!windows.is_empty());
        let total_setups: u64 = windows.iter().map(|w| w.setup_requests).sum();
        let expected = stream
            .records
            .iter()
            .filter(|r| r.msg == MessageKind::RrcSetupRequest)
            .count() as u64;
        assert_eq!(total_setups, expected);
        let total_msgs: u64 = windows.iter().map(|w| w.message_count).sum();
        assert_eq!(total_msgs, stream.len() as u64);
        // Windows tile the time axis.
        for pair in windows.windows(2) {
            assert_eq!(pair[0].window_end, pair[1].window_start);
        }
    }

    #[test]
    fn empty_streams_are_handled() {
        let agg = BsAggregator::new(Duration::from_millis(100));
        assert!(agg.aggregate(&[]).is_empty());
        let empty = extract_from_events(&[]);
        assert!(empty.is_empty());
    }
}
