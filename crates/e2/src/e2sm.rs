//! The extended E2SM-KPM service model carrying security telemetry.
//!
//! The paper extends the O-RAN KPM (key performance measurement) service
//! model so the RIC agent can "report security telemetry via the E2 report
//! operation per time interval, where the telemetry can be encoded as
//! (key, value) data" (§3.1). [`KpmIndication`] is that container: a report
//! window plus a list of UTF-8 key/value pairs; MobiFlow records ride as
//! `("mf/<msg_id>", "<semicolon record>")` entries.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use xsec_mobiflow::{decode_ue_record, encode_ue_record, UeMobiFlow};
use xsec_types::{CellId, Result, Timestamp, XsecError};

/// RAN function id of the MobiFlow security service model (a private id
/// outside the ranges the O-RAN Alliance reserves for its own models).
pub const RAN_FUNCTION_MOBIFLOW: u32 = 142;

fn err(msg: impl Into<String>) -> XsecError {
    XsecError::Codec(msg.into())
}

/// One report-interval indication payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KpmIndication {
    /// Producing cell.
    pub cell: CellId,
    /// Report window start.
    pub window_start: Timestamp,
    /// Report window end.
    pub window_end: Timestamp,
    /// (key, value) telemetry entries.
    pub entries: Vec<(String, String)>,
}

impl KpmIndication {
    /// Builds an indication carrying MobiFlow records.
    pub fn from_records(
        cell: CellId,
        window_start: Timestamp,
        window_end: Timestamp,
        records: &[UeMobiFlow],
    ) -> Self {
        KpmIndication {
            cell,
            window_start,
            window_end,
            entries: records
                .iter()
                .map(|r| (format!("mf/{}", r.msg_id), encode_ue_record(r)))
                .collect(),
        }
    }

    /// Extracts the MobiFlow records carried by this indication, in entry
    /// order. Non-`mf/` entries are skipped; malformed `mf/` values error.
    pub fn mobiflow_records(&self) -> Result<Vec<UeMobiFlow>> {
        self.entries
            .iter()
            .filter(|(k, _)| k.starts_with("mf/"))
            .map(|(_, v)| decode_ue_record(v))
            .collect()
    }

    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u32(self.cell.0);
        buf.put_u64(self.window_start.as_micros());
        buf.put_u64(self.window_end.as_micros());
        buf.put_u32(self.entries.len() as u32);
        for (k, v) in &self.entries {
            put_str(&mut buf, k);
            put_str(&mut buf, v);
        }
        buf.to_vec()
    }

    /// Decodes a payload.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut buf = Bytes::copy_from_slice(bytes);
        if buf.remaining() < 24 {
            return Err(err("truncated KPM header"));
        }
        let cell = CellId(buf.get_u32());
        let window_start = Timestamp(buf.get_u64());
        let window_end = Timestamp(buf.get_u64());
        let n = buf.get_u32() as usize;
        let mut entries = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let k = get_str(&mut buf)?;
            let v = get_str(&mut buf)?;
            entries.push((k, v));
        }
        if buf.has_remaining() {
            return Err(err(format!("{} trailing bytes", buf.remaining())));
        }
        Ok(KpmIndication { cell, window_start, window_end, entries })
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 2 {
        return Err(err("truncated string length"));
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(err("truncated string body"));
    }
    String::from_utf8(buf.copy_to_bytes(len).to_vec()).map_err(|e| err(format!("bad utf8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xsec_proto::{Direction, MessageKind};
    use xsec_types::Rnti;

    fn record(id: u64) -> UeMobiFlow {
        UeMobiFlow {
            msg_id: id,
            timestamp: Timestamp(id * 100),
            cell: CellId(1),
            rnti: Rnti(0x4601),
            du_ue_id: 1,
            direction: Direction::Uplink,
            msg: MessageKind::RrcSetupRequest,
            tmsi: None,
            supi: None,
            cipher_alg: None,
            integrity_alg: None,
            establishment_cause: None,
            release_cause: None,
        }
    }

    #[test]
    fn records_round_trip_through_indication() {
        let records: Vec<_> = (0..5).map(record).collect();
        let ind = KpmIndication::from_records(CellId(1), Timestamp(0), Timestamp(1000), &records);
        let bytes = ind.encode();
        let back = KpmIndication::decode(&bytes).unwrap();
        assert_eq!(back, ind);
        assert_eq!(back.mobiflow_records().unwrap(), records);
    }

    #[test]
    fn non_mobiflow_entries_are_skipped() {
        let mut ind =
            KpmIndication::from_records(CellId(1), Timestamp(0), Timestamp(1), &[record(1)]);
        ind.entries.push(("kpm/prb_util".into(), "0.7".into()));
        assert_eq!(ind.mobiflow_records().unwrap().len(), 1);
    }

    #[test]
    fn malformed_mobiflow_value_errors() {
        let ind = KpmIndication {
            cell: CellId(1),
            window_start: Timestamp(0),
            window_end: Timestamp(1),
            entries: vec![("mf/0".into(), "garbage".into())],
        };
        assert!(ind.mobiflow_records().is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let ind = KpmIndication::from_records(CellId(1), Timestamp(0), Timestamp(1), &[record(1)]);
        let bytes = ind.encode();
        for cut in 0..bytes.len() {
            assert!(KpmIndication::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    proptest! {
        #[test]
        fn prop_entries_round_trip(
            entries in proptest::collection::vec(("[a-z/0-9]{0,20}", "[ -~]{0,40}"), 0..16)
        ) {
            let ind = KpmIndication {
                cell: CellId(3),
                window_start: Timestamp(1),
                window_end: Timestamp(2),
                entries,
            };
            prop_assert_eq!(KpmIndication::decode(&ind.encode()).unwrap(), ind);
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = KpmIndication::decode(&bytes);
        }
    }
}
