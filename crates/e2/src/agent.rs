//! The RAN-side RIC agent.
//!
//! The paper extends the OAI CU with "an E2 RIC agent that extracts security
//! telemetry and handles communication with the nRT-RIC's E2 interface"
//! (§4). This is that component: the instrumented CU pushes MobiFlow records
//! in; the agent answers E2 setup/subscription traffic and ships buffered
//! records as periodic `RIC Indication`s, one report per subscription per
//! elapsed period.

use crate::e2ap::{E2apPdu, RicRequestId};
use crate::e2sm::{KpmIndication, RAN_FUNCTION_MOBIFLOW};
use crate::transport::{E2Transport, SendOutcome};
use std::collections::BTreeMap;
use xsec_mobiflow::UeMobiFlow;
use xsec_obs::{Counter, FlightEvent, FlightRecorder, FlightRing, Obs, TraceStage};
use xsec_types::{CellId, Duration, GnbId, Result, Timestamp, XsecError};

/// Agent identity/configuration.
#[derive(Debug, Clone)]
pub struct RicAgentConfig {
    /// The gNB this agent instruments.
    pub gnb_id: GnbId,
    /// The reporting cell.
    pub cell: CellId,
}

#[derive(Debug)]
struct Subscription {
    period: Duration,
    next_report_at: Timestamp,
    cursor: usize,
    sequence: u64,
}

/// Registry-backed agent counters (metric names `xsec_e2_*_total`).
#[derive(Debug, Clone)]
struct AgentMetrics {
    records_pushed: Counter,
    indications_sent: Counter,
    controls_received: Counter,
    egress_dropped: Counter,
}

impl AgentMetrics {
    fn register(obs: &Obs) -> Self {
        AgentMetrics {
            records_pushed: obs.counter("xsec_e2_records_pushed_total", &[]),
            indications_sent: obs.counter("xsec_e2_indications_sent_total", &[]),
            controls_received: obs.counter("xsec_e2_controls_received_total", &[]),
            egress_dropped: obs.counter("xsec_e2_egress_dropped_total", &[]),
        }
    }
}

/// The agent state machine over a transport.
pub struct RicAgent<T: E2Transport> {
    config: RicAgentConfig,
    transport: T,
    setup_complete: bool,
    subscriptions: BTreeMap<RicRequestId, Subscription>,
    log: Vec<UeMobiFlow>,
    control_inbox: Vec<Vec<u8>>,
    metrics: AgentMetrics,
    /// The causal flight recorder: every pushed record opens a trace here
    /// (keyed by `msg_id`), which downstream stages recover and extend.
    recorder: FlightRecorder,
    ring: FlightRing,
}

impl<T: E2Transport> RicAgent<T> {
    /// Creates the agent and immediately sends the E2 Setup Request, which
    /// announces both the supported RAN functions and the served cell.
    pub fn new(config: RicAgentConfig, mut transport: T) -> Result<Self> {
        let setup = E2apPdu::SetupRequest {
            gnb_id: config.gnb_id,
            ran_functions: vec![RAN_FUNCTION_MOBIFLOW],
            cells: vec![config.cell],
        };
        transport.send(&setup.encode())?;
        let recorder = FlightRecorder::new();
        let ring = recorder.ring();
        Ok(RicAgent {
            config,
            transport,
            setup_complete: false,
            subscriptions: BTreeMap::new(),
            log: Vec::new(),
            control_inbox: Vec::new(),
            metrics: AgentMetrics::register(&Obs::new()),
            recorder,
            ring,
        })
    }

    /// Re-homes the agent's counters into `obs` (accumulated counts are
    /// carried over) and its trace root into `obs`'s flight recorder.
    pub fn attach_obs(&mut self, obs: &Obs) {
        let metrics = AgentMetrics::register(obs);
        metrics.records_pushed.add(self.metrics.records_pushed.get());
        metrics.indications_sent.add(self.metrics.indications_sent.get());
        metrics.controls_received.add(self.metrics.controls_received.get());
        metrics.egress_dropped.add(self.metrics.egress_dropped.get());
        self.metrics = metrics;
        self.recorder = obs.recorder.clone();
        self.ring = self.recorder.ring();
    }

    /// Whether the RIC accepted our function.
    pub fn is_setup(&self) -> bool {
        self.setup_complete
    }

    /// Frames this agent dropped on a full egress queue (also counted in
    /// `xsec_e2_egress_dropped_total`).
    pub fn egress_dropped(&self) -> u64 {
        self.transport.dropped_frames()
    }

    /// Sends one frame, counting (never blocking on) an egress drop.
    fn send_counted(&mut self, frame: &[u8]) -> Result<()> {
        if self.transport.send(frame)? == SendOutcome::Dropped {
            self.metrics.egress_dropped.inc();
        }
        Ok(())
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Buffered records not yet shipped to every subscriber.
    pub fn backlog(&self) -> usize {
        let min_cursor =
            self.subscriptions.values().map(|s| s.cursor).min().unwrap_or(self.log.len());
        self.log.len() - min_cursor
    }

    /// The CU instrumentation hook: one record per observed message. Each
    /// record roots a causal trace (keyed by its `msg_id`) and logs the
    /// ingest span into the flight recorder.
    pub fn push_record(&mut self, record: UeMobiFlow) {
        self.metrics.records_pushed.inc();
        let trace = self.recorder.begin_trace(record.msg_id);
        self.ring.record(FlightEvent {
            trace,
            stage: TraceStage::Ingest,
            at_us: record.timestamp.as_micros(),
            a: u64::from(record.du_ue_id),
            b: record.msg_id,
        });
        self.log.push(record);
    }

    /// Control payloads received from the RIC (closed-loop actions), drained.
    pub fn take_control_requests(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.control_inbox)
    }

    /// Drives the agent: handles incoming PDUs and flushes due reports.
    pub fn poll(&mut self, now: Timestamp) -> Result<()> {
        while let Some(frame) = self.transport.try_recv()? {
            let pdu = E2apPdu::decode(&frame)?;
            self.handle(now, pdu)?;
        }
        self.flush_reports(now)
    }

    fn handle(&mut self, now: Timestamp, pdu: E2apPdu) -> Result<()> {
        match pdu {
            E2apPdu::SetupResponse { accepted } => {
                if accepted.contains(&RAN_FUNCTION_MOBIFLOW) {
                    self.setup_complete = true;
                    Ok(())
                } else {
                    Err(XsecError::Ric("RIC rejected the MobiFlow function".into()))
                }
            }
            E2apPdu::SubscriptionRequest { request_id, ran_function, report_period_ms, .. } => {
                let accepted = ran_function == RAN_FUNCTION_MOBIFLOW && report_period_ms > 0;
                if accepted {
                    let period = Duration::from_millis(u64::from(report_period_ms));
                    self.subscriptions.insert(
                        request_id,
                        Subscription {
                            period,
                            next_report_at: now + period,
                            // New subscribers start from "now": they see
                            // records logged after the subscription.
                            cursor: self.log.len(),
                            sequence: 0,
                        },
                    );
                }
                self.send_counted(&E2apPdu::SubscriptionResponse { request_id, accepted }.encode())
            }
            E2apPdu::SubscriptionDeleteRequest { request_id } => {
                self.subscriptions.remove(&request_id);
                Ok(())
            }
            E2apPdu::ControlRequest { ran_function, payload } => {
                let success = ran_function == RAN_FUNCTION_MOBIFLOW;
                if success {
                    self.metrics.controls_received.inc();
                    self.control_inbox.push(payload);
                }
                self.send_counted(&E2apPdu::ControlAck { ran_function, success }.encode())
            }
            // PDUs that only the RIC side should receive are protocol noise.
            other => Err(XsecError::Ric(format!("unexpected PDU at agent: {other:?}"))),
        }
    }

    fn flush_reports(&mut self, now: Timestamp) -> Result<()> {
        let cell = self.config.cell;
        let log_len = self.log.len();
        let mut outgoing = Vec::new();
        for (request_id, sub) in self.subscriptions.iter_mut() {
            while sub.next_report_at <= now {
                let window_start =
                    sub.next_report_at.as_micros().saturating_sub(sub.period.as_micros());
                let records = &self.log[sub.cursor..log_len];
                let indication = KpmIndication::from_records(
                    cell,
                    Timestamp(window_start),
                    sub.next_report_at,
                    records,
                );
                outgoing.push(
                    E2apPdu::Indication {
                        request_id: *request_id,
                        ran_function: RAN_FUNCTION_MOBIFLOW,
                        sequence: sub.sequence,
                        payload: indication.encode(),
                    }
                    .encode(),
                );
                sub.sequence += 1;
                sub.cursor = log_len;
                sub.next_report_at += sub.period;
            }
        }
        for frame in outgoing {
            self.metrics.indications_sent.inc();
            self.send_counted(&frame)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{in_proc_pair, InProcTransport};
    use xsec_proto::{Direction, MessageKind};
    use xsec_types::Rnti;

    fn record(id: u64, ts: u64) -> UeMobiFlow {
        UeMobiFlow {
            msg_id: id,
            timestamp: Timestamp(ts),
            cell: CellId(1),
            rnti: Rnti(1),
            du_ue_id: 1,
            direction: Direction::Uplink,
            msg: MessageKind::RrcSetupRequest,
            tmsi: None,
            supi: None,
            cipher_alg: None,
            integrity_alg: None,
            establishment_cause: None,
            release_cause: None,
        }
    }

    fn agent() -> (RicAgent<InProcTransport>, InProcTransport) {
        let (agent_end, mut ric_end) = in_proc_pair();
        let agent = RicAgent::new(
            RicAgentConfig { gnb_id: GnbId(7), cell: CellId(1) },
            agent_end,
        )
        .unwrap();
        // The setup request is already on the wire.
        let frame = ric_end.try_recv().unwrap().unwrap();
        assert!(matches!(
            E2apPdu::decode(&frame).unwrap(),
            E2apPdu::SetupRequest { gnb_id: GnbId(7), .. }
        ));
        (agent, ric_end)
    }

    fn complete_setup(agent: &mut RicAgent<InProcTransport>, ric: &mut InProcTransport) {
        ric.send(&E2apPdu::SetupResponse { accepted: vec![RAN_FUNCTION_MOBIFLOW] }.encode())
            .unwrap();
        agent.poll(Timestamp(0)).unwrap();
        assert!(agent.is_setup());
    }

    fn subscribe(
        agent: &mut RicAgent<InProcTransport>,
        ric: &mut InProcTransport,
        period_ms: u32,
    ) -> RicRequestId {
        let request_id = RicRequestId { requestor: 1, instance: 1 };
        ric.send(
            &E2apPdu::SubscriptionRequest {
                request_id,
                ran_function: RAN_FUNCTION_MOBIFLOW,
                report_period_ms: period_ms,
                actions: vec![crate::e2ap::RicAction::Report],
            }
            .encode(),
        )
        .unwrap();
        agent.poll(Timestamp(0)).unwrap();
        let frame = ric.try_recv().unwrap().unwrap();
        assert_eq!(
            E2apPdu::decode(&frame).unwrap(),
            E2apPdu::SubscriptionResponse { request_id, accepted: true }
        );
        request_id
    }

    #[test]
    fn setup_handshake() {
        let (mut agent, mut ric) = agent();
        complete_setup(&mut agent, &mut ric);
    }

    #[test]
    fn setup_rejection_is_an_error() {
        let (mut agent, mut ric) = agent();
        ric.send(&E2apPdu::SetupResponse { accepted: vec![] }.encode()).unwrap();
        assert!(agent.poll(Timestamp(0)).is_err());
    }

    #[test]
    fn periodic_reports_carry_the_buffered_records() {
        let (mut agent, mut ric) = agent();
        complete_setup(&mut agent, &mut ric);
        let request_id = subscribe(&mut agent, &mut ric, 100);

        agent.push_record(record(0, 10_000));
        agent.push_record(record(1, 20_000));
        // Before the period elapses: nothing.
        agent.poll(Timestamp(50_000)).unwrap();
        assert_eq!(ric.try_recv().unwrap(), None);
        // Period elapsed: one indication with both records.
        agent.poll(Timestamp(100_000)).unwrap();
        let frame = ric.try_recv().unwrap().unwrap();
        let E2apPdu::Indication { request_id: rid, sequence, payload, .. } =
            E2apPdu::decode(&frame).unwrap()
        else {
            panic!("expected indication");
        };
        assert_eq!(rid, request_id);
        assert_eq!(sequence, 0);
        let kpm = KpmIndication::decode(&payload).unwrap();
        assert_eq!(kpm.mobiflow_records().unwrap().len(), 2);
        assert_eq!(agent.backlog(), 0);
    }

    #[test]
    fn records_are_not_resent() {
        let (mut agent, mut ric) = agent();
        complete_setup(&mut agent, &mut ric);
        subscribe(&mut agent, &mut ric, 100);
        agent.push_record(record(0, 10_000));
        agent.poll(Timestamp(100_000)).unwrap();
        let _ = ric.try_recv().unwrap().unwrap();
        // Next period with no new records: an empty indication.
        agent.poll(Timestamp(200_000)).unwrap();
        let frame = ric.try_recv().unwrap().unwrap();
        let E2apPdu::Indication { payload, sequence, .. } = E2apPdu::decode(&frame).unwrap()
        else {
            panic!("expected indication");
        };
        assert_eq!(sequence, 1);
        assert!(KpmIndication::decode(&payload).unwrap().mobiflow_records().unwrap().is_empty());
    }

    #[test]
    fn subscription_delete_stops_reports() {
        let (mut agent, mut ric) = agent();
        complete_setup(&mut agent, &mut ric);
        let request_id = subscribe(&mut agent, &mut ric, 100);
        ric.send(&E2apPdu::SubscriptionDeleteRequest { request_id }.encode()).unwrap();
        agent.poll(Timestamp(0)).unwrap();
        assert_eq!(agent.subscription_count(), 0);
        agent.push_record(record(0, 10));
        agent.poll(Timestamp(500_000)).unwrap();
        assert_eq!(ric.try_recv().unwrap(), None);
    }

    #[test]
    fn wrong_function_subscription_is_refused() {
        let (mut agent, mut ric) = agent();
        complete_setup(&mut agent, &mut ric);
        let request_id = RicRequestId { requestor: 9, instance: 9 };
        ric.send(
            &E2apPdu::SubscriptionRequest {
                request_id,
                ran_function: 999,
                report_period_ms: 100,
                actions: vec![],
            }
            .encode(),
        )
        .unwrap();
        agent.poll(Timestamp(0)).unwrap();
        let frame = ric.try_recv().unwrap().unwrap();
        assert_eq!(
            E2apPdu::decode(&frame).unwrap(),
            E2apPdu::SubscriptionResponse { request_id, accepted: false }
        );
    }

    #[test]
    fn control_requests_reach_the_inbox_and_are_acked() {
        let (mut agent, mut ric) = agent();
        complete_setup(&mut agent, &mut ric);
        ric.send(
            &E2apPdu::ControlRequest {
                ran_function: RAN_FUNCTION_MOBIFLOW,
                payload: vec![9, 9],
            }
            .encode(),
        )
        .unwrap();
        agent.poll(Timestamp(0)).unwrap();
        assert_eq!(agent.take_control_requests(), vec![vec![9, 9]]);
        let frame = ric.try_recv().unwrap().unwrap();
        assert_eq!(
            E2apPdu::decode(&frame).unwrap(),
            E2apPdu::ControlAck { ran_function: RAN_FUNCTION_MOBIFLOW, success: true }
        );
    }

    #[test]
    fn multiple_subscribers_get_independent_streams() {
        let (mut agent, mut ric) = agent();
        complete_setup(&mut agent, &mut ric);
        subscribe(&mut agent, &mut ric, 100);
        // Second subscriber with a different id and period.
        let rid2 = RicRequestId { requestor: 2, instance: 1 };
        ric.send(
            &E2apPdu::SubscriptionRequest {
                request_id: rid2,
                ran_function: RAN_FUNCTION_MOBIFLOW,
                report_period_ms: 200,
                actions: vec![crate::e2ap::RicAction::Report],
            }
            .encode(),
        )
        .unwrap();
        agent.poll(Timestamp(0)).unwrap();
        let _ = ric.try_recv().unwrap().unwrap(); // sub response

        agent.push_record(record(0, 1));
        agent.poll(Timestamp(200_000)).unwrap();
        // Subscriber 1 gets two reports (t=100ms, t=200ms), subscriber 2 one.
        let mut indications = Vec::new();
        while let Some(frame) = ric.try_recv().unwrap() {
            indications.push(E2apPdu::decode(&frame).unwrap());
        }
        let count = indications
            .iter()
            .filter(|p| matches!(p, E2apPdu::Indication { .. }))
            .count();
        assert_eq!(count, 3, "got {indications:?}");
    }
}
