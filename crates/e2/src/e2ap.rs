//! E2 Application Protocol PDUs and their codec.
//!
//! The subset of E2AP the 6G-XSec control loop uses: setup, subscription
//! management, indications (report primitive), and control. PDUs encode to a
//! tag byte plus fields; streams frame them with the shared length-prefix
//! framing from `xsec-proto`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use xsec_types::{CellId, GnbId, Result, XsecError};

fn err(msg: impl Into<String>) -> XsecError {
    XsecError::Codec(msg.into())
}

/// Identifies one xApp's subscription (requestor, instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RicRequestId {
    /// The requesting xApp's id.
    pub requestor: u16,
    /// Instance number within the requestor.
    pub instance: u16,
}

/// The E2 action primitives an xApp can subscribe with (E2AP §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RicAction {
    /// Report: the RAN sends indications on the trigger.
    Report,
    /// Insert: the RAN pauses and asks the RIC for a decision.
    Insert,
    /// Policy: the RAN applies a standing rule autonomously.
    Policy,
}

impl RicAction {
    fn code(self) -> u8 {
        match self {
            RicAction::Report => 0,
            RicAction::Insert => 1,
            RicAction::Policy => 2,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(RicAction::Report),
            1 => Some(RicAction::Insert),
            2 => Some(RicAction::Policy),
            _ => None,
        }
    }
}

/// An E2AP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum E2apPdu {
    /// RAN → RIC: announce supported RAN functions and served cells.
    SetupRequest {
        /// The announcing gNB.
        gnb_id: GnbId,
        /// Supported RAN function ids (service models).
        ran_functions: Vec<u32>,
        /// Cells this gNB serves (E2AP carries the served-cell list in the
        /// setup; the RIC uses it to route control actions to the owning
        /// agent).
        cells: Vec<CellId>,
    },
    /// RIC → RAN: which functions were accepted.
    SetupResponse {
        /// Accepted RAN function ids.
        accepted: Vec<u32>,
    },
    /// RIC → RAN: subscribe to a function with a report trigger.
    SubscriptionRequest {
        /// Subscription identity.
        request_id: RicRequestId,
        /// Target RAN function.
        ran_function: u32,
        /// Report trigger period in milliseconds.
        report_period_ms: u32,
        /// Requested actions.
        actions: Vec<RicAction>,
    },
    /// RAN → RIC: subscription outcome.
    SubscriptionResponse {
        /// Subscription identity.
        request_id: RicRequestId,
        /// Whether the subscription was admitted.
        accepted: bool,
    },
    /// RIC → RAN: cancel a subscription.
    SubscriptionDeleteRequest {
        /// Subscription identity.
        request_id: RicRequestId,
    },
    /// RAN → RIC: telemetry report (the report primitive).
    Indication {
        /// Subscription this indication answers.
        request_id: RicRequestId,
        /// Producing RAN function.
        ran_function: u32,
        /// Monotonic sequence number per subscription.
        sequence: u64,
        /// Service-model-specific payload (E2SM encoded).
        payload: Vec<u8>,
    },
    /// RIC → RAN: a control action (the control primitive).
    ControlRequest {
        /// Target RAN function.
        ran_function: u32,
        /// Service-model-specific control payload.
        payload: Vec<u8>,
    },
    /// RAN → RIC: control acknowledgement.
    ControlAck {
        /// Target RAN function.
        ran_function: u32,
        /// Whether the action was applied.
        success: bool,
    },
}

impl E2apPdu {
    /// Encodes the PDU to bytes (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            E2apPdu::SetupRequest { gnb_id, ran_functions, cells } => {
                buf.put_u8(0);
                buf.put_u32(gnb_id.0);
                put_u32_list(&mut buf, ran_functions);
                let cell_ids: Vec<u32> = cells.iter().map(|c| c.0).collect();
                put_u32_list(&mut buf, &cell_ids);
            }
            E2apPdu::SetupResponse { accepted } => {
                buf.put_u8(1);
                put_u32_list(&mut buf, accepted);
            }
            E2apPdu::SubscriptionRequest { request_id, ran_function, report_period_ms, actions } => {
                buf.put_u8(2);
                put_request_id(&mut buf, request_id);
                buf.put_u32(*ran_function);
                buf.put_u32(*report_period_ms);
                buf.put_u8(actions.len() as u8);
                for a in actions {
                    buf.put_u8(a.code());
                }
            }
            E2apPdu::SubscriptionResponse { request_id, accepted } => {
                buf.put_u8(3);
                put_request_id(&mut buf, request_id);
                buf.put_u8(*accepted as u8);
            }
            E2apPdu::SubscriptionDeleteRequest { request_id } => {
                buf.put_u8(4);
                put_request_id(&mut buf, request_id);
            }
            E2apPdu::Indication { request_id, ran_function, sequence, payload } => {
                buf.put_u8(5);
                put_request_id(&mut buf, request_id);
                buf.put_u32(*ran_function);
                buf.put_u64(*sequence);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload);
            }
            E2apPdu::ControlRequest { ran_function, payload } => {
                buf.put_u8(6);
                buf.put_u32(*ran_function);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload);
            }
            E2apPdu::ControlAck { ran_function, success } => {
                buf.put_u8(7);
                buf.put_u32(*ran_function);
                buf.put_u8(*success as u8);
            }
        }
        buf.to_vec()
    }

    /// Decodes a PDU from bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut buf = Bytes::copy_from_slice(bytes);
        if !buf.has_remaining() {
            return Err(err("empty E2AP PDU"));
        }
        let tag = buf.get_u8();
        let pdu = match tag {
            0 => {
                need(&buf, 4, "gnb id")?;
                let gnb_id = GnbId(buf.get_u32());
                let ran_functions = get_u32_list(&mut buf)?;
                let cells = get_u32_list(&mut buf)?.into_iter().map(CellId).collect();
                E2apPdu::SetupRequest { gnb_id, ran_functions, cells }
            }
            1 => E2apPdu::SetupResponse { accepted: get_u32_list(&mut buf)? },
            2 => {
                let request_id = get_request_id(&mut buf)?;
                need(&buf, 9, "subscription body")?;
                let ran_function = buf.get_u32();
                let report_period_ms = buf.get_u32();
                let n = buf.get_u8() as usize;
                need(&buf, n, "actions")?;
                let mut actions = Vec::with_capacity(n);
                for _ in 0..n {
                    let code = buf.get_u8();
                    actions.push(
                        RicAction::from_code(code)
                            .ok_or_else(|| err(format!("bad action code {code}")))?,
                    );
                }
                E2apPdu::SubscriptionRequest { request_id, ran_function, report_period_ms, actions }
            }
            3 => {
                let request_id = get_request_id(&mut buf)?;
                need(&buf, 1, "accepted flag")?;
                E2apPdu::SubscriptionResponse { request_id, accepted: buf.get_u8() != 0 }
            }
            4 => E2apPdu::SubscriptionDeleteRequest { request_id: get_request_id(&mut buf)? },
            5 => {
                let request_id = get_request_id(&mut buf)?;
                need(&buf, 16, "indication header")?;
                let ran_function = buf.get_u32();
                let sequence = buf.get_u64();
                let len = buf.get_u32() as usize;
                need(&buf, len, "indication payload")?;
                E2apPdu::Indication {
                    request_id,
                    ran_function,
                    sequence,
                    payload: buf.copy_to_bytes(len).to_vec(),
                }
            }
            6 => {
                need(&buf, 8, "control header")?;
                let ran_function = buf.get_u32();
                let len = buf.get_u32() as usize;
                need(&buf, len, "control payload")?;
                E2apPdu::ControlRequest { ran_function, payload: buf.copy_to_bytes(len).to_vec() }
            }
            7 => {
                need(&buf, 5, "control ack")?;
                E2apPdu::ControlAck { ran_function: buf.get_u32(), success: buf.get_u8() != 0 }
            }
            other => return Err(err(format!("unknown E2AP tag {other}"))),
        };
        if buf.has_remaining() {
            return Err(err(format!("{} trailing bytes", buf.remaining())));
        }
        Ok(pdu)
    }
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(err(format!("truncated E2AP: need {n} for {what}, have {}", buf.remaining())))
    } else {
        Ok(())
    }
}

fn put_request_id(buf: &mut BytesMut, id: &RicRequestId) {
    buf.put_u16(id.requestor);
    buf.put_u16(id.instance);
}

fn get_request_id(buf: &mut Bytes) -> Result<RicRequestId> {
    need(buf, 4, "request id")?;
    Ok(RicRequestId { requestor: buf.get_u16(), instance: buf.get_u16() })
}

fn put_u32_list(buf: &mut BytesMut, list: &[u32]) {
    buf.put_u16(list.len() as u16);
    for v in list {
        buf.put_u32(*v);
    }
}

fn get_u32_list(buf: &mut Bytes) -> Result<Vec<u32>> {
    need(buf, 2, "list length")?;
    let n = buf.get_u16() as usize;
    need(buf, n * 4, "list body")?;
    Ok((0..n).map(|_| buf.get_u32()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn samples() -> Vec<E2apPdu> {
        let rid = RicRequestId { requestor: 10, instance: 1 };
        vec![
            E2apPdu::SetupRequest {
                gnb_id: GnbId(7),
                ran_functions: vec![1, 142],
                cells: vec![CellId(1), CellId(2)],
            },
            E2apPdu::SetupResponse { accepted: vec![142] },
            E2apPdu::SubscriptionRequest {
                request_id: rid,
                ran_function: 142,
                report_period_ms: 100,
                actions: vec![RicAction::Report, RicAction::Policy],
            },
            E2apPdu::SubscriptionResponse { request_id: rid, accepted: true },
            E2apPdu::SubscriptionDeleteRequest { request_id: rid },
            E2apPdu::Indication {
                request_id: rid,
                ran_function: 142,
                sequence: 9,
                payload: vec![1, 2, 3],
            },
            E2apPdu::ControlRequest { ran_function: 142, payload: sample_action().encode() },
            E2apPdu::ControlRequest { ran_function: 142, payload: vec![] },
            E2apPdu::ControlAck { ran_function: 142, success: false },
        ]
    }

    /// A realistic Control Request payload: the mitigation TLV sub-codec
    /// nested inside the E2AP envelope, as the closed loop ships it.
    fn sample_action() -> xsec_control::ControlAction {
        xsec_control::ControlAction {
            id: 77,
            ttl: xsec_types::Duration::from_secs(10),
            action: xsec_control::MitigationAction::RateLimitCause {
                cause: xsec_types::EstablishmentCause::MoSignalling,
                max_setups: 2,
                window: xsec_types::Duration::from_millis(400),
            },
            trace: Some(0xDEAD_BEEF),
        }
    }

    /// Arbitrary mitigation action assembled from primitive draws (the
    /// vendored proptest stub has no `Arbitrary` derive).
    fn build_action(
        id: u32,
        ttl_us: u64,
        variant: u8,
        conn: u32,
        word: u16,
        span_us: u64,
    ) -> xsec_control::ControlAction {
        use xsec_control::MitigationAction as M;
        use xsec_types::{CellId, Duration, EstablishmentCause, ReleaseCause, Rnti};
        let action = match variant % 5 {
            0 => M::ReleaseUe {
                conn,
                cause: [
                    ReleaseCause::Normal,
                    ReleaseCause::RadioLinkFailure,
                    ReleaseCause::NetworkAbort,
                    ReleaseCause::Congestion,
                ][word as usize % 4],
            },
            1 => M::BlacklistRnti { rnti: Rnti(word) },
            2 => M::ForceReauth { conn },
            3 => M::QuarantineCell { cell: CellId(conn) },
            _ => M::RateLimitCause {
                cause: EstablishmentCause::ALL[word as usize % EstablishmentCause::ALL.len()],
                max_setups: word,
                window: Duration::from_micros(span_us),
            },
        };
        xsec_control::ControlAction {
            id,
            ttl: Duration::from_micros(ttl_us),
            action,
            trace: span_us.is_multiple_of(2).then_some(span_us),
        }
    }

    #[test]
    fn round_trip_all_samples() {
        for pdu in samples() {
            let bytes = pdu.encode();
            assert_eq!(E2apPdu::decode(&bytes).unwrap(), pdu, "failed: {pdu:?}");
        }
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        for pdu in samples() {
            let bytes = pdu.encode();
            for cut in 0..bytes.len() {
                assert!(E2apPdu::decode(&bytes[..cut]).is_err(), "{pdu:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn decode_rejects_unknown_tag_and_trailing_bytes() {
        assert!(E2apPdu::decode(&[99]).is_err());
        let mut bytes = E2apPdu::SetupResponse { accepted: vec![] }.encode();
        bytes.push(0);
        assert!(E2apPdu::decode(&bytes).is_err());
    }

    proptest! {
        #[test]
        fn prop_indication_round_trip(
            requestor in any::<u16>(),
            instance in any::<u16>(),
            func in any::<u32>(),
            seq in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let pdu = E2apPdu::Indication {
                request_id: RicRequestId { requestor, instance },
                ran_function: func,
                sequence: seq,
                payload,
            };
            prop_assert_eq!(E2apPdu::decode(&pdu.encode()).unwrap(), pdu);
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = E2apPdu::decode(&bytes);
        }

        /// Arbitrary Control Request payloads (opaque bytes) survive the
        /// E2AP envelope byte-exactly.
        #[test]
        fn prop_control_request_round_trip(
            func in any::<u32>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let pdu = E2apPdu::ControlRequest { ran_function: func, payload };
            prop_assert_eq!(E2apPdu::decode(&pdu.encode()).unwrap(), pdu);
        }

        #[test]
        fn prop_control_ack_round_trip(func in any::<u32>(), success in any::<bool>()) {
            let pdu = E2apPdu::ControlAck { ran_function: func, success };
            prop_assert_eq!(E2apPdu::decode(&pdu.encode()).unwrap(), pdu);
        }

        /// The full control path a mitigation takes on the wire: action TLV →
        /// E2AP Control Request → stream framing → deframe → E2AP decode →
        /// action TLV decode. Every arbitrary action must survive unchanged.
        #[test]
        fn prop_action_round_trip_through_e2ap_and_framing(
            id in any::<u32>(),
            ttl_us in any::<u64>(),
            variant in any::<u8>(),
            conn in any::<u32>(),
            word in any::<u16>(),
            span_us in any::<u64>(),
        ) {
            let action = build_action(id, ttl_us, variant, conn, word, span_us);
            let pdu = E2apPdu::ControlRequest { ran_function: 142, payload: action.encode() };

            let mut writer = xsec_proto::FrameWriter::new();
            writer.write_frame(&pdu.encode()).unwrap();
            let mut reader = xsec_proto::FrameReader::new();
            reader.extend(&writer.take());
            let frame = reader.next_frame().unwrap().expect("one whole frame buffered");
            prop_assert!(reader.next_frame().unwrap().is_none());

            let decoded = E2apPdu::decode(&frame).unwrap();
            let E2apPdu::ControlRequest { ran_function, payload } = decoded else {
                panic!("wrong PDU kind");
            };
            prop_assert_eq!(ran_function, 142);
            prop_assert_eq!(
                xsec_control::ControlAction::decode(&payload).unwrap(),
                action
            );
        }

        /// The strict TLV decoder never panics on garbage.
        #[test]
        fn prop_action_decode_never_panics(
            bytes in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let _ = xsec_control::ControlAction::decode(&bytes);
        }
    }
}
