//! E2 transports: the byte pipes between the RIC agent and the RIC's E2
//! termination.
//!
//! Two implementations behind one trait:
//!
//! * [`InProcTransport`] — crossbeam channel pair; what tests and the
//!   single-process pipeline use.
//! * [`TcpTransport`] — a real `std::net::TcpStream` with the length-prefix
//!   framing from `xsec-proto`, so a RIC and a RAN can run as separate
//!   processes (the `live_ric_pipeline` example exercises it over
//!   loopback).
//!
//! Both are synchronous with non-blocking `try_recv` semantics — the RIC
//! platform drives them from its own polling loop.

use crossbeam_channel::{bounded, Receiver, Sender, TryRecvError};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration as StdDuration;
use xsec_proto::codec::{FrameReader, FrameWriter};
use xsec_types::{Result, XsecError};

/// A bidirectional, message-oriented E2 byte pipe.
pub trait E2Transport: Send {
    /// Sends one message (a full E2AP PDU).
    fn send(&mut self, frame: &[u8]) -> Result<()>;

    /// Receives the next complete message if one is available.
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>>;
}

/// In-process transport endpoint.
pub struct InProcTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Creates a connected in-process transport pair (agent end, RIC end).
pub fn in_proc_pair() -> (InProcTransport, InProcTransport) {
    let (a_tx, a_rx) = bounded(4096);
    let (b_tx, b_rx) = bounded(4096);
    (InProcTransport { tx: a_tx, rx: b_rx }, InProcTransport { tx: b_tx, rx: a_rx })
}

impl E2Transport for InProcTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| XsecError::Io("in-proc peer disconnected".into()))
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => {
                Err(XsecError::Io("in-proc peer disconnected".into()))
            }
        }
    }
}

/// TCP transport endpoint with length-prefix framing.
pub struct TcpTransport {
    stream: TcpStream,
    reader: FrameReader,
    read_buf: Vec<u8>,
}

impl TcpTransport {
    /// Wraps a connected stream. The stream is switched to a short read
    /// timeout so `try_recv` stays effectively non-blocking.
    pub fn new(stream: TcpStream) -> Result<Self> {
        stream
            .set_read_timeout(Some(StdDuration::from_millis(1)))
            .map_err(|e| XsecError::Io(e.to_string()))?;
        stream.set_nodelay(true).map_err(|e| XsecError::Io(e.to_string()))?;
        Ok(TcpTransport { stream, reader: FrameReader::new(), read_buf: vec![0u8; 64 * 1024] })
    }

    /// Connects to a listening E2 termination.
    pub fn connect(addr: &str) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(|e| XsecError::Io(e.to_string()))?;
        Self::new(stream)
    }
}

impl E2Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        let mut writer = FrameWriter::new();
        writer.write_frame(frame)?;
        self.stream.write_all(&writer.take()).map_err(|e| XsecError::Io(e.to_string()))
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>> {
        // Drain one buffered frame first.
        if let Some(frame) = self.reader.next_frame()? {
            return Ok(Some(frame));
        }
        match self.stream.read(&mut self.read_buf) {
            Ok(0) => Err(XsecError::Io("connection closed".into())),
            Ok(n) => {
                self.reader.extend(&self.read_buf[..n]);
                self.reader.next_frame()
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(XsecError::Io(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn in_proc_round_trip_both_directions() {
        let (mut a, mut b) = in_proc_pair();
        a.send(b"hello").unwrap();
        a.send(b"world").unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(b"hello".to_vec()));
        assert_eq!(b.try_recv().unwrap(), Some(b"world".to_vec()));
        assert_eq!(b.try_recv().unwrap(), None);
        b.send(b"ack").unwrap();
        assert_eq!(a.try_recv().unwrap(), Some(b"ack".to_vec()));
    }

    #[test]
    fn in_proc_disconnection_is_an_error() {
        let (mut a, b) = in_proc_pair();
        drop(b);
        assert!(a.send(b"x").is_err());
    }

    #[test]
    fn tcp_round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut server = TcpTransport::new(stream).unwrap();
            // Echo three frames back.
            let mut echoed = 0;
            while echoed < 3 {
                if let Some(frame) = server.try_recv().unwrap() {
                    server.send(&frame).unwrap();
                    echoed += 1;
                }
            }
        });

        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        let frames: Vec<Vec<u8>> = vec![vec![], vec![7; 5], vec![1, 2, 3]];
        for f in &frames {
            client.send(f).unwrap();
        }
        let mut received = Vec::new();
        while received.len() < 3 {
            if let Some(frame) = client.try_recv().unwrap() {
                received.push(frame);
            }
        }
        assert_eq!(received, frames);
        handle.join().unwrap();
    }

    #[test]
    fn tcp_try_recv_without_data_returns_none() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (_stream, _) = listener.accept().unwrap();
            std::thread::sleep(StdDuration::from_millis(50));
        });
        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        assert_eq!(client.try_recv().unwrap(), None);
        handle.join().unwrap();
    }
}
