//! E2 transports: the byte pipes between the RIC agent and the RIC's E2
//! termination.
//!
//! Two implementations behind one trait:
//!
//! * [`InProcTransport`] — crossbeam channel pair; what tests and the
//!   single-process pipeline use.
//! * [`TcpTransport`] — a real `std::net::TcpStream` with the length-prefix
//!   framing from `xsec-proto`, so a RIC and a RAN can run as separate
//!   processes (the `live_ric_pipeline` example exercises it over
//!   loopback).
//!
//! ## Readiness model
//!
//! The RIC terminates hundreds of agents from one thread, so a pump
//! iteration must touch only connections with pending frames. Each
//! transport registers a [`Waker`] via [`E2Transport::register_waker`] and
//! answers with its [`Readiness`]:
//!
//! * [`Readiness::Event`] — the transport wakes the reactor itself when a
//!   frame lands. `InProcTransport` does this from the *sender's* side: a
//!   successful `send` flips the peer's wake flag, enqueueing its token on
//!   the reactor's [`WakeSet`] ready-queue. Cost per pump is O(active).
//! * [`Readiness::Polled`] — the transport cannot signal (a plain
//!   nonblocking socket without an OS readiness queue), so the reactor
//!   scans it every iteration. `TcpTransport` lives here; deployments mix
//!   a handful of polled sockets with thousands of event-driven in-proc
//!   conns without losing the O(active) pump.
//!
//! ## Egress backpressure
//!
//! `send` never blocks. Every transport owns a bounded egress queue (the
//! channel itself for in-proc, a byte buffer for TCP); when it is full the
//! frame is *dropped and counted* ([`SendOutcome::Dropped`],
//! [`E2Transport::dropped_frames`]) instead of stalling the reactor — a
//! slow or stalled peer can never wedge the RIC. [`E2Transport::flush`]
//! retries buffered egress and reports whether the queue drained.

use crossbeam_channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use xsec_proto::codec::{FrameReader, FrameWriter};
use xsec_types::{Result, XsecError};

/// How a transport participates in the reactor's readiness protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readiness {
    /// The transport wakes its registered [`Waker`] when frames arrive;
    /// the reactor only visits it after a wake.
    Event,
    /// The transport cannot signal readiness; the reactor must scan it
    /// every pump iteration.
    Polled,
}

/// What happened to a frame handed to [`E2Transport::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Queued on (or written to) the wire.
    Sent,
    /// The bounded egress queue was full; the frame was dropped and
    /// counted. The connection stays healthy.
    Dropped,
}

/// Shared ready-queue state: one wake flag per token plus the FIFO of
/// tokens woken since the last drain.
#[derive(Debug, Default)]
struct WakeState {
    flags: Vec<bool>,
    ready: VecDeque<usize>,
}

/// The reactor's ready-queue: tokens (connection indices) whose transports
/// have signalled pending frames. Shared with transports through [`Waker`]
/// handles; drained once per pump iteration.
#[derive(Debug, Default, Clone)]
pub struct WakeSet {
    state: Arc<Mutex<WakeState>>,
}

impl WakeSet {
    /// An empty ready-queue.
    pub fn new() -> Self {
        WakeSet::default()
    }

    /// Creates the waker for `token`, growing the flag table as needed.
    pub fn waker(&self, token: usize) -> Waker {
        let mut state = self.state.lock().expect("wake set poisoned");
        if state.flags.len() <= token {
            state.flags.resize(token + 1, false);
        }
        Waker { state: Arc::clone(&self.state), token }
    }

    /// Drains every woken token into `out` (appended in wake order) and
    /// clears their flags, so a send racing the drain re-queues the token
    /// for the next iteration rather than being lost.
    pub fn drain_into(&self, out: &mut Vec<usize>) {
        let mut state = self.state.lock().expect("wake set poisoned");
        while let Some(token) = state.ready.pop_front() {
            state.flags[token] = false;
            out.push(token);
        }
    }

    /// Marks `token` ready directly (used by the reactor itself, e.g. for
    /// a freshly added connection whose hello may predate registration).
    pub fn mark_ready(&self, token: usize) {
        self.waker(token).wake();
    }
}

/// Handle a transport uses to tell the reactor "this connection has
/// pending frames". Waking an already-woken token is a no-op, so wake
/// storms coalesce into one pump visit.
#[derive(Debug, Clone)]
pub struct Waker {
    state: Arc<Mutex<WakeState>>,
    token: usize,
}

impl Waker {
    /// Enqueues this waker's token on the ready-queue (idempotent until
    /// the next drain).
    pub fn wake(&self) {
        let mut state = self.state.lock().expect("wake set poisoned");
        if state.flags.len() <= self.token {
            state.flags.resize(self.token + 1, false);
        }
        if !state.flags[self.token] {
            state.flags[self.token] = true;
            state.ready.push_back(self.token);
        }
    }
}

/// A bidirectional, message-oriented E2 byte pipe.
pub trait E2Transport: Send {
    /// Sends one message (a full E2AP PDU) without blocking. A full egress
    /// queue drops the frame ([`SendOutcome::Dropped`]) and counts it in
    /// [`E2Transport::dropped_frames`]; `Err` is reserved for a dead peer.
    fn send(&mut self, frame: &[u8]) -> Result<SendOutcome>;

    /// Receives the next complete message if one is available.
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>>;

    /// Registers the reactor's waker for this connection and reports how
    /// the transport will use it. Transports that already hold queued
    /// inbound frames must wake immediately so no pre-registration frame
    /// is stranded. The default is a polled transport that ignores the
    /// waker.
    fn register_waker(&mut self, _waker: Waker) -> Readiness {
        Readiness::Polled
    }

    /// Retries any buffered egress; `Ok(true)` when the egress queue is
    /// empty (nothing left to flush).
    fn flush(&mut self) -> Result<bool> {
        Ok(true)
    }

    /// Frames dropped so far because the egress queue was full.
    fn dropped_frames(&self) -> u64 {
        0
    }
}

/// One direction of the in-proc pipe: the channel plus the wake slot its
/// *receiver* registers, flipped by the sender on delivery.
#[derive(Debug, Default)]
struct WakeSlot {
    waker: Mutex<Option<Waker>>,
}

impl WakeSlot {
    fn wake(&self) {
        if let Some(waker) = self.waker.lock().expect("wake slot poisoned").as_ref() {
            waker.wake();
        }
    }
}

/// In-process transport endpoint.
pub struct InProcTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Wake slot our peer's owner registered — we flip it when we send.
    peer_wake: Arc<WakeSlot>,
    /// Wake slot our own owner registers — our peer flips it.
    local_wake: Arc<WakeSlot>,
    dropped: u64,
}

/// Creates a connected in-process transport pair (agent end, RIC end).
/// Each side's egress is the bounded channel itself (4096 frames); a full
/// channel drops instead of blocking.
pub fn in_proc_pair() -> (InProcTransport, InProcTransport) {
    let (a_tx, a_rx) = bounded(4096);
    let (b_tx, b_rx) = bounded(4096);
    let wake_a = Arc::new(WakeSlot::default());
    let wake_b = Arc::new(WakeSlot::default());
    (
        InProcTransport {
            tx: a_tx,
            rx: b_rx,
            peer_wake: Arc::clone(&wake_b),
            local_wake: Arc::clone(&wake_a),
            dropped: 0,
        },
        InProcTransport {
            tx: b_tx,
            rx: a_rx,
            peer_wake: wake_a,
            local_wake: wake_b,
            dropped: 0,
        },
    )
}

impl E2Transport for InProcTransport {
    fn send(&mut self, frame: &[u8]) -> Result<SendOutcome> {
        match self.tx.try_send(frame.to_vec()) {
            Ok(()) => {
                self.peer_wake.wake();
                Ok(SendOutcome::Sent)
            }
            Err(TrySendError::Full(_)) => {
                self.dropped += 1;
                Ok(SendOutcome::Dropped)
            }
            Err(TrySendError::Disconnected(_)) => {
                Err(XsecError::Io("in-proc peer disconnected".into()))
            }
        }
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => {
                Err(XsecError::Io("in-proc peer disconnected".into()))
            }
        }
    }

    fn register_waker(&mut self, waker: Waker) -> Readiness {
        // Frames sent before registration (the agent's Setup Request fires
        // from its constructor) must still surface: wake immediately if
        // anything is already queued.
        let pending = !self.rx.is_empty();
        *self.local_wake.waker.lock().expect("wake slot poisoned") = Some(waker.clone());
        if pending {
            waker.wake();
        }
        Readiness::Event
    }

    fn dropped_frames(&self) -> u64 {
        self.dropped
    }
}

/// Default cap on buffered TCP egress bytes before frames are dropped.
const TCP_EGRESS_CAP: usize = 1 << 20;

/// TCP transport endpoint with length-prefix framing, fully nonblocking in
/// both directions: reads surface `WouldBlock` as "no frame yet", writes
/// land in a bounded egress buffer flushed opportunistically, so a stalled
/// peer can never block the reactor.
pub struct TcpTransport {
    stream: TcpStream,
    reader: FrameReader,
    read_buf: Vec<u8>,
    /// Framed bytes awaiting the socket; `egress_pos` marks the written
    /// prefix still pending removal.
    egress: Vec<u8>,
    egress_pos: usize,
    egress_cap: usize,
    dropped: u64,
}

impl TcpTransport {
    /// Wraps a connected stream, switching it to nonblocking mode.
    pub fn new(stream: TcpStream) -> Result<Self> {
        stream.set_nonblocking(true).map_err(|e| XsecError::Io(e.to_string()))?;
        stream.set_nodelay(true).map_err(|e| XsecError::Io(e.to_string()))?;
        Ok(TcpTransport {
            stream,
            reader: FrameReader::new(),
            read_buf: vec![0u8; 64 * 1024],
            egress: Vec::new(),
            egress_pos: 0,
            egress_cap: TCP_EGRESS_CAP,
            dropped: 0,
        })
    }

    /// Connects to a listening E2 termination.
    pub fn connect(addr: &str) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(|e| XsecError::Io(e.to_string()))?;
        Self::new(stream)
    }

    /// Overrides the egress buffer cap (bytes); frames that would exceed
    /// it are dropped whole.
    pub fn set_egress_cap(&mut self, bytes: usize) {
        self.egress_cap = bytes;
    }

    /// Bytes currently buffered for the socket.
    pub fn egress_len(&self) -> usize {
        self.egress.len() - self.egress_pos
    }

    /// Writes as much buffered egress as the socket accepts right now.
    fn flush_egress(&mut self) -> Result<bool> {
        while self.egress_pos < self.egress.len() {
            match self.stream.write(&self.egress[self.egress_pos..]) {
                Ok(0) => return Err(XsecError::Io("connection closed".into())),
                Ok(n) => self.egress_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(XsecError::Io(e.to_string())),
            }
        }
        if self.egress_pos == self.egress.len() {
            self.egress.clear();
            self.egress_pos = 0;
            Ok(true)
        } else {
            // Reclaim the written prefix so the buffer stays bounded by
            // the unsent bytes, not the lifetime total.
            if self.egress_pos > 0 {
                self.egress.drain(..self.egress_pos);
                self.egress_pos = 0;
            }
            Ok(false)
        }
    }
}

impl E2Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<SendOutcome> {
        let mut writer = FrameWriter::new();
        writer.write_frame(frame)?;
        let framed = writer.take();
        if self.egress_len() + framed.len() > self.egress_cap {
            // Try to make room first — the socket may have drained.
            self.flush_egress()?;
            if self.egress_len() + framed.len() > self.egress_cap {
                self.dropped += 1;
                return Ok(SendOutcome::Dropped);
            }
        }
        self.egress.extend_from_slice(&framed);
        self.flush_egress()?;
        Ok(SendOutcome::Sent)
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>> {
        // Piggyback egress progress on every poll so buffered writes drain
        // even when the caller only reads.
        self.flush_egress()?;
        // Drain one buffered frame first.
        if let Some(frame) = self.reader.next_frame()? {
            return Ok(Some(frame));
        }
        match self.stream.read(&mut self.read_buf) {
            Ok(0) => Err(XsecError::Io("connection closed".into())),
            Ok(n) => {
                self.reader.extend(&self.read_buf[..n]);
                self.reader.next_frame()
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(XsecError::Io(e.to_string())),
        }
    }

    fn flush(&mut self) -> Result<bool> {
        self.flush_egress()
    }

    fn dropped_frames(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration as StdDuration;

    #[test]
    fn in_proc_round_trip_both_directions() {
        let (mut a, mut b) = in_proc_pair();
        assert_eq!(a.send(b"hello").unwrap(), SendOutcome::Sent);
        assert_eq!(a.send(b"world").unwrap(), SendOutcome::Sent);
        assert_eq!(b.try_recv().unwrap(), Some(b"hello".to_vec()));
        assert_eq!(b.try_recv().unwrap(), Some(b"world".to_vec()));
        assert_eq!(b.try_recv().unwrap(), None);
        b.send(b"ack").unwrap();
        assert_eq!(a.try_recv().unwrap(), Some(b"ack".to_vec()));
    }

    #[test]
    fn in_proc_disconnection_is_an_error() {
        let (mut a, b) = in_proc_pair();
        drop(b);
        assert!(a.send(b"x").is_err());
    }

    #[test]
    fn in_proc_send_wakes_the_registered_peer() {
        let (mut a, mut b) = in_proc_pair();
        let set = WakeSet::new();
        assert_eq!(b.register_waker(set.waker(7)), Readiness::Event);
        let mut ready = Vec::new();
        set.drain_into(&mut ready);
        assert!(ready.is_empty(), "no wake before any send");

        a.send(b"x").unwrap();
        a.send(b"y").unwrap();
        set.drain_into(&mut ready);
        // Two sends coalesce into one wake until the queue is drained.
        assert_eq!(ready, vec![7]);

        // After a drain the flag is clear: the next send wakes again.
        ready.clear();
        a.send(b"z").unwrap();
        set.drain_into(&mut ready);
        assert_eq!(ready, vec![7]);
    }

    #[test]
    fn in_proc_registration_after_send_wakes_immediately() {
        // The agent's Setup Request is sent from its constructor, before
        // the platform registers the conn — the frame must still wake.
        let (mut a, mut b) = in_proc_pair();
        a.send(b"setup").unwrap();
        let set = WakeSet::new();
        b.register_waker(set.waker(0));
        let mut ready = Vec::new();
        set.drain_into(&mut ready);
        assert_eq!(ready, vec![0]);
    }

    #[test]
    fn in_proc_full_channel_drops_and_counts() {
        let (mut a, _b) = in_proc_pair();
        let mut outcomes = Vec::new();
        for _ in 0..4100 {
            outcomes.push(a.send(b"f").unwrap());
        }
        assert_eq!(outcomes.iter().filter(|o| **o == SendOutcome::Dropped).count(), 4);
        assert_eq!(a.dropped_frames(), 4);
    }

    #[test]
    fn tcp_round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut server = TcpTransport::new(stream).unwrap();
            // Echo three frames back.
            let mut echoed = 0;
            while echoed < 3 {
                if let Some(frame) = server.try_recv().unwrap() {
                    server.send(&frame).unwrap();
                    echoed += 1;
                }
            }
            while !server.flush().unwrap() {}
        });

        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        let frames: Vec<Vec<u8>> = vec![vec![], vec![7; 5], vec![1, 2, 3]];
        for f in &frames {
            assert_eq!(client.send(f).unwrap(), SendOutcome::Sent);
        }
        let mut received = Vec::new();
        while received.len() < 3 {
            if let Some(frame) = client.try_recv().unwrap() {
                received.push(frame);
            }
        }
        assert_eq!(received, frames);
        handle.join().unwrap();
    }

    #[test]
    fn tcp_try_recv_without_data_returns_none() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (_stream, _) = listener.accept().unwrap();
            std::thread::sleep(StdDuration::from_millis(50));
        });
        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        assert_eq!(client.try_recv().unwrap(), None);
        handle.join().unwrap();
    }

    #[test]
    fn tcp_stalled_reader_never_blocks_the_sender() {
        // Regression: a peer that accepts the connection but never reads
        // must not block `send` — the kernel buffer fills, egress buffers
        // up to the cap, and further frames drop with a count.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Hold the socket open without reading until told to stop.
            let _ = stop_rx.recv();
            drop(stream);
        });

        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        client.set_egress_cap(64 * 1024);
        let frame = vec![0xABu8; 8 * 1024];
        let mut dropped = 0u64;
        // Push far more than the egress cap + kernel buffer can hold; every
        // call must return promptly (drop, not block).
        let start = std::time::Instant::now();
        for _ in 0..2000 {
            if client.send(&frame).unwrap() == SendOutcome::Dropped {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "egress never filled — cap not enforced");
        assert_eq!(client.dropped_frames(), dropped);
        assert!(client.egress_len() <= 64 * 1024, "egress exceeded its cap");
        assert!(
            start.elapsed() < StdDuration::from_secs(10),
            "sender blocked on a stalled reader"
        );
        stop_tx.send(()).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn tcp_partial_frames_reassemble_across_reads() {
        // A frame trickling in over many small writes must reassemble; a
        // frame split across the egress boundary must arrive intact.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let expect = payload.clone();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut writer = FrameWriter::new();
            writer.write_frame(&payload).unwrap();
            let framed = writer.take();
            // Dribble the frame out in 7-byte slices.
            for chunk in framed.chunks(7) {
                stream.write_all(chunk).unwrap();
                stream.flush().unwrap();
            }
        });
        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
        loop {
            if let Some(frame) = client.try_recv().unwrap() {
                assert_eq!(frame, expect);
                break;
            }
            assert!(std::time::Instant::now() < deadline, "frame never reassembled");
            std::thread::yield_now();
        }
        handle.join().unwrap();
    }
}
