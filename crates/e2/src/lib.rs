//! # xsec-e2
//!
//! The O-RAN E2 interface substrate: the application protocol (E2AP) PDUs
//! that connect the RAN to the near-real-time RIC, the extended E2SM-KPM
//! service model that carries MobiFlow security telemetry (the paper's §3.1
//! extension of the O-RAN KPM service model), a deterministic binary codec
//! with length-prefixed framing, two interchangeable transports (in-process
//! channels and real TCP), and the RAN-side RIC agent.
//!
//! ## Protocol shape (mirrors O-RAN.WG3.E2AP)
//!
//! ```text
//! RAN (agent)                          nRT-RIC (termination)
//!   │  E2 Setup Request (functions)      │
//!   │ ───────────────────────────────▶   │
//!   │  E2 Setup Response (accepted)      │
//!   │ ◀─────────────────────────────────│
//!   │  RIC Subscription Request          │
//!   │ ◀─────────────────────────────────│   (from an xApp)
//!   │  RIC Subscription Response         │
//!   │ ───────────────────────────────▶   │
//!   │  RIC Indication (telemetry ...)    │  per report interval
//!   │ ───────────────────────────────▶   │
//! ```
//!
//! The codec is a compact tag/length format, not ASN.1 PER — byte
//! compatibility with O-RAN implementations is out of scope (see DESIGN.md),
//! wire *shape* and the subscription/report state machines are in scope.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod e2ap;
pub mod e2sm;
pub mod transport;

pub use agent::{RicAgent, RicAgentConfig};
pub use e2ap::{E2apPdu, RicAction, RicRequestId};
pub use e2sm::{KpmIndication, RAN_FUNCTION_MOBIFLOW};
pub use transport::{
    in_proc_pair, E2Transport, InProcTransport, Readiness, SendOutcome, TcpTransport, WakeSet,
    Waker,
};
