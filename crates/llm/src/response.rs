//! Response parsing and detector/LLM cross-comparison.
//!
//! §3.3: "the results from MobiWatch and LLM could be cross-compared to
//! ensure the decisions are indeed reliable ... human supervision is
//! required in cases such as when the LLM and the anomaly detector generate
//! contradictory results."

use serde::{Deserialize, Serialize};

/// A completion reduced to its machine-readable core.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParsedResponse {
    /// The verdict the model committed to.
    pub anomalous: bool,
    /// The attack titles the model listed (possibly empty).
    pub attacks: Vec<String>,
}

impl ParsedResponse {
    /// Parses a completion. Accepts the structured `Verdict:` form the
    /// simulated expert emits, and falls back to keyword heuristics (what
    /// the paper's authors do manually) for free-form text.
    pub fn parse(text: &str) -> ParsedResponse {
        let lower = text.to_lowercase();
        let anomalous = if let Some(line) =
            text.lines().find(|l| l.trim_start().starts_with("Verdict:"))
        {
            line.to_lowercase().contains("anomalous")
        } else {
            // Heuristic: an explicit "benign" verdict wins; otherwise any
            // anomaly/attack language flags it.
            let says_benign = lower.contains("benign") && !lower.contains("not benign");
            let says_anomalous = lower.contains("anomalous")
                || lower.contains("attack")
                || lower.contains("malicious");
            says_anomalous && (!says_benign || lower.contains("anomalous"))
        };

        // Numbered list items after a "top ... attacks" header.
        let mut attacks = Vec::new();
        let mut in_list = false;
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.to_lowercase().contains("possible attacks") {
                in_list = true;
                continue;
            }
            if in_list {
                if let Some(rest) = trimmed
                    .strip_prefix(|c: char| c.is_ascii_digit())
                    .and_then(|r| r.strip_prefix(". "))
                {
                    let title = rest.split(" — ").next().unwrap_or(rest).trim();
                    attacks.push(title.to_string());
                } else if !trimmed.is_empty() {
                    in_list = false;
                }
            }
        }
        ParsedResponse { anomalous, attacks }
    }
}

/// Outcome of comparing the detector's flag with the model's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossVerdict {
    /// Both say anomalous — act with confidence.
    ConfirmedAnomalous,
    /// Both say benign — no action.
    ConfirmedBenign,
    /// Contradictory — queue for human supervision (§3.3).
    NeedsHumanReview {
        /// What the pre-filter said.
        detector_flagged: bool,
        /// What the model said.
        llm_flagged: bool,
    },
}

/// Cross-compares detector and model decisions.
pub fn cross_compare(detector_flagged: bool, response: &ParsedResponse) -> CrossVerdict {
    match (detector_flagged, response.anomalous) {
        (true, true) => CrossVerdict::ConfirmedAnomalous,
        (false, false) => CrossVerdict::ConfirmedBenign,
        (d, l) => CrossVerdict::NeedsHumanReview { detector_flagged: d, llm_flagged: l },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_structured_verdicts() {
        let text = "Verdict: ANOMALOUS\nstuff\nTop possible attacks:\n\
                    1. Signaling storm / RRC flooding DoS (BTS DoS) — bad things.\n\
                    2. TMSI replay denial of service (Blind DoS) — worse things.\n\nmore";
        let parsed = ParsedResponse::parse(text);
        assert!(parsed.anomalous);
        assert_eq!(
            parsed.attacks,
            vec![
                "Signaling storm / RRC flooding DoS (BTS DoS)",
                "TMSI replay denial of service (Blind DoS)"
            ]
        );
    }

    #[test]
    fn parses_benign_verdict() {
        let parsed = ParsedResponse::parse("Verdict: BENIGN\nAll good.");
        assert!(!parsed.anomalous);
        assert!(parsed.attacks.is_empty());
    }

    #[test]
    fn heuristic_parse_of_freeform_text() {
        let parsed = ParsedResponse::parse(
            "... it is likely that the sequences are anomalous. The uniformity and the \
             unchanging TMSI values indicate potential issues or attacks.",
        );
        assert!(parsed.anomalous);
        let parsed =
            ParsedResponse::parse("This sequence looks benign: a normal registration.");
        assert!(!parsed.anomalous);
    }

    #[test]
    fn cross_comparison_routes_disagreement_to_humans() {
        let anomalous = ParsedResponse { anomalous: true, attacks: vec![] };
        let benign = ParsedResponse { anomalous: false, attacks: vec![] };
        assert_eq!(cross_compare(true, &anomalous), CrossVerdict::ConfirmedAnomalous);
        assert_eq!(cross_compare(false, &benign), CrossVerdict::ConfirmedBenign);
        assert_eq!(
            cross_compare(true, &benign),
            CrossVerdict::NeedsHumanReview { detector_flagged: true, llm_flagged: false }
        );
        assert_eq!(
            cross_compare(false, &anomalous),
            CrossVerdict::NeedsHumanReview { detector_flagged: false, llm_flagged: true }
        );
    }
}
