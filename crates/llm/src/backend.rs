//! LLM backends: the "model you can send a prompt to" abstraction.
//!
//! [`SimulatedExpert`] is the offline stand-in for the hosted LLMs the
//! paper queries: it reads the telemetry back out of the rendered prompt
//! (string-in/string-out, no side channels), runs the
//! [`crate::expert::ExpertEngine`], masks the findings through a
//! [`ModelPersonality`], and writes the answer in the shape Figure 5 shows.
//! [`RestBackend`] holds the request-building logic for a real
//! OpenAI-compatible endpoint; without network access its `complete`
//! returns an error describing the request it would have made.

use crate::expert::{AnalysisSignal, ExpertEngine};
use crate::personality::ModelPersonality;
use crate::prompt::PromptTemplate;
use xsec_mobiflow::decode_ue_record;
use xsec_types::{AttackKind, Result, XsecError};

/// A model endpoint.
pub trait LlmBackend: Send {
    /// The model's display name.
    fn name(&self) -> &str;

    /// Sends a prompt, returns the completion.
    fn complete(&mut self, prompt: &str) -> Result<String>;
}

/// The simulated cellular-security expert.
pub struct SimulatedExpert {
    personality: ModelPersonality,
    engine: ExpertEngine,
}

impl SimulatedExpert {
    /// An expert speaking as the given personality.
    pub fn new(personality: ModelPersonality) -> Self {
        SimulatedExpert { personality, engine: ExpertEngine::default() }
    }

    /// The five Table 3 baselines.
    pub fn all_baselines() -> Vec<SimulatedExpert> {
        ModelPersonality::ALL.into_iter().map(SimulatedExpert::new).collect()
    }

    fn explain(signal: &AnalysisSignal) -> String {
        match signal {
            AnalysisSignal::SignalingFlood { setups, distinct_rntis, stalled } => format!(
                "The window contains {setups} RRC connection setup requests from \
                 {distinct_rntis} distinct RNTIs in rapid succession, of which {stalled} \
                 stall after the authentication request without ever answering the \
                 challenge. The uniformity and rate of these incomplete handshakes \
                 indicate a signaling storm: fabricated connection attempts consuming \
                 gNodeB resources rather than genuine devices registering."
            ),
            AnalysisSignal::TmsiReplay { tmsi, connections } => format!(
                "The temporary identifier 5G-S-TMSI {tmsi} appears across {connections} \
                 supposedly independent UE sessions. A TMSI is bound to one subscriber; \
                 its recurrence on different connections indicates the identifier is \
                 being replayed by another transmitter, which tricks the network into \
                 tearing down the legitimate subscriber's session."
            ),
            AnalysisSignal::OrderingViolation { conn, got, expected } => format!(
                "On connection {conn}, the network received {got} where the 5G NAS \
                 procedure grammar expects {expected}. A UE only answers the message it \
                 was actually shown — this inversion indicates the downlink message was \
                 overwritten in flight by an adversarial relay."
            ),
            AnalysisSignal::PlaintextIdentityExposure { conn, supi, compliant_position } => {
                if *compliant_position {
                    format!(
                        "On connection {conn}, the subscriber's permanent identity {supi} \
                         crossed the air interface in plaintext inside an identity \
                         procedure that is itself standards-compliant. Every message is \
                         individually legal, but a healthy 5G registration resolves \
                         identity via concealed SUCIs — a resolution failure that \
                         conveniently forces the plaintext fallback is the signature of \
                         an uplink overshadowing attack harvesting identities."
                    )
                } else {
                    format!(
                        "On connection {conn}, the permanent identity {supi} was \
                         transmitted in plaintext outside any legitimate identity \
                         procedure, exposing the subscriber to tracking."
                    )
                }
            }
            AnalysisSignal::NullSecurity { conn } => format!(
                "Connection {conn} negotiated NEA0/NIA0 — the null ciphering and null \
                 integrity algorithms — so the session runs with no confidentiality or \
                 integrity protection at all. Commodity devices and networks support \
                 strong algorithms; landing on the null pair indicates the UE's security \
                 capabilities were stripped in flight (a bidding-down attack)."
            ),
        }
    }

    fn attack_blurb(kind: AttackKind) -> (&'static str, &'static str, &'static str) {
        match kind {
            AttackKind::BtsDos => (
                "Signaling storm / RRC flooding DoS (BTS DoS)",
                "excessive load on the gNodeB's connection table locks legitimate \
                 subscribers out of the cell",
                "rate-limit connection setups per radio fingerprint, shorten the setup \
                 guard timer, and prioritize admission for devices that complete \
                 authentication",
            ),
            AttackKind::BlindDos => (
                "TMSI replay denial of service (Blind DoS)",
                "the victim subscriber is silently detached whenever the replayed \
                 identity reappears, denying it service",
                "reallocate the victim's 5G-S-TMSI immediately and require \
                 re-authentication before acting on identity conflicts",
            ),
            AttackKind::UplinkIdExtraction => (
                "Uplink identity extraction (adaptive overshadowing)",
                "the permanent identity is harvested for persistent location tracking \
                 of the subscriber",
                "disable the plaintext identity fallback, require SUCI re-concealment \
                 on resolution failure, and audit the cell for uplink overshadowing",
            ),
            AttackKind::DownlinkIdExtraction => (
                "Downlink identity extraction (MiTM identity request injection)",
                "the permanent identity is harvested, enabling tracking, and the \
                 presence of an in-path relay threatens all unprotected signaling",
                "reject plaintext identity responses arriving while an authentication \
                 challenge is outstanding and investigate the serving area for rogue \
                 relays",
            ),
            AttackKind::NullCipher => (
                "Security capability bidding-down (null cipher & integrity)",
                "all traffic of the downgraded session is readable and forgeable over \
                 the air",
                "enforce a minimum-algorithm policy at the AMF and release any session \
                 that negotiates NEA0/NIA0 outside emergency procedures",
            ),
        }
    }
}

impl LlmBackend for SimulatedExpert {
    fn name(&self) -> &str {
        self.personality.name
    }

    fn complete(&mut self, prompt: &str) -> Result<String> {
        let Some(lines) = PromptTemplate::extract_data(prompt) else {
            return Ok("Verdict: BENIGN\nI could not find any telemetry data in the \
                       request, so there is nothing to flag."
                .to_string());
        };
        let mut records = Vec::with_capacity(lines.len());
        for line in &lines {
            match decode_ue_record(line) {
                Ok(r) => records.push(r),
                Err(_) => {
                    return Ok("Verdict: BENIGN\nThe provided data does not parse as \
                               telemetry records; no assessment is possible."
                        .to_string())
                }
            }
        }

        let report = self.engine.analyze(&records);
        let perceived: Vec<&AnalysisSignal> =
            report.signals.iter().filter(|s| self.personality.perceives(s)).collect();

        if perceived.is_empty() {
            return Ok(format!(
                "Verdict: BENIGN\nThe sequence follows the expected 5G registration \
                 ladder: RRC establishment, registration, a successful authentication \
                 exchange, security-mode negotiation with strong algorithms, and an \
                 orderly completion. Identifiers evolve as the procedures prescribe and \
                 nothing is transmitted that should be concealed. ({} records reviewed.)",
                records.len()
            ));
        }

        let mut attacks: Vec<AttackKind> = Vec::new();
        for s in &perceived {
            let kind = s.implicates();
            if !attacks.contains(&kind) {
                attacks.push(kind);
            }
        }
        attacks.truncate(3);

        let mut out = String::from("Verdict: ANOMALOUS\n");
        for s in &perceived {
            out.push_str(&Self::explain(s));
            out.push_str("\n\n");
        }
        out.push_str("Top possible attacks:\n");
        for (i, kind) in attacks.iter().enumerate() {
            let (title, implication, _) = Self::attack_blurb(*kind);
            out.push_str(&format!("{}. {title} — {implication}.\n", i + 1));
        }
        out.push_str(
            "\nAttribution: the tampering originates at the radio edge — a rogue UE or \
             adversarial relay transmitting over the open air interface; internal network \
             elements show no signs of compromise.\n",
        );
        out.push_str("Recommended remediation:\n");
        for kind in &attacks {
            let (_, _, remedy) = Self::attack_blurb(*kind);
            out.push_str(&format!("- {remedy}.\n"));
        }
        Ok(out)
    }
}

/// Request-building stub for a real OpenAI-compatible chat endpoint.
pub struct RestBackend {
    /// Endpoint URL, e.g. `https://api.openai.com/v1/chat/completions`.
    pub endpoint: String,
    /// Model identifier, e.g. `gpt-4o`.
    pub model: String,
}

impl RestBackend {
    /// Creates the stub.
    pub fn new(endpoint: impl Into<String>, model: impl Into<String>) -> Self {
        RestBackend { endpoint: endpoint.into(), model: model.into() }
    }

    /// The JSON body `complete` would POST.
    pub fn request_body(&self, prompt: &str) -> String {
        serde_json::json!({
            "model": self.model,
            "messages": [{"role": "user", "content": prompt}],
            "temperature": 0.0,
        })
        .to_string()
    }
}

impl LlmBackend for RestBackend {
    fn name(&self) -> &str {
        &self.model
    }

    fn complete(&mut self, prompt: &str) -> Result<String> {
        Err(XsecError::Io(format!(
            "no network access: would POST {} bytes to {} for model {}",
            self.request_body(prompt).len(),
            self.endpoint,
            self.model
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_mobiflow::UeMobiFlow;
    use xsec_proto::MessageKind;
    use xsec_types::{CellId, Rnti, Timestamp};

    fn ladder() -> Vec<UeMobiFlow> {
        use MessageKind as K;
        [
            K::RrcSetupRequest,
            K::RrcSetup,
            K::RrcSetupComplete,
            K::NasRegistrationRequest,
            K::NasAuthenticationRequest,
            K::NasAuthenticationResponse,
            K::NasSecurityModeCommand,
            K::NasSecurityModeComplete,
            K::NasRegistrationAccept,
        ]
        .into_iter()
        .enumerate()
        .map(|(i, k)| UeMobiFlow {
            msg_id: i as u64,
            timestamp: Timestamp(i as u64 * 1000),
            cell: CellId(1),
            rnti: Rnti(0x4601),
            du_ue_id: 1,
            direction: k.direction(),
            msg: k,
            tmsi: None,
            supi: None,
            cipher_alg: None,
            integrity_alg: None,
            establishment_cause: None,
            release_cause: None,
        })
        .collect()
    }

    #[test]
    fn benign_trace_gets_benign_verdict_from_all_baselines() {
        let prompt = PromptTemplate::default().render(&ladder());
        for mut expert in SimulatedExpert::all_baselines() {
            let answer = expert.complete(&prompt).unwrap();
            assert!(
                answer.starts_with("Verdict: BENIGN"),
                "{} said: {answer}",
                expert.name()
            );
        }
    }

    #[test]
    fn flood_gets_signaling_storm_from_gpt4o_but_not_llama() {
        use MessageKind as K;
        let mut records = Vec::new();
        for conn in 1..=6u32 {
            for (i, k) in [
                K::RrcSetupRequest,
                K::RrcSetup,
                K::RrcSetupComplete,
                K::NasRegistrationRequest,
                K::NasAuthenticationRequest,
            ]
            .into_iter()
            .enumerate()
            {
                let mut r = ladder()[0].clone();
                r.msg_id = conn as u64 * 10 + i as u64;
                r.du_ue_id = conn;
                r.rnti = Rnti(0x4600 + conn as u16);
                r.msg = k;
                r.direction = k.direction();
                records.push(r);
            }
        }
        let prompt = PromptTemplate::default().render(&records);
        let mut gpt = SimulatedExpert::new(ModelPersonality::CHATGPT_4O);
        let answer = gpt.complete(&prompt).unwrap();
        assert!(answer.starts_with("Verdict: ANOMALOUS"), "{answer}");
        assert!(answer.contains("Signaling storm"), "{answer}");
        assert!(answer.contains("Recommended remediation"));

        let mut llama = SimulatedExpert::new(ModelPersonality::LLAMA3);
        let answer = llama.complete(&prompt).unwrap();
        assert!(answer.starts_with("Verdict: BENIGN"), "Llama3 should miss floods: {answer}");
    }

    #[test]
    fn garbage_prompts_do_not_crash() {
        let mut expert = SimulatedExpert::new(ModelPersonality::ORACLE);
        let a = expert.complete("hello").unwrap();
        assert!(a.contains("BENIGN"));
        let b = expert
            .complete("<DATA>\nnot a record\n</DATA>")
            .unwrap();
        assert!(b.contains("does not parse"));
    }

    #[test]
    fn rest_backend_builds_request_but_errors_offline() {
        let mut rest = RestBackend::new("https://api.example.com/v1/chat/completions", "gpt-4o");
        let body = rest.request_body("hi");
        assert!(body.contains("\"model\":\"gpt-4o\""));
        let err = rest.complete("hi").unwrap_err();
        assert_eq!(err.category(), "io");
    }
}
