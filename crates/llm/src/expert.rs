//! The cellular-security analysis engine.
//!
//! Performs, deterministically, the analysis steps the paper observes
//! capable LLMs performing on rendered telemetry (§4.2): per-connection
//! sequence conformance, identifier-reuse analysis across sessions,
//! signaling-rate analysis, security-algorithm audit, and plaintext-identity
//! audit. Findings become typed [`AnalysisSignal`]s; the report renders them
//! as the four §3.3 outputs — classification, explanation, attribution, and
//! remediation.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use xsec_mobiflow::UeMobiFlow;
use xsec_proto::MessageKind;
use xsec_types::{AttackKind, Supi, Tmsi};

/// One analysis finding.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisSignal {
    /// Many connections arriving rapidly and stalling before registration —
    /// the signaling-storm shape of Figure 2b.
    SignalingFlood {
        /// `RRCSetupRequest`s in the window.
        setups: usize,
        /// Distinct RNTIs among them.
        distinct_rntis: usize,
        /// Connections that saw a challenge but never answered it.
        stalled: usize,
    },
    /// The same temporary identity presented on multiple connections.
    TmsiReplay {
        /// The replayed identity.
        tmsi: Tmsi,
        /// Number of distinct connections presenting it.
        connections: usize,
    },
    /// A message arrived where the 24.501 procedure grammar forbids it.
    OrderingViolation {
        /// The connection.
        conn: u32,
        /// The offending message.
        got: MessageKind,
        /// What was expected instead.
        expected: &'static str,
    },
    /// A permanent identity crossed the air in plaintext.
    PlaintextIdentityExposure {
        /// The connection.
        conn: u32,
        /// The exposed identity.
        supi: Supi,
        /// `true` when the exposure sits inside a *legal* identity
        /// procedure (the hard, standards-compliant-looking case).
        compliant_position: bool,
    },
    /// A session negotiated NEA0/NIA0.
    NullSecurity {
        /// The connection.
        conn: u32,
    },
}

impl AnalysisSignal {
    /// The attack this signal is primary evidence for.
    pub fn implicates(&self) -> AttackKind {
        match self {
            AnalysisSignal::SignalingFlood { .. } => AttackKind::BtsDos,
            AnalysisSignal::TmsiReplay { .. } => AttackKind::BlindDos,
            AnalysisSignal::OrderingViolation { .. } => AttackKind::DownlinkIdExtraction,
            AnalysisSignal::PlaintextIdentityExposure { compliant_position, .. } => {
                if *compliant_position {
                    AttackKind::UplinkIdExtraction
                } else {
                    AttackKind::DownlinkIdExtraction
                }
            }
            AnalysisSignal::NullSecurity { .. } => AttackKind::NullCipher,
        }
    }
}

/// The engine's full report on one telemetry window.
#[derive(Debug, Clone)]
pub struct ExpertReport {
    /// Findings, in detection order.
    pub signals: Vec<AnalysisSignal>,
    /// Ranked attack suspicion (most likely first, up to 3, deduplicated).
    pub suspected: Vec<AttackKind>,
}

impl ExpertReport {
    /// Whether the window should be classified anomalous.
    pub fn is_anomalous(&self) -> bool {
        !self.signals.is_empty()
    }
}

/// Analysis thresholds.
#[derive(Debug, Clone)]
pub struct ExpertEngine {
    /// Minimum setup requests for flood suspicion.
    pub flood_min_setups: usize,
    /// Minimum stalled handshakes for flood suspicion.
    pub flood_min_stalled: usize,
}

impl Default for ExpertEngine {
    fn default() -> Self {
        ExpertEngine { flood_min_setups: 5, flood_min_stalled: 3 }
    }
}

impl ExpertEngine {
    /// Analyzes a telemetry window.
    pub fn analyze(&self, records: &[UeMobiFlow]) -> ExpertReport {
        let mut signals = Vec::new();

        // --- per-connection sequence view ---------------------------------
        let mut conns: BTreeMap<u32, Vec<&UeMobiFlow>> = BTreeMap::new();
        for r in records {
            conns.entry(r.du_ue_id).or_default().push(r);
        }

        // Sequence conformance + identity audit per connection.
        for (conn, seq) in &conns {
            let mut identity_request_open = false;
            let mut auth_outstanding = false;
            let mut last_kind: Option<MessageKind> = None;
            for r in seq {
                // Skip exact duplicates (retransmissions).
                if last_kind == Some(r.msg) {
                    continue;
                }
                last_kind = Some(r.msg);
                match r.msg {
                    MessageKind::NasAuthenticationRequest => auth_outstanding = true,
                    MessageKind::NasAuthenticationResponse
                    | MessageKind::NasAuthenticationFailure => auth_outstanding = false,
                    MessageKind::NasIdentityRequest => identity_request_open = true,
                    MessageKind::NasIdentityResponse => {
                        if !identity_request_open && auth_outstanding {
                            signals.push(AnalysisSignal::OrderingViolation {
                                conn: *conn,
                                got: MessageKind::NasIdentityResponse,
                                expected: "AuthenticationResponse to the outstanding challenge",
                            });
                        }
                        let compliant = identity_request_open;
                        identity_request_open = false;
                        if let Some(supi) = r.supi {
                            signals.push(AnalysisSignal::PlaintextIdentityExposure {
                                conn: *conn,
                                supi,
                                compliant_position: compliant && !auth_outstanding,
                            });
                        }
                    }
                    _ => {
                        // Any other message carrying a plaintext SUPI.
                        if let Some(supi) = r.supi {
                            signals.push(AnalysisSignal::PlaintextIdentityExposure {
                                conn: *conn,
                                supi,
                                compliant_position: false,
                            });
                        }
                    }
                }
            }
        }

        // Null-security audit (one signal per connection).
        let mut null_conns = BTreeSet::new();
        for r in records {
            let null = r.cipher_alg.map(|c| c.is_null()).unwrap_or(false)
                && r.integrity_alg.map(|i| i.is_null()).unwrap_or(false);
            if null && null_conns.insert(r.du_ue_id) {
                signals.push(AnalysisSignal::NullSecurity { conn: r.du_ue_id });
            }
        }

        // TMSI replay analysis across connections.
        let mut tmsi_conns: HashMap<Tmsi, BTreeSet<u32>> = HashMap::new();
        for r in records {
            if let Some(tmsi) = r.tmsi {
                tmsi_conns.entry(tmsi).or_default().insert(r.du_ue_id);
            }
        }
        let mut replays: Vec<(Tmsi, usize)> = tmsi_conns
            .into_iter()
            .filter(|(_, conns)| conns.len() >= 2)
            .map(|(t, conns)| (t, conns.len()))
            .collect();
        replays.sort_by_key(|(t, _)| *t);
        for (tmsi, connections) in replays {
            signals.push(AnalysisSignal::TmsiReplay { tmsi, connections });
        }

        // Signaling-rate analysis.
        let setups: Vec<&UeMobiFlow> =
            records.iter().filter(|r| r.msg == MessageKind::RrcSetupRequest).collect();
        let distinct_rntis: BTreeSet<u16> = setups.iter().map(|r| r.rnti.0).collect();
        let stalled = conns
            .values()
            .filter(|seq| {
                let challenged =
                    seq.iter().any(|r| r.msg == MessageKind::NasAuthenticationRequest);
                let answered = seq.iter().any(|r| {
                    matches!(
                        r.msg,
                        MessageKind::NasAuthenticationResponse
                            | MessageKind::NasRegistrationAccept
                    )
                });
                challenged && !answered
            })
            .count();
        if setups.len() >= self.flood_min_setups && stalled >= self.flood_min_stalled {
            signals.push(AnalysisSignal::SignalingFlood {
                setups: setups.len(),
                distinct_rntis: distinct_rntis.len(),
                stalled,
            });
        }

        // Rank suspicion: order signals by specificity (floods and replays
        // are the loudest), dedupe attack kinds, cap at 3.
        let mut suspected = Vec::new();
        let mut ranked: Vec<&AnalysisSignal> = signals.iter().collect();
        ranked.sort_by_key(|s| match s {
            AnalysisSignal::SignalingFlood { .. } => 0,
            AnalysisSignal::TmsiReplay { .. } => 1,
            AnalysisSignal::OrderingViolation { .. } => 2,
            AnalysisSignal::PlaintextIdentityExposure { .. } => 3,
            AnalysisSignal::NullSecurity { .. } => 4,
        });
        for signal in ranked {
            let attack = signal.implicates();
            if !suspected.contains(&attack) {
                suspected.push(attack);
            }
            if suspected.len() == 3 {
                break;
            }
        }

        ExpertReport { signals, suspected }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_types::{CellId, CipherAlg, IntegrityAlg, Plmn, Rnti, Timestamp};

    fn record(id: u64, conn: u32, msg: MessageKind) -> UeMobiFlow {
        UeMobiFlow {
            msg_id: id,
            timestamp: Timestamp(id * 1_000),
            cell: CellId(1),
            rnti: Rnti(0x4600 + conn as u16),
            du_ue_id: conn,
            direction: msg.direction(),
            msg,
            tmsi: None,
            supi: None,
            cipher_alg: None,
            integrity_alg: None,
            establishment_cause: None,
            release_cause: None,
        }
    }

    fn benign_ladder(conn: u32, base: u64) -> Vec<UeMobiFlow> {
        use MessageKind as K;
        [
            K::RrcSetupRequest,
            K::RrcSetup,
            K::RrcSetupComplete,
            K::NasRegistrationRequest,
            K::NasAuthenticationRequest,
            K::NasAuthenticationResponse,
            K::NasSecurityModeCommand,
            K::NasSecurityModeComplete,
            K::NasRegistrationAccept,
            K::NasRegistrationComplete,
        ]
        .into_iter()
        .enumerate()
        .map(|(i, k)| record(base + i as u64, conn, k))
        .collect()
    }

    #[test]
    fn benign_ladder_yields_no_signals() {
        let report = ExpertEngine::default().analyze(&benign_ladder(1, 0));
        assert!(!report.is_anomalous(), "signals: {:?}", report.signals);
        assert!(report.suspected.is_empty());
    }

    #[test]
    fn flood_is_detected() {
        use MessageKind as K;
        let mut records = Vec::new();
        for conn in 1..=6u32 {
            for (i, k) in [
                K::RrcSetupRequest,
                K::RrcSetup,
                K::RrcSetupComplete,
                K::NasRegistrationRequest,
                K::NasAuthenticationRequest,
            ]
            .into_iter()
            .enumerate()
            {
                records.push(record(conn as u64 * 10 + i as u64, conn, k));
            }
        }
        let report = ExpertEngine::default().analyze(&records);
        let flood = report
            .signals
            .iter()
            .find(|s| matches!(s, AnalysisSignal::SignalingFlood { .. }))
            .expect("flood signal");
        if let AnalysisSignal::SignalingFlood { setups, distinct_rntis, stalled } = flood {
            assert_eq!(*setups, 6);
            assert_eq!(*distinct_rntis, 6);
            assert_eq!(*stalled, 6);
        }
        assert_eq!(report.suspected[0], AttackKind::BtsDos);
    }

    #[test]
    fn tmsi_replay_is_detected() {
        let mut records = benign_ladder(1, 0);
        records.extend(benign_ladder(2, 100));
        for r in &mut records {
            r.tmsi = Some(Tmsi(0xBEEF)); // same TMSI on both connections
        }
        let report = ExpertEngine::default().analyze(&records);
        assert!(report
            .signals
            .iter()
            .any(|s| matches!(s, AnalysisSignal::TmsiReplay { connections: 2, .. })));
        assert!(report.suspected.contains(&AttackKind::BlindDos));
    }

    #[test]
    fn ordering_violation_and_exposure_mean_downlink_extraction() {
        use MessageKind as K;
        let mut records: Vec<UeMobiFlow> = [
            K::RrcSetupRequest,
            K::RrcSetup,
            K::RrcSetupComplete,
            K::NasRegistrationRequest,
            K::NasAuthenticationRequest,
            K::NasIdentityResponse,
        ]
        .into_iter()
        .enumerate()
        .map(|(i, k)| record(i as u64, 1, k))
        .collect();
        records[5].supi = Some(Supi::new(Plmn::TEST, 42));
        let report = ExpertEngine::default().analyze(&records);
        assert!(report
            .signals
            .iter()
            .any(|s| matches!(s, AnalysisSignal::OrderingViolation { .. })));
        assert!(report.signals.iter().any(|s| matches!(
            s,
            AnalysisSignal::PlaintextIdentityExposure { compliant_position: false, .. }
        )));
        assert_eq!(report.suspected[0], AttackKind::DownlinkIdExtraction);
    }

    #[test]
    fn compliant_exposure_means_uplink_extraction() {
        use MessageKind as K;
        let mut records: Vec<UeMobiFlow> = [
            K::RrcSetupRequest,
            K::RrcSetup,
            K::RrcSetupComplete,
            K::NasRegistrationRequest,
            K::NasIdentityRequest,
            K::NasIdentityResponse,
        ]
        .into_iter()
        .enumerate()
        .map(|(i, k)| record(i as u64, 1, k))
        .collect();
        records[5].supi = Some(Supi::new(Plmn::TEST, 42));
        let report = ExpertEngine::default().analyze(&records);
        // No ordering violation — the trace is standards compliant.
        assert!(!report
            .signals
            .iter()
            .any(|s| matches!(s, AnalysisSignal::OrderingViolation { .. })));
        assert!(report.signals.iter().any(|s| matches!(
            s,
            AnalysisSignal::PlaintextIdentityExposure { compliant_position: true, .. }
        )));
        assert_eq!(report.suspected[0], AttackKind::UplinkIdExtraction);
    }

    #[test]
    fn null_security_is_detected_once_per_connection() {
        let mut records = benign_ladder(1, 0);
        for r in &mut records[6..] {
            r.cipher_alg = Some(CipherAlg::Nea0);
            r.integrity_alg = Some(IntegrityAlg::Nia0);
        }
        let report = ExpertEngine::default().analyze(&records);
        let nulls = report
            .signals
            .iter()
            .filter(|s| matches!(s, AnalysisSignal::NullSecurity { .. }))
            .count();
        assert_eq!(nulls, 1);
        assert_eq!(report.suspected[0], AttackKind::NullCipher);
    }

    #[test]
    fn suspicion_list_caps_at_three() {
        // Construct a window exhibiting four signal classes.
        use MessageKind as K;
        let mut records = Vec::new();
        for conn in 1..=6u32 {
            for (i, k) in [
                K::RrcSetupRequest,
                K::RrcSetup,
                K::RrcSetupComplete,
                K::NasRegistrationRequest,
                K::NasAuthenticationRequest,
            ]
            .into_iter()
            .enumerate()
            {
                let mut r = record(conn as u64 * 10 + i as u64, conn, k);
                r.tmsi = Some(Tmsi(7));
                r.cipher_alg = Some(CipherAlg::Nea0);
                r.integrity_alg = Some(IntegrityAlg::Nia0);
                records.push(r);
            }
        }
        let report = ExpertEngine::default().analyze(&records);
        assert!(report.suspected.len() <= 3);
        assert_eq!(report.suspected[0], AttackKind::BtsDos);
        assert_eq!(report.suspected[1], AttackKind::BlindDos);
    }

    #[test]
    fn retransmissions_do_not_trip_ordering_checks() {
        let mut records = benign_ladder(1, 0);
        // Duplicate the auth request (retransmission).
        let dup = records[4].clone();
        records.insert(5, dup);
        let report = ExpertEngine::default().analyze(&records);
        assert!(!report.is_anomalous(), "signals: {:?}", report.signals);
    }
}
