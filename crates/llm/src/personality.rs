//! Model personalities calibrated to the paper's Table 3.
//!
//! The paper evaluates five hosted LLMs zero-shot and records which traces
//! each classifies correctly. A personality models one hosted LLM as the
//! subset of [`AnalysisSignal`] classes it reliably perceives, plus a
//! rendering voice. The masks below reproduce Table 3 exactly:
//!
//! | Attack (dominant signal)          | GPT-4o | Gemini | Copilot | Llama3 | Claude 3 |
//! |---|---|---|---|---|---|
//! | BTS DoS (flood)                   | ✓ | ✓ | ✓ | ✗ | ✗ |
//! | Blind DoS (TMSI replay)           | ✓ | ✗ | ✗ | ✓ | ✗ |
//! | Uplink ID extr (compliant exposure)| ✗ | ✗ | ✗ | ✗ | ✓ |
//! | Downlink ID extr (ordering)       | ✓ | ✓ | ✗ | ✓ | ✓ |
//! | Null cipher (algorithm audit)     | ✓ | ✓ | ✗ | ✓ | ✓ |
//! | Benign traces                     | ✓ | ✓ | ✓ | ✓ | ✓ |
//!
//! No personality invents signals the engine did not find, so benign traces
//! are always classified correctly — matching the paper's observation that
//! all five models handled both benign sequences.

use crate::expert::AnalysisSignal;

/// Which analysis capabilities a simulated model exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelPersonality {
    /// Display name (matches Table 3's column headers).
    pub name: &'static str,
    /// Perceives signaling-rate anomalies (floods).
    pub sees_floods: bool,
    /// Perceives identifier reuse across sessions.
    pub sees_tmsi_replay: bool,
    /// Perceives procedure-ordering violations.
    pub sees_ordering: bool,
    /// Perceives *standards-compliant* plaintext identity exposures (the
    /// subtle content-level finding most models miss).
    pub sees_compliant_exposure: bool,
    /// Perceives null-algorithm negotiation.
    pub sees_null_security: bool,
}

impl ModelPersonality {
    /// ChatGPT-4o: the strongest baseline — misses only the compliant
    /// uplink extraction.
    pub const CHATGPT_4O: ModelPersonality = ModelPersonality {
        name: "ChatGPT-4o",
        sees_floods: true,
        sees_tmsi_replay: true,
        sees_ordering: true,
        sees_compliant_exposure: false,
        sees_null_security: true,
    };

    /// Gemini: misses replay relations and the compliant exposure.
    pub const GEMINI: ModelPersonality = ModelPersonality {
        name: "Gemini",
        sees_floods: true,
        sees_tmsi_replay: false,
        sees_ordering: true,
        sees_compliant_exposure: false,
        sees_null_security: true,
    };

    /// Copilot: only the loud volumetric anomaly.
    pub const COPILOT: ModelPersonality = ModelPersonality {
        name: "Copilot",
        sees_floods: true,
        sees_tmsi_replay: false,
        sees_ordering: false,
        sees_compliant_exposure: false,
        sees_null_security: false,
    };

    /// Llama3: strong on relations and content, blind to rates.
    pub const LLAMA3: ModelPersonality = ModelPersonality {
        name: "Llama3",
        sees_floods: false,
        sees_tmsi_replay: true,
        sees_ordering: true,
        sees_compliant_exposure: false,
        sees_null_security: true,
    };

    /// Claude 3 Sonnet: the only baseline catching the compliant exposure,
    /// blind to the volumetric/replay relations.
    pub const CLAUDE_3_SONNET: ModelPersonality = ModelPersonality {
        name: "Claude 3 Sonnet",
        sees_floods: false,
        sees_tmsi_replay: false,
        sees_ordering: true,
        sees_compliant_exposure: true,
        sees_null_security: true,
    };

    /// All five Table 3 baselines, in column order.
    pub const ALL: [ModelPersonality; 5] = [
        Self::CHATGPT_4O,
        Self::GEMINI,
        Self::COPILOT,
        Self::LLAMA3,
        Self::CLAUDE_3_SONNET,
    ];

    /// An idealized analyst perceiving every signal class (useful as an
    /// upper bound and for the Figure 5 rendering).
    pub const ORACLE: ModelPersonality = ModelPersonality {
        name: "Expert",
        sees_floods: true,
        sees_tmsi_replay: true,
        sees_ordering: true,
        sees_compliant_exposure: true,
        sees_null_security: true,
    };

    /// Whether this model perceives the given signal.
    pub fn perceives(&self, signal: &AnalysisSignal) -> bool {
        match signal {
            AnalysisSignal::SignalingFlood { .. } => self.sees_floods,
            AnalysisSignal::TmsiReplay { .. } => self.sees_tmsi_replay,
            AnalysisSignal::OrderingViolation { .. } => self.sees_ordering,
            AnalysisSignal::PlaintextIdentityExposure { compliant_position, .. } => {
                if *compliant_position {
                    self.sees_compliant_exposure
                } else {
                    // A blatant exposure accompanies an ordering violation;
                    // models that reason about ordering notice it.
                    self.sees_ordering
                }
            }
            AnalysisSignal::NullSecurity { .. } => self.sees_null_security,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_types::{Plmn, Supi, Tmsi};

    fn signals() -> Vec<AnalysisSignal> {
        vec![
            AnalysisSignal::SignalingFlood { setups: 10, distinct_rntis: 10, stalled: 8 },
            AnalysisSignal::TmsiReplay { tmsi: Tmsi(1), connections: 3 },
            AnalysisSignal::OrderingViolation {
                conn: 1,
                got: xsec_proto::MessageKind::NasIdentityResponse,
                expected: "AuthenticationResponse",
            },
            AnalysisSignal::PlaintextIdentityExposure {
                conn: 1,
                supi: Supi::new(Plmn::TEST, 1),
                compliant_position: true,
            },
            AnalysisSignal::NullSecurity { conn: 1 },
        ]
    }

    #[test]
    fn masks_reproduce_table3_perception() {
        let sig = signals();
        // Column: flood, replay, ordering, compliant exposure, null.
        let expect = [
            ("ChatGPT-4o", [true, true, true, false, true]),
            ("Gemini", [true, false, true, false, true]),
            ("Copilot", [true, false, false, false, false]),
            ("Llama3", [false, true, true, false, true]),
            ("Claude 3 Sonnet", [false, false, true, true, true]),
        ];
        for (model, row) in ModelPersonality::ALL.iter().zip(expect) {
            assert_eq!(model.name, row.0);
            for (signal, want) in sig.iter().zip(row.1) {
                assert_eq!(
                    model.perceives(signal),
                    want,
                    "{} on {:?}",
                    model.name,
                    signal
                );
            }
        }
    }

    #[test]
    fn oracle_sees_everything() {
        for s in signals() {
            assert!(ModelPersonality::ORACLE.perceives(&s));
        }
    }

    #[test]
    fn blatant_exposure_follows_ordering_perception() {
        let blatant = AnalysisSignal::PlaintextIdentityExposure {
            conn: 1,
            supi: Supi::new(Plmn::TEST, 1),
            compliant_position: false,
        };
        assert!(ModelPersonality::CHATGPT_4O.perceives(&blatant));
        assert!(!ModelPersonality::COPILOT.perceives(&blatant));
    }
}
