//! # xsec-llm
//!
//! The LLM *expert referencing* substrate (paper §3.3): prompt templates,
//! the backend abstraction over "a model you can send text to", a simulated
//! cellular-security expert that stands in for the hosted LLMs the paper
//! queries over REST, five model personalities calibrated to the paper's
//! Table 3, and response parsing / cross-comparison with the anomaly
//! detector.
//!
//! ## Why a simulated expert
//!
//! The paper's LLM evaluation is qualitative: five hosted models are asked,
//! zero-shot, to classify and explain seven traces, and a human marks each
//! answer ✓/✗. Hosted models are unavailable here, so the
//! [`expert::ExpertEngine`] performs the same *analysis steps* a competent
//! analyst (or a good LLM) performs on the rendered telemetry — sequence
//! conformance per connection, identifier-reuse analysis, arrival-rate
//! analysis, security-algorithm audit, plaintext-identity audit — and
//! renders its findings as natural-language classification / explanation /
//! attribution / remediation, the four outputs §3.3 enumerates.
//! [`personality::ModelPersonality`] then reproduces each hosted model's
//! observed blind spots (e.g. most models miss the uplink identity
//! extraction because its trace is standards-compliant) by masking which
//! analysis signals each "model" perceives. A [`backend::RestBackend`]
//! shows where a real OpenAI-compatible endpoint would plug in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod expert;
pub mod personality;
pub mod prompt;
pub mod response;

pub use backend::{LlmBackend, RestBackend, SimulatedExpert};
pub use expert::{AnalysisSignal, ExpertEngine, ExpertReport};
pub use personality::ModelPersonality;
pub use prompt::PromptTemplate;
pub use response::{cross_compare, CrossVerdict, ParsedResponse};
