//! The zero-shot prompt template of Figure 5.
//!
//! > *"You are an AI security analyst tasked with identifying potential
//! > attacks within a 5G network. You have access to a cellular traffic
//! > sequence of attributes: `<DATA_DESCRIPTIONS>` `<DATA>` Determine
//! > whether this sequence is anomalous or benign and explain why. Next, if
//! > the sequence constitutes attacks, provide the top 3 most possible
//! > attacks, and describe the implications."*
//!
//! `<DATA>` is the flagged window (plus context) rendered one MobiFlow
//! record per line in the semicolon encoding, which keeps the prompt
//! parseable by both real LLM endpoints and the simulated expert.

use xsec_mobiflow::{encode_ue_record, UeMobiFlow};

/// Markers bracketing the data block inside a rendered prompt.
pub const DATA_BEGIN: &str = "<DATA>";
/// Closing marker of the data block.
pub const DATA_END: &str = "</DATA>";

/// The Figure 5 prompt template.
#[derive(Debug, Clone)]
pub struct PromptTemplate {
    /// The analyst role instruction.
    pub role: String,
    /// The schema explanation substituted for `<DATA_DESCRIPTIONS>`.
    pub data_description: String,
    /// The task instruction following the data.
    pub task: String,
}

impl Default for PromptTemplate {
    fn default() -> Self {
        PromptTemplate {
            role: "You are an AI security analyst tasked with identifying potential attacks \
                   within a 5G network. You have access to a cellular traffic sequence of \
                   attributes:"
                .to_string(),
            data_description: "Each line is one control-plane telemetry record in the form \
                 `v2;UE;msg_id;timestamp_us;cell;rnti_hex;connection;direction;message;tmsi;\
                 supi;cipher_alg;integrity_alg;establishment_cause;release_cause` — message \
                 is the RRC/NAS message name, rnti/tmsi/supi are the UE's radio, temporary \
                 and permanent identifiers ('-' when absent), cipher_alg/integrity_alg are \
                 the negotiated 5G security algorithms (0 means the NULL algorithm), \
                 establishment_cause is the RRC connection establishment cause code, and \
                 release_cause is the RRC release cause (0 normal, 1 radio-link failure, \
                 2 network abort, 3 congestion)."
                .to_string(),
            task: "Determine whether this sequence is anomalous or benign and explain why. \
                   Next, if the sequence constitutes attacks, provide the top 3 most possible \
                   attacks, and describe the implications."
                .to_string(),
        }
    }
}

impl PromptTemplate {
    /// Renders the full prompt for a telemetry window.
    pub fn render(&self, records: &[UeMobiFlow]) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&self.role);
        out.push('\n');
        out.push_str(&self.data_description);
        out.push('\n');
        out.push_str(DATA_BEGIN);
        out.push('\n');
        for r in records {
            out.push_str(&encode_ue_record(r));
            out.push('\n');
        }
        out.push_str(DATA_END);
        out.push('\n');
        out.push_str(&self.task);
        out
    }

    /// Extracts the record lines back out of a rendered prompt — how the
    /// simulated expert "reads" its input without any side channel.
    pub fn extract_data(prompt: &str) -> Option<Vec<String>> {
        let begin = prompt.find(DATA_BEGIN)? + DATA_BEGIN.len();
        let end = prompt[begin..].find(DATA_END)? + begin;
        Some(
            prompt[begin..end]
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(String::from)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_proto::{Direction, MessageKind};
    use xsec_types::{CellId, Rnti, Timestamp};

    fn record(id: u64) -> UeMobiFlow {
        UeMobiFlow {
            msg_id: id,
            timestamp: Timestamp(id),
            cell: CellId(1),
            rnti: Rnti(0x4601),
            du_ue_id: 1,
            direction: Direction::Uplink,
            msg: MessageKind::RrcSetupRequest,
            tmsi: None,
            supi: None,
            cipher_alg: None,
            integrity_alg: None,
            establishment_cause: None,
            release_cause: None,
        }
    }

    #[test]
    fn render_contains_all_sections() {
        let prompt = PromptTemplate::default().render(&[record(0), record(1)]);
        assert!(prompt.contains("AI security analyst"));
        assert!(prompt.contains("anomalous or benign"));
        assert!(prompt.contains("top 3 most possible attacks"));
        assert!(prompt.contains(DATA_BEGIN) && prompt.contains(DATA_END));
        assert_eq!(prompt.matches("RRCSetupRequest").count(), 2);
    }

    #[test]
    fn extract_data_round_trips() {
        let records = [record(0), record(1), record(2)];
        let prompt = PromptTemplate::default().render(&records);
        let lines = PromptTemplate::extract_data(&prompt).unwrap();
        assert_eq!(lines.len(), 3);
        for (line, r) in lines.iter().zip(&records) {
            assert_eq!(xsec_mobiflow::decode_ue_record(line).unwrap(), *r);
        }
    }

    #[test]
    fn extract_data_handles_missing_markers() {
        assert_eq!(PromptTemplate::extract_data("no data here"), None);
    }

    #[test]
    fn empty_window_renders_and_extracts_empty() {
        let prompt = PromptTemplate::default().render(&[]);
        assert_eq!(PromptTemplate::extract_data(&prompt).unwrap(), Vec::<String>::new());
    }
}
