//! Near-real-time control-loop budget auditing.
//!
//! O-RAN places the nRT-RIC control loop between 10 ms and 1 s (§2.1 of the
//! paper). The tracker records per-invocation handler latencies (wall
//! clock), classifies them against the budget, and reports the distribution
//! — the evidence behind the claim that a *lightweight* detector belongs in
//! the loop while the LLM does not (§3.3's motivation for chaining).

use std::time::Duration as StdDuration;

/// Where a handler invocation landed relative to the near-RT budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyClass {
    /// Under 10 ms — faster than required (fits even real-time loops).
    UnderBudget,
    /// Within the 10 ms – 1 s near-RT window.
    WithinBudget,
    /// Over 1 s — would miss the near-RT deadline.
    OverBudget,
}

/// Classifies one duration against the near-RT window.
pub fn classify(d: StdDuration) -> LatencyClass {
    if d < StdDuration::from_millis(10) {
        LatencyClass::UnderBudget
    } else if d <= StdDuration::from_secs(1) {
        LatencyClass::WithinBudget
    } else {
        LatencyClass::OverBudget
    }
}

/// Accumulates handler latencies.
#[derive(Debug, Default, Clone)]
pub struct LatencyTracker {
    samples_us: Vec<u64>,
    over_budget: u64,
}

impl LatencyTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        LatencyTracker::default()
    }

    /// Records one invocation.
    pub fn record(&mut self, d: StdDuration) {
        self.samples_us.push(d.as_micros() as u64);
        if classify(d) == LatencyClass::OverBudget {
            self.over_budget += 1;
        }
    }

    /// Number of recorded invocations.
    pub fn count(&self) -> usize {
        self.samples_us.len()
    }

    /// Invocations that blew the 1 s deadline.
    pub fn over_budget(&self) -> u64 {
        self.over_budget
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.samples_us.is_empty() {
            0.0
        } else {
            self.samples_us.iter().sum::<u64>() as f64 / self.samples_us.len() as f64
        }
    }

    /// Maximum observed latency in microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.samples_us.iter().copied().max().unwrap_or(0)
    }

    /// The p-th percentile latency in microseconds.
    pub fn percentile_us(&self, pct: f64) -> u64 {
        if self.samples_us.is_empty() {
            return 0;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let rank = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        assert_eq!(classify(StdDuration::from_millis(1)), LatencyClass::UnderBudget);
        assert_eq!(classify(StdDuration::from_millis(10)), LatencyClass::WithinBudget);
        assert_eq!(classify(StdDuration::from_millis(999)), LatencyClass::WithinBudget);
        assert_eq!(classify(StdDuration::from_secs(1)), LatencyClass::WithinBudget);
        assert_eq!(classify(StdDuration::from_millis(1001)), LatencyClass::OverBudget);
    }

    #[test]
    fn tracker_statistics() {
        let mut t = LatencyTracker::new();
        for ms in [1u64, 2, 3, 4, 2000] {
            t.record(StdDuration::from_millis(ms));
        }
        assert_eq!(t.count(), 5);
        assert_eq!(t.over_budget(), 1);
        assert_eq!(t.max_us(), 2_000_000);
        assert!((t.mean_us() - 402_000.0).abs() < 1.0);
        assert_eq!(t.percentile_us(50.0), 3_000);
    }

    #[test]
    fn empty_tracker_is_zeroed() {
        let t = LatencyTracker::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.mean_us(), 0.0);
        assert_eq!(t.max_us(), 0);
        assert_eq!(t.percentile_us(99.0), 0);
    }
}
