//! Capability-scoped xApp identity and authorization.
//!
//! The OSC platform's RMR router trusts every client: anything holding the
//! router can post to `a1-policies` or `findings` and drive the Mitigator.
//! That is exactly the rogue-xApp gap called out by "Securing 5G OpenRAN
//! with a Scalable Authorization Framework for xApps" (arXiv:2212.11465)
//! and weaponized by the xApp-level attacks in arXiv:2406.12299. This
//! module closes it with deny-by-default capability grants:
//!
//! * [`XAppIdentity`] — a stable principal name, registered once with the
//!   router before it is sealed.
//! * [`Capability`] — one grantable right: subscribe/publish on a topic,
//!   emit a Control Request of one action kind, or perform one A1 policy
//!   op. `"*"` grants a whole class.
//! * [`Grants`] — the capability set attached to an identity at
//!   registration; checked on every scoped operation.
//!
//! Enforcement lives at the three actuation choke points: the router
//! (topic ACLs via [`crate::router::RouterHandle`]), the Mitigator (A1 ops
//! verified against the caller's registered grants before the
//! `PolicyStore` is touched), and the platform's control emission path
//! (per-action-kind checks in `XAppContext`). Every denial increments
//! `xsec_authz_denied_total{xapp,capability}` and lands in the flight
//! recorder so it shows up in `incidents.jsonl`.

/// A registered xApp principal. The name doubles as the metric label, so
/// keep it short and stable (the platform uses `XApp::name()`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct XAppIdentity {
    /// The principal name (e.g. `"mobiwatch"`, `"mitigator"`, `"smo"`).
    pub name: String,
}

impl XAppIdentity {
    /// An identity for `name`.
    pub fn named(name: &str) -> Self {
        XAppIdentity { name: name.to_string() }
    }
}

/// One grantable right. `Control` targets are `MitigationAction::name()`
/// strings (`"release-ue"`, `"blacklist-rnti"`, `"force-reauth"`,
/// `"quarantine-cell"`, `"rate-limit-cause"`); `A1` targets are
/// `A1Request::op()` strings (`"create"`, `"update"`, `"delete"`,
/// `"set-enabled"`, `"query"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Receive messages published on a topic.
    Subscribe(String),
    /// Publish messages on a topic.
    Publish(String),
    /// Emit a closed-loop Control Request of one action kind.
    Control(String),
    /// Perform one A1 policy-management operation.
    A1(String),
}

impl Capability {
    /// Subscribe right on `topic`.
    pub fn subscribe(topic: &str) -> Self {
        Capability::Subscribe(topic.to_string())
    }

    /// Publish right on `topic`.
    pub fn publish(topic: &str) -> Self {
        Capability::Publish(topic.to_string())
    }

    /// Control-emission right for action `kind`.
    pub fn control(kind: &str) -> Self {
        Capability::Control(kind.to_string())
    }

    /// A1 policy-op right for `op`.
    pub fn a1(op: &str) -> Self {
        Capability::A1(op.to_string())
    }

    /// The `capability` metric label: `class:target`, e.g.
    /// `"publish:a1-policies"` or `"control:quarantine-cell"`.
    pub fn label(&self) -> String {
        match self {
            Capability::Subscribe(t) => format!("subscribe:{t}"),
            Capability::Publish(t) => format!("publish:{t}"),
            Capability::Control(k) => format!("control:{k}"),
            Capability::A1(op) => format!("a1:{op}"),
        }
    }
}

/// The capability set granted to one identity. Deny-by-default: an empty
/// `Grants` allows nothing; each builder call adds one right. `"*"` as a
/// target grants the whole class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Grants {
    subscribe: Vec<String>,
    publish: Vec<String>,
    control: Vec<String>,
    a1: Vec<String>,
}

impl Grants {
    /// The empty grant set (allows nothing).
    pub fn none() -> Self {
        Grants::default()
    }

    /// Adds a subscribe right on `topic`.
    pub fn subscribe(mut self, topic: &str) -> Self {
        self.subscribe.push(topic.to_string());
        self
    }

    /// Adds a publish right on `topic`.
    pub fn publish(mut self, topic: &str) -> Self {
        self.publish.push(topic.to_string());
        self
    }

    /// Adds a control-emission right for action `kind`.
    pub fn control(mut self, kind: &str) -> Self {
        self.control.push(kind.to_string());
        self
    }

    /// Grants every control action kind (`"*"`).
    pub fn control_all(self) -> Self {
        self.control("*")
    }

    /// Adds an A1 policy-op right for `op`.
    pub fn a1(mut self, op: &str) -> Self {
        self.a1.push(op.to_string());
        self
    }

    /// Grants every A1 policy op (`"*"`).
    pub fn a1_all(self) -> Self {
        self.a1("*")
    }

    /// Whether this grant set allows `cap`.
    pub fn allows(&self, cap: &Capability) -> bool {
        fn hit(granted: &[String], target: &str) -> bool {
            granted.iter().any(|g| g == "*" || g == target)
        }
        match cap {
            Capability::Subscribe(t) => hit(&self.subscribe, t),
            Capability::Publish(t) => hit(&self.publish, t),
            Capability::Control(k) => hit(&self.control, k),
            Capability::A1(op) => hit(&self.a1, op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grants_deny_everything() {
        let g = Grants::none();
        assert!(!g.allows(&Capability::subscribe("findings")));
        assert!(!g.allows(&Capability::publish("findings")));
        assert!(!g.allows(&Capability::control("quarantine-cell")));
        assert!(!g.allows(&Capability::a1("create")));
    }

    #[test]
    fn grants_are_per_target() {
        let g = Grants::none().publish("anomalies").a1("query");
        assert!(g.allows(&Capability::publish("anomalies")));
        assert!(!g.allows(&Capability::publish("a1-policies")));
        assert!(!g.allows(&Capability::subscribe("anomalies")));
        assert!(g.allows(&Capability::a1("query")));
        assert!(!g.allows(&Capability::a1("create")));
    }

    #[test]
    fn wildcard_grants_a_class_not_everything() {
        let g = Grants::none().control_all();
        assert!(g.allows(&Capability::control("release-ue")));
        assert!(g.allows(&Capability::control("quarantine-cell")));
        assert!(!g.allows(&Capability::publish("a1-policies")));
    }

    #[test]
    fn capability_labels_are_class_colon_target() {
        assert_eq!(Capability::publish("findings").label(), "publish:findings");
        assert_eq!(Capability::subscribe("anomalies").label(), "subscribe:anomalies");
        assert_eq!(Capability::control("quarantine-cell").label(), "control:quarantine-cell");
        assert_eq!(Capability::a1("set-enabled").label(), "a1:set-enabled");
    }
}
