//! RMR-style topic router for xApp↔xApp messaging.
//!
//! The OSC platform routes messages between xApps by message type through
//! RMR. Ours is a topic-keyed fan-out over crossbeam channels: publishers
//! never block (the channel is bounded; a slow subscriber drops oldest-first
//! is *not* implemented — instead sends to a full mailbox count as drops,
//! which the stats expose, because silently blocking the near-RT loop would
//! violate its budget).

use crossbeam_channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const MAILBOX_DEPTH: usize = 1024;

#[derive(Default)]
struct Inner {
    topics: HashMap<String, Vec<Sender<Vec<u8>>>>,
    published: u64,
    dropped: u64,
}

/// A cloneable router handle.
#[derive(Clone, Default)]
pub struct Router {
    inner: Arc<Mutex<Inner>>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Router::default()
    }

    /// Subscribes to a topic; returns the mailbox end.
    pub fn subscribe(&self, topic: &str) -> Receiver<Vec<u8>> {
        let (tx, rx) = bounded(MAILBOX_DEPTH);
        self.inner.lock().topics.entry(topic.to_string()).or_default().push(tx);
        rx
    }

    /// Publishes a payload to every subscriber of `topic`. Returns how many
    /// mailboxes accepted it.
    pub fn publish(&self, topic: &str, payload: &[u8]) -> usize {
        let mut inner = self.inner.lock();
        inner.published += 1;
        let mut delivered = 0;
        let mut dropped = 0;
        if let Some(subs) = inner.topics.get_mut(topic) {
            // Prune disconnected subscribers as we go.
            subs.retain(|tx| match tx.try_send(payload.to_vec()) {
                Ok(()) => {
                    delivered += 1;
                    true
                }
                Err(TrySendError::Full(_)) => {
                    dropped += 1;
                    true
                }
                Err(TrySendError::Disconnected(_)) => false,
            });
        }
        inner.dropped += dropped;
        delivered
    }

    /// `(published, dropped)` counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.published, inner.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_reaches_all_subscribers() {
        let router = Router::new();
        let a = router.subscribe("anomalies");
        let b = router.subscribe("anomalies");
        let delivered = router.publish("anomalies", b"alert");
        assert_eq!(delivered, 2);
        assert_eq!(a.try_recv().unwrap(), b"alert");
        assert_eq!(b.try_recv().unwrap(), b"alert");
    }

    #[test]
    fn topics_are_isolated() {
        let router = Router::new();
        let a = router.subscribe("a");
        router.publish("b", b"x");
        assert!(a.try_recv().is_err());
        assert_eq!(router.publish("nobody-listens", b"x"), 0);
    }

    #[test]
    fn disconnected_subscribers_are_pruned() {
        let router = Router::new();
        let rx = router.subscribe("t");
        drop(rx);
        assert_eq!(router.publish("t", b"x"), 0);
    }

    #[test]
    fn full_mailboxes_count_as_drops() {
        let router = Router::new();
        let _rx = router.subscribe("t");
        for _ in 0..MAILBOX_DEPTH {
            router.publish("t", b"fill");
        }
        let delivered = router.publish("t", b"overflow");
        assert_eq!(delivered, 0);
        let (published, dropped) = router.stats();
        assert_eq!(published, MAILBOX_DEPTH as u64 + 1);
        assert_eq!(dropped, 1);
    }
}
