//! RMR-style topic router for xApp↔xApp messaging, with capability-scoped
//! authorization.
//!
//! The OSC platform routes messages between xApps by message type through
//! RMR. Ours is a topic-keyed fan-out over crossbeam channels: publishers
//! never block (the channel is bounded; a slow subscriber drops oldest-first
//! is *not* implemented — instead sends to a full mailbox count as drops,
//! which the stats expose, because silently blocking the near-RT loop would
//! violate its budget).
//!
//! ## Authorization
//!
//! [`Router::new`] builds the *open* (test/compat) router where bare
//! [`Router::subscribe`]/[`Router::publish`] work unauthenticated, exactly
//! as before this module grew identities. Production deployments call
//! [`Router::enforce`]: from then on only [`RouterHandle`]s obtained from
//! [`Router::register`] can move messages, each checked against the
//! [`Grants`] fixed at registration. [`Router::seal`] closes registration
//! once the deployment is wired, so a rogue xApp that gets its hands on the
//! raw router mid-run cannot mint itself an identity. Every denial is
//! counted (`xsec_authz_denied_total{xapp,capability}`) and recorded in the
//! flight recorder via the [`xsec_obs::Obs`] attached with
//! [`Router::attach_obs`].
//!
//! Publishes that reach zero live subscribers are counted separately
//! (`xsec_router_unrouted_total{topic}`) and surfaced as a typed
//! [`PublishError::Unrouted`] through [`Router::try_publish`] /
//! [`RouterHandle::try_publish`], so a policy op posted before the
//! Mitigator subscribes is an error, not a silent drop.

use crate::authz::{Capability, Grants, XAppIdentity};
use crossbeam_channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use xsec_obs::Obs;

const MAILBOX_DEPTH: usize = 1024;

/// Why a publish could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishError {
    /// The caller's grants do not cover the topic (or the router is
    /// enforcing and the caller is anonymous).
    Denied {
        /// The denied principal (`"anonymous"` for unscoped callers).
        xapp: String,
        /// The missing capability label, e.g. `"publish:a1-policies"`.
        capability: String,
    },
    /// No live subscriber exists on the topic — the message reached
    /// nobody and was counted in `xsec_router_unrouted_total{topic}`.
    Unrouted {
        /// The topic that had no subscribers.
        topic: String,
    },
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Denied { xapp, capability } => {
                write!(f, "publish denied: {xapp} lacks {capability}")
            }
            PublishError::Unrouted { topic } => {
                write!(f, "no live subscriber on topic {topic:?}")
            }
        }
    }
}

impl std::error::Error for PublishError {}

/// Why [`Router::register`] refused an identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// Registration is closed ([`Router::seal`] was called).
    Sealed,
    /// The name is already taken — re-registration would let a rogue
    /// shadow an existing principal.
    Duplicate {
        /// The contested principal name.
        name: String,
    },
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::Sealed => write!(f, "router registration is sealed"),
            RegisterError::Duplicate { name } => {
                write!(f, "identity {name:?} is already registered")
            }
        }
    }
}

impl std::error::Error for RegisterError {}

struct Registration {
    token: u64,
    grants: Grants,
}

/// One topic's subscriber list: `(subscription id, mailbox sender)` pairs.
type Subscribers = Vec<(u64, Sender<Vec<u8>>)>;

#[derive(Default)]
struct Inner {
    topics: HashMap<String, Subscribers>,
    next_sub_id: u64,
    published: u64,
    dropped: u64,
    unrouted: HashMap<String, u64>,
    enforcing: bool,
    sealed: bool,
    registry: HashMap<String, Registration>,
    next_registration: u64,
    denied: u64,
    obs: Option<Obs>,
}

/// A cloneable router handle.
#[derive(Clone, Default)]
pub struct Router {
    inner: Arc<Mutex<Inner>>,
}

/// Deterministic splitmix64-style mix — the registration token must not
/// depend on wall clock or OS randomness (deployments are replayable), but
/// must be unguessable-enough that forging an envelope requires actually
/// holding the handle, which is the thing capability tokens model.
fn mix_token(counter: u64, name: &str) -> u64 {
    let mut z = counter.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in name.bytes() {
        z = (z ^ u64::from(b)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    }
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Router {
    /// An empty *open* router: unauthenticated `subscribe`/`publish` work.
    /// This is the test/compat constructor — production deployments call
    /// [`Router::enforce`] before wiring xApps.
    pub fn new() -> Self {
        Router::default()
    }

    /// Attaches the observability handle denials and unrouted publishes
    /// are counted into.
    pub fn attach_obs(&self, obs: &Obs) {
        self.inner.lock().obs = Some(obs.clone());
    }

    /// Switches the router to deny-by-default: anonymous
    /// `subscribe`/`publish` are refused and counted; only registered
    /// [`RouterHandle`]s move messages.
    pub fn enforce(&self) {
        self.inner.lock().enforcing = true;
    }

    /// Whether deny-by-default enforcement is on.
    pub fn enforcing(&self) -> bool {
        self.inner.lock().enforcing
    }

    /// Closes registration. Call once the deployment is wired so no rogue
    /// can mint an identity mid-run.
    pub fn seal(&self) {
        self.inner.lock().sealed = true;
    }

    /// Whether registration is closed.
    pub fn sealed(&self) -> bool {
        self.inner.lock().sealed
    }

    /// Registers `identity` with `grants`, returning the scoped handle all
    /// of its traffic must flow through. Fails once the router is sealed
    /// or if the name is already taken (both failures are recorded as
    /// `register` denials, since they are what a rogue registration
    /// attempt looks like).
    pub fn register(
        &self,
        identity: XAppIdentity,
        grants: Grants,
    ) -> Result<RouterHandle, RegisterError> {
        let outcome = {
            let mut inner = self.inner.lock();
            if inner.sealed {
                Err(RegisterError::Sealed)
            } else if inner.registry.contains_key(&identity.name) {
                Err(RegisterError::Duplicate { name: identity.name.clone() })
            } else {
                inner.next_registration += 1;
                let token = mix_token(inner.next_registration, &identity.name);
                inner
                    .registry
                    .insert(identity.name.clone(), Registration { token, grants: grants.clone() });
                Ok(token)
            }
        };
        match outcome {
            Ok(token) => Ok(RouterHandle {
                router: self.clone(),
                name: identity.name,
                token,
                grants,
            }),
            Err(err) => {
                self.deny(&identity.name, "register");
                Err(err)
            }
        }
    }

    /// Verifies that `name` is registered with `token` and its grants
    /// cover `cap` — the check the Mitigator runs on signed A1 envelopes
    /// before touching the `PolicyStore`. Pure: records nothing; callers
    /// pair a `false` with [`Router::deny`].
    pub fn verify(&self, name: &str, token: u64, cap: &Capability) -> bool {
        let inner = self.inner.lock();
        inner
            .registry
            .get(name)
            .is_some_and(|reg| reg.token == token && reg.grants.allows(cap))
    }

    /// Records one authorization denial: bumps
    /// `xsec_authz_denied_total{xapp,capability}` and writes an
    /// `authz_deny` record into the flight recorder so the denial shows up
    /// in `incidents.jsonl`.
    pub fn deny(&self, xapp: &str, capability: &str) {
        let obs = {
            let mut inner = self.inner.lock();
            inner.denied += 1;
            inner.obs.clone()
        };
        if let Some(obs) = obs {
            obs.counter("xsec_authz_denied_total", &[("xapp", xapp), ("capability", capability)])
                .inc();
            obs.recorder.record_denial(xapp, capability);
        }
    }

    /// Total authorization denials recorded by this router.
    pub fn denied(&self) -> u64 {
        self.inner.lock().denied
    }

    /// How many publishes on `topic` found zero live subscribers.
    pub fn unrouted(&self, topic: &str) -> u64 {
        self.inner.lock().unrouted.get(topic).copied().unwrap_or(0)
    }

    /// Subscribes to a topic; returns the mailbox end. On an enforcing
    /// router anonymous subscription is denied: the returned mailbox is
    /// already disconnected and will never see a message.
    pub fn subscribe(&self, topic: &str) -> Receiver<Vec<u8>> {
        if self.enforcing() {
            self.deny("anonymous", &Capability::subscribe(topic).label());
            return dead_receiver();
        }
        self.subscribe_inner(topic)
    }

    fn subscribe_inner(&self, topic: &str) -> Receiver<Vec<u8>> {
        let (tx, rx) = bounded(MAILBOX_DEPTH);
        let mut inner = self.inner.lock();
        inner.next_sub_id += 1;
        let id = inner.next_sub_id;
        inner.topics.entry(topic.to_string()).or_default().push((id, tx));
        rx
    }

    /// Publishes a payload to every subscriber of `topic`. Returns how many
    /// mailboxes accepted it. On an enforcing router anonymous publish is
    /// denied and returns 0.
    pub fn publish(&self, topic: &str, payload: &[u8]) -> usize {
        if self.enforcing() {
            self.deny("anonymous", &Capability::publish(topic).label());
            return 0;
        }
        self.publish_inner(topic, payload).0
    }

    /// Like [`Router::publish`] but a zero-subscriber topic is a typed
    /// [`PublishError::Unrouted`] instead of an ambiguous 0 (which full
    /// mailboxes also produce).
    pub fn try_publish(&self, topic: &str, payload: &[u8]) -> Result<usize, PublishError> {
        if self.enforcing() {
            let capability = Capability::publish(topic).label();
            self.deny("anonymous", &capability);
            return Err(PublishError::Denied { xapp: "anonymous".to_string(), capability });
        }
        let (delivered, live) = self.publish_inner(topic, payload);
        if live == 0 {
            Err(PublishError::Unrouted { topic: topic.to_string() })
        } else {
            Ok(delivered)
        }
    }

    /// The fan-out itself: snapshot the subscriber list under the lock,
    /// run every `try_send` (and its payload clone) outside it so slow
    /// fan-out never serializes other publishers, then re-lock once to
    /// prune disconnected mailboxes and fold in the counters. Returns
    /// `(delivered, live)` where `live` counts subscribers that still had
    /// a connected mailbox (full counts as live; that is backpressure,
    /// not absence).
    fn publish_inner(&self, topic: &str, payload: &[u8]) -> (usize, usize) {
        let snapshot: Vec<(u64, Sender<Vec<u8>>)> = {
            let mut inner = self.inner.lock();
            inner.published += 1;
            inner.topics.get(topic).cloned().unwrap_or_default()
        };
        let mut delivered = 0usize;
        let mut dropped = 0u64;
        let mut dead: Vec<u64> = Vec::new();
        for (id, tx) in &snapshot {
            match tx.try_send(payload.to_vec()) {
                Ok(()) => delivered += 1,
                Err(TrySendError::Full(_)) => dropped += 1,
                Err(TrySendError::Disconnected(_)) => dead.push(*id),
            }
        }
        let live = snapshot.len() - dead.len();
        let obs = {
            let mut inner = self.inner.lock();
            inner.dropped += dropped;
            if !dead.is_empty() {
                if let Some(subs) = inner.topics.get_mut(topic) {
                    subs.retain(|(id, _)| !dead.contains(id));
                }
            }
            if live == 0 {
                *inner.unrouted.entry(topic.to_string()).or_insert(0) += 1;
                inner.obs.clone()
            } else {
                None
            }
        };
        if let Some(obs) = obs {
            obs.counter("xsec_router_unrouted_total", &[("topic", topic)]).inc();
        }
        (delivered, live)
    }

    /// `(published, dropped)` counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.published, inner.dropped)
    }
}

/// A disconnected mailbox: what a denied subscriber gets, so denial is
/// indistinguishable from an empty topic to the rogue but costs nothing.
fn dead_receiver() -> Receiver<Vec<u8>> {
    let (tx, rx) = bounded(0);
    drop(tx);
    rx
}

/// The scoped handle [`Router::register`] returns: every operation is
/// checked against the grants fixed at registration, and every denial is
/// counted against the identity's name.
#[derive(Clone)]
pub struct RouterHandle {
    router: Router,
    name: String,
    token: u64,
    grants: Grants,
}

impl std::fmt::Debug for RouterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The token is the credential — keep it out of Debug output.
        f.debug_struct("RouterHandle")
            .field("name", &self.name)
            .field("grants", &self.grants)
            .finish_non_exhaustive()
    }
}

impl RouterHandle {
    /// The principal name this handle acts as.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registration token — proof of identity for out-of-band
    /// envelopes (the signed A1 request carries it so the Mitigator can
    /// verify the op against the sender's registered grants).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The router this handle is registered with.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Whether this handle's grants cover `cap`.
    pub fn allows(&self, cap: &Capability) -> bool {
        self.grants.allows(cap)
    }

    /// Records a denial against this identity (used by enforcement points
    /// that check capabilities out-of-band, like the per-kind control
    /// gate).
    pub fn deny(&self, capability: &str) {
        self.router.deny(&self.name, capability);
    }

    /// Subscribes to `topic` if granted; a denied subscription yields an
    /// already-disconnected mailbox and a counted denial.
    pub fn subscribe(&self, topic: &str) -> Receiver<Vec<u8>> {
        let cap = Capability::subscribe(topic);
        if !self.grants.allows(&cap) {
            self.router.deny(&self.name, &cap.label());
            return dead_receiver();
        }
        self.router.subscribe_inner(topic)
    }

    /// Publishes to `topic` if granted; returns mailboxes reached (0 when
    /// denied, with the denial counted).
    pub fn publish(&self, topic: &str, payload: &[u8]) -> usize {
        self.try_publish(topic, payload).unwrap_or_default()
    }

    /// Publishes to `topic`, surfacing denial and zero-subscriber routing
    /// as typed errors.
    pub fn try_publish(&self, topic: &str, payload: &[u8]) -> Result<usize, PublishError> {
        let cap = Capability::publish(topic);
        if !self.grants.allows(&cap) {
            let capability = cap.label();
            self.router.deny(&self.name, &capability);
            return Err(PublishError::Denied { xapp: self.name.clone(), capability });
        }
        let (delivered, live) = self.router.publish_inner(topic, payload);
        if live == 0 {
            Err(PublishError::Unrouted { topic: topic.to_string() })
        } else {
            Ok(delivered)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_reaches_all_subscribers() {
        let router = Router::new();
        let a = router.subscribe("anomalies");
        let b = router.subscribe("anomalies");
        let delivered = router.publish("anomalies", b"alert");
        assert_eq!(delivered, 2);
        assert_eq!(a.try_recv().unwrap(), b"alert");
        assert_eq!(b.try_recv().unwrap(), b"alert");
    }

    #[test]
    fn topics_are_isolated() {
        let router = Router::new();
        let a = router.subscribe("a");
        router.publish("b", b"x");
        assert!(a.try_recv().is_err());
        assert_eq!(router.publish("nobody-listens", b"x"), 0);
    }

    #[test]
    fn disconnected_subscribers_are_pruned() {
        let router = Router::new();
        let rx = router.subscribe("t");
        drop(rx);
        assert_eq!(router.publish("t", b"x"), 0);
    }

    #[test]
    fn full_mailboxes_count_as_drops() {
        let router = Router::new();
        let _rx = router.subscribe("t");
        for _ in 0..MAILBOX_DEPTH {
            router.publish("t", b"fill");
        }
        let delivered = router.publish("t", b"overflow");
        assert_eq!(delivered, 0);
        let (published, dropped) = router.stats();
        assert_eq!(published, MAILBOX_DEPTH as u64 + 1);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn unrouted_publishes_are_counted_and_typed() {
        let router = Router::new();
        assert_eq!(
            router.try_publish("nobody", b"x"),
            Err(PublishError::Unrouted { topic: "nobody".to_string() })
        );
        assert_eq!(router.unrouted("nobody"), 1);
        // Full-mailbox 0 is NOT unrouted: the subscriber exists.
        let _rx = router.subscribe("t");
        for _ in 0..MAILBOX_DEPTH {
            router.publish("t", b"fill");
        }
        assert_eq!(router.try_publish("t", b"overflow"), Ok(0));
        assert_eq!(router.unrouted("t"), 0);
        // A topic whose only subscriber disconnected routes to nobody.
        let rx = router.subscribe("gone");
        drop(rx);
        assert!(matches!(router.try_publish("gone", b"x"), Err(PublishError::Unrouted { .. })));
        assert_eq!(router.unrouted("gone"), 1);
    }

    #[test]
    fn enforcing_router_denies_anonymous_traffic() {
        let router = Router::new();
        router.enforce();
        let rx = router.subscribe("findings");
        assert_eq!(router.publish("findings", b"spoof"), 0);
        assert!(rx.try_recv().is_err(), "denied mailbox must stay empty");
        assert!(matches!(
            router.try_publish("findings", b"spoof"),
            Err(PublishError::Denied { .. })
        ));
        assert_eq!(router.denied(), 3);
    }

    #[test]
    fn scoped_handles_enforce_their_grants() {
        let router = Router::new();
        router.enforce();
        let producer = router
            .register(XAppIdentity::named("producer"), Grants::none().publish("anomalies"))
            .unwrap();
        let consumer = router
            .register(XAppIdentity::named("consumer"), Grants::none().subscribe("anomalies"))
            .unwrap();
        let rx = consumer.subscribe("anomalies");
        assert_eq!(producer.publish("anomalies", b"alert"), 1);
        assert_eq!(rx.try_recv().unwrap(), b"alert");
        // Ungranted directions are denied and counted.
        assert_eq!(producer.publish("findings", b"spoof"), 0);
        let denied_rx = producer.subscribe("anomalies");
        assert!(denied_rx.try_recv().is_err());
        assert!(matches!(
            consumer.try_publish("anomalies", b"up"),
            Err(PublishError::Denied { .. })
        ));
        assert_eq!(router.denied(), 3);
    }

    #[test]
    fn sealed_router_refuses_new_identities() {
        let router = Router::new();
        let _ok = router.register(XAppIdentity::named("early"), Grants::none()).unwrap();
        router.seal();
        let err = router
            .register(XAppIdentity::named("rogue"), Grants::none().publish("a1-policies"))
            .unwrap_err();
        assert_eq!(err, RegisterError::Sealed);
        assert_eq!(router.denied(), 1);
    }

    #[test]
    fn duplicate_identities_are_refused() {
        let router = Router::new();
        let _mit = router
            .register(XAppIdentity::named("mitigator"), Grants::none().control_all())
            .unwrap();
        let err = router.register(XAppIdentity::named("mitigator"), Grants::none()).unwrap_err();
        assert_eq!(err, RegisterError::Duplicate { name: "mitigator".to_string() });
    }

    #[test]
    fn verify_checks_name_token_and_grants() {
        let router = Router::new();
        let smo = router
            .register(XAppIdentity::named("smo"), Grants::none().a1("create"))
            .unwrap();
        assert!(router.verify("smo", smo.token(), &Capability::a1("create")));
        assert!(!router.verify("smo", smo.token(), &Capability::a1("delete")));
        assert!(!router.verify("smo", smo.token().wrapping_add(1), &Capability::a1("create")));
        assert!(!router.verify("ghost", smo.token(), &Capability::a1("create")));
    }

    #[test]
    fn denials_land_in_metrics_and_flight_recorder() {
        let obs = xsec_obs::Obs::new();
        let router = Router::new();
        router.attach_obs(&obs);
        router.enforce();
        router.publish("a1-policies", b"rogue-op");
        let snapshot = obs.snapshot();
        assert_eq!(snapshot.counter_total("xsec_authz_denied_total"), 1);
        let denials = obs.recorder.denials();
        assert_eq!(denials.len(), 1);
        assert_eq!(denials[0].xapp, "anonymous");
        assert_eq!(denials[0].capability, "publish:a1-policies");
    }

    #[test]
    fn tokens_are_deterministic_per_registration_order() {
        let mint = |n: &str| {
            let router = Router::new();
            router.register(XAppIdentity::named(n), Grants::none()).unwrap().token()
        };
        assert_eq!(mint("mobiwatch"), mint("mobiwatch"));
        assert_ne!(mint("mobiwatch"), mint("mitigator"));
    }
}
