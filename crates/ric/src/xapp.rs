//! The xApp framework: what a control-plane application implements to run
//! on the platform.

use crate::authz::Capability;
use crate::router::{Router, RouterHandle};
use xsec_mobiflow::{SharedDataLayer, UeMobiFlow};
use xsec_types::{CellId, Timestamp};

/// A queued closed-loop control action, optionally pinned to the cell whose
/// owning agent must enforce it. The platform routes by cell using the
/// served-cell lists announced in E2 Setup; `cell: None` goes to the first
/// connected agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlOut {
    /// The cell the action targets, when known.
    pub cell: Option<CellId>,
    /// Causal trace id of the detection behind the action, when traced.
    /// The pump remembers it per in-flight Control Request so the FIFO ack
    /// can be correlated back to its incident trace.
    pub trace: Option<u64>,
    /// Encoded control payload (mitigation TLV).
    pub payload: Vec<u8>,
    /// Fan the action out to every agent serving a declared neighbour of
    /// `cell` (see `RicPlatform::set_neighbours`), in addition to the
    /// owning agent. Used for containment actions like QuarantineCell
    /// where adjacent cells should brace for the displaced attacker.
    pub broadcast: bool,
}

/// Everything an xApp may touch while handling an event.
pub struct XAppContext<'a> {
    /// The shared data layer.
    pub sdl: &'a SharedDataLayer,
    /// The message router.
    pub router: &'a Router,
    /// Control payloads the xApp wants sent back to the RAN over E2
    /// (closed-loop feedback); the platform drains and ships them.
    pub control_out: &'a mut Vec<ControlOut>,
    /// The caller's authorization scope, when the app was registered with
    /// an identity ([`crate::platform::RicPlatform::register_xapp_scoped`]).
    /// `None` means the legacy unscoped (test/compat) context: publishes go
    /// straight to the router and control emission is ungated.
    pub scope: Option<&'a RouterHandle>,
}

impl XAppContext<'_> {
    /// Publishes a message to other xApps. Scoped contexts are checked
    /// against the identity's publish grants; a denial is counted and the
    /// message goes nowhere.
    pub fn publish(&self, topic: &str, payload: &[u8]) {
        match self.scope {
            Some(handle) => {
                handle.publish(topic, payload);
            }
            None => {
                self.router.publish(topic, payload);
            }
        }
    }

    /// Checks the control-emission gate for action `kind`: scoped contexts
    /// must hold `Capability::Control(kind)`; a denial is counted against
    /// the identity. Unscoped contexts pass.
    fn control_allowed(&self, kind: &str) -> bool {
        match self.scope {
            Some(handle) => {
                let cap = Capability::control(kind);
                if handle.allows(&cap) {
                    true
                } else {
                    handle.deny(&cap.label());
                    false
                }
            }
            None => true,
        }
    }

    /// Queues a closed-loop control action toward the RAN (any agent).
    /// Scoped contexts need the wildcard control grant; callers that know
    /// the action kind should use [`XAppContext::send_control_action`] so
    /// the per-kind grant is what is checked.
    pub fn send_control(&mut self, payload: Vec<u8>) {
        if !self.control_allowed("*") {
            return;
        }
        self.control_out.push(ControlOut { cell: None, trace: None, payload, broadcast: false });
    }

    /// Queues a closed-loop control action toward the agent serving `cell`.
    /// Scoped contexts need the wildcard control grant.
    pub fn send_control_to(&mut self, cell: CellId, payload: Vec<u8>) {
        if !self.control_allowed("*") {
            return;
        }
        self.control_out.push(ControlOut {
            cell: Some(cell),
            trace: None,
            payload,
            broadcast: false,
        });
    }

    /// Queues a closed-loop control action with full routing context: an
    /// optional pinned cell and an optional causal trace id for ack
    /// correlation. Scoped contexts need the wildcard control grant.
    pub fn send_control_traced(
        &mut self,
        cell: Option<CellId>,
        trace: Option<u64>,
        payload: Vec<u8>,
    ) {
        if !self.control_allowed("*") {
            return;
        }
        self.control_out.push(ControlOut { cell, trace, payload, broadcast: false });
    }

    /// Queues a closed-loop control action for `cell` *and* every agent
    /// serving one of its declared neighbours — the fan-out used to brace
    /// adjacent cells when quarantining one. Scoped contexts need the
    /// wildcard control grant.
    pub fn send_control_broadcast(
        &mut self,
        cell: CellId,
        trace: Option<u64>,
        payload: Vec<u8>,
    ) {
        if !self.control_allowed("*") {
            return;
        }
        self.control_out.push(ControlOut {
            cell: Some(cell),
            trace,
            payload,
            broadcast: true,
        });
    }

    /// Queues a closed-loop control action of a declared `kind` (a
    /// `MitigationAction::name()` string), checked against the caller's
    /// per-kind control grant — the platform-side actuation gate. Returns
    /// whether the action was queued; a denial is counted and queues
    /// nothing. The kind is the caller's declaration: the check is only as
    /// honest as the sender, which is why deployments grant the Mitigator
    /// exactly the kinds its playbooks instantiate and nothing else holds
    /// any control grant.
    pub fn send_control_action(
        &mut self,
        kind: &str,
        cell: Option<CellId>,
        trace: Option<u64>,
        broadcast: bool,
        payload: Vec<u8>,
    ) -> bool {
        if !self.control_allowed(kind) {
            return false;
        }
        self.control_out.push(ControlOut { cell, trace, payload, broadcast });
        true
    }
}

/// A control-plane application hosted by the nRT-RIC.
pub trait XApp: Send {
    /// Stable application name (used for routing and reports).
    fn name(&self) -> &str;

    /// Called once when the platform starts the app.
    fn on_start(&mut self, ctx: &mut XAppContext<'_>) {
        let _ = ctx;
    }

    /// Called with each batch of telemetry records delivered by an E2
    /// indication this app subscribed to. `window_end` is the report
    /// window's closing timestamp (virtual network time).
    fn on_records(
        &mut self,
        ctx: &mut XAppContext<'_>,
        records: &[UeMobiFlow],
        window_end: Timestamp,
    );

    /// Called for messages published to topics this app registered for via
    /// [`crate::platform::SubscriptionSpec::topics`].
    fn on_message(&mut self, ctx: &mut XAppContext<'_>, topic: &str, payload: &[u8]) {
        let _ = (ctx, topic, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authz::{Grants, XAppIdentity};

    struct Recorder {
        seen: usize,
    }

    impl XApp for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }

        fn on_records(
            &mut self,
            ctx: &mut XAppContext<'_>,
            records: &[UeMobiFlow],
            _window_end: Timestamp,
        ) {
            self.seen += records.len();
            ctx.publish("seen", &(self.seen as u32).to_be_bytes());
            ctx.send_control(b"act".to_vec());
        }
    }

    #[test]
    fn context_plumbing_works() {
        let sdl = SharedDataLayer::new();
        let router = Router::new();
        let rx = router.subscribe("seen");
        let mut control = Vec::new();
        let mut ctx =
            XAppContext { sdl: &sdl, router: &router, control_out: &mut control, scope: None };
        let mut app = Recorder { seen: 0 };
        app.on_records(&mut ctx, &[], Timestamp(0));
        assert_eq!(rx.try_recv().unwrap(), 0u32.to_be_bytes().to_vec());
        assert_eq!(
            control,
            vec![ControlOut { cell: None, trace: None, payload: b"act".to_vec(), broadcast: false }]
        );
    }

    #[test]
    fn send_control_to_pins_the_cell() {
        let sdl = SharedDataLayer::new();
        let router = Router::new();
        let mut control = Vec::new();
        let mut ctx =
            XAppContext { sdl: &sdl, router: &router, control_out: &mut control, scope: None };
        ctx.send_control_to(CellId(7), b"act".to_vec());
        ctx.send_control_traced(Some(CellId(7)), Some(42), b"act".to_vec());
        ctx.send_control_broadcast(CellId(7), Some(43), b"act".to_vec());
        assert_eq!(
            control,
            vec![
                ControlOut {
                    cell: Some(CellId(7)),
                    trace: None,
                    payload: b"act".to_vec(),
                    broadcast: false,
                },
                ControlOut {
                    cell: Some(CellId(7)),
                    trace: Some(42),
                    payload: b"act".to_vec(),
                    broadcast: false,
                },
                ControlOut {
                    cell: Some(CellId(7)),
                    trace: Some(43),
                    payload: b"act".to_vec(),
                    broadcast: true,
                },
            ]
        );
    }

    #[test]
    fn scoped_context_gates_publish_and_control_by_grant() {
        let sdl = SharedDataLayer::new();
        let router = Router::new();
        router.enforce();
        let handle = router
            .register(
                XAppIdentity::named("partial"),
                Grants::none().publish("anomalies").control("release-ue"),
            )
            .unwrap();
        let anomalies = router
            .register(XAppIdentity::named("sink"), Grants::none().subscribe("anomalies"))
            .unwrap()
            .subscribe("anomalies");
        let mut control = Vec::new();
        let mut ctx = XAppContext {
            sdl: &sdl,
            router: &router,
            control_out: &mut control,
            scope: Some(&handle),
        };
        // Granted topic goes through; ungranted one is dropped + counted.
        ctx.publish("anomalies", b"ok");
        ctx.publish("findings", b"spoof");
        assert_eq!(anomalies.try_recv().unwrap(), b"ok");
        // Per-kind control: granted kind queues, ungranted kind and the
        // wildcard-needing legacy path are denied.
        assert!(ctx.send_control_action("release-ue", Some(CellId(1)), None, false, b"a".to_vec()));
        assert!(!ctx.send_control_action(
            "quarantine-cell",
            Some(CellId(1)),
            None,
            true,
            b"q".to_vec()
        ));
        ctx.send_control(b"legacy".to_vec());
        assert_eq!(control.len(), 1);
        assert_eq!(router.denied(), 3);
    }

    #[test]
    fn unscoped_context_remains_ungated() {
        let sdl = SharedDataLayer::new();
        let router = Router::new();
        let mut control = Vec::new();
        let mut ctx =
            XAppContext { sdl: &sdl, router: &router, control_out: &mut control, scope: None };
        assert!(ctx.send_control_action("quarantine-cell", None, None, false, b"q".to_vec()));
        ctx.send_control(b"legacy".to_vec());
        assert_eq!(control.len(), 2);
        assert_eq!(router.denied(), 0);
    }
}
