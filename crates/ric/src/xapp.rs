//! The xApp framework: what a control-plane application implements to run
//! on the platform.

use crate::router::Router;
use xsec_mobiflow::{SharedDataLayer, UeMobiFlow};
use xsec_types::{CellId, Timestamp};

/// A queued closed-loop control action, optionally pinned to the cell whose
/// owning agent must enforce it. The platform routes by cell using the
/// served-cell lists announced in E2 Setup; `cell: None` goes to the first
/// connected agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlOut {
    /// The cell the action targets, when known.
    pub cell: Option<CellId>,
    /// Causal trace id of the detection behind the action, when traced.
    /// The pump remembers it per in-flight Control Request so the FIFO ack
    /// can be correlated back to its incident trace.
    pub trace: Option<u64>,
    /// Encoded control payload (mitigation TLV).
    pub payload: Vec<u8>,
    /// Fan the action out to every agent serving a declared neighbour of
    /// `cell` (see `RicPlatform::set_neighbours`), in addition to the
    /// owning agent. Used for containment actions like QuarantineCell
    /// where adjacent cells should brace for the displaced attacker.
    pub broadcast: bool,
}

/// Everything an xApp may touch while handling an event.
pub struct XAppContext<'a> {
    /// The shared data layer.
    pub sdl: &'a SharedDataLayer,
    /// The message router.
    pub router: &'a Router,
    /// Control payloads the xApp wants sent back to the RAN over E2
    /// (closed-loop feedback); the platform drains and ships them.
    pub control_out: &'a mut Vec<ControlOut>,
}

impl XAppContext<'_> {
    /// Publishes a message to other xApps.
    pub fn publish(&self, topic: &str, payload: &[u8]) {
        self.router.publish(topic, payload);
    }

    /// Queues a closed-loop control action toward the RAN (any agent).
    pub fn send_control(&mut self, payload: Vec<u8>) {
        self.control_out.push(ControlOut { cell: None, trace: None, payload, broadcast: false });
    }

    /// Queues a closed-loop control action toward the agent serving `cell`.
    pub fn send_control_to(&mut self, cell: CellId, payload: Vec<u8>) {
        self.control_out.push(ControlOut {
            cell: Some(cell),
            trace: None,
            payload,
            broadcast: false,
        });
    }

    /// Queues a closed-loop control action with full routing context: an
    /// optional pinned cell and an optional causal trace id for ack
    /// correlation.
    pub fn send_control_traced(
        &mut self,
        cell: Option<CellId>,
        trace: Option<u64>,
        payload: Vec<u8>,
    ) {
        self.control_out.push(ControlOut { cell, trace, payload, broadcast: false });
    }

    /// Queues a closed-loop control action for `cell` *and* every agent
    /// serving one of its declared neighbours — the fan-out used to brace
    /// adjacent cells when quarantining one.
    pub fn send_control_broadcast(
        &mut self,
        cell: CellId,
        trace: Option<u64>,
        payload: Vec<u8>,
    ) {
        self.control_out.push(ControlOut {
            cell: Some(cell),
            trace,
            payload,
            broadcast: true,
        });
    }
}

/// A control-plane application hosted by the nRT-RIC.
pub trait XApp: Send {
    /// Stable application name (used for routing and reports).
    fn name(&self) -> &str;

    /// Called once when the platform starts the app.
    fn on_start(&mut self, ctx: &mut XAppContext<'_>) {
        let _ = ctx;
    }

    /// Called with each batch of telemetry records delivered by an E2
    /// indication this app subscribed to. `window_end` is the report
    /// window's closing timestamp (virtual network time).
    fn on_records(
        &mut self,
        ctx: &mut XAppContext<'_>,
        records: &[UeMobiFlow],
        window_end: Timestamp,
    );

    /// Called for messages published to topics this app registered for via
    /// [`crate::platform::SubscriptionSpec::topics`].
    fn on_message(&mut self, ctx: &mut XAppContext<'_>, topic: &str, payload: &[u8]) {
        let _ = (ctx, topic, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: usize,
    }

    impl XApp for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }

        fn on_records(
            &mut self,
            ctx: &mut XAppContext<'_>,
            records: &[UeMobiFlow],
            _window_end: Timestamp,
        ) {
            self.seen += records.len();
            ctx.publish("seen", &(self.seen as u32).to_be_bytes());
            ctx.send_control(b"act".to_vec());
        }
    }

    #[test]
    fn context_plumbing_works() {
        let sdl = SharedDataLayer::new();
        let router = Router::new();
        let rx = router.subscribe("seen");
        let mut control = Vec::new();
        let mut ctx = XAppContext { sdl: &sdl, router: &router, control_out: &mut control };
        let mut app = Recorder { seen: 0 };
        app.on_records(&mut ctx, &[], Timestamp(0));
        assert_eq!(rx.try_recv().unwrap(), 0u32.to_be_bytes().to_vec());
        assert_eq!(
            control,
            vec![ControlOut { cell: None, trace: None, payload: b"act".to_vec(), broadcast: false }]
        );
    }

    #[test]
    fn send_control_to_pins_the_cell() {
        let sdl = SharedDataLayer::new();
        let router = Router::new();
        let mut control = Vec::new();
        let mut ctx = XAppContext { sdl: &sdl, router: &router, control_out: &mut control };
        ctx.send_control_to(CellId(7), b"act".to_vec());
        ctx.send_control_traced(Some(CellId(7)), Some(42), b"act".to_vec());
        ctx.send_control_broadcast(CellId(7), Some(43), b"act".to_vec());
        assert_eq!(
            control,
            vec![
                ControlOut {
                    cell: Some(CellId(7)),
                    trace: None,
                    payload: b"act".to_vec(),
                    broadcast: false,
                },
                ControlOut {
                    cell: Some(CellId(7)),
                    trace: Some(42),
                    payload: b"act".to_vec(),
                    broadcast: false,
                },
                ControlOut {
                    cell: Some(CellId(7)),
                    trace: Some(43),
                    payload: b"act".to_vec(),
                    broadcast: true,
                },
            ]
        );
    }
}
