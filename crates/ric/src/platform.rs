//! The platform: E2 termination + subscription management + xApp hosting.
//!
//! Single-threaded and pump-driven, but *readiness-driven* rather than a
//! round-robin scan: every transport registers a [`xsec_e2::Waker`] on a
//! shared ready-queue ([`xsec_e2::WakeSet`]) when it is attached, and each
//! [`RicPlatform::pump`] call visits only the connections that signalled
//! pending frames since the last iteration (plus the small set of polled
//! transports that cannot signal, e.g. plain nonblocking TCP sockets). Per
//! pump, cost is O(active connections), not O(connections) — the property
//! that lets one platform terminate hundreds of mostly-idle gNB agents.
//!
//! A pump iteration drains the ready connections, completes E2 handshakes,
//! persists arriving telemetry to the SDL, dispatches it to subscribed
//! xApps (timing each handler against the near-RT budget), relays topic
//! messages between xApps, and ships queued control actions back to the
//! RAN. All sends are non-blocking: each transport owns a bounded egress
//! queue and a full queue drops the frame with a count
//! (`xsec_ric_egress_dropped_total`) instead of stalling the reactor.

use crate::authz::{Grants, XAppIdentity};
use crate::latency::LatencyTracker;
use crate::router::{RegisterError, Router, RouterHandle};
use crate::xapp::{ControlOut, XApp, XAppContext};
use crossbeam_channel::Receiver;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;
use xsec_e2::{
    E2apPdu, E2Transport, KpmIndication, Readiness, RicRequestId, SendOutcome, WakeSet,
    RAN_FUNCTION_MOBIFLOW,
};
use xsec_mobiflow::SharedDataLayer;
use xsec_obs::{Counter, Histogram, Obs};
use xsec_types::{CellId, GnbId, Result, XsecError};

/// What an xApp wants delivered.
#[derive(Debug, Clone)]
pub struct SubscriptionSpec {
    /// E2 report period requested from the RAN agent, in milliseconds.
    /// `None` = the app does not consume E2 telemetry directly.
    pub report_period_ms: Option<u32>,
    /// Router topics the app listens on.
    pub topics: Vec<String>,
}

impl SubscriptionSpec {
    /// Telemetry subscription at the given period.
    pub fn telemetry(period_ms: u32) -> Self {
        SubscriptionSpec { report_period_ms: Some(period_ms), topics: Vec::new() }
    }

    /// Topic-only subscription.
    pub fn topics_only(topics: &[&str]) -> Self {
        SubscriptionSpec {
            report_period_ms: None,
            topics: topics.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Adds a topic to listen on.
    pub fn with_topic(mut self, topic: &str) -> Self {
        self.topics.push(topic.to_string());
        self
    }
}

struct XAppEntry {
    app: Box<dyn XApp>,
    request_id: Option<RicRequestId>,
    /// Per-connection "subscription request went out" flags, indexed by
    /// conn token (every telemetry xApp subscribes on every agent).
    subscribed: Vec<bool>,
    spec: SubscriptionSpec,
    mailboxes: Vec<(String, Receiver<Vec<u8>>)>,
    /// Handler latency, labelled `xapp="<name>"`.
    handler_latency: Histogram,
    /// The app's authorization scope ([`RicPlatform::register_xapp_scoped`]);
    /// `None` for legacy unscoped registration.
    scope: Option<RouterHandle>,
}

struct AgentConn {
    transport: Box<dyn E2Transport>,
    setup_done: bool,
    /// The gNB behind this connection, learned from its E2 Setup Request.
    gnb_id: Option<GnbId>,
    /// Cells this agent serves (announced in E2 Setup); control actions
    /// pinned to one of these cells route here.
    cells: Vec<CellId>,
    /// Send instants of Control Requests still awaiting their ack on this
    /// connection, each with the causal trace id of the detection it
    /// mitigates (when traced). E2AP Control Acks carry no correlation id,
    /// but each transport is an ordered queue and the agent acks every
    /// request on receipt, so the oldest in-flight send owns the next ack —
    /// which is how the ack is correlated back to its incident trace.
    inflight_controls: VecDeque<(Instant, Option<u64>)>,
    /// Send→ack latency, labelled `agent="gnb-<id>"` (set at setup).
    ack_latency: Option<Histogram>,
    /// This conn has buffered egress awaiting a flush retry (dedup flag
    /// for the `egress_pending` list).
    egress_pending: bool,
}

/// Counters from one pump iteration (a per-call delta). Cumulative totals
/// live in the `xsec-obs` registry under `xsec_ric_*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// E2 PDUs processed.
    pub pdus: u64,
    /// Telemetry records delivered to xApps.
    pub records_delivered: u64,
    /// Topic messages delivered to xApps.
    pub messages_delivered: u64,
    /// Control actions shipped to the RAN.
    pub controls_sent: u64,
    /// Connections visited this iteration (woken + polled). The reactor
    /// guarantee is that this tracks *active* conns, not total conns.
    pub conns_scanned: u64,
}

/// Registry-backed platform counters (the single observability path for
/// cumulative totals).
struct PlatformMetrics {
    pdus: Counter,
    indications: Counter,
    records_delivered: Counter,
    messages_delivered: Counter,
    controls_sent: Counter,
    controls_acked: Counter,
    controls_failed: Counter,
    /// Actions pinned to a cell no connected agent serves (shipped to the
    /// first agent as a fallback).
    controls_unroutable: Counter,
    /// Extra Control Request copies fanned out to neighbour-cell agents.
    controls_broadcast: Counter,
    /// Frames dropped RIC-side on a full egress queue (never blocks).
    egress_dropped: Counter,
    /// Connections visited across all pumps (O(active) when event-driven).
    conns_scanned: Counter,
    decode_latency: Histogram,
}

impl PlatformMetrics {
    fn register(obs: &Obs) -> Self {
        PlatformMetrics {
            pdus: obs.counter("xsec_ric_pdus_total", &[]),
            indications: obs.counter("xsec_ric_indications_total", &[]),
            records_delivered: obs.counter("xsec_ric_records_delivered_total", &[]),
            messages_delivered: obs.counter("xsec_ric_messages_delivered_total", &[]),
            controls_sent: obs.counter("xsec_ric_controls_sent_total", &[]),
            controls_acked: obs.counter("xsec_ric_controls_acked_total", &[]),
            controls_failed: obs.counter("xsec_ric_controls_failed_total", &[]),
            controls_unroutable: obs.counter("xsec_ric_controls_unroutable_total", &[]),
            controls_broadcast: obs.counter("xsec_ric_controls_broadcast_total", &[]),
            egress_dropped: obs.counter("xsec_ric_egress_dropped_total", &[]),
            conns_scanned: obs.counter("xsec_ric_pump_conns_scanned_total", &[]),
            decode_latency: obs.histogram("xsec_e2_decode_latency_us", &[]),
        }
    }
}

/// The near-real-time RIC.
pub struct RicPlatform {
    sdl: SharedDataLayer,
    router: Router,
    conns: Vec<AgentConn>,
    xapps: Vec<XAppEntry>,
    next_requestor: u16,
    latency: LatencyTracker,
    control_queue: Vec<ControlOut>,
    control_latency: LatencyTracker,
    /// The reactor's ready-queue: transports wake their token here.
    wake: WakeSet,
    /// Tokens of transports that cannot signal readiness (scanned every
    /// pump). Kept small: only real sockets land here.
    polled: Vec<usize>,
    /// Conn tokens with buffered egress awaiting a flush retry.
    egress_pending: Vec<usize>,
    /// Reusable scratch for draining the ready-queue.
    ready_scratch: Vec<usize>,
    /// A new xApp registered: (re-)issue subscriptions on the next pump.
    subs_dirty: bool,
    /// Cell adjacency for control fan-out (QuarantineCell broadcast).
    neighbours: HashMap<CellId, Vec<CellId>>,
    obs: Obs,
    metrics: PlatformMetrics,
    /// The platform's own router identity, used for the relays it
    /// publishes itself (the `control-acks` ack fan-out) so they keep
    /// flowing once the router is hardened to deny-by-default.
    platform_scope: RouterHandle,
}

impl Default for RicPlatform {
    fn default() -> Self {
        Self::new()
    }
}

impl RicPlatform {
    /// An empty platform with a private (silent) observability handle.
    pub fn new() -> Self {
        Self::with_obs(Obs::new())
    }

    /// An empty platform recording into `obs`.
    pub fn with_obs(obs: Obs) -> Self {
        let metrics = PlatformMetrics::register(&obs);
        let router = Router::new();
        router.attach_obs(&obs);
        let platform_scope = router
            .register(
                XAppIdentity::named("ric-platform"),
                Grants::none().publish("control-acks"),
            )
            .expect("fresh router cannot refuse the platform identity");
        RicPlatform {
            sdl: SharedDataLayer::new(),
            router,
            conns: Vec::new(),
            xapps: Vec::new(),
            next_requestor: 1,
            latency: LatencyTracker::new(),
            control_queue: Vec::new(),
            control_latency: LatencyTracker::new(),
            wake: WakeSet::new(),
            polled: Vec::new(),
            egress_pending: Vec::new(),
            ready_scratch: Vec::new(),
            subs_dirty: false,
            neighbours: HashMap::new(),
            obs,
            metrics,
            platform_scope,
        }
    }

    /// Switches the router to deny-by-default enforcement: from here on
    /// only identities registered via
    /// [`RicPlatform::register_xapp_scoped`] (plus the platform's own
    /// relay identity) can move messages. Call before wiring xApps.
    pub fn harden(&self) {
        self.router.enforce();
    }

    /// Closes identity registration on the router. Call once the
    /// deployment is fully wired so nothing can mint an identity mid-run.
    pub fn seal(&self) {
        self.router.seal();
    }

    /// Registers `identity` with `grants` on the platform router without
    /// hosting an xApp for it — how out-of-process principals (the SMO's
    /// A1 client) obtain their scoped handle.
    pub fn register_identity(
        &self,
        identity: XAppIdentity,
        grants: Grants,
    ) -> std::result::Result<RouterHandle, RegisterError> {
        self.router.register(identity, grants)
    }

    /// The platform's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The platform's SDL handle.
    pub fn sdl(&self) -> SharedDataLayer {
        self.sdl.clone()
    }

    /// The platform's router handle.
    pub fn router(&self) -> Router {
        self.router.clone()
    }

    /// Handler-latency statistics across all xApp invocations.
    pub fn latency(&self) -> &LatencyTracker {
        &self.latency
    }

    /// Indications received so far.
    pub fn indications_seen(&self) -> u64 {
        self.metrics.indications.get()
    }

    /// Wall-clock send→ack latency statistics for Control Requests.
    pub fn control_latency(&self) -> &LatencyTracker {
        &self.control_latency
    }

    /// Control Requests acknowledged as accepted.
    pub fn controls_acked(&self) -> u64 {
        self.metrics.controls_acked.get()
    }

    /// Control Requests acknowledged as refused by the agent.
    pub fn controls_failed(&self) -> u64 {
        self.metrics.controls_failed.get()
    }

    /// Control actions pinned to a cell no connected agent serves.
    pub fn controls_unroutable(&self) -> u64 {
        self.metrics.controls_unroutable.get()
    }

    /// Extra Control Request copies fanned out to neighbour-cell agents.
    pub fn controls_broadcast(&self) -> u64 {
        self.metrics.controls_broadcast.get()
    }

    /// Frames dropped RIC-side on a full egress queue.
    pub fn egress_dropped(&self) -> u64 {
        self.metrics.egress_dropped.get()
    }

    /// Connected agents (any setup state).
    pub fn agent_count(&self) -> usize {
        self.conns.len()
    }

    /// Declares `cell`'s neighbours for control fan-out: a broadcast
    /// control pinned to `cell` is also delivered to every agent serving
    /// one of `neighbours`.
    pub fn set_neighbours(&mut self, cell: CellId, neighbours: Vec<CellId>) {
        self.neighbours.insert(cell, neighbours);
    }

    /// Attaches a RAN agent connection (the RIC end of an E2 transport),
    /// registering it on the reactor's ready-queue.
    pub fn add_agent(&mut self, mut transport: Box<dyn E2Transport>) {
        let token = self.conns.len();
        match transport.register_waker(self.wake.waker(token)) {
            Readiness::Event => {}
            Readiness::Polled => self.polled.push(token),
        }
        self.conns.push(AgentConn {
            transport,
            setup_done: false,
            gnb_id: None,
            cells: Vec::new(),
            inflight_controls: VecDeque::new(),
            ack_latency: None,
            egress_pending: false,
        });
    }

    /// Registers an xApp without an identity — the legacy/test path where
    /// its context is unscoped. Its E2 subscriptions (one per connected
    /// agent) are negotiated on the next pump after each agent completes
    /// setup.
    pub fn register_xapp(&mut self, app: Box<dyn XApp>, spec: SubscriptionSpec) {
        self.register_xapp_entry(app, spec, None);
    }

    /// Registers an xApp under its own router identity (named by
    /// `XApp::name()`) carrying `grants`: every publish, topic mailbox,
    /// and control emission from the app is checked against them.
    pub fn register_xapp_scoped(
        &mut self,
        app: Box<dyn XApp>,
        spec: SubscriptionSpec,
        grants: Grants,
    ) -> std::result::Result<(), RegisterError> {
        let handle = self.router.register(XAppIdentity::named(app.name()), grants)?;
        self.register_xapp_entry(app, spec, Some(handle));
        Ok(())
    }

    fn register_xapp_entry(
        &mut self,
        mut app: Box<dyn XApp>,
        spec: SubscriptionSpec,
        scope: Option<RouterHandle>,
    ) {
        // Scoped mailboxes go through the handle: a topic outside the
        // app's subscribe grants yields a dead mailbox (and a counted
        // denial), so ungranted messages simply never arrive.
        let mailboxes = spec
            .topics
            .iter()
            .map(|t| {
                let rx = match &scope {
                    Some(handle) => handle.subscribe(t),
                    None => self.router.subscribe(t),
                };
                (t.clone(), rx)
            })
            .collect();
        let request_id = spec.report_period_ms.map(|_| {
            let id = RicRequestId { requestor: self.next_requestor, instance: 1 };
            self.next_requestor += 1;
            id
        });
        let handler_latency =
            self.obs.histogram("xsec_ric_handler_latency_us", &[("xapp", app.name())]);
        let mut control_out = Vec::new();
        let mut ctx = XAppContext {
            sdl: &self.sdl,
            router: &self.router,
            control_out: &mut control_out,
            scope: scope.as_ref(),
        };
        app.on_start(&mut ctx);
        self.control_queue.extend(control_out);
        self.xapps.push(XAppEntry {
            app,
            request_id,
            subscribed: Vec::new(),
            spec,
            mailboxes,
            handler_latency,
            scope,
        });
        self.subs_dirty = true;
    }

    /// Sends one frame on conn `ci`, counting an egress drop and queueing
    /// a flush retry when the transport buffered part of it. Never blocks.
    fn send_on(&mut self, ci: usize, frame: &[u8]) -> Result<SendOutcome> {
        let outcome = self.conns[ci].transport.send(frame)?;
        if outcome == SendOutcome::Dropped {
            self.metrics.egress_dropped.inc();
        }
        if !self.conns[ci].transport.flush()? && !self.conns[ci].egress_pending {
            self.conns[ci].egress_pending = true;
            self.egress_pending.push(ci);
        }
        Ok(outcome)
    }

    /// One pump iteration: drain ready transports, dispatch, ship controls.
    pub fn pump(&mut self) -> Result<PumpStats> {
        let mut stats = PumpStats::default();

        // 0. Retry buffered egress from earlier iterations.
        if !self.egress_pending.is_empty() {
            let pending = std::mem::take(&mut self.egress_pending);
            for ci in pending {
                self.conns[ci].egress_pending = false;
                if !self.conns[ci].transport.flush()? {
                    self.conns[ci].egress_pending = true;
                    self.egress_pending.push(ci);
                }
            }
        }

        // 1. Drain only the connections with (possibly) pending frames:
        //    tokens woken since the last pump, plus the polled set.
        let mut ready = std::mem::take(&mut self.ready_scratch);
        ready.clear();
        self.wake.drain_into(&mut ready);
        ready.extend_from_slice(&self.polled);
        for i in 0..ready.len() {
            let ci = ready[i];
            stats.conns_scanned += 1;
            self.metrics.conns_scanned.inc();
            loop {
                let frame = match self.conns[ci].transport.try_recv() {
                    Ok(Some(f)) => f,
                    Ok(None) => break,
                    Err(e) => {
                        self.ready_scratch = ready;
                        return Err(e);
                    }
                };
                stats.pdus += 1;
                self.metrics.pdus.inc();
                let decode_start = Instant::now();
                let pdu = match E2apPdu::decode(&frame) {
                    Ok(p) => p,
                    Err(e) => {
                        self.ready_scratch = ready;
                        return Err(e);
                    }
                };
                self.metrics.decode_latency.observe_duration(decode_start.elapsed());
                if let Err(e) = self.handle_pdu(ci, pdu, &mut stats) {
                    self.ready_scratch = ready;
                    return Err(e);
                }
            }
        }
        self.ready_scratch = ready;

        // 2. A freshly registered xApp subscribes on every setup agent.
        if self.subs_dirty {
            self.subs_dirty = false;
            for ci in 0..self.conns.len() {
                self.issue_subscriptions_for(ci)?;
            }
        }

        // 3. Relay topic messages into xApps.
        for ai in 0..self.xapps.len() {
            let mut pending: Vec<(String, Vec<u8>)> = Vec::new();
            for (topic, rx) in &self.xapps[ai].mailboxes {
                while let Ok(payload) = rx.try_recv() {
                    pending.push((topic.clone(), payload));
                }
            }
            for (topic, payload) in pending {
                stats.messages_delivered += 1;
                self.metrics.messages_delivered.inc();
                self.invoke(ai, |app, ctx| app.on_message(ctx, &topic, &payload));
            }
        }

        // 4. Ship queued control actions, each routed to the agent serving
        //    its target cell. Actions with no (or an unknown) cell fall back
        //    to the first connected agent; unknown cells are counted as
        //    unroutable so misconfigurations show up in the metrics.
        //    Broadcast actions additionally fan out to every agent serving
        //    a declared neighbour of the target cell.
        if !self.control_queue.is_empty() {
            if let Some(fallback) = self.conns.iter().position(|c| c.setup_done) {
                let queued = std::mem::take(&mut self.control_queue);
                for ControlOut { cell, trace, payload, broadcast } in queued {
                    let owner = match cell {
                        Some(cell) => match self
                            .conns
                            .iter()
                            .position(|c| c.setup_done && c.cells.contains(&cell))
                        {
                            Some(owner) => owner,
                            None => {
                                self.metrics.controls_unroutable.inc();
                                fallback
                            }
                        },
                        None => fallback,
                    };
                    let mut targets = vec![owner];
                    if broadcast {
                        if let Some(neigh) = cell.and_then(|c| self.neighbours.get(&c)) {
                            for ncell in neigh {
                                if let Some(ci) = self
                                    .conns
                                    .iter()
                                    .position(|c| c.setup_done && c.cells.contains(ncell))
                                {
                                    if !targets.contains(&ci) {
                                        targets.push(ci);
                                    }
                                }
                            }
                        }
                    }
                    let frame = E2apPdu::ControlRequest {
                        ran_function: RAN_FUNCTION_MOBIFLOW,
                        payload,
                    }
                    .encode();
                    for (extra, ci) in targets.into_iter().enumerate() {
                        // Only a frame actually queued earns an inflight
                        // slot — a dropped one gets no ack, and a ghost
                        // entry would skew FIFO correlation forever.
                        if self.send_on(ci, &frame)? == SendOutcome::Sent {
                            self.conns[ci]
                                .inflight_controls
                                .push_back((Instant::now(), trace));
                            stats.controls_sent += 1;
                            self.metrics.controls_sent.inc();
                            if extra > 0 {
                                self.metrics.controls_broadcast.inc();
                            }
                        }
                    }
                }
            }
        }

        Ok(stats)
    }

    fn handle_pdu(&mut self, ci: usize, pdu: E2apPdu, stats: &mut PumpStats) -> Result<()> {
        match pdu {
            E2apPdu::SetupRequest { gnb_id, ran_functions, cells } => {
                let accepted: Vec<u32> = ran_functions
                    .into_iter()
                    .filter(|f| *f == RAN_FUNCTION_MOBIFLOW)
                    .collect();
                let ack_latency = self.obs.histogram(
                    "xsec_ric_control_ack_latency_us",
                    &[("agent", &format!("gnb-{}", gnb_id.0))],
                );
                let conn = &mut self.conns[ci];
                conn.gnb_id = Some(gnb_id);
                conn.cells = cells;
                conn.ack_latency = Some(ack_latency);
                conn.setup_done = true;
                self.send_on(ci, &E2apPdu::SetupResponse { accepted }.encode())?;
                // Subscribe this agent for every telemetry xApp right away
                // (same-pump, preserving the 3-round handshake cadence).
                self.issue_subscriptions_for(ci)
            }
            E2apPdu::SubscriptionResponse { request_id, accepted } => {
                if let Some(entry) =
                    self.xapps.iter_mut().find(|x| x.request_id == Some(request_id))
                {
                    if !accepted {
                        return Err(XsecError::Ric(format!(
                            "agent refused subscription for xApp {:?}",
                            entry.app.name()
                        )));
                    }
                }
                Ok(())
            }
            E2apPdu::Indication { request_id, payload, sequence, .. } => {
                self.metrics.indications.inc();
                let kpm = KpmIndication::decode(&payload)?;
                let records = kpm.mobiflow_records()?;
                // Persist to the SDL, keyed by conn + subscription +
                // sequence (sequence streams are per-agent, so the conn
                // token keeps keys unique across agents).
                for (i, record) in records.iter().enumerate() {
                    self.sdl.set(
                        "mobiflow",
                        &format!(
                            "{}/{}/{}/{:06}/{:03}",
                            ci, request_id.requestor, sequence, record.msg_id, i
                        ),
                        xsec_mobiflow::encode_ue_record(record).into_bytes(),
                    );
                }
                let window_end = kpm.window_end;
                if let Some(ai) =
                    self.xapps.iter().position(|x| x.request_id == Some(request_id))
                {
                    stats.records_delivered += records.len() as u64;
                    self.metrics.records_delivered.add(records.len() as u64);
                    self.invoke(ai, |app, ctx| app.on_records(ctx, &records, window_end));
                }
                Ok(())
            }
            E2apPdu::ControlAck { success, .. } => {
                let conn = &mut self.conns[ci];
                let mut trace = None;
                if let Some((sent_at, sent_trace)) = conn.inflight_controls.pop_front() {
                    let elapsed = sent_at.elapsed();
                    self.control_latency.record(elapsed);
                    if let Some(h) = &conn.ack_latency {
                        h.observe_duration(elapsed);
                    }
                    trace = sent_trace;
                }
                if success {
                    self.metrics.controls_acked.inc();
                } else {
                    self.metrics.controls_failed.inc();
                }
                // Relay the outcome to xApps (the mitigator closes its
                // delivery loop off this topic). Traced sends append the
                // trace id so subscribers can close the causal chain; the
                // bare one-byte form is kept for untraced sends.
                if let Some(trace) = trace {
                    let mut payload = [0u8; 9];
                    payload[0] = success as u8;
                    payload[1..].copy_from_slice(&trace.to_be_bytes());
                    self.platform_scope.publish("control-acks", &payload);
                } else {
                    self.platform_scope.publish("control-acks", &[success as u8]);
                }
                Ok(())
            }
            other => Err(XsecError::Ric(format!("unexpected PDU at RIC: {other:?}"))),
        }
    }

    /// Sends every telemetry xApp's subscription request to conn `ci`
    /// (idempotent per (xApp, conn); no-op before its setup completes).
    fn issue_subscriptions_for(&mut self, ci: usize) -> Result<()> {
        if !self.conns[ci].setup_done {
            return Ok(());
        }
        for ai in 0..self.xapps.len() {
            let entry = &mut self.xapps[ai];
            let (Some(request_id), Some(period)) =
                (entry.request_id, entry.spec.report_period_ms)
            else {
                continue;
            };
            if entry.subscribed.len() <= ci {
                entry.subscribed.resize(ci + 1, false);
            }
            if entry.subscribed[ci] {
                continue;
            }
            let frame = E2apPdu::SubscriptionRequest {
                request_id,
                ran_function: RAN_FUNCTION_MOBIFLOW,
                report_period_ms: period,
                actions: vec![xsec_e2::RicAction::Report],
            }
            .encode();
            match self.send_on(ci, &frame)? {
                SendOutcome::Sent => self.xapps[ai].subscribed[ci] = true,
                // Egress full: leave the flag unset and retry next pump.
                SendOutcome::Dropped => self.subs_dirty = true,
            }
        }
        Ok(())
    }

    fn invoke(&mut self, ai: usize, f: impl FnOnce(&mut dyn XApp, &mut XAppContext<'_>)) {
        let mut control_out = Vec::new();
        let start = Instant::now();
        {
            let entry = &mut self.xapps[ai];
            let mut ctx = XAppContext {
                sdl: &self.sdl,
                router: &self.router,
                control_out: &mut control_out,
                scope: entry.scope.as_ref(),
            };
            f(entry.app.as_mut(), &mut ctx);
        }
        let elapsed = start.elapsed();
        self.latency.record(elapsed);
        self.xapps[ai].handler_latency.observe_duration(elapsed);
        self.control_queue.extend(control_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_e2::{in_proc_pair, RicAgent, RicAgentConfig};
    use xsec_types::Timestamp;
    use xsec_mobiflow::UeMobiFlow;
    use xsec_proto::{Direction, MessageKind};
    use xsec_types::{CellId, GnbId, Rnti};

    fn record(id: u64, ts: u64) -> UeMobiFlow {
        UeMobiFlow {
            msg_id: id,
            timestamp: Timestamp(ts),
            cell: CellId(1),
            rnti: Rnti(1),
            du_ue_id: 1,
            direction: Direction::Uplink,
            msg: MessageKind::RrcSetupRequest,
            tmsi: None,
            supi: None,
            cipher_alg: None,
            integrity_alg: None,
            establishment_cause: None,
            release_cause: None,
        }
    }

    struct CountingApp {
        records: usize,
        publishes_to: Option<String>,
    }

    impl XApp for CountingApp {
        fn name(&self) -> &str {
            "counting"
        }

        fn on_records(
            &mut self,
            ctx: &mut XAppContext<'_>,
            records: &[UeMobiFlow],
            _window_end: Timestamp,
        ) {
            self.records += records.len();
            if let Some(topic) = &self.publishes_to {
                ctx.publish(topic, &(records.len() as u32).to_be_bytes());
            }
        }
    }

    struct ListeningApp {
        heard: std::sync::Arc<parking_lot::Mutex<Vec<Vec<u8>>>>,
    }

    impl XApp for ListeningApp {
        fn name(&self) -> &str {
            "listening"
        }

        fn on_records(
            &mut self,
            _ctx: &mut XAppContext<'_>,
            _records: &[UeMobiFlow],
            _window_end: Timestamp,
        ) {
        }

        fn on_message(&mut self, _ctx: &mut XAppContext<'_>, _topic: &str, payload: &[u8]) {
            self.heard.lock().push(payload.to_vec());
        }
    }

    /// Wires a platform to a real agent over the in-proc transport and
    /// pumps both until the subscription completes.
    fn wired_platform(
        app: Box<dyn XApp>,
        spec: SubscriptionSpec,
    ) -> (RicPlatform, RicAgent<xsec_e2::InProcTransport>) {
        let (agent_end, ric_end) = in_proc_pair();
        let agent =
            RicAgent::new(RicAgentConfig { gnb_id: GnbId(1), cell: CellId(1) }, agent_end)
                .unwrap();
        let mut platform = RicPlatform::new();
        platform.add_agent(Box::new(ric_end));
        platform.register_xapp(app, spec);
        (platform, agent)
    }

    #[test]
    fn end_to_end_telemetry_reaches_the_xapp_and_sdl() {
        let (mut platform, mut agent) =
            wired_platform(Box::new(CountingApp { records: 0, publishes_to: None }), SubscriptionSpec::telemetry(100));

        // Handshake: platform sees setup, answers; issues subscription;
        // agent answers.
        platform.pump().unwrap();
        agent.poll(Timestamp(0)).unwrap();
        platform.pump().unwrap();
        agent.poll(Timestamp(0)).unwrap();
        platform.pump().unwrap();
        assert!(agent.is_setup());
        assert_eq!(agent.subscription_count(), 1);

        // Telemetry flows.
        agent.push_record(record(0, 10));
        agent.push_record(record(1, 20));
        agent.poll(Timestamp(100_000)).unwrap();
        let stats = platform.pump().unwrap();
        assert_eq!(stats.records_delivered, 2);
        assert_eq!(platform.indications_seen(), 1);
        assert_eq!(platform.sdl().len("mobiflow"), 2);
        assert!(platform.latency().count() >= 1);
    }

    #[test]
    fn idle_connections_are_not_scanned() {
        // The reactor property: pump cost follows *active* conns. Wire 8
        // agents, let the handshakes settle, then have exactly one agent
        // produce telemetry — the next pump must visit only that conn.
        let mut platform = RicPlatform::new();
        let mut agents = Vec::new();
        for i in 0..8u32 {
            let (agent_end, ric_end) = in_proc_pair();
            let agent = RicAgent::new(
                RicAgentConfig { gnb_id: GnbId(i + 1), cell: CellId(i + 1) },
                agent_end,
            )
            .unwrap();
            platform.add_agent(Box::new(ric_end));
            agents.push(agent);
        }
        platform.register_xapp(
            Box::new(CountingApp { records: 0, publishes_to: None }),
            SubscriptionSpec::telemetry(100),
        );
        for _ in 0..3 {
            platform.pump().unwrap();
            for agent in &mut agents {
                agent.poll(Timestamp(0)).unwrap();
            }
        }
        assert!(agents.iter().all(|a| a.is_setup()));

        // Quiesce: no agent has anything pending.
        let idle = platform.pump().unwrap();
        assert_eq!(idle.conns_scanned, 0, "idle pump visited {}", idle.conns_scanned);

        // One active agent wakes exactly one conn.
        agents[3].push_record(record(0, 10));
        agents[3].poll(Timestamp(100_000)).unwrap();
        let stats = platform.pump().unwrap();
        assert_eq!(stats.conns_scanned, 1);
        assert_eq!(stats.records_delivered, 1);
    }

    #[test]
    fn topic_messages_flow_between_xapps() {
        let heard = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let (agent_end, ric_end) = in_proc_pair();
        let mut agent =
            RicAgent::new(RicAgentConfig { gnb_id: GnbId(1), cell: CellId(1) }, agent_end)
                .unwrap();
        let mut platform = RicPlatform::new();
        platform.add_agent(Box::new(ric_end));
        platform.register_xapp(
            Box::new(ListeningApp { heard: heard.clone() }),
            SubscriptionSpec::topics_only(&["anomalies"]),
        );
        platform.register_xapp(
            Box::new(CountingApp { records: 0, publishes_to: Some("anomalies".into()) }),
            SubscriptionSpec::telemetry(100),
        );

        platform.pump().unwrap();
        agent.poll(Timestamp(0)).unwrap();
        platform.pump().unwrap();
        agent.poll(Timestamp(0)).unwrap();
        platform.pump().unwrap();

        agent.push_record(record(0, 10));
        agent.poll(Timestamp(100_000)).unwrap();
        // The publish happens while records are dispatched (step 1) and the
        // relay runs later in the same pump (step 3) — one pump suffices.
        let s1 = platform.pump().unwrap();
        let s2 = platform.pump().unwrap();
        assert_eq!(s1.messages_delivered + s2.messages_delivered, 1);
        assert_eq!(heard.lock().len(), 1);
    }

    #[test]
    fn control_actions_reach_the_agent() {
        struct Controller;
        impl XApp for Controller {
            fn name(&self) -> &str {
                "controller"
            }
            fn on_records(
                &mut self,
                ctx: &mut XAppContext<'_>,
                _records: &[UeMobiFlow],
                _window_end: Timestamp,
            ) {
                ctx.send_control(b"throttle".to_vec());
            }
        }
        let (mut platform, mut agent) =
            wired_platform(Box::new(Controller), SubscriptionSpec::telemetry(100));
        platform.pump().unwrap();
        agent.poll(Timestamp(0)).unwrap();
        platform.pump().unwrap();
        agent.poll(Timestamp(0)).unwrap();
        platform.pump().unwrap();

        agent.push_record(record(0, 1));
        agent.poll(Timestamp(100_000)).unwrap();
        let stats = platform.pump().unwrap();
        assert_eq!(stats.controls_sent, 1);
        agent.poll(Timestamp(100_000)).unwrap();
        assert_eq!(agent.take_control_requests(), vec![b"throttle".to_vec()]);

        // The agent acked on receipt; the next pump correlates it, records
        // the send→ack latency, and relays the outcome on "control-acks".
        let acks = platform.router().subscribe("control-acks");
        platform.pump().unwrap();
        assert_eq!(platform.controls_acked(), 1);
        assert_eq!(platform.controls_failed(), 0);
        assert_eq!(platform.control_latency().count(), 1);
        assert_eq!(acks.try_recv().unwrap(), vec![1]);
        // The send→ack latency also lands in the per-agent histogram.
        assert_eq!(
            platform.obs().snapshot().histogram_count("xsec_ric_control_ack_latency_us"),
            1
        );
    }

    #[test]
    fn traced_controls_relay_their_trace_with_the_ack() {
        struct TracedController;
        impl XApp for TracedController {
            fn name(&self) -> &str {
                "traced-controller"
            }
            fn on_records(
                &mut self,
                ctx: &mut XAppContext<'_>,
                _records: &[UeMobiFlow],
                _window_end: Timestamp,
            ) {
                ctx.send_control_traced(None, Some(0x0102_0304_0506_0708), b"throttle".to_vec());
            }
        }
        let (mut platform, mut agent) =
            wired_platform(Box::new(TracedController), SubscriptionSpec::telemetry(100));
        platform.pump().unwrap();
        agent.poll(Timestamp(0)).unwrap();
        platform.pump().unwrap();
        agent.poll(Timestamp(0)).unwrap();
        platform.pump().unwrap();

        agent.push_record(record(0, 1));
        agent.poll(Timestamp(100_000)).unwrap();
        platform.pump().unwrap();
        agent.poll(Timestamp(100_000)).unwrap();

        let acks = platform.router().subscribe("control-acks");
        platform.pump().unwrap();
        let payload = acks.try_recv().unwrap();
        assert_eq!(payload.len(), 9, "traced acks carry [success][trace BE]");
        assert_eq!(payload[0], 1);
        assert_eq!(
            u64::from_be_bytes(payload[1..9].try_into().unwrap()),
            0x0102_0304_0506_0708
        );
    }

    /// An xApp that pins each control action to a configured cell.
    struct CellController {
        cell: CellId,
        broadcast: bool,
    }

    impl XApp for CellController {
        fn name(&self) -> &str {
            "cell-controller"
        }
        fn on_records(
            &mut self,
            ctx: &mut XAppContext<'_>,
            _records: &[UeMobiFlow],
            _window_end: Timestamp,
        ) {
            if self.broadcast {
                ctx.send_control_broadcast(self.cell, None, b"act".to_vec());
            } else {
                ctx.send_control_to(self.cell, b"act".to_vec());
            }
        }
    }

    /// Wires `n` agents (cells 1..=n) to one platform and completes all
    /// handshakes plus the telemetry subscription (served by every agent).
    fn n_agent_platform(
        app: Box<dyn XApp>,
        n: u32,
    ) -> (RicPlatform, Vec<RicAgent<xsec_e2::InProcTransport>>) {
        let mut platform = RicPlatform::new();
        let mut agents = Vec::new();
        for i in 0..n {
            let (agent_end, ric_end) = in_proc_pair();
            agents.push(
                RicAgent::new(
                    RicAgentConfig { gnb_id: GnbId(i + 1), cell: CellId(i + 1) },
                    agent_end,
                )
                .unwrap(),
            );
            platform.add_agent(Box::new(ric_end));
        }
        platform.register_xapp(app, SubscriptionSpec::telemetry(100));
        for _ in 0..3 {
            platform.pump().unwrap();
            for agent in &mut agents {
                agent.poll(Timestamp(0)).unwrap();
            }
        }
        assert!(agents.iter().all(|a| a.is_setup()));
        (platform, agents)
    }

    fn two_agent_platform(
        app: Box<dyn XApp>,
    ) -> (
        RicPlatform,
        RicAgent<xsec_e2::InProcTransport>,
        RicAgent<xsec_e2::InProcTransport>,
    ) {
        let (platform, mut agents) = n_agent_platform(app, 2);
        let a2 = agents.pop().unwrap();
        let a1 = agents.pop().unwrap();
        (platform, a1, a2)
    }

    #[test]
    fn every_agent_gets_a_subscription() {
        let (_platform, agents) =
            n_agent_platform(Box::new(CountingApp { records: 0, publishes_to: None }), 5);
        for (i, agent) in agents.iter().enumerate() {
            assert_eq!(agent.subscription_count(), 1, "agent {i} unsubscribed");
        }
    }

    #[test]
    fn controls_route_to_the_agent_owning_the_target_cell() {
        let (mut platform, mut a1, mut a2) =
            two_agent_platform(Box::new(CellController { cell: CellId(2), broadcast: false }));

        // Telemetry from agent 1 triggers a control pinned to cell 2 — it
        // must reach agent 2, not the first-connected agent.
        a1.push_record(record(0, 1));
        a1.poll(Timestamp(100_000)).unwrap();
        let stats = platform.pump().unwrap();
        assert_eq!(stats.controls_sent, 1);
        a1.poll(Timestamp(100_000)).unwrap();
        a2.poll(Timestamp(100_000)).unwrap();
        assert!(a1.take_control_requests().is_empty());
        assert_eq!(a2.take_control_requests(), vec![b"act".to_vec()]);
        assert_eq!(platform.controls_unroutable(), 0);

        // The ack latency is attributed to agent 2's histogram.
        platform.pump().unwrap();
        let snapshot = platform.obs().snapshot();
        let per_agent: Vec<(String, u64)> = snapshot
            .histograms("xsec_ric_control_ack_latency_us")
            .into_iter()
            .map(|(s, h)| (s.labels[0].1.clone(), h.count))
            .collect();
        assert_eq!(per_agent, vec![("gnb-1".into(), 0), ("gnb-2".into(), 1)]);
    }

    #[test]
    fn controls_for_unknown_cells_fall_back_and_are_counted() {
        let (mut platform, mut a1, mut a2) =
            two_agent_platform(Box::new(CellController { cell: CellId(99), broadcast: false }));

        a1.push_record(record(0, 1));
        a1.poll(Timestamp(100_000)).unwrap();
        platform.pump().unwrap();
        a1.poll(Timestamp(100_000)).unwrap();
        a2.poll(Timestamp(100_000)).unwrap();
        // Nobody serves cell 99: the action falls back to the first agent
        // and the misroute is counted.
        assert_eq!(a1.take_control_requests(), vec![b"act".to_vec()]);
        assert!(a2.take_control_requests().is_empty());
        assert_eq!(platform.controls_unroutable(), 1);
    }

    #[test]
    fn broadcast_controls_reach_exactly_the_neighbour_set() {
        // Cells 1..=5; cell 3's neighbours are 2 and 4. A broadcast control
        // pinned to cell 3 must reach agents 2, 3, 4 — and nobody else —
        // with each copy individually acked and correlated.
        let (mut platform, mut agents) = n_agent_platform(
            Box::new(CellController { cell: CellId(3), broadcast: true }),
            5,
        );
        platform.set_neighbours(CellId(3), vec![CellId(2), CellId(4)]);

        agents[0].push_record(record(0, 1));
        agents[0].poll(Timestamp(100_000)).unwrap();
        let stats = platform.pump().unwrap();
        assert_eq!(stats.controls_sent, 3, "owner + two neighbours");
        assert_eq!(platform.controls_broadcast(), 2);
        assert_eq!(platform.controls_unroutable(), 0);

        let mut reached = Vec::new();
        for (i, agent) in agents.iter_mut().enumerate() {
            agent.poll(Timestamp(100_000)).unwrap();
            if !agent.take_control_requests().is_empty() {
                reached.push(i + 1);
            }
        }
        assert_eq!(reached, vec![2, 3, 4]);

        // All three copies ack back and correlate per-conn FIFO.
        platform.pump().unwrap();
        assert_eq!(platform.controls_acked(), 3);
        assert_eq!(platform.control_latency().count(), 3);
    }

    #[test]
    fn broadcast_without_declared_neighbours_is_a_unicast() {
        let (mut platform, mut agents) = n_agent_platform(
            Box::new(CellController { cell: CellId(3), broadcast: true }),
            5,
        );
        agents[0].push_record(record(0, 1));
        agents[0].poll(Timestamp(100_000)).unwrap();
        let stats = platform.pump().unwrap();
        assert_eq!(stats.controls_sent, 1);
        assert_eq!(platform.controls_broadcast(), 0);
    }
}
