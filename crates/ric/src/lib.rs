//! # xsec-ric
//!
//! The near-real-time RAN Intelligent Controller platform — a from-scratch
//! stand-in for the O-RAN Software Community reference RIC the paper builds
//! on: an E2 termination that speaks the `xsec-e2` protocol to RAN agents,
//! an RMR-style topic router for xApp↔xApp messages, the xApp hosting
//! framework, the Shared Data Layer (re-exported from `xsec-mobiflow`), and
//! a latency tracker that audits the near-RT control-loop budget (O-RAN
//! requires the nRT-RIC loop to complete within 10 ms – 1 s).
//!
//! ## Dataflow (paper Figure 3)
//!
//! ```text
//! RAN agent ──E2──▶ E2 termination ──▶ SDL (telemetry)
//!                        │
//!                        ├──▶ MobiWatch xApp  ──topic──▶ LLM analyzer xApp
//!                        │        (anomaly detection)        (expert referencing)
//!                        └──▶ control loop feedback ──E2──▶ RAN
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authz;
pub mod latency;
pub mod platform;
pub mod router;
pub mod xapp;

pub use authz::{Capability, Grants, XAppIdentity};
pub use latency::{LatencyClass, LatencyTracker};
pub use platform::{PumpStats, RicPlatform, SubscriptionSpec};
pub use router::{PublishError, RegisterError, Router, RouterHandle};
pub use xapp::{ControlOut, XApp, XAppContext};

pub use xsec_mobiflow::{SharedDataLayer, UeMobiFlow};
