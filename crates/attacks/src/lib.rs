//! # xsec-attacks
//!
//! From-scratch implementations of the five cellular attacks the paper
//! evaluates (§4, Table 3), mounted against the `xsec-ran` simulator exactly
//! the way the paper mounts them against OAI on COLOSSEUM — by inserting
//! malicious logic at the UE/radio layer:
//!
//! | Attack | Mechanism here | Literature |
//! |---|---|---|
//! | BTS DoS | rogue-UE flood of fabricated RRC connections that stall at authentication, each on a fresh RNTI | Kim et al., S&P'19 |
//! | Blind DoS | rogue UE replaying a sniffed victim TMSI across sessions, detaching the victim | Kim et al., S&P'19 |
//! | Uplink ID extraction | uplink overshadowing that garbles the victim's SUCI so the network itself demands the plaintext identity | Erni et al. (AdaptOver), MobiCom'22 |
//! | Downlink ID extraction | MiTM overwriting the downlink authentication request with a plaintext identity request | Kotuliak et al. (LTrack), USENIX Sec'22 |
//! | Null cipher & integrity | MiTM stripping UE security capabilities and forging the anti-bidding-down echo | Hussain et al. (5GReasoner), CCS'19 |
//!
//! Every attack honors the paper's threat model: adversaries transmit, flood,
//! or hijack *unprotected* messages only — no AKA keys are ever forged.
//!
//! [`dataset`] assembles the labeled attack datasets (benign traffic with
//! attack episodes mixed in) that the Table 2 / Figure 4 experiments consume.
//!
//! [`rogue_xapp`] adds the one adversary that attacks from *inside* the
//! RIC rather than over the air: a malicious tenant xApp that spoofs
//! findings, forges A1 envelopes, and injects Control Requests — the
//! scenario the platform's capability-scoped authorization exists to stop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blind_dos;
pub mod bts_dos;
pub mod dataset;
pub mod id_extraction;
pub mod migrate;
pub mod null_cipher;
pub mod rogue_xapp;
mod wrap;

pub use blind_dos::{BlindDosUe, TmsiSniffer};
pub use bts_dos::{BtsDosConfig, BtsDosUe};
pub use dataset::{attack_simulator, AttackDataset, DatasetBuilder};
pub use id_extraction::{DownlinkIdExtractor, UplinkIdExtractor};
pub use migrate::{MigrateConfig, MigratingFloodUe, MigrationSchedule};
pub use null_cipher::NullCipherMitm;
pub use rogue_xapp::{RogueReport, RogueXApp};
