//! Helpers for seeing through RRC piggybacking.
//!
//! Over the air, the initial uplink NAS message rides inside
//! `RRCSetupComplete` (and later NAS inside `ULInformationTransfer`). A MiTM
//! that wants to tamper with the NAS payload must unwrap the container,
//! substitute, and re-wrap — these helpers do exactly that.

use xsec_proto::{L3Message, NasMessage, RrcMessage};

/// Extracts the uplink NAS message carried by `msg`, whether bare or inside
/// an RRC container. Returns `None` for pure-RRC messages or undecodable
/// containers.
pub(crate) fn uplink_nas(msg: &L3Message) -> Option<NasMessage> {
    match msg {
        L3Message::Nas(nas) => Some(nas.clone()),
        L3Message::Rrc(rrc) => {
            let container = rrc.nas_container()?;
            match xsec_proto::decode_l3(container) {
                Ok(L3Message::Nas(nas)) => Some(nas),
                _ => None,
            }
        }
    }
}

/// Rebuilds `original` with its NAS payload replaced by `new_nas`,
/// preserving the carrier (bare NAS stays bare, `SetupComplete` stays
/// `SetupComplete`, ...).
pub(crate) fn with_nas(original: &L3Message, new_nas: NasMessage) -> L3Message {
    let encoded = xsec_proto::encode_l3(&L3Message::Nas(new_nas.clone()));
    match original {
        L3Message::Nas(_) => L3Message::Nas(new_nas),
        L3Message::Rrc(RrcMessage::SetupComplete { .. }) => {
            L3Message::Rrc(RrcMessage::SetupComplete { nas_container: encoded })
        }
        L3Message::Rrc(RrcMessage::UlInformationTransfer { .. }) => {
            L3Message::Rrc(RrcMessage::UlInformationTransfer { nas_container: encoded })
        }
        L3Message::Rrc(RrcMessage::DlInformationTransfer { .. }) => {
            L3Message::Rrc(RrcMessage::DlInformationTransfer { nas_container: encoded })
        }
        // No NAS carrier: return the original untouched.
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_nas_round_trip() {
        let msg = L3Message::Nas(NasMessage::SecurityModeComplete);
        assert_eq!(uplink_nas(&msg), Some(NasMessage::SecurityModeComplete));
        let swapped = with_nas(&msg, NasMessage::RegistrationComplete);
        assert_eq!(swapped, L3Message::Nas(NasMessage::RegistrationComplete));
    }

    #[test]
    fn setup_complete_container_round_trip() {
        let inner = NasMessage::RegistrationComplete;
        let container = xsec_proto::encode_l3(&L3Message::Nas(inner.clone()));
        let msg = L3Message::Rrc(RrcMessage::SetupComplete { nas_container: container });
        assert_eq!(uplink_nas(&msg), Some(inner));

        let swapped = with_nas(&msg, NasMessage::DeregistrationRequest);
        let L3Message::Rrc(RrcMessage::SetupComplete { nas_container }) = &swapped else {
            panic!("carrier changed");
        };
        assert_eq!(
            xsec_proto::decode_l3(nas_container).unwrap(),
            L3Message::Nas(NasMessage::DeregistrationRequest)
        );
    }

    #[test]
    fn pure_rrc_has_no_nas() {
        assert_eq!(uplink_nas(&L3Message::Rrc(RrcMessage::Setup)), None);
        let untouched = with_nas(&L3Message::Rrc(RrcMessage::Setup), NasMessage::ServiceAccept);
        assert_eq!(untouched, L3Message::Rrc(RrcMessage::Setup));
    }
}
