//! A migrating attacker: the BTS-DoS flood that moves between cells.
//!
//! PR 5 scoped mitigation cooldowns per *(attack, cell)* so a repeat
//! detection in the same cell stands down instead of re-firing. The obvious
//! counter-move for the attacker is to migrate: flood cell A, hop to cell B
//! before A's mitigation can matter, and so on — evading any defense that
//! treats the deployment as one cell. Against per-cell scoping the hop buys
//! nothing: each visited cell raises its own finding and receives its own
//! mitigation.
//!
//! [`MigratingFloodUe`] is a bounded [`BtsDosUe`](crate::bts_dos::BtsDosUe)
//! variant: it opens a fixed number of fabricated connections and then
//! powers off, freeing its slab slot — which is exactly what "the attacker
//! left this cell" looks like to the streaming engine. A
//! [`MigrationSchedule`] strings visits together across the cells of a
//! [`StreamingScenario`], presenting the *same* attacker SIM in each cell.

use rand::rngs::StdRng;
use rand::Rng;
use xsec_proto::{L3Message, MobileIdentity, NasMessage, RrcMessage};
use xsec_ran::amf::SubscriberRecord;
use xsec_ran::auth::conceal_supi;
use xsec_ran::ue::{UeActions, UeBehavior};
use xsec_ran::StreamingScenario;
use xsec_types::{
    AttackKind, Duration, EstablishmentCause, Plmn, Supi, Timestamp, TrafficClass,
};

/// Parameters of one cell visit.
#[derive(Debug, Clone)]
pub struct MigrateConfig {
    /// Fabricated connections opened per visited cell.
    pub connections_per_visit: u32,
    /// Gap between consecutive connection attempts.
    pub inter_connection: Duration,
    /// MSIN of the attacker's SIM — the same identity in every cell.
    pub attacker_msin: u64,
    /// Subscriber key for that SIM.
    pub attacker_key: u64,
}

impl Default for MigrateConfig {
    fn default() -> Self {
        MigrateConfig {
            connections_per_visit: 40,
            inter_connection: Duration::from_millis(6),
            attacker_msin: 999_100,
            attacker_key: 0x666,
        }
    }
}

const NEXT_CONNECTION: u32 = 0xA19;

/// A bounded BTS-DoS flood: opens `connections_per_visit` stalled
/// handshakes, then powers off (the migration to the next cell).
#[derive(Debug)]
pub struct MigratingFloodUe {
    config: MigrateConfig,
    opened: u32,
    awaiting_setup: bool,
}

impl MigratingFloodUe {
    /// Creates one visit's flood behavior.
    pub fn new(config: MigrateConfig) -> Self {
        MigratingFloodUe { config, opened: 0, awaiting_setup: false }
    }

    fn open_connection(&mut self, rng: &mut StdRng) -> UeActions {
        self.opened += 1;
        self.awaiting_setup = true;
        let mut actions = UeActions::none().send(L3Message::Rrc(RrcMessage::SetupRequest {
            ue_identity: rng.gen(),
            cause: EstablishmentCause::MoSignalling,
        }));
        // One more timer either opens the next connection or — after the
        // last one — powers the UE off, handing its slot back to the slab:
        // the attacker has "left" for the next cell.
        actions = actions.timer(self.config.inter_connection, NEXT_CONNECTION);
        actions
    }
}

impl UeBehavior for MigratingFloodUe {
    fn on_power_on(&mut self, _now: Timestamp, rng: &mut StdRng) -> UeActions {
        self.open_connection(rng)
    }

    fn on_downlink(&mut self, _now: Timestamp, msg: &L3Message, rng: &mut StdRng) -> UeActions {
        match msg {
            L3Message::Rrc(RrcMessage::Setup) if self.awaiting_setup => {
                self.awaiting_setup = false;
                let reg = NasMessage::RegistrationRequest {
                    identity: MobileIdentity::Suci {
                        plmn: Plmn::TEST,
                        concealed: conceal_supi(self.config.attacker_msin, rng.gen()),
                    },
                    capabilities: xsec_types::SecurityCapabilities::full(),
                };
                let container = xsec_proto::encode_l3(&L3Message::Nas(reg));
                UeActions::none()
                    .send(L3Message::Rrc(RrcMessage::SetupComplete { nas_container: container }))
            }
            _ => UeActions::none(),
        }
    }

    fn on_timer(&mut self, _now: Timestamp, token: u32, rng: &mut StdRng) -> UeActions {
        if token != NEXT_CONNECTION {
            return UeActions::none();
        }
        if self.opened < self.config.connections_per_visit {
            self.open_connection(rng)
        } else {
            UeActions::none().off()
        }
    }

    fn response_delay(&self, _rng: &mut StdRng) -> Duration {
        Duration::from_micros(800)
    }
}

/// When and where the attacker shows up.
#[derive(Debug, Clone)]
pub struct MigrationSchedule {
    /// `(cell index, visit start)` in visit order.
    pub visits: Vec<(usize, Timestamp)>,
    /// Per-visit flood parameters.
    pub config: MigrateConfig,
}

impl MigrationSchedule {
    /// An evenly spaced tour: one visit per listed cell, `dwell` apart,
    /// starting at `start`.
    pub fn tour(cells: &[usize], start: Timestamp, dwell: Duration, config: MigrateConfig) -> Self {
        let visits = cells
            .iter()
            .enumerate()
            .map(|(i, &cell)| (cell, start + Duration::from_micros(dwell.as_micros() * i as u64)))
            .collect();
        MigrationSchedule { visits, config }
    }

    /// Installs the attacker into a streaming deployment: the SIM is
    /// provisioned in every visited cell, and one bounded flood powers on
    /// per visit. Events are labeled [`AttackKind::BtsDos`] — the signature
    /// is the same flood, only itinerant.
    pub fn install(&self, engine: &mut StreamingScenario) {
        let supi = Supi::new(Plmn::TEST, self.config.attacker_msin);
        for &(cell, at) in &self.visits {
            engine.add_subscriber_at(
                cell,
                SubscriberRecord { supi, key: self.config.attacker_key },
            );
            engine.add_ue_at(
                cell,
                Box::new(MigratingFloodUe::new(self.config.clone())),
                TrafficClass::Attack(AttackKind::BtsDos),
                at,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_ran::StreamConfig;

    #[test]
    fn flood_powers_off_after_its_budget() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let config = MigrateConfig { connections_per_visit: 3, ..MigrateConfig::default() };
        let mut ue = MigratingFloodUe::new(config);
        let mut opened = 0;
        let a = ue.on_power_on(Timestamp::ZERO, &mut rng);
        opened += a.sends.len();
        for _ in 0..10 {
            let a = ue.on_timer(Timestamp::ZERO, NEXT_CONNECTION, &mut rng);
            opened += a.sends.len();
            if a.power_off {
                assert_eq!(opened, 3);
                return;
            }
        }
        panic!("flood never powered off");
    }

    #[test]
    fn migrating_attacker_floods_every_visited_cell_then_leaves() {
        let mut engine = StreamingScenario::new(StreamConfig {
            seed: 50,
            cells: 3,
            total_ues: 30,
            mean_inter_arrival: Duration::from_millis(5),
            mobility_fraction: 0.0,
            ..StreamConfig::default()
        });
        let schedule = MigrationSchedule::tour(
            &[0, 1, 2],
            Timestamp::ZERO + Duration::from_millis(100),
            Duration::from_millis(700),
            MigrateConfig { connections_per_visit: 12, ..MigrateConfig::default() },
        );
        schedule.install(&mut engine);

        let mut events = Vec::new();
        let mut deadline = Timestamp::ZERO + Duration::from_millis(50);
        while !engine.done() {
            events.extend(engine.step(deadline));
            deadline += Duration::from_millis(50);
        }

        // Every visited cell sees the flood's attack-labeled setup storm...
        for cell in 0..3u32 {
            let setups = events
                .iter()
                .filter(|e| {
                    e.cell == xsec_types::CellId(cell + 1)
                        && e.label == TrafficClass::Attack(AttackKind::BtsDos)
                })
                .count();
            assert!(setups >= 12, "cell {cell} saw only {setups} attack events");
        }
        // ...and the attacker is gone at the end: the stream drains fully.
        assert_eq!(engine.live(), 0);
    }
}
