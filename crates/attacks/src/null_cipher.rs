//! Null cipher & integrity downgrade (Hussain et al., 5GReasoner, CCS'19).
//!
//! A bidding-down MiTM that exploits the fact that everything before the
//! NAS security-mode procedure is unprotected:
//!
//! 1. **Uplink**: strip the victim's advertised security capabilities in
//!    `RegistrationRequest` down to the mandatory null algorithms. The
//!    network, following the negotiation rule, selects `NEA0`/`NIA0`.
//! 2. **Downlink**: the network's `SecurityModeCommand` echoes the
//!    capabilities it *received* (the stripped ones) as an anti-bidding-down
//!    measure — but since the selected integrity is `NIA0`, the echo carries
//!    no cryptographic weight, and the MiTM simply rewrites it back to the
//!    full set the victim originally sent. The victim's check passes and the
//!    session proceeds with no confidentiality or integrity at all.
//!
//! Telemetry signature: a normally-shaped ladder whose state parameters
//! (`cipher_alg = NEA0`, `integrity_alg = NIA0`) are anomalous — a purely
//! multivariate anomaly.

use xsec_proto::{L3Message, NasMessage};
use xsec_ran::intercept::{Intercept, Interceptor, TaintScope};
use xsec_types::{AttackKind, SecurityCapabilities, UeId};

/// The capability-stripping MiTM.
pub struct NullCipherMitm {
    victim: UeId,
    /// The capabilities the victim really advertised (recorded on the way
    /// up, replayed into the forged echo on the way down).
    original_caps: Option<SecurityCapabilities>,
    active: bool,
}

impl NullCipherMitm {
    /// Targets one victim's next registration.
    pub fn new(victim: UeId) -> Self {
        NullCipherMitm { victim, original_caps: None, active: true }
    }
}

impl Interceptor for NullCipherMitm {
    fn on_uplink(&mut self, ue: UeId, msg: &L3Message) -> Intercept {
        if ue != self.victim || !self.active {
            return Intercept::Pass;
        }
        // The registration may be bare NAS or ride inside RRCSetupComplete.
        if let Some(NasMessage::RegistrationRequest { identity, capabilities }) =
            crate::wrap::uplink_nas(msg)
        {
            self.original_caps = Some(capabilities);
            return Intercept::Replace {
                message: crate::wrap::with_nas(
                    msg,
                    NasMessage::RegistrationRequest {
                        identity,
                        capabilities: SecurityCapabilities::null_only(),
                    },
                ),
                taint: AttackKind::NullCipher,
                // The stripped capability bitmap is invisible in MobiFlow
                // telemetry (capabilities are not a Table 1 parameter), so
                // the strip itself is not a labelable entry; the labels
                // start where the downgrade becomes observable (the SMC).
                scope: TaintScope::Burst { skip: 0, label: 0 },
            };
        }
        Intercept::Pass
    }

    fn on_downlink(&mut self, ue: UeId, msg: &L3Message) -> Intercept {
        if ue != self.victim || !self.active {
            return Intercept::Pass;
        }
        if let L3Message::Nas(NasMessage::SecurityModeCommand { cipher, integrity, .. }) = msg {
            let Some(original) = self.original_caps else {
                return Intercept::Pass;
            };
            // The downgrade succeeded only if the network picked null
            // algorithms; forge the echo so the victim's anti-bidding-down
            // check passes. One-shot: stop after the SMC.
            self.active = false;
            return Intercept::Replace {
                message: L3Message::Nas(NasMessage::SecurityModeCommand {
                    cipher: *cipher,
                    integrity: *integrity,
                    replayed_capabilities: original,
                }),
                taint: AttackKind::NullCipher,
                scope: TaintScope::Session,
            };
        }
        Intercept::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_proto::MobileIdentity;
    use xsec_types::{CipherAlg, IntegrityAlg, Tmsi};

    #[test]
    fn strips_capabilities_uplink_and_forges_echo_downlink() {
        let mut mitm = NullCipherMitm::new(UeId(5));
        let reg = L3Message::Nas(NasMessage::RegistrationRequest {
            identity: MobileIdentity::FiveGSTmsi(Tmsi(1)),
            capabilities: SecurityCapabilities::full(),
        });
        // Uplink: stripped.
        let Intercept::Replace { message, taint, .. } = mitm.on_uplink(UeId(5), &reg) else {
            panic!("expected Replace");
        };
        assert_eq!(taint, AttackKind::NullCipher);
        let L3Message::Nas(NasMessage::RegistrationRequest { capabilities, .. }) = message else {
            panic!("still a registration");
        };
        assert_eq!(capabilities, SecurityCapabilities::null_only());

        // Downlink: the network (having seen null-only) selects NEA0/NIA0
        // and echoes null-only; the MiTM rewrites the echo to full.
        let smc = L3Message::Nas(NasMessage::SecurityModeCommand {
            cipher: CipherAlg::Nea0,
            integrity: IntegrityAlg::Nia0,
            replayed_capabilities: SecurityCapabilities::null_only(),
        });
        let Intercept::Replace { message, .. } = mitm.on_downlink(UeId(5), &smc) else {
            panic!("expected Replace");
        };
        let L3Message::Nas(NasMessage::SecurityModeCommand {
            cipher,
            integrity,
            replayed_capabilities,
        }) = message
        else {
            panic!("still an SMC");
        };
        assert!(cipher.is_null() && integrity.is_null());
        assert_eq!(replayed_capabilities, SecurityCapabilities::full());

        // One-shot: subsequent traffic passes.
        assert_eq!(mitm.on_downlink(UeId(5), &smc), Intercept::Pass);
    }

    #[test]
    fn non_victims_pass_untouched() {
        let mut mitm = NullCipherMitm::new(UeId(5));
        let reg = L3Message::Nas(NasMessage::RegistrationRequest {
            identity: MobileIdentity::FiveGSTmsi(Tmsi(1)),
            capabilities: SecurityCapabilities::full(),
        });
        assert_eq!(mitm.on_uplink(UeId(6), &reg), Intercept::Pass);
    }

    #[test]
    fn echo_forgery_requires_seen_uplink() {
        // If the MiTM never saw the registration (e.g. attached late), it
        // cannot forge a matching echo and stays passive.
        let mut mitm = NullCipherMitm::new(UeId(5));
        let smc = L3Message::Nas(NasMessage::SecurityModeCommand {
            cipher: CipherAlg::Nea0,
            integrity: IntegrityAlg::Nia0,
            replayed_capabilities: SecurityCapabilities::null_only(),
        });
        assert_eq!(mitm.on_downlink(UeId(5), &smc), Intercept::Pass);
    }
}
