//! A rogue xApp mounted *inside* the RIC: the platform-level attacker of
//! the O-RAN threat model (arXiv:2212.11465, arXiv:2406.12299), as opposed
//! to the radio-layer adversaries in the rest of this crate.
//!
//! The rogue is deployed like any tenant — registered with the platform,
//! invoked on the telemetry it subscribes to — but tries to act far beyond
//! its station on every window:
//!
//! 1. **Spoofed finding**: publishes a hand-crafted `FindingNotice` on the
//!    `findings` topic, trying to trick the Mitigator into issuing control
//!    actions against victims the rogue picked.
//! 2. **Unauthorized A1 ops**: publishes both a bare `A1Request` and a
//!    forged signed envelope (claiming the SMO's identity with a guessed
//!    token) on `a1-policies`, trying to disable the null-cipher playbook.
//! 3. **Direct control injection**: queues a `QuarantineCell` Control
//!    Request — a full cell outage if it ever reaches the RAN.
//!
//! Against a hardened deployment every attempt must die at a choke point
//! (router topic ACL, Mitigator envelope verification, per-kind control
//! gate), each denial counted in `xsec_authz_denied_total{xapp,capability}`
//! and flight-recorded. [`RogueReport`] tallies what actually got through,
//! so tests can assert the blast radius was zero.

use std::sync::{Arc, Mutex};
use xsec_control::{A1Request, ControlAction, MitigationAction};
use xsec_ric::{XApp, XAppContext};
use xsec_types::{CellId, Duration, Timestamp};

/// What the rogue managed to do — every counter other than `attempts`
/// should stay zero on a hardened deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RogueReport {
    /// Attack rounds mounted (one per telemetry window).
    pub attempts: u64,
    /// Spoofed findings that reached at least one mailbox.
    pub findings_delivered: u64,
    /// A1 operations (bare or forged-envelope) that reached a mailbox.
    /// Delivery is necessary but not sufficient — the Mitigator still
    /// verifies the envelope — so pair this with the policy-op tally.
    pub a1_delivered: u64,
    /// QuarantineCell control actions the platform queued for shipping.
    pub controls_queued: u64,
}

/// The rogue xApp. See the module docs for the attack repertoire.
pub struct RogueXApp {
    report: Arc<Mutex<RogueReport>>,
    /// Token the forged SMO envelope claims (a guess — the real token is
    /// never observable from another xApp's scope).
    forged_token: u64,
    /// Cell targeted by the quarantine injection.
    target_cell: CellId,
}

impl RogueXApp {
    /// Creates the rogue and the report handle the test asserts on.
    pub fn new(forged_token: u64, target_cell: CellId) -> (Self, Arc<Mutex<RogueReport>>) {
        let report = Arc::new(Mutex::new(RogueReport::default()));
        (RogueXApp { report: report.clone(), forged_token, target_cell }, report)
    }

    /// Publishes through the context's scope when present (counting real
    /// deliveries), falling back to the raw router for open deployments.
    fn try_publish(ctx: &XAppContext<'_>, topic: &str, payload: &[u8]) -> bool {
        match ctx.scope {
            Some(handle) => handle.try_publish(topic, payload).is_ok(),
            None => ctx.router.try_publish(topic, payload).is_ok(),
        }
    }

    fn mount(&self, ctx: &mut XAppContext<'_>, now: Timestamp) {
        let mut report = self.report.lock().expect("rogue report lock");
        report.attempts += 1;

        // 1. Spoof a confirmed BTS-DoS finding naming no records — enough
        // to read as "confirmed, act now" if it ever reaches the Mitigator.
        let finding = format!(
            concat!(
                r#"{{"trace":0,"at_record":0,"at_time":{},"score":9.0,"threshold":0.1,"#,
                r#""anomalous":true,"confirmed":true,"needs_human":false,"#,
                r#""attacks":["Signaling storm / RRC flooding DoS (BTS DoS)"],"records":[]}}"#
            ),
            now.as_micros()
        );
        if Self::try_publish(ctx, "findings", finding.as_bytes()) {
            report.findings_delivered += 1;
        }

        // 2a. Bare A1 request: disable the null-cipher playbook.
        let disarm = A1Request::SetEnabled { id: "null-cipher".to_string(), enabled: false };
        let bare = serde_json::to_vec(&disarm).expect("A1 requests serialize");
        if Self::try_publish(ctx, "a1-policies", &bare) {
            report.a1_delivered += 1;
        }

        // 2b. Forged envelope claiming the SMO's identity with a guessed
        // token (the mitigator checks it against the router registry).
        let forged = format!(
            r#"{{"xapp":"smo","token":{},"request":{}}}"#,
            self.forged_token,
            serde_json::to_string(&disarm).expect("A1 requests serialize"),
        );
        if Self::try_publish(ctx, "a1-policies", forged.as_bytes()) {
            report.a1_delivered += 1;
        }

        // 3. Inject a cell-wide quarantine straight into the control path.
        let outage = ControlAction {
            id: 0xDEAD,
            ttl: Duration::from_secs(60),
            action: MitigationAction::QuarantineCell { cell: self.target_cell },
            trace: None,
        };
        if ctx.send_control_action(
            "quarantine-cell",
            Some(self.target_cell),
            None,
            true,
            outage.encode(),
        ) {
            report.controls_queued += 1;
        }
    }
}

impl XApp for RogueXApp {
    fn name(&self) -> &str {
        "rogue"
    }

    fn on_records(
        &mut self,
        ctx: &mut XAppContext<'_>,
        _records: &[xsec_ric::UeMobiFlow],
        window_end: Timestamp,
    ) {
        self.mount(ctx, window_end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_ric::{Grants, Router, SharedDataLayer, XAppIdentity};

    #[test]
    fn rogue_is_fully_contained_by_a_scoped_context() {
        let sdl = SharedDataLayer::new();
        let router = Router::new();
        router.enforce();
        // A legitimate mitigator mailbox exists on both sensitive topics,
        // so any leak would be observable.
        let mitigator = router
            .register(
                XAppIdentity::named("mitigator"),
                Grants::none().subscribe("findings").subscribe("a1-policies"),
            )
            .unwrap();
        let findings_rx = mitigator.subscribe("findings");
        let a1_rx = mitigator.subscribe("a1-policies");
        let handle =
            router.register(XAppIdentity::named("rogue"), Grants::none()).unwrap();
        router.seal();

        let (mut rogue, report) = RogueXApp::new(42, CellId(1));
        let mut control = Vec::new();
        let mut ctx = XAppContext {
            sdl: &sdl,
            router: &router,
            control_out: &mut control,
            scope: Some(&handle),
        };
        rogue.on_records(&mut ctx, &[], Timestamp(1_000));

        let report = *report.lock().unwrap();
        assert_eq!(report.attempts, 1);
        assert_eq!(report.findings_delivered, 0);
        assert_eq!(report.a1_delivered, 0);
        assert_eq!(report.controls_queued, 0);
        assert!(control.is_empty());
        assert!(findings_rx.try_recv().is_err());
        assert!(a1_rx.try_recv().is_err());
        // findings + 2 × a1-policies + quarantine-cell.
        assert_eq!(router.denied(), 4);
    }

    #[test]
    fn rogue_succeeds_against_an_open_router() {
        // The pre-authorization baseline this module exists to close: on an
        // open router every attempt lands.
        let sdl = SharedDataLayer::new();
        let router = Router::new();
        let _findings_rx = router.subscribe("findings");
        let _a1_rx = router.subscribe("a1-policies");
        let (mut rogue, report) = RogueXApp::new(42, CellId(1));
        let mut control = Vec::new();
        let mut ctx =
            XAppContext { sdl: &sdl, router: &router, control_out: &mut control, scope: None };
        rogue.on_records(&mut ctx, &[], Timestamp(1_000));

        let report = *report.lock().unwrap();
        assert_eq!(report.findings_delivered, 1);
        assert_eq!(report.a1_delivered, 2);
        assert_eq!(report.controls_queued, 1);
        assert_eq!(control.len(), 1);
    }
}
