//! Labeled dataset assembly — the stand-in for the paper's data collection
//! runs on COLOSSEUM.
//!
//! The paper builds one benign dataset (>100 UE sessions, mixed devices) and
//! five attack datasets (benign background + one attack each, with malicious
//! telemetry entries hand-labeled). [`DatasetBuilder`] reproduces that
//! recipe deterministically: same seed → byte-identical datasets.

use crate::blind_dos::{BlindDosUe, TmsiSniffer};
use crate::bts_dos::{BtsDosConfig, BtsDosUe};
use crate::id_extraction::{DownlinkIdExtractor, UplinkIdExtractor};
use crate::null_cipher::NullCipherMitm;
use xsec_ran::amf::SubscriberRecord;
use xsec_ran::intercept::Chain;
use xsec_ran::scenario::{Scenario, ScenarioConfig};
use xsec_ran::sim::{RanSimulator, SimReport};
use xsec_types::{AttackKind, Duration, Plmn, Supi, Timestamp, TrafficClass, UeId};

/// One generated attack dataset.
pub struct AttackDataset {
    /// The attack mixed into this dataset.
    pub kind: AttackKind,
    /// The full simulation output (labeled events + raw trace).
    pub report: SimReport,
}

/// Builds a simulator with the benign background plus one attack installed.
///
/// Victim selection: the MiTM attacks target a handful of benign UEs spread
/// through the arrival order (UE ids are 1-based arrival indices).
pub fn attack_simulator(kind: AttackKind, scenario: &ScenarioConfig) -> RanSimulator {
    let mut sim = Scenario::new(scenario.clone()).build();
    let n = scenario.benign_sessions as u64;
    // Attack activity begins after ~40% of the benign sessions have started,
    // mirroring "each attack occurs at a certain point within a network
    // session" (§4, dataset labeling).
    let attack_start =
        Timestamp(scenario.mean_inter_arrival.as_micros().saturating_mul(n * 2 / 5));
    let victims = || {
        [n * 2 / 5 + 1, n / 2 + 1, n * 3 / 5 + 1, n * 4 / 5 + 1]
            .into_iter()
            .map(UeId)
            .collect::<Vec<_>>()
    };

    match kind {
        AttackKind::BtsDos => {
            let msin = 999_000;
            sim.add_subscriber(SubscriberRecord { supi: Supi::new(Plmn::TEST, msin), key: 0x666 });
            let flood = BtsDosUe::new(BtsDosConfig {
                connections: 40,
                inter_connection: Duration::from_millis(6),
                attacker_msin: msin,
            });
            sim.add_ue(Box::new(flood), TrafficClass::Attack(AttackKind::BtsDos), attack_start);
        }
        AttackKind::BlindDos => {
            let (sniffer, store) = TmsiSniffer::new();
            sim.set_interceptor(Box::new(Chain::new().push(Box::new(sniffer))));
            let replayer = BlindDosUe::new(store, 8, Duration::from_millis(180));
            sim.add_ue(
                Box::new(replayer),
                TrafficClass::Attack(AttackKind::BlindDos),
                attack_start,
            );
        }
        AttackKind::UplinkIdExtraction => {
            let mut chain = Chain::new();
            for victim in victims() {
                chain = chain.push(Box::new(UplinkIdExtractor::new(victim, 1)));
            }
            sim.set_interceptor(Box::new(chain));
        }
        AttackKind::DownlinkIdExtraction => {
            let mut chain = Chain::new();
            for victim in victims() {
                chain = chain.push(Box::new(DownlinkIdExtractor::new(victim, 1)));
            }
            sim.set_interceptor(Box::new(chain));
        }
        AttackKind::NullCipher => {
            let mut chain = Chain::new();
            for victim in victims() {
                chain = chain.push(Box::new(NullCipherMitm::new(victim)));
            }
            sim.set_interceptor(Box::new(chain));
        }
    }
    sim
}

/// The dataset-collection recipe: one benign run plus one run per attack.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    /// Benign-background scenario shared by all runs.
    pub scenario: ScenarioConfig,
}

impl DatasetBuilder {
    /// Builder over the given scenario.
    pub fn new(scenario: ScenarioConfig) -> Self {
        DatasetBuilder { scenario }
    }

    /// A smaller, faster configuration for tests and examples.
    pub fn small(seed: u64, sessions: usize) -> Self {
        let mut scenario = ScenarioConfig::default();
        scenario.sim.seed = seed;
        scenario.benign_sessions = sessions;
        DatasetBuilder { scenario }
    }

    /// Runs the benign collection.
    pub fn benign(&self) -> SimReport {
        Scenario::new(self.scenario.clone()).build().run()
    }

    /// Runs one attack collection.
    pub fn attack(&self, kind: AttackKind) -> AttackDataset {
        let report = attack_simulator(kind, &self.scenario).run();
        AttackDataset { kind, report }
    }

    /// Runs all five attack collections (paper §4).
    pub fn all_attacks(&self) -> Vec<AttackDataset> {
        AttackKind::ALL.into_iter().map(|kind| self.attack(kind)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_proto::{L3Message, MessageKind, NasMessage};
    use xsec_types::Tmsi;

    fn builder(seed: u64) -> DatasetBuilder {
        DatasetBuilder::small(seed, 30)
    }

    #[test]
    fn benign_dataset_is_clean() {
        // Seed pinned against the vendored RNG stream: channel loss can
        // strand a couple of registrations on an unlucky draw.
        let report = builder(2).benign();
        assert!(report.events.iter().all(|e| !e.label.is_attack()));
        assert!(report.registrations >= 28);
    }

    #[test]
    fn bts_dos_floods_unique_rntis_and_stalls() {
        let ds = builder(2).attack(AttackKind::BtsDos);
        let attack_setups: Vec<_> = ds
            .report
            .events
            .iter()
            .filter(|e| {
                e.label == TrafficClass::Attack(AttackKind::BtsDos)
                    && e.msg.kind() == MessageKind::RrcSetupRequest
            })
            .collect();
        assert!(attack_setups.len() >= 20, "flood too small: {}", attack_setups.len());
        // Unique RNTIs per fabricated connection (the Figure 2b signature).
        let mut rntis: Vec<_> = attack_setups.iter().map(|e| e.rnti).collect();
        rntis.sort();
        rntis.dedup();
        assert_eq!(rntis.len(), attack_setups.len(), "RNTIs must be unique");
        // Connections stall: guard expiry collects them.
        assert!(ds.report.gnb_stats.guard_expired >= 15);
        // No attack connection ever answered a challenge.
        assert!(!ds.report.events.iter().any(|e| {
            e.label == TrafficClass::Attack(AttackKind::BtsDos)
                && e.msg.kind() == MessageKind::NasAuthenticationResponse
        }));
    }

    #[test]
    fn blind_dos_replays_the_same_tmsi_across_sessions() {
        // Seed pinned against the vendored RNG stream: the sniffer must catch
        // at least one victim TMSI twice for the reuse signature to show.
        let ds = builder(5).attack(AttackKind::BlindDos);
        let replayed: Vec<Tmsi> = ds
            .report
            .events
            .iter()
            .filter(|e| e.label == TrafficClass::Attack(AttackKind::BlindDos))
            .filter_map(|e| match &e.msg {
                L3Message::Nas(NasMessage::RegistrationRequest {
                    identity: xsec_proto::MobileIdentity::FiveGSTmsi(t),
                    ..
                }) => Some(*t),
                _ => None,
            })
            .collect();
        assert!(replayed.len() >= 4, "too few replays: {}", replayed.len());
        // Same TMSI appears in multiple distinct sessions (distinct RNTIs).
        let mut unique = replayed.clone();
        unique.sort();
        unique.dedup();
        assert!(
            unique.len() < replayed.len(),
            "expected TMSI reuse, got all-unique {replayed:?}"
        );
        // Victims get detached with a network abort.
        assert!(ds.report.events.iter().any(|e| {
            matches!(
                &e.msg,
                L3Message::Rrc(xsec_proto::RrcMessage::Release {
                    cause: xsec_types::ReleaseCause::NetworkAbort
                })
            )
        }));
    }

    #[test]
    fn uplink_extraction_exposes_supi_with_compliant_trace() {
        let ds = builder(4).attack(AttackKind::UplinkIdExtraction);
        let exposures: Vec<_> = ds
            .report
            .events
            .iter()
            .filter(|e| {
                e.supi_exposed.is_some()
                    && e.label == TrafficClass::Attack(AttackKind::UplinkIdExtraction)
            })
            .collect();
        assert!(!exposures.is_empty(), "no SUPI exposure found");
        // The exposure is carried in a legal IdentityResponse that *follows*
        // an IdentityRequest (compliant ordering).
        for exposure in &exposures {
            assert_eq!(exposure.msg.kind(), MessageKind::NasIdentityResponse);
        }
        assert!(ds
            .report
            .events
            .iter()
            .any(|e| e.msg.kind() == MessageKind::NasIdentityRequest));
    }

    #[test]
    fn downlink_extraction_exposes_supi_out_of_order() {
        let ds = builder(5).attack(AttackKind::DownlinkIdExtraction);
        let exposures: Vec<_> = ds
            .report
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.supi_exposed.is_some()
                    && e.label == TrafficClass::Attack(AttackKind::DownlinkIdExtraction)
            })
            .collect();
        assert!(!exposures.is_empty(), "no SUPI exposure found");
        // The network-side trace shows AuthenticationRequest answered by an
        // IdentityResponse (Figure 2a): find the preceding event for the same
        // connection and check it is the challenge.
        let (idx, exposure) = exposures[0];
        let prior: Vec<_> = ds.report.events[..idx]
            .iter()
            .filter(|e| e.du_ue_id == exposure.du_ue_id)
            .collect();
        assert_eq!(
            prior.last().map(|e| e.msg.kind()),
            Some(MessageKind::NasAuthenticationRequest),
            "exposure should directly follow the (overwritten) challenge"
        );
    }

    #[test]
    fn null_cipher_sessions_negotiate_nea0_nia0() {
        let ds = builder(6).attack(AttackKind::NullCipher);
        let downgraded: Vec<_> = ds
            .report
            .events
            .iter()
            .filter(|e| {
                e.label == TrafficClass::Attack(AttackKind::NullCipher)
                    && e.cipher == Some(xsec_types::CipherAlg::Nea0)
                    && e.integrity == Some(xsec_types::IntegrityAlg::Nia0)
            })
            .collect();
        assert!(!downgraded.is_empty(), "no downgraded session telemetry");
        // The victims complete registration anyway (the attack is silent).
        assert!(downgraded
            .iter()
            .any(|e| e.msg.kind() == MessageKind::NasRegistrationAccept));
    }

    #[test]
    fn attack_datasets_are_deterministic() {
        let a = builder(7).attack(AttackKind::BtsDos);
        let b = builder(7).attack(AttackKind::BtsDos);
        assert_eq!(a.report.events, b.report.events);
    }

    #[test]
    fn all_attacks_produces_five_datasets() {
        let datasets = DatasetBuilder::small(8, 15).all_attacks();
        assert_eq!(datasets.len(), 5);
        for ds in &datasets {
            let has_attack_events = ds.report.events.iter().any(|e| e.label.is_attack());
            assert!(has_attack_events, "{} produced no attack events", ds.kind);
        }
    }
}
