//! Blind DoS: replay a victim's temporary identity to knock it off the
//! network (Kim et al., S&P'19).
//!
//! Two cooperating components:
//!
//! * [`TmsiSniffer`] — a passive over-the-air observer that records the
//!   TMSIs the network assigns in `RegistrationAccept` messages (they are
//!   transmitted before confidentiality protects them in our model, as the
//!   attack papers assume for paging/accept observation);
//! * [`BlindDosUe`] — a rogue UE that repeatedly opens connections
//!   presenting a sniffed victim TMSI. The AMF sees the "victim" appearing
//!   on a new connection, detaches the real one (`RRCRelease` with
//!   network-abort), and challenges the imposter — who goes silent and
//!   replays again.
//!
//! Telemetry signature (what the paper's LLMs keyed on): *the same TMSI
//! recurring across distinct UE sessions/RNTIs*, each stalling after the
//! challenge, with victim connections dying mid-session.

use rand::rngs::StdRng;
use rand::Rng;
use std::sync::{Arc, Mutex};
use xsec_proto::{L3Message, MobileIdentity, NasMessage, RrcMessage};
use xsec_ran::intercept::{Intercept, Interceptor};
use xsec_ran::ue::{UeActions, UeBehavior};
use xsec_types::{Duration, EstablishmentCause, Timestamp, Tmsi, UeId};

/// Shared sniffer memory: TMSIs observed on the air, oldest first.
pub type SniffedTmsis = Arc<Mutex<Vec<Tmsi>>>;

/// Passive observer recording assigned TMSIs from downlink accepts.
pub struct TmsiSniffer {
    store: SniffedTmsis,
}

impl TmsiSniffer {
    /// Creates a sniffer and the shared store the rogue UE reads.
    pub fn new() -> (Self, SniffedTmsis) {
        let store: SniffedTmsis = Arc::new(Mutex::new(Vec::new()));
        (TmsiSniffer { store: store.clone() }, store)
    }
}

impl Interceptor for TmsiSniffer {
    fn on_downlink(&mut self, _ue: UeId, msg: &L3Message) -> Intercept {
        if let L3Message::Nas(NasMessage::RegistrationAccept { new_tmsi }) = msg {
            self.store.lock().expect("sniffer store").push(*new_tmsi);
        }
        Intercept::Pass // purely passive
    }
}

const REPLAY: u32 = 0xB11D;

/// The replaying rogue UE.
pub struct BlindDosUe {
    sniffed: SniffedTmsis,
    replays: u32,
    done: u32,
    gap: Duration,
    awaiting_setup: bool,
    current_target: Option<Tmsi>,
}

impl BlindDosUe {
    /// Creates the replayer: `replays` connection attempts, `gap` apart,
    /// targeting TMSIs from the shared sniffer store.
    pub fn new(sniffed: SniffedTmsis, replays: u32, gap: Duration) -> Self {
        BlindDosUe { sniffed, replays, done: 0, gap, awaiting_setup: false, current_target: None }
    }

    fn open(&mut self, rng: &mut StdRng) -> UeActions {
        // Lock the newest sniffed TMSI as this round's target; if nothing
        // was sniffed yet, retry shortly.
        let target = { self.sniffed.lock().expect("sniffer store").last().copied() };
        match target {
            None => UeActions::none().timer(self.gap, REPLAY),
            Some(tmsi) => {
                self.current_target = Some(tmsi);
                self.done += 1;
                self.awaiting_setup = true;
                let mut actions =
                    UeActions::none().send(L3Message::Rrc(RrcMessage::SetupRequest {
                        ue_identity: rng.gen(),
                        cause: EstablishmentCause::MoSignalling,
                    }));
                if self.done < self.replays {
                    actions = actions.timer(self.gap, REPLAY);
                }
                actions
            }
        }
    }
}

impl UeBehavior for BlindDosUe {
    fn on_power_on(&mut self, _now: Timestamp, rng: &mut StdRng) -> UeActions {
        self.open(rng)
    }

    fn on_downlink(&mut self, _now: Timestamp, msg: &L3Message, _rng: &mut StdRng) -> UeActions {
        match msg {
            L3Message::Rrc(RrcMessage::Setup) if self.awaiting_setup => {
                self.awaiting_setup = false;
                let Some(tmsi) = self.current_target else {
                    return UeActions::none();
                };
                let reg = NasMessage::RegistrationRequest {
                    identity: MobileIdentity::FiveGSTmsi(tmsi),
                    capabilities: xsec_types::SecurityCapabilities::full(),
                };
                let container = xsec_proto::encode_l3(&L3Message::Nas(reg));
                UeActions::none()
                    .send(L3Message::Rrc(RrcMessage::SetupComplete { nas_container: container }))
            }
            // Challenges / identity requests: silence. The damage (victim
            // detach) is already done.
            _ => UeActions::none(),
        }
    }

    fn on_timer(&mut self, _now: Timestamp, token: u32, rng: &mut StdRng) -> UeActions {
        if token == REPLAY && self.done < self.replays {
            self.open(rng)
        } else {
            UeActions::none()
        }
    }

    fn response_delay(&self, _rng: &mut StdRng) -> Duration {
        Duration::from_micros(900)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sniffer_records_accepts_and_stays_passive() {
        let (mut sniffer, store) = TmsiSniffer::new();
        let accept = L3Message::Nas(NasMessage::RegistrationAccept { new_tmsi: Tmsi(7) });
        assert_eq!(sniffer.on_downlink(UeId(1), &accept), Intercept::Pass);
        let other = L3Message::Rrc(RrcMessage::Setup);
        assert_eq!(sniffer.on_downlink(UeId(1), &other), Intercept::Pass);
        assert_eq!(*store.lock().unwrap(), vec![Tmsi(7)]);
    }

    #[test]
    fn replayer_waits_until_something_is_sniffed() {
        let (_, store) = TmsiSniffer::new();
        let mut ue = BlindDosUe::new(store.clone(), 2, Duration::from_millis(10));
        let mut rng = StdRng::seed_from_u64(1);
        // Nothing sniffed yet → no send, just a retry timer.
        let actions = ue.on_power_on(Timestamp::ZERO, &mut rng);
        assert!(actions.sends.is_empty());
        assert_eq!(actions.timers.len(), 1);
        // Sniff a TMSI; the retry opens a connection.
        store.lock().unwrap().push(Tmsi(0xAA));
        let actions = ue.on_timer(Timestamp::ZERO, REPLAY, &mut rng);
        assert!(matches!(actions.sends[0], L3Message::Rrc(RrcMessage::SetupRequest { .. })));
    }

    #[test]
    fn replayer_presents_the_sniffed_tmsi() {
        let (_, store) = TmsiSniffer::new();
        store.lock().unwrap().push(Tmsi(0xBEEF));
        let mut ue = BlindDosUe::new(store, 1, Duration::from_millis(10));
        let mut rng = StdRng::seed_from_u64(2);
        ue.on_power_on(Timestamp::ZERO, &mut rng);
        let actions = ue.on_downlink(Timestamp::ZERO, &L3Message::Rrc(RrcMessage::Setup), &mut rng);
        let L3Message::Rrc(RrcMessage::SetupComplete { nas_container }) = &actions.sends[0] else {
            panic!("expected SetupComplete");
        };
        let L3Message::Nas(NasMessage::RegistrationRequest { identity, .. }) =
            xsec_proto::decode_l3(nas_container).unwrap()
        else {
            panic!("expected RegistrationRequest");
        };
        assert_eq!(identity, MobileIdentity::FiveGSTmsi(Tmsi(0xBEEF)));
    }

    #[test]
    fn replayer_ignores_challenges() {
        let (_, store) = TmsiSniffer::new();
        store.lock().unwrap().push(Tmsi(1));
        let mut ue = BlindDosUe::new(store, 1, Duration::from_millis(10));
        let mut rng = StdRng::seed_from_u64(3);
        ue.on_power_on(Timestamp::ZERO, &mut rng);
        let challenge = L3Message::Nas(NasMessage::AuthenticationRequest { rand: 1, autn: 1 });
        assert!(ue.on_downlink(Timestamp::ZERO, &challenge, &mut rng).sends.is_empty());
    }
}
