//! Identity-extraction attacks: force a victim to transmit its permanent
//! identity (SUPI) in plaintext so the attacker can track it.
//!
//! Two variants from the literature, both implemented as air-interface MiTM
//! interceptors against a chosen victim:
//!
//! * **Uplink** ([`UplinkIdExtractor`], AdaptOver — Erni et al.,
//!   MobiCom'22): the attacker overshadows the victim's *uplink*
//!   `RegistrationRequest`, garbling the SUCI. The network cannot resolve
//!   the identity and — following its own permissive fallback — sends a
//!   legitimate `IdentityRequest` for the plaintext SUPI, which the victim
//!   dutifully answers. Every message in the resulting trace is
//!   standards-compliant; only the *content* (a plaintext SUPI on the air)
//!   betrays the attack. This is the trace most LLMs miss in Table 3.
//!
//! * **Downlink** ([`DownlinkIdExtractor`], LTrack — Kotuliak et al.,
//!   USENIX Sec'22; paper Figure 2a): the attacker overwrites the *downlink*
//!   `AuthenticationRequest` with an `IdentityRequest(SUPI)`. The network
//!   then observes an `IdentityResponse` where it expected an
//!   `AuthenticationResponse` — an out-of-order univariate anomaly.

use xsec_proto::nas::IdentityType;
use xsec_proto::{L3Message, MessageKind, MobileIdentity, NasMessage};
use xsec_ran::auth::conceal_supi;
use xsec_ran::intercept::{Intercept, Interceptor, TaintScope};
use xsec_types::{AttackKind, UeId};

/// AdaptOver-style uplink overshadowing against one victim.
pub struct UplinkIdExtractor {
    victim: UeId,
    /// How many registration attempts to garble (each yields one exposure).
    remaining: u32,
}

impl UplinkIdExtractor {
    /// Targets `victim` for `episodes` registration attempts.
    pub fn new(victim: UeId, episodes: u32) -> Self {
        UplinkIdExtractor { victim, remaining: episodes }
    }
}

impl Interceptor for UplinkIdExtractor {
    fn on_uplink(&mut self, ue: UeId, msg: &L3Message) -> Intercept {
        if ue != self.victim || self.remaining == 0 {
            return Intercept::Pass;
        }
        // The registration may be bare NAS or ride inside RRCSetupComplete.
        let Some(NasMessage::RegistrationRequest { identity, capabilities }) =
            crate::wrap::uplink_nas(msg)
        else {
            return Intercept::Pass;
        };
        self.remaining -= 1;
        // Overshadow: garble the presented identity (SUCI bits flipped / TMSI
        // replaced by an unresolvable SUCI). The network de-conceals to a
        // nonexistent subscriber and falls back to an identity request — a
        // perfectly legal exchange.
        let plmn = match identity {
            MobileIdentity::Suci { plmn, .. } => plmn,
            _ => xsec_types::Plmn::TEST,
        };
        let garbled =
            MobileIdentity::Suci { plmn, concealed: conceal_supi(0xDEAD_BEEF, 0xFFFF_FFFF) };
        Intercept::Replace {
            message: crate::wrap::with_nas(
                msg,
                NasMessage::RegistrationRequest { identity: garbled, capabilities },
            ),
            taint: AttackKind::UplinkIdExtraction,
            // The garbled registration reads exactly like a benign one in
            // telemetry; the observable malicious entries are the provoked
            // identity exchange. Anchoring on message kinds keeps the
            // labels aligned even across channel retransmissions.
            scope: TaintScope::Span {
                from: MessageKind::NasIdentityRequest,
                to: MessageKind::NasIdentityResponse,
            },
        }
    }
}

/// LTrack-style downlink overwrite against one victim.
pub struct DownlinkIdExtractor {
    victim: UeId,
    /// How many authentication requests to overwrite.
    remaining: u32,
}

impl DownlinkIdExtractor {
    /// Targets `victim` for `episodes` authentication exchanges.
    pub fn new(victim: UeId, episodes: u32) -> Self {
        DownlinkIdExtractor { victim, remaining: episodes }
    }
}

impl Interceptor for DownlinkIdExtractor {
    fn on_downlink(&mut self, ue: UeId, msg: &L3Message) -> Intercept {
        if ue != self.victim || self.remaining == 0 {
            return Intercept::Pass;
        }
        if let L3Message::Nas(NasMessage::AuthenticationRequest { .. }) = msg {
            self.remaining -= 1;
            return Intercept::Replace {
                message: L3Message::Nas(NasMessage::IdentityRequest {
                    id_type: IdentityType::PlainSupi,
                }),
                taint: AttackKind::DownlinkIdExtraction,
                // The overwritten transmission slot still shows the original
                // authentication request at the network tap; the observable
                // malicious entry is the out-of-order plaintext identity
                // response (Figure 2a's deviation).
                scope: TaintScope::Span {
                    from: MessageKind::NasIdentityResponse,
                    to: MessageKind::NasIdentityResponse,
                },
            };
        }
        Intercept::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_types::{Plmn, SecurityCapabilities};

    fn registration(concealed: u64) -> L3Message {
        L3Message::Nas(NasMessage::RegistrationRequest {
            identity: MobileIdentity::Suci { plmn: Plmn::TEST, concealed },
            capabilities: SecurityCapabilities::full(),
        })
    }

    #[test]
    fn uplink_extractor_garbles_victim_suci_only() {
        let mut mitm = UplinkIdExtractor::new(UeId(3), 1);
        // Non-victim passes.
        assert_eq!(mitm.on_uplink(UeId(1), &registration(42)), Intercept::Pass);
        // Victim gets garbled.
        match mitm.on_uplink(UeId(3), &registration(42)) {
            Intercept::Replace { message, taint, .. } => {
                assert_eq!(taint, AttackKind::UplinkIdExtraction);
                let L3Message::Nas(NasMessage::RegistrationRequest { identity, .. }) = message
                else {
                    panic!("still a registration request");
                };
                let MobileIdentity::Suci { concealed, .. } = identity else {
                    panic!("still a SUCI — the trace stays compliant-looking");
                };
                assert_ne!(concealed, 42);
            }
            other => panic!("expected Replace, got {other:?}"),
        }
        // Budget exhausted → passes afterward.
        assert_eq!(mitm.on_uplink(UeId(3), &registration(42)), Intercept::Pass);
    }

    #[test]
    fn uplink_extractor_ignores_other_messages() {
        let mut mitm = UplinkIdExtractor::new(UeId(3), 5);
        let msg = L3Message::Nas(NasMessage::SecurityModeComplete);
        assert_eq!(mitm.on_uplink(UeId(3), &msg), Intercept::Pass);
    }

    #[test]
    fn downlink_extractor_swaps_auth_request_for_identity_request() {
        let mut mitm = DownlinkIdExtractor::new(UeId(2), 1);
        let challenge = L3Message::Nas(NasMessage::AuthenticationRequest { rand: 1, autn: 2 });
        match mitm.on_downlink(UeId(2), &challenge) {
            Intercept::Replace { message, taint, .. } => {
                assert_eq!(taint, AttackKind::DownlinkIdExtraction);
                assert!(matches!(
                    message,
                    L3Message::Nas(NasMessage::IdentityRequest {
                        id_type: IdentityType::PlainSupi
                    })
                ));
            }
            other => panic!("expected Replace, got {other:?}"),
        }
        // Non-victims and later exchanges pass.
        assert_eq!(mitm.on_downlink(UeId(1), &challenge), Intercept::Pass);
        assert_eq!(mitm.on_downlink(UeId(2), &challenge), Intercept::Pass);
    }
}
