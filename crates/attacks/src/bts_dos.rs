//! BTS DoS: flood the gNB with fabricated RRC connections (Kim et al.,
//! S&P'19; paper Figure 2b).
//!
//! The rogue UE opens connection after connection. Each one walks the ladder
//! up to the network's `AuthenticationRequest` and then goes silent — the
//! attacker cannot answer the challenge (it respects the crypto) and does
//! not want to: the point is that every stalled handshake pins a UE context
//! and a C-RNTI at the CU until the guard timer fires. Flooding faster than
//! the guard frees them exhausts admission and locks legitimate UEs out.
//!
//! The observable telemetry signature is exactly the paper's: a rapid
//! succession of `RRC Conn → RRC Setup → RRC Comp → Reg. Req → Auth. Req`
//! prefixes from a stream of unique RNTIs, with no responses.

use rand::rngs::StdRng;
use rand::Rng;
use xsec_proto::{L3Message, MobileIdentity, NasMessage, RrcMessage};
use xsec_ran::auth::conceal_supi;
use xsec_ran::ue::{UeActions, UeBehavior};
use xsec_types::{Duration, EstablishmentCause, Plmn, Timestamp};

/// Flood parameters.
#[derive(Debug, Clone)]
pub struct BtsDosConfig {
    /// How many fabricated connections to open.
    pub connections: u32,
    /// Gap between consecutive connection attempts. Must be well below the
    /// gNB's setup guard for the flood to accumulate contexts.
    pub inter_connection: Duration,
    /// MSIN of the attacker's (valid) SIM — each connection presents a
    /// freshly concealed SUCI of it so the ladder reaches authentication.
    pub attacker_msin: u64,
}

impl Default for BtsDosConfig {
    fn default() -> Self {
        BtsDosConfig {
            connections: 20,
            inter_connection: Duration::from_millis(25),
            attacker_msin: 999_000,
        }
    }
}

const NEXT_CONNECTION: u32 = 0xB75;

/// The flooding rogue UE.
#[derive(Debug)]
pub struct BtsDosUe {
    config: BtsDosConfig,
    opened: u32,
    awaiting_setup: bool,
}

impl BtsDosUe {
    /// Creates the flood behavior.
    pub fn new(config: BtsDosConfig) -> Self {
        BtsDosUe { config, opened: 0, awaiting_setup: false }
    }

    fn open_connection(&mut self, rng: &mut StdRng) -> UeActions {
        self.opened += 1;
        self.awaiting_setup = true;
        let mut actions = UeActions::none().send(L3Message::Rrc(RrcMessage::SetupRequest {
            ue_identity: rng.gen(),
            cause: EstablishmentCause::MoSignalling,
        }));
        if self.opened < self.config.connections {
            actions = actions.timer(self.config.inter_connection, NEXT_CONNECTION);
        }
        actions
    }
}

impl UeBehavior for BtsDosUe {
    fn on_power_on(&mut self, _now: Timestamp, rng: &mut StdRng) -> UeActions {
        self.open_connection(rng)
    }

    fn on_downlink(&mut self, _now: Timestamp, msg: &L3Message, rng: &mut StdRng) -> UeActions {
        match msg {
            L3Message::Rrc(RrcMessage::Setup) if self.awaiting_setup => {
                self.awaiting_setup = false;
                // Complete setup with a registration so the CU+AMF invest in
                // the context — then never answer the challenge.
                let reg = NasMessage::RegistrationRequest {
                    identity: MobileIdentity::Suci {
                        plmn: Plmn::TEST,
                        concealed: conceal_supi(self.config.attacker_msin, rng.gen()),
                    },
                    capabilities: xsec_types::SecurityCapabilities::full(),
                };
                let container = xsec_proto::encode_l3(&L3Message::Nas(reg));
                UeActions::none()
                    .send(L3Message::Rrc(RrcMessage::SetupComplete { nas_container: container }))
            }
            // AuthenticationRequest, rejects, releases: all ignored — the
            // attacker has already moved on to the next RNTI.
            _ => UeActions::none(),
        }
    }

    fn on_timer(&mut self, _now: Timestamp, token: u32, rng: &mut StdRng) -> UeActions {
        if token == NEXT_CONNECTION && self.opened < self.config.connections {
            self.open_connection(rng)
        } else {
            UeActions::none()
        }
    }

    fn response_delay(&self, _rng: &mut StdRng) -> Duration {
        // Attack tooling answers fast (scripted SDR stack).
        Duration::from_micros(800)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn flood_opens_and_rearms() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ue = BtsDosUe::new(BtsDosConfig { connections: 3, ..BtsDosConfig::default() });
        let first = ue.on_power_on(Timestamp::ZERO, &mut rng);
        assert!(matches!(first.sends[0], L3Message::Rrc(RrcMessage::SetupRequest { .. })));
        assert_eq!(first.timers.len(), 1, "should arm the next connection");

        // Grant arrives → registration follows.
        let actions = ue.on_downlink(Timestamp::ZERO, &L3Message::Rrc(RrcMessage::Setup), &mut rng);
        assert!(matches!(
            actions.sends[0],
            L3Message::Rrc(RrcMessage::SetupComplete { .. })
        ));

        // Challenge is ignored.
        let challenge = L3Message::Nas(NasMessage::AuthenticationRequest { rand: 1, autn: 2 });
        assert!(ue.on_downlink(Timestamp::ZERO, &challenge, &mut rng).sends.is_empty());

        // Timer fires twice more, then stops rearming.
        let second = ue.on_timer(Timestamp::ZERO, NEXT_CONNECTION, &mut rng);
        assert_eq!(second.timers.len(), 1);
        let third = ue.on_timer(Timestamp::ZERO, NEXT_CONNECTION, &mut rng);
        assert!(third.timers.is_empty(), "third connection is the last");
        assert!(ue.on_timer(Timestamp::ZERO, NEXT_CONNECTION, &mut rng).sends.is_empty());
    }

    #[test]
    fn each_connection_presents_a_fresh_suci() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ue = BtsDosUe::new(BtsDosConfig::default());
        ue.on_power_on(Timestamp::ZERO, &mut rng);
        let mut concealed_values = Vec::new();
        for _ in 0..3 {
            let actions =
                ue.on_downlink(Timestamp::ZERO, &L3Message::Rrc(RrcMessage::Setup), &mut rng);
            // Re-arm awaiting_setup for the test's repeated grants.
            ue.awaiting_setup = true;
            let L3Message::Rrc(RrcMessage::SetupComplete { nas_container }) = &actions.sends[0]
            else {
                panic!("expected SetupComplete");
            };
            let L3Message::Nas(NasMessage::RegistrationRequest { identity, .. }) =
                xsec_proto::decode_l3(nas_container).unwrap()
            else {
                panic!("expected RegistrationRequest");
            };
            let MobileIdentity::Suci { concealed, .. } = identity else {
                panic!("expected SUCI");
            };
            concealed_values.push(concealed);
        }
        concealed_values.dedup();
        assert_eq!(concealed_values.len(), 3, "SUCIs must differ per connection");
    }
}
