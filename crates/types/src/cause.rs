//! RRC establishment and release causes (3GPP 38.331 §6.2.2).
//!
//! The establishment cause a UE places in `RRCSetupRequest` is one of the
//! MobiFlow state parameters (Table 1 of the paper). Floods that always use
//! the same cause — or rotate causes unnaturally — shift its distribution,
//! which the unsupervised models pick up as part of the multivariate anomaly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a UE asked to establish an RRC connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EstablishmentCause {
    /// Emergency call.
    Emergency,
    /// Paging response with high priority access.
    HighPriorityAccess,
    /// Mobile-terminated access (response to paging).
    MtAccess,
    /// Mobile-originated signalling (registration, TAU...).
    MoSignalling,
    /// Mobile-originated data.
    MoData,
    /// Mobile-originated voice call.
    MoVoiceCall,
    /// Mobile-originated SMS.
    MoSms,
}

impl EstablishmentCause {
    /// All causes, in spec order; index equals [`EstablishmentCause::code`].
    pub const ALL: [EstablishmentCause; 7] = [
        EstablishmentCause::Emergency,
        EstablishmentCause::HighPriorityAccess,
        EstablishmentCause::MtAccess,
        EstablishmentCause::MoSignalling,
        EstablishmentCause::MoData,
        EstablishmentCause::MoVoiceCall,
        EstablishmentCause::MoSms,
    ];

    /// Stable numeric code used by the wire codec and featurizer.
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|c| *c == self).expect("cause is in ALL") as u8
    }

    /// Inverse of [`EstablishmentCause::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for EstablishmentCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EstablishmentCause::Emergency => "emergency",
            EstablishmentCause::HighPriorityAccess => "highPriorityAccess",
            EstablishmentCause::MtAccess => "mt-Access",
            EstablishmentCause::MoSignalling => "mo-Signalling",
            EstablishmentCause::MoData => "mo-Data",
            EstablishmentCause::MoVoiceCall => "mo-VoiceCall",
            EstablishmentCause::MoSms => "mo-SMS",
        };
        f.write_str(s)
    }
}

/// Why the network released an RRC connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ReleaseCause {
    /// Normal end of session.
    Normal,
    /// UE became unreachable / radio link failure.
    RadioLinkFailure,
    /// The network rejected or aborted the procedure.
    NetworkAbort,
    /// Resource pressure forced the release (e.g. admission control under
    /// flood — the observable consequence of a successful BTS DoS).
    Congestion,
}

impl ReleaseCause {
    /// Stable numeric code used by the wire codec and featurizer.
    pub fn code(self) -> u8 {
        match self {
            ReleaseCause::Normal => 0,
            ReleaseCause::RadioLinkFailure => 1,
            ReleaseCause::NetworkAbort => 2,
            ReleaseCause::Congestion => 3,
        }
    }

    /// Inverse of [`ReleaseCause::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(ReleaseCause::Normal),
            1 => Some(ReleaseCause::RadioLinkFailure),
            2 => Some(ReleaseCause::NetworkAbort),
            3 => Some(ReleaseCause::Congestion),
            _ => None,
        }
    }
}

impl fmt::Display for ReleaseCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReleaseCause::Normal => "normal",
            ReleaseCause::RadioLinkFailure => "rlf",
            ReleaseCause::NetworkAbort => "networkAbort",
            ReleaseCause::Congestion => "congestion",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn establishment_cause_codes_round_trip() {
        for cause in EstablishmentCause::ALL {
            assert_eq!(EstablishmentCause::from_code(cause.code()), Some(cause));
        }
        assert_eq!(EstablishmentCause::from_code(7), None);
    }

    #[test]
    fn release_cause_codes_round_trip() {
        for cause in [
            ReleaseCause::Normal,
            ReleaseCause::RadioLinkFailure,
            ReleaseCause::NetworkAbort,
            ReleaseCause::Congestion,
        ] {
            assert_eq!(ReleaseCause::from_code(cause.code()), Some(cause));
        }
        assert_eq!(ReleaseCause::from_code(4), None);
    }

    #[test]
    fn display_uses_spec_spelling() {
        assert_eq!(EstablishmentCause::MoSignalling.to_string(), "mo-Signalling");
        assert_eq!(ReleaseCause::Congestion.to_string(), "congestion");
    }
}
