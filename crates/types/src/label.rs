//! Ground-truth traffic labels.
//!
//! Labels exist only for evaluation: the unsupervised detector never sees
//! them during training (it trains on benign-only data), and the simulator
//! attaches them out-of-band so that the experiment harness can compute
//! accuracy / precision / recall / F1 (Table 2) and per-attack verdicts
//! (Table 3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five attacks the paper evaluates (§4, Table 3), plus their provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// "BTS DoS": flood the gNB with fabricated RRC connections that stall at
    /// the authentication stage, each from a fresh RNTI (Kim et al., S&P'19;
    /// paper Figure 2b).
    BtsDos,
    /// "Blind DoS": replay a victim's 5G-S-TMSI across sessions to trip the
    /// network's state for that subscriber (Kim et al., S&P'19).
    BlindDos,
    /// Uplink identity extraction via adaptive overshadowing of uplink
    /// messages (AdaptOver, Erni et al., MobiCom'22). The resulting trace is
    /// standards-compliant looking, which is why most LLMs miss it (Table 3).
    UplinkIdExtraction,
    /// Downlink identity extraction: a MiTM overwrites the downlink
    /// authentication request with an identity request, so the UE answers
    /// with its permanent identity in plaintext (LTrack, Kotuliak et al.,
    /// USENIX Sec'22; paper Figure 2a).
    DownlinkIdExtraction,
    /// Null cipher & integrity downgrade: strip the UE security capabilities
    /// so the session negotiates NEA0/NIA0 (5GReasoner, Hussain et al.,
    /// CCS'19).
    NullCipher,
}

impl AttackKind {
    /// All attacks, in the order Table 3 lists them.
    pub const ALL: [AttackKind; 5] = [
        AttackKind::BtsDos,
        AttackKind::BlindDos,
        AttackKind::UplinkIdExtraction,
        AttackKind::DownlinkIdExtraction,
        AttackKind::NullCipher,
    ];

    /// The short name used in tables and reports.
    pub fn short_name(self) -> &'static str {
        match self {
            AttackKind::BtsDos => "BTS DoS",
            AttackKind::BlindDos => "Blind DoS",
            AttackKind::UplinkIdExtraction => "Uplink ID Extr",
            AttackKind::DownlinkIdExtraction => "Downlink ID Extr",
            AttackKind::NullCipher => "Null Cipher & Int.",
        }
    }

    /// The literature citation the paper associates with the attack.
    pub fn citation(self) -> &'static str {
        match self {
            AttackKind::BtsDos | AttackKind::BlindDos => "Kim et al., IEEE S&P 2019",
            AttackKind::UplinkIdExtraction => "Erni et al. (AdaptOver), MobiCom 2022",
            AttackKind::DownlinkIdExtraction => "Kotuliak et al. (LTrack), USENIX Security 2022",
            AttackKind::NullCipher => "Hussain et al. (5GReasoner), CCS 2019",
        }
    }

    /// Whether the attack trace looks standards-compliant at the message
    /// level (no ordering violation) — these are the hard cases for both the
    /// sequence models and the LLM analysts.
    pub fn is_standards_compliant_looking(self) -> bool {
        matches!(self, AttackKind::UplinkIdExtraction)
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Ground-truth class of a telemetry entry or window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Normal traffic from a legitimate device.
    Benign,
    /// Traffic produced by (or directly caused by) the given attack.
    Attack(AttackKind),
}

impl TrafficClass {
    /// Returns `true` for any attack label.
    pub fn is_attack(self) -> bool {
        matches!(self, TrafficClass::Attack(_))
    }

    /// The attack kind, if this is an attack label.
    pub fn attack_kind(self) -> Option<AttackKind> {
        match self {
            TrafficClass::Benign => None,
            TrafficClass::Attack(kind) => Some(kind),
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficClass::Benign => f.write_str("benign"),
            TrafficClass::Attack(kind) => write!(f, "attack:{kind}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_five_attacks_in_table3_order() {
        assert_eq!(AttackKind::ALL.len(), 5);
        assert_eq!(AttackKind::ALL[0], AttackKind::BtsDos);
        assert_eq!(AttackKind::ALL[4], AttackKind::NullCipher);
    }

    #[test]
    fn short_names_match_table3() {
        assert_eq!(AttackKind::BtsDos.short_name(), "BTS DoS");
        assert_eq!(AttackKind::UplinkIdExtraction.short_name(), "Uplink ID Extr");
    }

    #[test]
    fn only_uplink_extraction_is_compliant_looking() {
        let compliant: Vec<_> = AttackKind::ALL
            .into_iter()
            .filter(|a| a.is_standards_compliant_looking())
            .collect();
        assert_eq!(compliant, vec![AttackKind::UplinkIdExtraction]);
    }

    #[test]
    fn traffic_class_predicates() {
        assert!(!TrafficClass::Benign.is_attack());
        assert!(TrafficClass::Attack(AttackKind::BtsDos).is_attack());
        assert_eq!(
            TrafficClass::Attack(AttackKind::BlindDos).attack_kind(),
            Some(AttackKind::BlindDos)
        );
        assert_eq!(TrafficClass::Benign.attack_kind(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TrafficClass::Benign.to_string(), "benign");
        assert_eq!(
            TrafficClass::Attack(AttackKind::NullCipher).to_string(),
            "attack:Null Cipher & Int."
        );
    }

    #[test]
    fn every_attack_has_a_citation() {
        for kind in AttackKind::ALL {
            assert!(!kind.citation().is_empty());
        }
    }
}
