//! # xsec-types
//!
//! Shared vocabulary for the 6G-XSec framework: cellular identifiers, security
//! algorithm enumerations, virtual timestamps, establishment causes, traffic
//! ground-truth labels, and the common error type.
//!
//! Every other crate in the workspace depends on this one; it intentionally has
//! no dependency on the simulator, the RIC, or the learning stack so that the
//! vocabulary stays stable and cheap to compile.
//!
//! ## Identifier model
//!
//! 5G identifies a subscriber and its radio connection at several layers:
//!
//! * [`Rnti`] — Radio Network Temporary Identifier, allocated by the gNB MAC
//!   scheduler for the lifetime of one RRC connection. Attackers that flood the
//!   RAN with fabricated connections burn through RNTIs rapidly (the *BTS DoS*
//!   signature in the paper's Figure 2b).
//! * [`Tmsi`] — the 5G-S-TMSI, a temporary subscriber identifier assigned by
//!   the AMF; reuse of a TMSI across supposedly independent sessions is the
//!   *Blind DoS* signature.
//! * [`Supi`] — the Subscription Permanent Identifier (IMSI-based). A SUPI
//!   observed in plaintext over the air is the *identity extraction* signature.
//!
//! All identifier newtypes implement `Display` with the formatting used by the
//! MobiFlow telemetry encoding (hex for RNTI, decimal for TMSI, the standard
//! `imsi-` prefix form for SUPI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cause;
pub mod error;
pub mod ids;
pub mod label;
pub mod security;
pub mod time;

pub use cause::{EstablishmentCause, ReleaseCause};
pub use error::{Result, XsecError};
pub use ids::{CellId, GnbId, Plmn, Rnti, Supi, Tmsi, UeId};
pub use label::{AttackKind, TrafficClass};
pub use security::{CipherAlg, IntegrityAlg, SecurityCapabilities};
pub use time::{Duration, Timestamp};
