//! Virtual time for the discrete-event simulation and telemetry timestamps.
//!
//! The simulator runs on a virtual clock so experiments are deterministic and
//! independent of host scheduling. Telemetry entries carry [`Timestamp`]s with
//! microsecond resolution — fine enough to resolve the sub-millisecond
//! inter-arrival gaps that distinguish a flood from normal signaling.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// A span of virtual time in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Timestamp {
    /// The simulation epoch.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The absolute gap between two timestamps, regardless of order.
    pub fn abs_diff(self, other: Timestamp) -> Duration {
        Duration(self.0.abs_diff(other.0))
    }

    /// Saturating difference `self - earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    /// Microseconds in this span.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this span (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds in this span as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Timestamp::saturating_since`] when order is uncertain.
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Timestamp::ZERO + Duration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        let t2 = t + Duration::from_secs(1);
        assert_eq!(t2 - t, Duration::from_secs(1));
        assert_eq!(t.saturating_since(t2), Duration::ZERO);
        assert_eq!(t.abs_diff(t2), Duration::from_secs(1));
    }

    #[test]
    fn conversions() {
        let d = Duration::from_secs(2);
        assert_eq!(d.as_millis(), 2_000);
        assert_eq!(d.as_micros(), 2_000_000);
        assert!((d.as_secs_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Duration::from_micros(250).to_string(), "250us");
        assert_eq!(Duration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Duration::from_secs(3).to_string(), "3.000s");
        assert_eq!(Timestamp(1_500_000).to_string(), "1.500000s");
    }

    #[test]
    fn saturating_mul_caps_at_max() {
        assert_eq!(Duration(u64::MAX).saturating_mul(2), Duration(u64::MAX));
        assert_eq!(Duration::from_millis(2).saturating_mul(3), Duration::from_millis(6));
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Timestamp(1) < Timestamp(2));
        let mut v = vec![Timestamp(30), Timestamp(10), Timestamp(20)];
        v.sort();
        assert_eq!(v, vec![Timestamp(10), Timestamp(20), Timestamp(30)]);
    }
}
