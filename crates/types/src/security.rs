//! 5G AS/NAS security algorithm enumerations (3GPP 33.501).
//!
//! The null algorithms (`NEA0` / `NIA0`) are legitimate only in narrow cases
//! (e.g. emergency calls). A network that *negotiates down* to them for a
//! normal session is the signature of the null-cipher downgrade attack the
//! paper evaluates (5GReasoner's "NAS security mode downgrade").

use serde::{Deserialize, Serialize};
use std::fmt;

/// NR Encryption Algorithm selected for a UE's AS/NAS security context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CipherAlg {
    /// Null ciphering — traffic is sent in plaintext.
    Nea0,
    /// 128-NEA1, SNOW 3G based.
    Nea1,
    /// 128-NEA2, AES-CTR based.
    Nea2,
    /// 128-NEA3, ZUC based.
    Nea3,
}

impl CipherAlg {
    /// Returns `true` for the null algorithm, i.e. no confidentiality at all.
    pub fn is_null(self) -> bool {
        matches!(self, CipherAlg::Nea0)
    }

    /// All algorithms in preference order (strongest first), as a gNB security
    /// policy would rank them.
    pub const PREFERENCE: [CipherAlg; 4] =
        [CipherAlg::Nea2, CipherAlg::Nea1, CipherAlg::Nea3, CipherAlg::Nea0];

    /// Stable numeric code used by the wire codec and the featurizer.
    pub fn code(self) -> u8 {
        match self {
            CipherAlg::Nea0 => 0,
            CipherAlg::Nea1 => 1,
            CipherAlg::Nea2 => 2,
            CipherAlg::Nea3 => 3,
        }
    }

    /// Inverse of [`CipherAlg::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(CipherAlg::Nea0),
            1 => Some(CipherAlg::Nea1),
            2 => Some(CipherAlg::Nea2),
            3 => Some(CipherAlg::Nea3),
            _ => None,
        }
    }
}

impl fmt::Display for CipherAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NEA{}", self.code())
    }
}

/// NR Integrity Algorithm selected for a UE's AS/NAS security context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IntegrityAlg {
    /// Null integrity — messages are unauthenticated.
    Nia0,
    /// 128-NIA1, SNOW 3G based.
    Nia1,
    /// 128-NIA2, AES-CMAC based.
    Nia2,
    /// 128-NIA3, ZUC based.
    Nia3,
}

impl IntegrityAlg {
    /// Returns `true` for the null algorithm, i.e. no integrity protection.
    pub fn is_null(self) -> bool {
        matches!(self, IntegrityAlg::Nia0)
    }

    /// All algorithms in preference order (strongest first).
    pub const PREFERENCE: [IntegrityAlg; 4] =
        [IntegrityAlg::Nia2, IntegrityAlg::Nia1, IntegrityAlg::Nia3, IntegrityAlg::Nia0];

    /// Stable numeric code used by the wire codec and the featurizer.
    pub fn code(self) -> u8 {
        match self {
            IntegrityAlg::Nia0 => 0,
            IntegrityAlg::Nia1 => 1,
            IntegrityAlg::Nia2 => 2,
            IntegrityAlg::Nia3 => 3,
        }
    }

    /// Inverse of [`IntegrityAlg::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(IntegrityAlg::Nia0),
            1 => Some(IntegrityAlg::Nia1),
            2 => Some(IntegrityAlg::Nia2),
            3 => Some(IntegrityAlg::Nia3),
            _ => None,
        }
    }
}

impl fmt::Display for IntegrityAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NIA{}", self.code())
    }
}

/// The set of algorithms a UE advertises during registration.
///
/// The AMF/gNB intersect these with their own policy to pick the session
/// algorithms. A man-in-the-middle that strips the strong algorithms from this
/// bitmap forces the downgrade to `NEA0`/`NIA0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SecurityCapabilities {
    /// Supported ciphering algorithms.
    pub ciphers: [bool; 4],
    /// Supported integrity algorithms.
    pub integrity: [bool; 4],
}

impl SecurityCapabilities {
    /// Capabilities of a normal commodity handset: everything supported.
    pub fn full() -> Self {
        SecurityCapabilities { ciphers: [true; 4], integrity: [true; 4] }
    }

    /// Capabilities stripped down to the null algorithms only — the bitmap a
    /// downgrade MiTM substitutes in flight.
    pub fn null_only() -> Self {
        let mut caps = SecurityCapabilities { ciphers: [false; 4], integrity: [false; 4] };
        caps.ciphers[0] = true;
        caps.integrity[0] = true;
        caps
    }

    /// Returns `true` if the given cipher is advertised.
    pub fn supports_cipher(&self, alg: CipherAlg) -> bool {
        self.ciphers[alg.code() as usize]
    }

    /// Returns `true` if the given integrity algorithm is advertised.
    pub fn supports_integrity(&self, alg: IntegrityAlg) -> bool {
        self.integrity[alg.code() as usize]
    }

    /// Selects the session algorithms: the strongest pair (by network
    /// preference order) that both sides support. Always succeeds because
    /// `NEA0`/`NIA0` are mandatory-to-implement.
    pub fn negotiate(&self) -> (CipherAlg, IntegrityAlg) {
        let cipher = CipherAlg::PREFERENCE
            .into_iter()
            .find(|c| self.supports_cipher(*c))
            .unwrap_or(CipherAlg::Nea0);
        let integrity = IntegrityAlg::PREFERENCE
            .into_iter()
            .find(|i| self.supports_integrity(*i))
            .unwrap_or(IntegrityAlg::Nia0);
        (cipher, integrity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_detection() {
        assert!(CipherAlg::Nea0.is_null());
        assert!(!CipherAlg::Nea2.is_null());
        assert!(IntegrityAlg::Nia0.is_null());
        assert!(!IntegrityAlg::Nia2.is_null());
    }

    #[test]
    fn code_round_trip() {
        for alg in [CipherAlg::Nea0, CipherAlg::Nea1, CipherAlg::Nea2, CipherAlg::Nea3] {
            assert_eq!(CipherAlg::from_code(alg.code()), Some(alg));
        }
        for alg in [IntegrityAlg::Nia0, IntegrityAlg::Nia1, IntegrityAlg::Nia2, IntegrityAlg::Nia3]
        {
            assert_eq!(IntegrityAlg::from_code(alg.code()), Some(alg));
        }
        assert_eq!(CipherAlg::from_code(7), None);
        assert_eq!(IntegrityAlg::from_code(255), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(CipherAlg::Nea2.to_string(), "NEA2");
        assert_eq!(IntegrityAlg::Nia0.to_string(), "NIA0");
    }

    #[test]
    fn full_capabilities_negotiate_strongest() {
        let caps = SecurityCapabilities::full();
        assert_eq!(caps.negotiate(), (CipherAlg::Nea2, IntegrityAlg::Nia2));
    }

    #[test]
    fn null_only_capabilities_negotiate_null() {
        let caps = SecurityCapabilities::null_only();
        assert_eq!(caps.negotiate(), (CipherAlg::Nea0, IntegrityAlg::Nia0));
    }

    #[test]
    fn partial_capabilities_follow_preference_order() {
        let mut caps = SecurityCapabilities::full();
        caps.ciphers[CipherAlg::Nea2.code() as usize] = false;
        // NEA1 is next in the network preference list.
        assert_eq!(caps.negotiate().0, CipherAlg::Nea1);
        caps.ciphers[CipherAlg::Nea1.code() as usize] = false;
        assert_eq!(caps.negotiate().0, CipherAlg::Nea3);
    }
}
