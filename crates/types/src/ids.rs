//! Cellular identifier newtypes.
//!
//! Identifiers are deliberately strongly typed: a raw `u32` RNTI and a raw
//! `u32` TMSI must never be confused, because the anomaly-detection featurizer
//! treats them as distinct categorical variables and the attack signatures
//! differ precisely in *which* identifier space is being abused.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Radio Network Temporary Identifier (C-RNTI).
///
/// Allocated by the gNB's MAC scheduler when a UE performs random access and
/// valid for the duration of one RRC connection. 3GPP 38.321 restricts the
/// usable C-RNTI range to `0x0001..=0xFFEF`; values outside that range are
/// reserved (e.g. `0xFFFE` = P-RNTI, `0xFFFF` = SI-RNTI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rnti(pub u16);

impl Rnti {
    /// Lowest allocatable C-RNTI value.
    pub const MIN: Rnti = Rnti(0x0001);
    /// Highest allocatable C-RNTI value.
    pub const MAX: Rnti = Rnti(0xFFEF);

    /// Returns `true` if this value is inside the allocatable C-RNTI range.
    pub fn is_valid_c_rnti(self) -> bool {
        self >= Self::MIN && self <= Self::MAX
    }
}

impl fmt::Display for Rnti {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04X}", self.0)
    }
}

/// 5G-S-TMSI: the shortened temporary subscriber identity assigned by the AMF.
///
/// The TMSI conceals the permanent identity during idle-mode procedures. The
/// AMF is expected to reallocate it periodically; observing the *same* TMSI
/// across many supposedly independent connection attempts is the signature the
/// paper's Blind DoS trace exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tmsi(pub u32);

impl fmt::Display for Tmsi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Subscription Permanent Identifier in IMSI form (`imsi-<mcc><mnc><msin>`).
///
/// A SUPI must only ever cross the air interface concealed as a SUCI; the
/// MobiFlow telemetry records whenever one is observed in plaintext, which is
/// the core signal of identity-extraction attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Supi {
    /// Home network PLMN.
    pub plmn: Plmn,
    /// Mobile Subscriber Identification Number (up to 10 digits).
    pub msin: u64,
}

impl Supi {
    /// Builds a SUPI from its PLMN and MSIN parts.
    pub fn new(plmn: Plmn, msin: u64) -> Self {
        Supi { plmn, msin }
    }
}

impl fmt::Display for Supi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "imsi-{:03}{:02}{:010}", self.plmn.mcc, self.plmn.mnc, self.msin)
    }
}

/// Public Land Mobile Network identifier (MCC + MNC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Plmn {
    /// Mobile Country Code (3 digits).
    pub mcc: u16,
    /// Mobile Network Code (2-3 digits; 2 assumed for display).
    pub mnc: u16,
}

impl Plmn {
    /// The test PLMN `001/01` used throughout the simulated network, matching
    /// the OAI default configuration the paper's testbed uses.
    pub const TEST: Plmn = Plmn { mcc: 1, mnc: 1 };
}

impl fmt::Display for Plmn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:03}.{:02}", self.mcc, self.mnc)
    }
}

/// Simulator-internal stable identity of a UE instance.
///
/// This is *not* an over-the-air identifier: the simulator uses it as ground
/// truth to join events back to the device that produced them, e.g. when
/// labeling attack traces. Telemetry never exposes it to the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UeId(pub u64);

impl fmt::Display for UeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ue#{}", self.0)
    }
}

/// gNodeB (base station) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GnbId(pub u32);

impl fmt::Display for GnbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gnb#{}", self.0)
    }
}

/// NR Cell Identity within a gNB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rnti_display_is_hex() {
        assert_eq!(Rnti(0x5F).to_string(), "0x005F");
        assert_eq!(Rnti(0xFFEF).to_string(), "0xFFEF");
    }

    #[test]
    fn rnti_validity_range() {
        assert!(!Rnti(0x0000).is_valid_c_rnti());
        assert!(Rnti(0x0001).is_valid_c_rnti());
        assert!(Rnti(0xFFEF).is_valid_c_rnti());
        assert!(!Rnti(0xFFF0).is_valid_c_rnti());
        assert!(!Rnti(0xFFFF).is_valid_c_rnti());
    }

    #[test]
    fn supi_display_matches_imsi_form() {
        let supi = Supi::new(Plmn::TEST, 1234567890);
        assert_eq!(supi.to_string(), "imsi-001011234567890");
    }

    #[test]
    fn supi_display_pads_short_msin() {
        let supi = Supi::new(Plmn { mcc: 310, mnc: 26 }, 42);
        assert_eq!(supi.to_string(), "imsi-310260000000042");
    }

    #[test]
    fn tmsi_display_is_decimal() {
        assert_eq!(Tmsi(0xDEADBEEF).to_string(), "3735928559");
    }

    #[test]
    fn identifiers_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Rnti(1));
        set.insert(Rnti(1));
        set.insert(Rnti(2));
        assert_eq!(set.len(), 2);
        assert!(Rnti(1) < Rnti(2));
        assert!(Tmsi(9) > Tmsi(3));
    }

    #[test]
    fn serde_round_trip() {
        let supi = Supi::new(Plmn::TEST, 77);
        let json = serde_json::to_string(&supi).unwrap();
        let back: Supi = serde_json::from_str(&json).unwrap();
        assert_eq!(supi, back);
    }
}
