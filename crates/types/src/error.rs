//! The workspace-wide error type.
//!
//! Kept deliberately small: variants map to the layers of the system so that
//! callers can tell a codec problem from a protocol-state problem from an
//! infrastructure problem without string matching.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, XsecError>;

/// Errors produced anywhere in the 6G-XSec stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XsecError {
    /// A wire message could not be decoded (truncated, bad tag, bad length).
    Codec(String),
    /// A protocol state machine received a message that is invalid in its
    /// current state.
    ProtocolViolation(String),
    /// A resource pool (RNTI space, admission slots, SDL capacity) was
    /// exhausted.
    ResourceExhausted(String),
    /// A requested entity (UE context, subscription, model, key) is unknown.
    NotFound(String),
    /// An E2/RIC subscription or routing problem.
    Ric(String),
    /// A model training or inference problem (shape mismatch, NaN loss...).
    Model(String),
    /// An I/O problem on a real transport (TCP E2 termination).
    Io(String),
    /// Invalid configuration or argument.
    InvalidConfig(String),
}

impl XsecError {
    /// Short stable category tag, used in logs and metrics.
    pub fn category(&self) -> &'static str {
        match self {
            XsecError::Codec(_) => "codec",
            XsecError::ProtocolViolation(_) => "protocol",
            XsecError::ResourceExhausted(_) => "resource",
            XsecError::NotFound(_) => "not-found",
            XsecError::Ric(_) => "ric",
            XsecError::Model(_) => "model",
            XsecError::Io(_) => "io",
            XsecError::InvalidConfig(_) => "config",
        }
    }
}

impl fmt::Display for XsecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            XsecError::Codec(m)
            | XsecError::ProtocolViolation(m)
            | XsecError::ResourceExhausted(m)
            | XsecError::NotFound(m)
            | XsecError::Ric(m)
            | XsecError::Model(m)
            | XsecError::Io(m)
            | XsecError::InvalidConfig(m) => m,
        };
        write!(f, "{}: {}", self.category(), msg)
    }
}

impl std::error::Error for XsecError {}

impl From<std::io::Error> for XsecError {
    fn from(err: std::io::Error) -> Self {
        XsecError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_stable() {
        assert_eq!(XsecError::Codec("x".into()).category(), "codec");
        assert_eq!(XsecError::Ric("x".into()).category(), "ric");
        assert_eq!(XsecError::Model("x".into()).category(), "model");
    }

    #[test]
    fn display_includes_category_and_message() {
        let err = XsecError::ProtocolViolation("auth response before request".into());
        assert_eq!(err.to_string(), "protocol: auth response before request");
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "peer gone");
        let err: XsecError = io.into();
        assert_eq!(err.category(), "io");
        assert!(err.to_string().contains("peer gone"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&XsecError::NotFound("ue".into()));
    }
}
