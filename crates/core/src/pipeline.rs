//! The end-to-end 6G-XSec pipeline (paper Figure 3), assembled.
//!
//! Training: a benign dataset is collected from the simulated testbed and
//! the SMO trains both detectors. Inference: an attack (or fresh benign)
//! dataset is replayed through the *real* stack — RIC agent → E2 →
//! platform → MobiWatch xApp → `anomalies` topic → LLM analyzer xApp — and
//! the outcome is evaluated against ground truth.

use crate::analyzer::{AnalyzerFinding, LlmAnalyzer};
use crate::mobiwatch::{Detector, MobiWatch, MobiWatchConfig};
use crate::smo::{DeployedModels, Smo, TrainingConfig};
use xsec_attacks::DatasetBuilder;
use xsec_dl::{Confusion, FeatureConfig, Featurizer};
use xsec_e2::{in_proc_pair, RicAgent, RicAgentConfig};
use xsec_llm::{ModelPersonality, SimulatedExpert};
use xsec_mobiflow::{extract_from_events, TelemetryStream};
use xsec_ric::{RicPlatform, SubscriptionSpec};
use xsec_types::{AttackKind, CellId, Duration, GnbId, Timestamp};

/// Pipeline parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Master seed (training data uses it; evaluation data derives from it).
    pub seed: u64,
    /// Benign sessions in the training collection.
    pub benign_sessions: usize,
    /// Model training parameters.
    pub training: TrainingConfig,
    /// Detector used by the deployed MobiWatch.
    pub detector: Detector,
    /// Which simulated LLM answers the analyzer's prompts.
    pub personality: ModelPersonality,
    /// Sliding-window length `N` (mirrored into `training.window`).
    pub detector_window: usize,
    /// E2 report period in milliseconds.
    pub report_period_ms: u32,
}

impl PipelineConfig {
    /// A fast configuration for tests and doctests.
    pub fn small(seed: u64, benign_sessions: usize) -> Self {
        PipelineConfig {
            seed,
            benign_sessions,
            training: TrainingConfig {
                autoencoder_epochs: 12,
                lstm_epochs: 3,
                autoencoder_hidden: vec![48, 12],
                lstm_hidden: 24,
                ..TrainingConfig::default()
            },
            detector: Detector::Autoencoder,
            personality: ModelPersonality::CHATGPT_4O,
            detector_window: 4,
            report_period_ms: 100,
        }
    }

    /// The paper-scale configuration used by the experiment harness.
    pub fn paper(seed: u64) -> Self {
        PipelineConfig {
            seed,
            benign_sessions: 110,
            training: TrainingConfig::default(),
            detector: Detector::Autoencoder,
            personality: ModelPersonality::CHATGPT_4O,
            detector_window: 4,
            report_period_ms: 100,
        }
    }
}

/// What one evaluation run produced.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// Telemetry records replayed.
    pub records: usize,
    /// Windows the detector flagged.
    pub flagged_windows: usize,
    /// Alerts published to the analyzer (post-cooldown).
    pub alerts: usize,
    /// The analyzer's findings.
    pub findings: Vec<AnalyzerFinding>,
    /// Findings queued for human supervision.
    pub human_review: usize,
    /// Window-level confusion against ground truth.
    pub confusion: Confusion,
    /// Mean xApp handler latency (µs), from the platform tracker.
    pub mean_handler_latency_us: f64,
}

/// A trained, deployable pipeline.
pub struct Pipeline {
    config: PipelineConfig,
    models: DeployedModels,
}

impl Pipeline {
    /// Collects benign training data and trains the detectors.
    pub fn train(config: &PipelineConfig) -> Self {
        let mut config = config.clone();
        config.training.window = config.detector_window;
        let benign = DatasetBuilder::small(config.seed, config.benign_sessions).benign();
        let stream = extract_from_events(&benign.events);
        let models = Smo::train(&config.training, &stream).expect("training succeeds");
        Pipeline { config, models }
    }

    /// The deployed models (for the experiment harness).
    pub fn models(&self) -> &DeployedModels {
        &self.models
    }

    /// The configuration this pipeline was trained with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the full pipeline over one attack dataset.
    pub fn run_attack(&self, kind: AttackKind) -> PipelineOutcome {
        let eval_seed = self.config.seed + 1_000 + kind as u64;
        let ds =
            DatasetBuilder::small(eval_seed, self.config.benign_sessions).attack(kind);
        let stream = extract_from_events(&ds.report.events);
        self.run_stream(&stream)
    }

    /// Runs the full pipeline over a fresh benign dataset.
    pub fn run_benign(&self) -> PipelineOutcome {
        let eval_seed = self.config.seed + 2_000;
        let report =
            DatasetBuilder::small(eval_seed, self.config.benign_sessions).benign();
        let stream = extract_from_events(&report.events);
        self.run_stream(&stream)
    }

    /// Replays a telemetry stream through agent → E2 → platform → xApps.
    pub fn run_stream(&self, stream: &TelemetryStream) -> PipelineOutcome {
        let (agent_end, ric_end) = in_proc_pair();
        let mut agent =
            RicAgent::new(RicAgentConfig { gnb_id: GnbId(1), cell: CellId(1) }, agent_end)
                .expect("agent starts");
        let mut platform = RicPlatform::new();
        platform.add_agent(Box::new(ric_end));

        let (watch, watch_state) = MobiWatch::new(
            self.models.clone(),
            MobiWatchConfig { detector: self.config.detector, ..MobiWatchConfig::default() },
        );
        let (analyzer, analyzer_state) = LlmAnalyzer::new(
            Box::new(SimulatedExpert::new(self.config.personality)),
            "anomalies",
        );
        platform.register_xapp(
            Box::new(watch),
            SubscriptionSpec::telemetry(self.config.report_period_ms),
        );
        platform
            .register_xapp(Box::new(analyzer), SubscriptionSpec::topics_only(&["anomalies"]));

        // Handshake.
        for _ in 0..3 {
            platform.pump().expect("pump");
            agent.poll(Timestamp::ZERO).expect("agent poll");
        }

        // Replay records in report-period buckets of virtual time.
        let period = Duration::from_millis(u64::from(self.config.report_period_ms));
        let mut bucket_end = Timestamp::ZERO + period;
        for record in &stream.records {
            while record.timestamp >= bucket_end {
                agent.poll(bucket_end).expect("agent poll");
                platform.pump().expect("pump");
                bucket_end += period;
            }
            agent.push_record(record.clone());
        }
        // Final flush (two pumps: records, then relayed alerts).
        agent.poll(bucket_end).expect("agent poll");
        platform.pump().expect("pump");
        platform.pump().expect("pump");

        // Evaluate against ground truth.
        let feature_config = FeatureConfig { window: self.config.detector_window };
        let dataset = Featurizer::encode_stream(&feature_config, stream);
        let truth = match self.config.detector {
            Detector::Autoencoder => dataset.window_labels(),
            Detector::Lstm => dataset.lstm_labels(),
        };
        let watch_state = watch_state.lock();
        let predictions: Vec<bool> = watch_state.scores.iter().map(|(_, _, f)| *f).collect();
        assert_eq!(
            predictions.len(),
            truth.len(),
            "window accounting mismatch: {} predictions vs {} truths",
            predictions.len(),
            truth.len()
        );
        let confusion = Confusion::from_predictions(&predictions, &truth);

        let analyzer_state = analyzer_state.lock();
        PipelineOutcome {
            records: stream.len(),
            flagged_windows: predictions.iter().filter(|f| **f).count(),
            alerts: watch_state.alerts.len(),
            findings: analyzer_state.findings.clone(),
            human_review: analyzer_state.human_review.len(),
            confusion,
            mean_handler_latency_us: platform.latency().mean_us(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bts_dos_is_detected_and_explained_end_to_end() {
        let pipeline = Pipeline::train(&PipelineConfig::small(21, 15));
        let outcome = pipeline.run_attack(AttackKind::BtsDos);
        assert!(outcome.flagged_windows > 0, "flood not flagged");
        assert!(outcome.alerts > 0, "no alerts published");
        assert!(!outcome.findings.is_empty(), "analyzer saw nothing");
        // The detector must catch the attack windows (high recall).
        let recall = outcome.confusion.recall().unwrap_or(0.0);
        assert!(recall > 0.8, "recall too low: {recall}");
        // GPT-4o confirms floods.
        assert!(outcome
            .findings
            .iter()
            .any(|f| f.response.contains("Signaling storm")));
    }

    #[test]
    fn benign_run_stays_mostly_quiet() {
        let pipeline = Pipeline::train(&PipelineConfig::small(22, 15));
        let outcome = pipeline.run_benign();
        let accuracy = outcome.confusion.accuracy().unwrap();
        assert!(accuracy > 0.85, "benign accuracy too low: {accuracy}");
    }

    #[test]
    fn handler_latency_is_tracked() {
        let pipeline = Pipeline::train(&PipelineConfig::small(23, 12));
        let outcome = pipeline.run_attack(AttackKind::NullCipher);
        assert!(outcome.mean_handler_latency_us > 0.0);
        assert!(outcome.records > 100);
    }
}
