//! The end-to-end 6G-XSec pipeline (paper Figure 3), assembled.
//!
//! Training: a benign dataset is collected from the simulated testbed and
//! the SMO trains both detectors. Inference: an attack (or fresh benign)
//! dataset is replayed through the *real* stack — RIC agent → E2 →
//! platform → MobiWatch xApp → `anomalies` topic → LLM analyzer xApp — and
//! the outcome is evaluated against ground truth.

use crate::analyzer::{AnalyzerFinding, LlmAnalyzer};
use crate::mitigator::{
    MitigationSummary, Mitigator, A1_POLICY_STATUS_TOPIC, A1_POLICY_TOPIC, CONTROL_ACKS_TOPIC,
    FINDINGS_TOPIC,
};
use crate::mobiwatch::{Detector, MobiWatch, MobiWatchConfig};
use crate::smo::{A1PolicyClient, DeployedModels, Smo, TrainingConfig};
use xsec_attacks::DatasetBuilder;
use xsec_control::{ControlAction, PolicyEngine};
use xsec_dl::{Confusion, FeatureConfig, Featurizer, Precision};
use xsec_e2::{in_proc_pair, InProcTransport, RicAgent, RicAgentConfig};
use xsec_llm::{ModelPersonality, SimulatedExpert};
use xsec_mobiflow::{extract_from_events, extract_from_events_at, TelemetryStream};
use xsec_obs::{FlightRecorder, Obs, Snapshot};
use xsec_ran::sim::{RanSimulator, SimReport};
use xsec_ran::stream::{StreamStats, StreamingScenario};
use xsec_ric::{Grants, RicPlatform, RouterHandle, SubscriptionSpec, XAppIdentity};
use xsec_types::{AttackKind, CellId, Duration, GnbId, Timestamp};

/// Pipeline parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Master seed (training data uses it; evaluation data derives from it).
    pub seed: u64,
    /// Benign sessions in the training collection.
    pub benign_sessions: usize,
    /// Model training parameters.
    pub training: TrainingConfig,
    /// Detector used by the deployed MobiWatch.
    pub detector: Detector,
    /// Which simulated LLM answers the analyzer's prompts.
    pub personality: ModelPersonality,
    /// Sliding-window length `N` (mirrored into `training.window`).
    pub detector_window: usize,
    /// E2 report period in milliseconds.
    pub report_period_ms: u32,
    /// Scoring worker threads. `0` keeps the single-threaded MobiWatch with
    /// its global sliding window; `>= 1` deploys the per-UE sharded pool
    /// ([`crate::shard::ShardedMobiWatch`]), whose detections are invariant
    /// in the shard count.
    pub scoring_shards: usize,
    /// Numeric path the deployed detector scores with: [`Precision::F32`]
    /// (default) or [`Precision::Int8`], the quantized-weight path (weights
    /// are quantized once at deploy; scores drift within the parity budget
    /// the int8 tests bound).
    pub precision: Precision,
}

impl PipelineConfig {
    /// A fast configuration for tests and doctests.
    pub fn small(seed: u64, benign_sessions: usize) -> Self {
        PipelineConfig {
            seed,
            benign_sessions,
            training: TrainingConfig {
                autoencoder_epochs: 12,
                lstm_epochs: 3,
                autoencoder_hidden: vec![48, 12],
                lstm_hidden: 24,
                ..TrainingConfig::default()
            },
            detector: Detector::Autoencoder,
            personality: ModelPersonality::CHATGPT_4O,
            detector_window: 4,
            report_period_ms: 100,
            scoring_shards: 0,
            precision: Precision::F32,
        }
    }

    /// The paper-scale configuration used by the experiment harness.
    pub fn paper(seed: u64) -> Self {
        PipelineConfig {
            seed,
            benign_sessions: 110,
            training: TrainingConfig::default(),
            detector: Detector::Autoencoder,
            personality: ModelPersonality::CHATGPT_4O,
            detector_window: 4,
            report_period_ms: 100,
            scoring_shards: 0,
            precision: Precision::F32,
        }
    }
}

/// What one evaluation run produced.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// Telemetry records replayed.
    pub records: usize,
    /// Windows the detector flagged.
    pub flagged_windows: usize,
    /// Alerts published to the analyzer (post-cooldown).
    pub alerts: usize,
    /// The analyzer's findings.
    pub findings: Vec<AnalyzerFinding>,
    /// Findings queued for human supervision.
    pub human_review: usize,
    /// Window-level confusion against ground truth.
    pub confusion: Confusion,
    /// Mean xApp handler latency (µs), from the platform tracker.
    pub mean_handler_latency_us: f64,
    /// Closed-loop mitigation outcome (actions issued, acked, escalated).
    pub mitigation: MitigationSummary,
    /// End-of-run metrics snapshot: per-stage latency histograms (E2
    /// decode, MobiWatch featurize/inference, analyzer turnaround,
    /// per-agent control-ack, detection→ack) and every stage counter.
    pub metrics: Snapshot,
    /// The run's flight recorder: captured incident traces ready for
    /// JSONL/Perfetto export via [`FlightRecorder::write_incident_files`].
    pub recorder: FlightRecorder,
}

/// What one *live* closed-loop run produced: the pipeline outcome plus the
/// final RAN-side report showing the mitigation's effect on the network.
#[derive(Debug)]
pub struct ClosedLoopOutcome {
    /// The RIC-side outcome (detections, findings, mitigation summary).
    pub outcome: PipelineOutcome,
    /// The RAN-side simulation report after enforcement.
    pub report: SimReport,
    /// Control actions the RAN actually enforced, with the virtual time at
    /// which each took effect, in arrival order.
    pub enforced: Vec<(Timestamp, ControlAction)>,
}

/// What a streaming closed-loop run produced: the RIC-side outcome, the
/// generator's counters, the enforced actions, and the engine itself (so
/// callers can interrogate per-cell gNB statistics after the run).
pub struct StreamingOutcome {
    /// The RIC-side outcome (detections, findings, mitigation summary).
    pub outcome: PipelineOutcome,
    /// Generator counters (UEs streamed, handovers, storms, peak live).
    pub stats: StreamStats,
    /// Control actions routed back into the deployment, in arrival order.
    pub enforced: Vec<(Timestamp, ControlAction)>,
    /// The drained engine, for per-cell post-mortems.
    pub engine: StreamingScenario,
}

/// A trained, deployable pipeline.
pub struct Pipeline {
    config: PipelineConfig,
    models: DeployedModels,
}

/// One assembled RIC deployment: agent ↔ platform with the MobiWatch,
/// analyzer, and mitigator xApps registered and the E2 handshake done.
struct Deployment {
    /// The shared observability handle every stage records into. Fresh per
    /// deployment, so each run's snapshot stands alone.
    obs: Obs,
    agent: RicAgent<InProcTransport>,
    platform: RicPlatform,
    watch_state: std::sync::Arc<parking_lot::Mutex<crate::mobiwatch::MobiWatchState>>,
    analyzer_state: std::sync::Arc<parking_lot::Mutex<crate::analyzer::AnalyzerState>>,
    mitigator_state: std::sync::Arc<parking_lot::Mutex<crate::mitigator::MitigatorState>>,
    /// The SMO's registered identity handle (publish on `a1-policies`,
    /// every A1 op) — what [`A1PolicyClient::scoped`] runs on.
    smo_scope: RouterHandle,
}

impl Pipeline {
    /// Collects benign training data and trains the detectors.
    pub fn train(config: &PipelineConfig) -> Self {
        let mut config = config.clone();
        config.training.window = config.detector_window;
        let benign = DatasetBuilder::small(config.seed, config.benign_sessions).benign();
        let stream = extract_from_events(&benign.events);
        let models = Smo::train(&config.training, &stream).expect("training succeeds");
        Pipeline { config, models }
    }

    /// Trains the detectors on a caller-provided benign stream instead of
    /// the built-in collection scenario. Streaming deployments use this so
    /// the training distribution matches what the generator produces
    /// (multi-cell interleave, handover re-registrations, storms) — models
    /// trained on the single-cell collection flag that traffic wholesale.
    pub fn train_on(config: &PipelineConfig, stream: &TelemetryStream) -> Self {
        let mut config = config.clone();
        config.training.window = config.detector_window;
        let models = Smo::train(&config.training, stream).expect("training succeeds");
        Pipeline { config, models }
    }

    /// The deployed models (for the experiment harness).
    pub fn models(&self) -> &DeployedModels {
        &self.models
    }

    /// The configuration this pipeline was trained with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the full pipeline over one attack dataset.
    pub fn run_attack(&self, kind: AttackKind) -> PipelineOutcome {
        let eval_seed = self.config.seed + 1_000 + kind as u64;
        let ds =
            DatasetBuilder::small(eval_seed, self.config.benign_sessions).attack(kind);
        let stream = extract_from_events(&ds.report.events);
        self.run_stream(&stream)
    }

    /// Runs the full pipeline over a fresh benign dataset.
    pub fn run_benign(&self) -> PipelineOutcome {
        let eval_seed = self.config.seed + 2_000;
        let report =
            DatasetBuilder::small(eval_seed, self.config.benign_sessions).benign();
        let stream = extract_from_events(&report.events);
        self.run_stream(&stream)
    }

    /// Assembles the agent/platform pair with all three xApps registered
    /// and runs the E2 setup + subscription handshake.
    fn deploy(&self) -> Deployment {
        let obs = Obs::from_env();
        let (agent_end, ric_end) = in_proc_pair();
        let mut agent =
            RicAgent::new(RicAgentConfig { gnb_id: GnbId(1), cell: CellId(1) }, agent_end)
                .expect("agent starts");
        agent.attach_obs(&obs);
        let mut platform = RicPlatform::with_obs(obs.clone());
        platform.add_agent(Box::new(ric_end));

        let watch_config =
            MobiWatchConfig {
                detector: self.config.detector,
                precision: self.config.precision,
                ..MobiWatchConfig::default()
            };
        let (watch, watch_state): (Box<dyn xsec_ric::XApp>, _) =
            if self.config.scoring_shards > 0 {
                let (mut pool, state) = crate::shard::ShardedMobiWatch::new(
                    self.models.clone(),
                    watch_config,
                    self.config.scoring_shards,
                );
                pool.attach_obs(&obs);
                (Box::new(pool), state)
            } else {
                let (mut watch, state) = MobiWatch::new(self.models.clone(), watch_config);
                watch.attach_obs(&obs);
                (Box::new(watch), state)
            };
        let (mut analyzer, analyzer_state) = LlmAnalyzer::new(
            Box::new(SimulatedExpert::new(self.config.personality)),
            "anomalies",
        );
        analyzer.attach_obs(&obs);
        let (mitigator, mitigator_state) =
            Mitigator::with_obs(PolicyEngine::default(), obs.clone());
        // Deny-by-default: each xApp runs under a registered identity
        // holding exactly the capabilities its role needs, and the router
        // is sealed once the deployment is wired (no identity can be
        // minted mid-run).
        platform.harden();
        platform
            .register_xapp_scoped(
                watch,
                SubscriptionSpec::telemetry(self.config.report_period_ms),
                Grants::none().publish("anomalies"),
            )
            .expect("register mobiwatch");
        platform
            .register_xapp_scoped(
                Box::new(analyzer),
                SubscriptionSpec::topics_only(&["anomalies"]),
                Grants::none().subscribe("anomalies").publish(FINDINGS_TOPIC),
            )
            .expect("register analyzer");
        // The mitigator also subscribes to telemetry: the report windows are
        // its virtual clock for retry pacing and TTL expiry. Its control
        // grants enumerate the five playbook kinds rather than the
        // wildcard, so a compromised playbook cannot smuggle a new kind.
        platform
            .register_xapp_scoped(
                Box::new(mitigator),
                SubscriptionSpec::telemetry(self.config.report_period_ms)
                    .with_topic(FINDINGS_TOPIC)
                    .with_topic(CONTROL_ACKS_TOPIC)
                    .with_topic(A1_POLICY_TOPIC),
                Grants::none()
                    .subscribe(FINDINGS_TOPIC)
                    .subscribe(CONTROL_ACKS_TOPIC)
                    .subscribe(A1_POLICY_TOPIC)
                    .publish(A1_POLICY_STATUS_TOPIC)
                    .control("release-ue")
                    .control("blacklist-rnti")
                    .control("force-reauth")
                    .control("quarantine-cell")
                    .control("rate-limit-cause"),
            )
            .expect("register mitigator");
        let smo_scope = platform
            .register_identity(
                XAppIdentity::named("smo"),
                Grants::none()
                    .publish(A1_POLICY_TOPIC)
                    .subscribe(A1_POLICY_STATUS_TOPIC)
                    .a1_all(),
            )
            .expect("register smo");
        platform.seal();

        // Handshake.
        for _ in 0..3 {
            platform.pump().expect("pump");
            agent.poll(Timestamp::ZERO).expect("agent poll");
        }
        Deployment {
            obs,
            agent,
            platform,
            watch_state,
            analyzer_state,
            mitigator_state,
            smo_scope,
        }
    }

    /// Replays a telemetry stream through agent → E2 → platform → xApps.
    ///
    /// Control Requests the mitigator issues still travel RIC → agent and
    /// are acked, but nothing enforces them — this is the *open-loop*
    /// replay used for detection evaluation. [`Pipeline::run_closed_loop`]
    /// feeds the actions back into a live simulation.
    pub fn run_stream(&self, stream: &TelemetryStream) -> PipelineOutcome {
        let mut d = self.deploy();

        // Replay records in report-period buckets of virtual time.
        let period = Duration::from_millis(u64::from(self.config.report_period_ms));
        let mut bucket_end = Timestamp::ZERO + period;
        for record in &stream.records {
            while record.timestamp >= bucket_end {
                d.agent.poll(bucket_end).expect("agent poll");
                d.platform.pump().expect("pump");
                bucket_end += period;
            }
            d.agent.push_record(record.clone());
        }
        // Final flush: alert → finding → control → ack needs a few more
        // poll/pump rounds (with time advancing) to drain end to end.
        for _ in 0..4 {
            d.agent.poll(bucket_end).expect("agent poll");
            d.platform.pump().expect("pump");
            bucket_end += period;
        }
        drop(d.agent.take_control_requests());

        self.evaluate(stream, d)
    }

    /// Runs the *closed* loop: a live [`RanSimulator`] is driven in
    /// report-period steps, its telemetry flows through the full RIC stack,
    /// and every Control Request the mitigator ships is decoded and applied
    /// to the simulated gNB mid-run, so mitigation changes the traffic the
    /// rest of the run produces.
    pub fn run_closed_loop(&self, sim: RanSimulator) -> ClosedLoopOutcome {
        self.run_closed_loop_with(sim, |_, _, _| {})
    }

    /// [`Pipeline::run_closed_loop`] with an SMO-side hook in the loop.
    ///
    /// The hook runs at the end of every report bucket with the bucket's
    /// closing virtual time, the actions enforced so far, and a live
    /// [`A1PolicyClient`] — so a run can hot-swap policy rules between
    /// detections (the operation reaches the mitigator on the next pump)
    /// and observe the Control Actions change.
    pub fn run_closed_loop_with(
        &self,
        mut sim: RanSimulator,
        mut smo_hook: impl FnMut(Timestamp, &[(Timestamp, ControlAction)], &A1PolicyClient),
    ) -> ClosedLoopOutcome {
        let mut d = self.deploy();
        // The RAN side records into the same registry, so the snapshot
        // spans detection *and* enforcement.
        sim.attach_obs(&d.obs);
        // The hook's client runs under the SMO's registered identity: its
        // operations go out as signed envelopes the mitigator verifies.
        let a1 = A1PolicyClient::scoped(d.smo_scope.clone());

        let period = Duration::from_millis(u64::from(self.config.report_period_ms));
        let horizon = Timestamp::ZERO + sim.config().horizon;
        let mut bucket_end = Timestamp::ZERO + period;
        let mut cursor = 0usize;
        let mut enforced = Vec::new();
        // A few grace buckets past the horizon drain in-flight detections.
        while bucket_end <= horizon + period.saturating_mul(4) {
            sim.run_until(bucket_end);
            // Events only append, so re-extraction is prefix-stable: feed
            // the suffix the agent has not seen yet.
            let stream = extract_from_events(sim.events());
            for record in &stream.records[cursor..] {
                d.agent.push_record(record.clone());
            }
            cursor = stream.records.len();
            d.agent.poll(bucket_end).expect("agent poll");
            // Two pumps walk indication → alert → finding → control ship.
            d.platform.pump().expect("pump");
            d.platform.pump().expect("pump");
            // The agent receives (and acks) any Control Requests; the RAN
            // enforces them before the next bucket of traffic runs.
            d.agent.poll(bucket_end).expect("agent poll");
            for payload in d.agent.take_control_requests() {
                if let Ok(action) = ControlAction::decode(&payload) {
                    sim.apply_control(bucket_end, &action);
                    enforced.push((bucket_end, action));
                }
            }
            // Relay the acks back onto the mitigator's topic.
            d.platform.pump().expect("pump");
            smo_hook(bucket_end, &enforced, &a1);
            bucket_end += period;
        }

        let stream = extract_from_events(sim.events());
        let outcome = self.evaluate(&stream, d);
        ClosedLoopOutcome { outcome, report: sim.finish(), enforced }
    }

    /// Runs the closed loop against a *streaming* multi-cell scenario: the
    /// engine generates (and retires) UEs lazily, each report bucket's
    /// merged events flow through agent → E2 → platform → xApps, and every
    /// Control Request is decoded and routed back to the cell(s) it
    /// concerns — so detections in one cell change what that cell admits
    /// while the others keep serving.
    ///
    /// The loop ends when the engine drains (plus a few grace buckets for
    /// in-flight detections) or `max_virtual` elapses, whichever is first.
    /// Evaluation keeps the whole labeled stream in memory — use the soak
    /// harness, which drains state per batch, for memory-ceiling runs.
    pub fn run_streaming(
        &self,
        mut engine: StreamingScenario,
        max_virtual: Duration,
    ) -> StreamingOutcome {
        let mut d = self.deploy();
        // Streaming cells keep their metrics local, but enforcement spans
        // must land in the deployment's incident traces.
        engine.attach_recorder(&d.obs.recorder);
        let period = Duration::from_millis(u64::from(self.config.report_period_ms));
        let hard_stop = Timestamp::ZERO + max_virtual;
        let mut bucket_end = Timestamp::ZERO + period;
        let mut full = TelemetryStream::default();
        let mut enforced = Vec::new();
        let mut grace = 0;
        while grace < 4 && bucket_end <= hard_stop {
            let events = engine.step(bucket_end);
            let chunk = extract_from_events_at(&events, full.records.len() as u64);
            for record in &chunk.records {
                d.agent.push_record(record.clone());
            }
            full.records.extend(chunk.records);
            full.labels.extend(chunk.labels);

            d.agent.poll(bucket_end).expect("agent poll");
            d.platform.pump().expect("pump");
            d.platform.pump().expect("pump");
            d.agent.poll(bucket_end).expect("agent poll");
            for payload in d.agent.take_control_requests() {
                if let Ok(action) = ControlAction::decode(&payload) {
                    engine.apply_control(bucket_end, &action);
                    enforced.push((bucket_end, action));
                }
            }
            d.platform.pump().expect("pump");

            if engine.done() {
                grace += 1;
            }
            bucket_end += period;
        }

        let stats = engine.stats();
        let outcome = self.evaluate(&full, d);
        StreamingOutcome { outcome, stats, enforced, engine }
    }

    /// Scores the run against ground truth and snapshots every xApp state.
    fn evaluate(&self, stream: &TelemetryStream, d: Deployment) -> PipelineOutcome {
        let truth = if self.config.scoring_shards > 0 {
            // The sharded pool windows per UE, so truth must follow the
            // same per-UE accounting to line up record for record.
            crate::shard::per_ue_truth(stream, self.config.detector_window, self.config.detector)
        } else {
            let feature_config = FeatureConfig { window: self.config.detector_window };
            let dataset = Featurizer::encode_stream(&feature_config, stream);
            match self.config.detector {
                Detector::Autoencoder => dataset.window_labels(),
                Detector::Lstm => dataset.lstm_labels(),
            }
        };
        let watch_state = d.watch_state.lock();
        let predictions: Vec<bool> = watch_state.scores.iter().map(|(_, _, f)| *f).collect();
        assert_eq!(
            predictions.len(),
            truth.len(),
            "window accounting mismatch: {} predictions vs {} truths",
            predictions.len(),
            truth.len()
        );
        let confusion = Confusion::from_predictions(&predictions, &truth);

        let analyzer_state = d.analyzer_state.lock();
        PipelineOutcome {
            records: stream.len(),
            flagged_windows: predictions.iter().filter(|f| **f).count(),
            alerts: watch_state.alerts.len(),
            findings: analyzer_state.findings.clone(),
            human_review: analyzer_state.human_review.len(),
            confusion,
            mean_handler_latency_us: d.platform.latency().mean_us(),
            mitigation: d.mitigator_state.lock().summary(),
            metrics: d.obs.snapshot(),
            recorder: d.obs.recorder.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bts_dos_is_detected_and_explained_end_to_end() {
        let pipeline = Pipeline::train(&PipelineConfig::small(21, 15));
        let outcome = pipeline.run_attack(AttackKind::BtsDos);
        assert!(outcome.flagged_windows > 0, "flood not flagged");
        assert!(outcome.alerts > 0, "no alerts published");
        assert!(!outcome.findings.is_empty(), "analyzer saw nothing");
        // The detector must catch the attack windows (high recall).
        let recall = outcome.confusion.recall().unwrap_or(0.0);
        assert!(recall > 0.8, "recall too low: {recall}");
        // GPT-4o confirms floods.
        assert!(outcome
            .findings
            .iter()
            .any(|f| f.response.contains("Signaling storm")));
    }

    #[test]
    fn benign_run_stays_mostly_quiet() {
        let pipeline = Pipeline::train(&PipelineConfig::small(22, 15));
        let outcome = pipeline.run_benign();
        let accuracy = outcome.confusion.accuracy().unwrap();
        assert!(accuracy > 0.85, "benign accuracy too low: {accuracy}");
    }

    #[test]
    fn sharded_scoring_runs_end_to_end() {
        let mut config = PipelineConfig::small(24, 15);
        config.scoring_shards = 2;
        let pipeline = Pipeline::train(&config);
        let outcome = pipeline.run_attack(AttackKind::NullCipher);
        // Per-UE windows still surface the downgrade and the evaluation's
        // per-UE truth accounting lines up with the pool's emissions.
        assert!(outcome.records > 100);
        assert!(outcome.flagged_windows > 0, "downgrade not flagged");
        assert!(outcome.metrics.histogram_count("xsec_mobiwatch_inference_latency_us") > 0);
    }

    #[test]
    fn migrating_attacker_is_detected_and_mitigated_in_every_cell_it_visits() {
        use xsec_attacks::{MigrateConfig, MigrationSchedule};
        use xsec_ran::stream::StreamConfig;

        let stream_config = StreamConfig {
            seed: 61,
            cells: 3,
            total_ues: 45,
            mean_inter_arrival: Duration::from_millis(8),
            mobility_fraction: 0.3,
            max_handovers: 1,
            max_live: 64,
            ..StreamConfig::default()
        };

        // Train on a benign run of the *same* streaming deployment — the
        // detector must learn the multi-cell, churning distribution it will
        // patrol, not the single-cell collection scenario.
        let mut benign = StreamingScenario::new(StreamConfig { seed: 7, ..stream_config.clone() });
        let mut training_events = Vec::new();
        let mut deadline = Timestamp::ZERO + Duration::from_millis(100);
        while !benign.done() {
            training_events.extend(benign.step(deadline));
            deadline += Duration::from_millis(100);
        }
        let mut config = PipelineConfig::small(25, 15);
        config.scoring_shards = 2;
        let pipeline = Pipeline::train_on(&config, &extract_from_events(&training_events));

        let mut engine = StreamingScenario::new(stream_config);
        // The attacker tours all three cells, flooding each in turn — the
        // per-(attack, cell) cooldown must not let later visits ride free.
        MigrationSchedule::tour(
            &[0, 1, 2],
            Timestamp::ZERO + Duration::from_millis(150),
            Duration::from_millis(900),
            MigrateConfig { connections_per_visit: 40, ..MigrateConfig::default() },
        )
        .install(&mut engine);

        let result = pipeline.run_streaming(engine, Duration::from_secs(60));

        assert!(result.outcome.flagged_windows > 0, "flood not flagged");
        assert!(!result.outcome.findings.is_empty(), "analyzer saw nothing");
        assert!(result.outcome.mitigation.issued > 0, "no actions issued");
        assert!(!result.enforced.is_empty(), "no actions reached the RAN");
        assert!(result.stats.handovers > 0, "benign churn missing");

        // Enforcement must land in *every* visited cell: once the flood is
        // mitigated there, that cell's gNB drops its setups (rate limit /
        // quarantine) or its uplinks (RNTI blacklist).
        for cell in 0..3 {
            let stats = result.engine.gnb_stats(cell);
            assert!(
                stats.mitigation_dropped + stats.blacklist_dropped > 0,
                "cell {cell} was never protected: {stats:?}"
            );
        }
    }

    #[test]
    fn handler_latency_is_tracked() {
        let pipeline = Pipeline::train(&PipelineConfig::small(23, 12));
        let outcome = pipeline.run_attack(AttackKind::NullCipher);
        assert!(outcome.mean_handler_latency_us > 0.0);
        assert!(outcome.records > 100);
        // The run's snapshot carries every stage's latency histogram.
        for stage in [
            "xsec_e2_decode_latency_us",
            "xsec_mobiwatch_featurize_latency_us",
            "xsec_mobiwatch_inference_latency_us",
            "xsec_ric_handler_latency_us",
        ] {
            assert!(
                outcome.metrics.histogram_count(stage) > 0,
                "stage {stage} recorded no samples"
            );
        }
        assert_eq!(
            outcome.metrics.counter_total("xsec_e2_records_pushed_total"),
            outcome.records as u64
        );
    }
}
