//! Table 2 — detection performance of the two unsupervised models.
//!
//! Protocol (paper §4.1):
//!
//! * **Benign row** — k-fold cross-validation on the benign dataset: train
//!   on k−1 folds, score the held-out fold; a benign window counted correct
//!   when *not* flagged. The paper reports Accuracy = Precision here (all
//!   samples are negative, so both reduce to the fraction unflagged).
//! * **Attack row** — train on the full benign dataset, evaluate on the
//!   five attack datasets (benign background + attack episodes), windows
//!   labeled by the "any malicious record taints the window" rule.

use crate::smo::{Smo, TrainingConfig};
use serde::{Deserialize, Serialize};
use xsec_attacks::DatasetBuilder;
use xsec_dl::{
    Autoencoder, AutoencoderConfig, Confusion, FeatureConfig, Featurizer, Lstm, LstmConfig,
    Matrix, Threshold, Workspace, FEATURES_PER_RECORD,
};
use xsec_mobiflow::{extract_from_events, TelemetryStream};
use xsec_types::AttackKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// Master seed.
    pub seed: u64,
    /// Benign sessions per dataset.
    pub benign_sessions: usize,
    /// Cross-validation folds for the benign row.
    pub folds: usize,
    /// Training hyperparameters.
    pub training: TrainingConfig,
}

impl Default for Table2Config {
    fn default() -> Self {
        Table2Config {
            seed: 1,
            benign_sessions: 110,
            folds: 5,
            training: TrainingConfig::default(),
        }
    }
}

impl Table2Config {
    /// A fast variant for tests.
    pub fn quick(seed: u64) -> Self {
        Table2Config {
            seed,
            benign_sessions: 25,
            folds: 3,
            training: TrainingConfig {
                autoencoder_epochs: 12,
                lstm_epochs: 3,
                autoencoder_hidden: vec![48, 12],
                lstm_hidden: 24,
                ..TrainingConfig::default()
            },
        }
    }
}

/// One row of the table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// "Benign" or "Attack".
    pub dataset: String,
    /// "Autoencoder" or "LSTM".
    pub model: String,
    /// Accuracy in percent.
    pub accuracy: f64,
    /// Precision in percent (equals accuracy on the benign row).
    pub precision: f64,
    /// Recall in percent; `None` on the benign row (no positives).
    pub recall: Option<f64>,
    /// F1 in percent; `None` on the benign row.
    pub f1: Option<f64>,
}

/// The full table plus per-attack breakdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// The four headline rows (benign/attack × AE/LSTM).
    pub rows: Vec<Table2Row>,
    /// Per-attack recall for the autoencoder (detection-rate detail behind
    /// the "100% detection rate for 5 attacks" claim).
    pub per_attack_ae_recall: Vec<(AttackKind, f64)>,
    /// Per-attack *episode* detection by the autoencoder: whether any window
    /// of the attack was flagged — the unit behind the abstract's "100%
    /// detection rate" claim.
    pub per_attack_ae_detected: Vec<(AttackKind, bool)>,
}

impl Table2Result {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Table 2: Detection performance of the two deep learning models\n\
             Dataset  Model        Accuracy  Precision  Recall   F1 Score\n",
        );
        for row in &self.rows {
            let fmt_opt = |v: Option<f64>| match v {
                Some(x) => format!("{:6.2}%", x),
                None => "   N/A".to_string(),
            };
            out.push_str(&format!(
                "{:<8} {:<12} {:6.2}%   {:6.2}%   {}  {}\n",
                row.dataset,
                row.model,
                row.accuracy,
                row.precision,
                fmt_opt(row.recall),
                fmt_opt(row.f1),
            ));
        }
        out.push_str("\nPer-attack detection (Autoencoder):\n");
        for ((kind, recall), (_, detected)) in
            self.per_attack_ae_recall.iter().zip(&self.per_attack_ae_detected)
        {
            out.push_str(&format!(
                "  {:<20} window recall {:6.2}%   attack detected: {}\n",
                kind.short_name(),
                recall * 100.0,
                if *detected { "yes" } else { "NO" }
            ));
        }
        out
    }
}

fn benign_cross_validation(
    config: &Table2Config,
    stream: &TelemetryStream,
) -> (f64, f64) {
    let feature_config = FeatureConfig { window: config.training.window };
    let dataset = Featurizer::encode_stream(&feature_config, stream);
    let flat = dataset.flat_windows();
    let (lstm_windows, lstm_nexts) = dataset.lstm_pairs();

    let n = flat.rows();
    let fold_size = n / config.folds;
    let mut ws = Workspace::new();
    let mut ae_correct = 0usize;
    let mut ae_total = 0usize;
    let mut lstm_correct = 0usize;
    let mut lstm_total = 0usize;

    for fold in 0..config.folds {
        let test_start = fold * fold_size;
        let test_end = if fold + 1 == config.folds { n } else { test_start + fold_size };

        // Train the AE on everything outside the fold.
        let train =
            Matrix::stack_rows(&[flat.slice_rows(0, test_start), flat.slice_rows(test_end, n)]);
        let ae = Autoencoder::train(
            AutoencoderConfig {
                input_dim: flat.cols(),
                hidden: config.training.autoencoder_hidden.clone(),
                epochs: config.training.autoencoder_epochs,
                seed: config.training.seed,
                ..AutoencoderConfig::for_input(flat.cols())
            },
            &train,
        );
        let threshold = Threshold::fit(ae.training_errors(), config.training.threshold_pct);
        // One batched pass over the held-out fold instead of a GEMV per row.
        let fold_scores = ae.score_rows(&flat.slice_rows(test_start, test_end), &mut ws);
        ae_total += fold_scores.len();
        ae_correct += fold_scores.iter().filter(|s| !threshold.is_anomalous(**s)).count();

        // Same protocol for the LSTM over its (window, next) pairs.
        let m = lstm_windows.len();
        let lstm_fold = m / config.folds;
        let lt_start = fold * lstm_fold;
        let lt_end = if fold + 1 == config.folds { m } else { lt_start + lstm_fold };
        let (mut tw, mut tn) = (Vec::new(), Vec::new());
        for i in 0..m {
            if i < lt_start || i >= lt_end {
                tw.push(lstm_windows[i].clone());
                tn.push(lstm_nexts[i].clone());
            }
        }
        let lstm = Lstm::train(
            LstmConfig {
                input_dim: FEATURES_PER_RECORD,
                hidden: config.training.lstm_hidden,
                epochs: config.training.lstm_epochs,
                seed: config.training.seed,
                ..LstmConfig::for_input(FEATURES_PER_RECORD)
            },
            &tw,
            &tn,
        );
        let threshold = Threshold::fit(lstm.training_errors(), config.training.threshold_pct);
        let fold_scores =
            lstm.score_batch(&lstm_windows[lt_start..lt_end], &lstm_nexts[lt_start..lt_end], &mut ws);
        lstm_total += fold_scores.len();
        lstm_correct += fold_scores.iter().filter(|s| !threshold.is_anomalous(**s)).count();
    }

    (
        100.0 * ae_correct as f64 / ae_total.max(1) as f64,
        100.0 * lstm_correct as f64 / lstm_total.max(1) as f64,
    )
}

/// Runs the experiment.
pub fn run(config: &Table2Config) -> Table2Result {
    let mut training = config.training.clone();
    training.window = config.training.window;

    // --- benign dataset -----------------------------------------------------
    let benign_report = DatasetBuilder::small(config.seed, config.benign_sessions).benign();
    let benign_stream = extract_from_events(&benign_report.events);
    let (ae_benign_acc, lstm_benign_acc) = benign_cross_validation(config, &benign_stream);

    // --- attack datasets ----------------------------------------------------
    let models = Smo::train(&training, &benign_stream).expect("training succeeds");
    let feature_config = FeatureConfig { window: training.window };

    let mut ae_conf = Confusion::default();
    let mut lstm_conf = Confusion::default();
    let mut per_attack_ae_recall = Vec::new();
    let mut per_attack_ae_detected = Vec::new();

    for kind in AttackKind::ALL {
        let eval_seed = config.seed + 1_000 + kind as u64;
        let ds = DatasetBuilder::small(eval_seed, config.benign_sessions).attack(kind);
        let stream = extract_from_events(&ds.report.events);
        let dataset = Featurizer::encode_stream(&feature_config, &stream);

        // Autoencoder.
        let flat = dataset.flat_windows();
        let truth = dataset.window_labels();
        let scores = models.autoencoder.score_all(&flat);
        let pred = models.ae_threshold.classify(&scores);
        let kind_conf = Confusion::from_predictions(&pred, &truth);
        per_attack_ae_recall.push((kind, kind_conf.recall().unwrap_or(1.0)));
        per_attack_ae_detected.push((kind, kind_conf.tp > 0));
        ae_conf.tp += kind_conf.tp;
        ae_conf.fp += kind_conf.fp;
        ae_conf.tn += kind_conf.tn;
        ae_conf.fn_ += kind_conf.fn_;

        // LSTM.
        let (windows, nexts) = dataset.lstm_pairs();
        let truth = dataset.lstm_labels();
        let scores = models.lstm.score_all(&windows, &nexts);
        let pred = models.lstm_threshold.classify(&scores);
        let kind_conf = Confusion::from_predictions(&pred, &truth);
        lstm_conf.tp += kind_conf.tp;
        lstm_conf.fp += kind_conf.fp;
        lstm_conf.tn += kind_conf.tn;
        lstm_conf.fn_ += kind_conf.fn_;
    }

    let pct = |v: Option<f64>| v.map(|x| x * 100.0);
    let rows = vec![
        Table2Row {
            dataset: "Benign".into(),
            model: "Autoencoder".into(),
            accuracy: ae_benign_acc,
            precision: ae_benign_acc,
            recall: None,
            f1: None,
        },
        Table2Row {
            dataset: "Benign".into(),
            model: "LSTM".into(),
            accuracy: lstm_benign_acc,
            precision: lstm_benign_acc,
            recall: None,
            f1: None,
        },
        Table2Row {
            dataset: "Attack".into(),
            model: "Autoencoder".into(),
            accuracy: pct(ae_conf.accuracy()).unwrap_or(0.0),
            precision: pct(ae_conf.precision()).unwrap_or(0.0),
            recall: pct(ae_conf.recall()),
            f1: pct(ae_conf.f1()),
        },
        Table2Row {
            dataset: "Attack".into(),
            model: "LSTM".into(),
            accuracy: pct(lstm_conf.accuracy()).unwrap_or(0.0),
            precision: pct(lstm_conf.precision()).unwrap_or(0.0),
            recall: pct(lstm_conf.recall()),
            f1: pct(lstm_conf.f1()),
        },
    ];

    Table2Result { rows, per_attack_ae_recall, per_attack_ae_detected }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table2_has_the_papers_shape() {
        let result = run(&Table2Config::quick(5));
        assert_eq!(result.rows.len(), 4);
        // Benign rows: high accuracy, no recall.
        for row in &result.rows[..2] {
            assert!(row.accuracy > 80.0, "{row:?}");
            assert!(row.recall.is_none());
        }
        // Attack rows: the autoencoder must keep high window recall; the
        // LSTM is the weaker model (as in the paper, where it also trails
        // the autoencoder).
        let ae_recall = result.rows[2].recall.unwrap();
        let lstm_recall = result.rows[3].recall.unwrap();
        assert!(ae_recall > 80.0, "AE recall collapsed: {:?}", result.rows[2]);
        assert!(lstm_recall > 40.0, "LSTM recall collapsed: {:?}", result.rows[3]);
        assert!(ae_recall >= lstm_recall, "the paper's ordering (AE ≥ LSTM) must hold");
        assert_eq!(result.per_attack_ae_recall.len(), 5);
        // The headline claim: every attack is detected.
        assert!(
            result.per_attack_ae_detected.iter().all(|(_, d)| *d),
            "an attack went fully undetected: {:?}",
            result.per_attack_ae_detected
        );
        let render = result.render();
        assert!(render.contains("Autoencoder"));
        assert!(render.contains("N/A"));
    }
}
