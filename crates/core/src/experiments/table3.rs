//! Table 3 — can LLMs explain cellular anomalies?
//!
//! Protocol (paper §4.2): for each of the five attacks, take a flagged
//! trace (window + context) from the attack dataset, render the zero-shot
//! Figure 5 prompt, ask each of the five baseline models, and mark ✓ when
//! the model classifies the trace correctly (anomalous with the right
//! attack among its top suggestions; benign for the two control traces).

use crate::mobiwatch::{Detector, MobiWatch, MobiWatchConfig};
use crate::pipeline::{Pipeline, PipelineConfig};
use serde::{Deserialize, Serialize};
use xsec_attacks::DatasetBuilder;
use xsec_llm::{LlmBackend, ParsedResponse, PromptTemplate, SimulatedExpert};
use xsec_llm::ModelPersonality;
use xsec_mobiflow::{decode_ue_record, extract_from_events, UeMobiFlow};
use xsec_types::AttackKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Table3Config {
    /// Pipeline/training parameters (the detector picks the traces).
    pub pipeline: PipelineConfig,
}

impl Default for Table3Config {
    fn default() -> Self {
        Table3Config { pipeline: PipelineConfig::paper(1) }
    }
}

impl Table3Config {
    /// A fast variant for tests.
    pub fn quick(seed: u64) -> Self {
        Table3Config { pipeline: PipelineConfig::small(seed, 25) }
    }
}

/// One row: a trace and each model's verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Trace label ("BTS DoS", ..., "Benign Sequence 1").
    pub trace: String,
    /// Per-model correctness, in [`ModelPersonality::ALL`] column order.
    pub correct: Vec<bool>,
}

/// The full matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Result {
    /// Column headers (model names).
    pub models: Vec<String>,
    /// Rows: 5 attacks + 2 benign control traces.
    pub rows: Vec<Table3Row>,
}

impl Table3Result {
    /// Renders the matrix in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::from("Table 3: LLM evaluation results (✓ correct, ✗ wrong)\n");
        out.push_str(&format!("{:<22}", "Attack / Trace"));
        for m in &self.models {
            out.push_str(&format!("{:<18}", m));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<22}", row.trace));
            for c in &row.correct {
                out.push_str(&format!("{:<18}", if *c { "\u{2713}" } else { "\u{2717}" }));
            }
            out.push('\n');
        }
        out
    }

    /// The matrix as the paper reports it, for comparison.
    pub fn paper_reference() -> Vec<(&'static str, [bool; 5])> {
        vec![
            ("BTS DoS", [true, true, true, false, false]),
            ("Blind DoS", [true, false, false, true, false]),
            ("Uplink ID Extr", [false, false, false, false, true]),
            ("Downlink ID Extr", [true, true, false, true, true]),
            ("Null Cipher & Int.", [true, true, false, true, true]),
            ("Benign Sequence 1", [true, true, true, true, true]),
            ("Benign Sequence 2", [true, true, true, true, true]),
        ]
    }
}

/// Finds the representative flagged trace for one attack: runs the trained
/// detector over the attack dataset and returns the alert window whose
/// records carry the most attack labels (the paper picks such traces
/// manually).
fn representative_trace(pipeline: &Pipeline, kind: AttackKind) -> Vec<UeMobiFlow> {
    let config = pipeline_config(pipeline);
    let eval_seed = config.seed + 1_000 + kind as u64;
    let ds = DatasetBuilder::small(eval_seed, config.benign_sessions).attack(kind);
    let stream = extract_from_events(&ds.report.events);

    let (mut watch, state) = MobiWatch::new(
        pipeline.models().clone(),
        MobiWatchConfig {
            detector: Detector::Autoencoder,
            publish_cooldown: 0,
            ..MobiWatchConfig::default()
        },
    );
    for r in &stream.records {
        watch.process_record(r);
    }
    let state = state.lock();

    // Ground truth per record index.
    let is_attack: Vec<bool> = stream.labels.iter().map(|l| l.is_attack()).collect();
    let best = state
        .alerts
        .iter()
        .max_by_key(|alert| {
            let start = (alert.at_record as usize).saturating_sub(alert.records.len() - 1);
            is_attack[start..=alert.at_record as usize]
                .iter()
                .filter(|a| **a)
                .count()
        })
        .or_else(|| state.alerts.first());

    match best {
        Some(alert) => {
            alert.records.iter().filter_map(|l| decode_ue_record(l).ok()).collect()
        }
        None => {
            // Detector missed entirely (should not happen): fall back to the
            // ground-truth attack region plus context.
            let first = is_attack.iter().position(|a| *a).unwrap_or(0);
            let start = first.saturating_sub(40);
            let end = (first + 24).min(stream.records.len());
            stream.records[start..end].to_vec()
        }
    }
}

fn pipeline_config(pipeline: &Pipeline) -> &PipelineConfig {
    pipeline.config()
}

/// A benign control trace: a contiguous slice of a fresh benign dataset.
fn benign_trace(config: &PipelineConfig, variant: u64) -> Vec<UeMobiFlow> {
    let report =
        DatasetBuilder::small(config.seed + 3_000 + variant, config.benign_sessions).benign();
    let stream = extract_from_events(&report.events);
    let start = (20 * variant as usize).min(stream.records.len().saturating_sub(40));
    stream.records[start..(start + 40).min(stream.records.len())].to_vec()
}

/// Whether the model's answer counts as correct for this trace.
fn graded(parsed: &ParsedResponse, expected: Option<AttackKind>) -> bool {
    match expected {
        None => !parsed.anomalous,
        Some(kind) => {
            if !parsed.anomalous {
                return false;
            }
            // The right attack must appear among the (≤3) suggestions.
            let needle = match kind {
                AttackKind::BtsDos => "BTS DoS",
                AttackKind::BlindDos => "Blind DoS",
                AttackKind::UplinkIdExtraction => "Uplink identity extraction",
                AttackKind::DownlinkIdExtraction => "Downlink identity extraction",
                AttackKind::NullCipher => "bidding-down",
            };
            parsed.attacks.iter().any(|a| a.contains(needle))
        }
    }
}

/// Runs the experiment.
pub fn run(config: &Table3Config) -> Table3Result {
    let pipeline = Pipeline::train(&config.pipeline);

    let mut traces: Vec<(String, Option<AttackKind>, Vec<UeMobiFlow>)> = AttackKind::ALL
        .into_iter()
        .map(|kind| {
            (
                kind.short_name().to_string(),
                Some(kind),
                representative_trace(&pipeline, kind),
            )
        })
        .collect();
    traces.push(("Benign Sequence 1".into(), None, benign_trace(&config.pipeline, 1)));
    traces.push(("Benign Sequence 2".into(), None, benign_trace(&config.pipeline, 2)));

    let template = PromptTemplate::default();
    let models: Vec<String> =
        ModelPersonality::ALL.iter().map(|p| p.name.to_string()).collect();

    let rows = traces
        .into_iter()
        .map(|(trace, expected, records)| {
            let prompt = template.render(&records);
            let correct = ModelPersonality::ALL
                .into_iter()
                .map(|personality| {
                    let mut backend = SimulatedExpert::new(personality);
                    let answer = backend.complete(&prompt).expect("simulated expert answers");
                    graded(&ParsedResponse::parse(&answer), expected)
                })
                .collect();
            Table3Row { trace, correct }
        })
        .collect();

    Table3Result { models, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table3_matches_the_papers_matrix() {
        let result = run(&Table3Config::quick(31));
        let reference = Table3Result::paper_reference();
        assert_eq!(result.rows.len(), reference.len());
        for (row, (name, expected)) in result.rows.iter().zip(&reference) {
            assert_eq!(&row.trace, name);
            assert_eq!(
                row.correct,
                expected.to_vec(),
                "row {name}: got {:?}, paper says {:?}",
                row.correct,
                expected
            );
        }
        let render = result.render();
        assert!(render.contains("ChatGPT-4o"));
        assert!(render.contains('\u{2713}'));
    }
}
