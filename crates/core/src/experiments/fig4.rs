//! Figure 4 — the autoencoder's reconstruction errors over the attack
//! datasets, with the detection threshold and per-attack grouping.
//!
//! The paper's observation: attack events of the same type exhibit highly
//! similar reconstruction-error patterns (① Blind DoS, ② BTS DoS), which
//! suggests the error signature could drive a supervised attack classifier.
//! The result captures the full score series plus per-attack statistics
//! that quantify the grouping.

use crate::smo::{Smo, TrainingConfig};
use serde::{Deserialize, Serialize};
use xsec_attacks::DatasetBuilder;
use xsec_dl::{FeatureConfig, Featurizer, Workspace};
use xsec_mobiflow::extract_from_events;
use xsec_types::AttackKind;

/// One scored window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoredWindow {
    /// Window index within its dataset's series.
    pub index: usize,
    /// Reconstruction error.
    pub score: f32,
    /// Ground-truth attack kind (None = benign background).
    pub kind: Option<AttackKind>,
}

/// Per-attack score statistics (the "grouping" evidence).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackScoreStats {
    /// The attack.
    pub kind: AttackKind,
    /// Number of attack windows.
    pub windows: usize,
    /// Mean score of the attack windows.
    pub mean: f32,
    /// Standard deviation of the attack windows' scores.
    pub std_dev: f32,
    /// Fraction of attack windows above the threshold.
    pub above_threshold: f64,
}

/// The full figure data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// The fitted detection threshold.
    pub threshold: f32,
    /// Score series per attack dataset, in [`AttackKind::ALL`] order.
    pub series: Vec<(AttackKind, Vec<ScoredWindow>)>,
    /// Grouping statistics per attack.
    pub stats: Vec<AttackScoreStats>,
}

impl Fig4Result {
    /// Renders an ASCII scatter of the series plus the statistics table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 4: Autoencoder reconstruction errors over the attack datasets\n",
        );
        out.push_str(&format!("Detection threshold: {:.5}\n\n", self.threshold));
        let max_score = self
            .series
            .iter()
            .flat_map(|(_, s)| s.iter().map(|w| w.score))
            .fold(self.threshold, f32::max);
        for (kind, series) in &self.series {
            out.push_str(&format!("── {kind} dataset ({} windows) ──\n", series.len()));
            // Downsample to ~60 columns; mark attack windows.
            let cols = 60usize;
            let stride = (series.len() / cols).max(1);
            for row in (0..8).rev() {
                let low = max_score * row as f32 / 8.0;
                let threshold_row =
                    self.threshold >= low && self.threshold < max_score * (row + 1) as f32 / 8.0;
                let mut line = String::new();
                for chunk in series.chunks(stride).take(cols) {
                    let peak = chunk.iter().map(|w| w.score).fold(0.0f32, f32::max);
                    let any_attack = chunk.iter().any(|w| w.kind.is_some());
                    let in_row = peak >= low && (row == 7 || peak < max_score * (row + 1) as f32 / 8.0);
                    line.push(if in_row {
                        if any_attack {
                            '#'
                        } else {
                            '*'
                        }
                    } else if threshold_row {
                        '-'
                    } else {
                        ' '
                    });
                }
                out.push_str(&line);
                out.push('\n');
            }
            out.push_str(&"^".repeat(10));
            out.push_str("  (# attack window peak, * benign peak, --- threshold)\n\n");
        }
        out.push_str("Per-attack grouping statistics:\n");
        out.push_str("  Attack                windows   mean      std-dev   >threshold\n");
        for s in &self.stats {
            out.push_str(&format!(
                "  {:<20} {:>7}   {:.5}   {:.5}   {:5.1}%\n",
                s.kind.short_name(),
                s.windows,
                s.mean,
                s.std_dev,
                s.above_threshold * 100.0
            ));
        }
        out
    }

    /// CSV export: `dataset,index,score,label`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("dataset,window,score,kind\n");
        for (kind, series) in &self.series {
            for w in series {
                out.push_str(&format!(
                    "{},{},{},{}\n",
                    kind.short_name(),
                    w.index,
                    w.score,
                    w.kind.map(|k| k.short_name()).unwrap_or("benign")
                ));
            }
        }
        out
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Master seed.
    pub seed: u64,
    /// Benign sessions per dataset.
    pub benign_sessions: usize,
    /// Training hyperparameters.
    pub training: TrainingConfig,
}

impl Fig4Config {
    /// A fast variant for tests.
    pub fn quick(seed: u64) -> Self {
        Fig4Config {
            seed,
            benign_sessions: 25,
            training: TrainingConfig {
                autoencoder_epochs: 12,
                lstm_epochs: 1,
                autoencoder_hidden: vec![48, 12],
                lstm_hidden: 8,
                ..TrainingConfig::default()
            },
        }
    }
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config { seed: 1, benign_sessions: 110, training: TrainingConfig::default() }
    }
}

/// Runs the figure regeneration.
pub fn run(config: &Fig4Config) -> Fig4Result {
    let benign = DatasetBuilder::small(config.seed, config.benign_sessions).benign();
    let benign_stream = extract_from_events(&benign.events);
    let models = Smo::train(&config.training, &benign_stream).expect("training succeeds");
    let feature_config = FeatureConfig { window: config.training.window };

    let mut series = Vec::new();
    let mut stats = Vec::new();
    // One workspace spans all five datasets: the scoring buffers warm up on
    // the first and are reused for the rest.
    let mut ws = Workspace::new();
    for kind in AttackKind::ALL {
        let eval_seed = config.seed + 1_000 + kind as u64;
        let ds = DatasetBuilder::small(eval_seed, config.benign_sessions).attack(kind);
        let stream = extract_from_events(&ds.report.events);
        let dataset = Featurizer::encode_stream(&feature_config, &stream);
        let flat = dataset.flat_windows();
        let scores = models.autoencoder.score_rows(&flat, &mut ws);
        let kinds = dataset.window_attack_kinds();

        let windows: Vec<ScoredWindow> = scores
            .iter()
            .zip(&kinds)
            .enumerate()
            .map(|(index, (score, kind))| ScoredWindow { index, score: *score, kind: *kind })
            .collect();

        let attack_scores: Vec<f32> = windows
            .iter()
            .filter(|w| w.kind == Some(kind))
            .map(|w| w.score)
            .collect();
        let n = attack_scores.len().max(1) as f32;
        let mean = attack_scores.iter().sum::<f32>() / n;
        let var = attack_scores.iter().map(|s| (s - mean).powi(2)).sum::<f32>() / n;
        let above = attack_scores
            .iter()
            .filter(|s| models.ae_threshold.is_anomalous(**s))
            .count() as f64
            / attack_scores.len().max(1) as f64;
        stats.push(AttackScoreStats {
            kind,
            windows: attack_scores.len(),
            mean,
            std_dev: var.sqrt(),
            above_threshold: above,
        });
        series.push((kind, windows));
    }

    Fig4Result { threshold: models.ae_threshold.value, series, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shows_separation_and_grouping() {
        let fig = run(&Fig4Config::quick(51));
        assert_eq!(fig.series.len(), 5);
        assert!(fig.threshold > 0.0);

        for s in &fig.stats {
            assert!(s.windows > 0, "{:?} has no attack windows", s.kind);
            // The bulk of the attack scores sit above the threshold (the
            // paper's "all data points above the threshold bar"; our honest
            // labeling also marks a replay's bland connection-setup prefix,
            // which no detector could flag — see EXPERIMENTS.md).
            assert!(
                s.above_threshold > 0.7,
                "{:?}: only {:.0}% above threshold",
                s.kind,
                s.above_threshold * 100.0
            );
            // Grouping: the within-attack spread is small relative to the
            // attack's mean elevation above the threshold.
            assert!(
                s.std_dev < s.mean,
                "{:?}: scores too dispersed (std {} vs mean {})",
                s.kind,
                s.std_dev,
                s.mean
            );
        }

        // Attack means dominate benign means in every dataset.
        for (kind, series) in &fig.series {
            let benign_mean = mean(series.iter().filter(|w| w.kind.is_none()).map(|w| w.score));
            let attack_mean = mean(series.iter().filter(|w| w.kind.is_some()).map(|w| w.score));
            assert!(
                attack_mean > benign_mean,
                "{kind}: attack windows do not stand out"
            );
        }

        let text = fig.render();
        assert!(text.contains("threshold"));
        let csv = fig.to_csv();
        assert!(csv.lines().count() > 10);
    }

    fn mean(iter: impl Iterator<Item = f32>) -> f32 {
        let v: Vec<f32> = iter.collect();
        v.iter().sum::<f32>() / v.len().max(1) as f32
    }
}
