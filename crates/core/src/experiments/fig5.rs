//! Figure 5 — the prompt template and an example expert response for a BTS
//! DoS event, regenerated end-to-end: the detector flags the flood, the
//! flagged window (plus context) becomes the zero-shot prompt, and the
//! ChatGPT-4o-calibrated expert produces the signaling-storm analysis the
//! paper screenshots.

use crate::mobiwatch::{Detector, MobiWatch, MobiWatchConfig};
use crate::pipeline::{Pipeline, PipelineConfig};
use serde::{Deserialize, Serialize};
use xsec_attacks::DatasetBuilder;
use xsec_llm::{LlmBackend, ModelPersonality, PromptTemplate, SimulatedExpert};
use xsec_mobiflow::{decode_ue_record, extract_from_events};
use xsec_types::AttackKind;

/// The rendered figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Result {
    /// The full rendered prompt (template + data).
    pub prompt: String,
    /// The model's response.
    pub response: String,
    /// The model that answered.
    pub model: String,
}

impl Fig5Result {
    /// Renders prompt and response side by side (paper layout).
    pub fn render(&self) -> String {
        format!(
            "Figure 5: prompt template and response ({})\n\n\
             ======== Prompt ========\n{}\n\n======== Response ========\n{}\n",
            self.model, self.prompt, self.response
        )
    }
}

/// Runs the figure regeneration.
pub fn run(config: &PipelineConfig) -> Fig5Result {
    let pipeline = Pipeline::train(config);
    let eval_seed = config.seed + 1_000 + AttackKind::BtsDos as u64;
    let ds = DatasetBuilder::small(eval_seed, config.benign_sessions).attack(AttackKind::BtsDos);
    let stream = extract_from_events(&ds.report.events);

    let (mut watch, state) = MobiWatch::new(
        pipeline.models().clone(),
        MobiWatchConfig {
            detector: Detector::Autoencoder,
            publish_cooldown: 0,
            ..MobiWatchConfig::default()
        },
    );
    for r in &stream.records {
        watch.process_record(r);
    }
    let state = state.lock();
    let is_attack: Vec<bool> = stream.labels.iter().map(|l| l.is_attack()).collect();
    let alert = state
        .alerts
        .iter()
        .max_by_key(|alert| {
            let start = (alert.at_record as usize).saturating_sub(alert.records.len() - 1);
            is_attack[start..=alert.at_record as usize].iter().filter(|a| **a).count()
        })
        .expect("the flood raises at least one alert");

    let records: Vec<_> =
        alert.records.iter().filter_map(|l| decode_ue_record(l).ok()).collect();
    let prompt = PromptTemplate::default().render(&records);
    let mut backend = SimulatedExpert::new(ModelPersonality::CHATGPT_4O);
    let response = backend.complete(&prompt).expect("expert answers");

    Fig5Result { prompt, response, model: backend.name().to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_reproduces_the_signaling_storm_analysis() {
        let fig = run(&PipelineConfig::small(61, 20));
        // The prompt carries the Figure 5 template and telemetry data.
        assert!(fig.prompt.contains("AI security analyst"));
        assert!(fig.prompt.contains("top 3 most possible attacks"));
        assert!(fig.prompt.contains("RRCSetupRequest"));
        // The response mirrors the paper's example: anomalous, signaling
        // storm, gNodeB load.
        assert!(fig.response.contains("ANOMALOUS"), "{}", fig.response);
        assert!(fig.response.contains("Signaling storm"), "{}", fig.response);
        assert!(fig.response.to_lowercase().contains("gnodeb"), "{}", fig.response);
        assert!(fig.render().contains("======== Response ========"));
    }
}
