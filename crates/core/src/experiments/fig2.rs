//! Figure 2 — the message-ladder illustrations, regenerated from simulation.
//!
//! (a) a benign registration next to a downlink identity-extraction victim's
//! ladder (the `Auth. Req → Iden. Resp` inversion), and (b) the BTS DoS
//! flood: repeated truncated ladders, each on a fresh RNTI.

use serde::{Deserialize, Serialize};
use xsec_attacks::DatasetBuilder;
use xsec_mobiflow::{extract_from_events, UeMobiFlow};
use xsec_types::AttackKind;

/// One rendered ladder: `(direction, message, rnti)` per rung.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ladder {
    /// Caption.
    pub title: String,
    /// Rungs: `(is_uplink, message name, rnti hex)`.
    pub rungs: Vec<(bool, String, String)>,
}

impl Ladder {
    fn from_records(title: &str, records: &[&UeMobiFlow]) -> Ladder {
        Ladder {
            title: title.to_string(),
            rungs: records
                .iter()
                .map(|r| {
                    (r.direction.is_uplink(), r.msg.name().to_string(), format!("{}", r.rnti))
                })
                .collect(),
        }
    }

    /// Renders the ladder as ASCII art (UE on the left, RAN on the right).
    pub fn render(&self) -> String {
        let mut out = format!("{}\n  UE {:^34} RAN\n", self.title, "");
        for (uplink, msg, _) in &self.rungs {
            if *uplink {
                out.push_str(&format!("   |--- {msg:^28} -->|\n"));
            } else {
                out.push_str(&format!("   |<-- {msg:^28} ---|\n"));
            }
        }
        out
    }
}

/// The figure: three ladders.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    /// A benign registration (the left ladder of Figure 2a).
    pub benign: Ladder,
    /// The identity-extraction victim's ladder (the right ladder of 2a).
    pub identity_extraction: Ladder,
    /// The first few flood ladders of Figure 2b (with their RNTIs).
    pub dos_flood: Vec<Ladder>,
}

impl Fig2Result {
    /// Renders all ladders.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 2(a): benign vs. identity extraction\n\n");
        out.push_str(&self.benign.render());
        out.push('\n');
        out.push_str(&self.identity_extraction.render());
        out.push_str("\nFigure 2(b): RAN DoS flood (note the fresh RNTI per ladder)\n\n");
        for ladder in &self.dos_flood {
            out.push_str(&ladder.render());
            out.push('\n');
        }
        out
    }
}

/// Extracts the ladder of the connection that exposes a SUPI.
fn victim_ladder(records: &[UeMobiFlow]) -> Ladder {
    let victim_conn = records
        .iter()
        .find(|r| r.supi.is_some())
        .map(|r| r.du_ue_id)
        .expect("an exposure exists in the dataset");
    let rungs: Vec<&UeMobiFlow> =
        records.iter().filter(|r| r.du_ue_id == victim_conn).collect();
    Ladder::from_records("Identity extraction victim:", &rungs)
}

/// Runs the figure regeneration.
pub fn run(seed: u64, sessions: usize) -> Fig2Result {
    // Benign ladder: first completed session of a benign run.
    let benign_report = DatasetBuilder::small(seed, sessions).benign();
    let benign_stream = extract_from_events(&benign_report.events);
    let first_conn = benign_stream.records[0].du_ue_id;
    let benign_rungs: Vec<&UeMobiFlow> = benign_stream
        .records
        .iter()
        .filter(|r| r.du_ue_id == first_conn)
        .take(10)
        .collect();
    let benign = Ladder::from_records("Benign registration:", &benign_rungs);

    // Identity extraction (downlink variant, Figure 2a right).
    let ds = DatasetBuilder::small(seed + 1, sessions).attack(AttackKind::DownlinkIdExtraction);
    let stream = extract_from_events(&ds.report.events);
    let attack_records: Vec<UeMobiFlow> = stream
        .records
        .iter()
        .zip(&stream.labels)
        .filter(|(_, l)| l.is_attack())
        .map(|(r, _)| r.clone())
        .collect();
    // Include the victim's whole connection (benign prefix + attack tail).
    let victim_conn = attack_records[0].du_ue_id;
    let victim_all: Vec<UeMobiFlow> = stream
        .records
        .iter()
        .filter(|r| r.du_ue_id == victim_conn)
        .cloned()
        .collect();
    let identity_extraction = victim_ladder(&victim_all.clone());

    // BTS DoS flood ladders.
    let ds = DatasetBuilder::small(seed + 2, sessions).attack(AttackKind::BtsDos);
    let stream = extract_from_events(&ds.report.events);
    let mut flood_conns: Vec<u32> = Vec::new();
    for (r, l) in stream.records.iter().zip(&stream.labels) {
        if l.is_attack() && !flood_conns.contains(&r.du_ue_id) {
            flood_conns.push(r.du_ue_id);
        }
        if flood_conns.len() == 3 {
            break;
        }
    }
    let dos_flood: Vec<Ladder> = flood_conns
        .iter()
        .map(|conn| {
            let rungs: Vec<&UeMobiFlow> =
                stream.records.iter().filter(|r| r.du_ue_id == *conn).collect();
            let rnti = rungs.first().map(|r| format!("{}", r.rnti)).unwrap_or_default();
            Ladder::from_records(&format!("Flood connection (RNTI {rnti}):"), &rungs)
        })
        .collect();

    Fig2Result { benign, identity_extraction, dos_flood }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_reproduces_the_papers_ladders() {
        let fig = run(41, 20);
        // Benign: starts with the RRC triple then registration.
        let names: Vec<&str> = fig.benign.rungs.iter().map(|(_, m, _)| m.as_str()).collect();
        assert_eq!(names[0], "RRCSetupRequest");
        assert!(names.contains(&"RegistrationRequest"));
        assert!(names.contains(&"AuthenticationRequest"));
        assert!(names.contains(&"AuthenticationResponse"));

        // Identity extraction: Auth. Req answered by Iden. Resp (2a).
        let names: Vec<&str> =
            fig.identity_extraction.rungs.iter().map(|(_, m, _)| m.as_str()).collect();
        let auth_pos = names.iter().position(|m| *m == "AuthenticationRequest").unwrap();
        assert_eq!(
            names[auth_pos + 1],
            "IdentityResponse",
            "expected the Figure 2a inversion, got {names:?}"
        );

        // Flood: 3 ladders, all truncated after the challenge, distinct RNTIs.
        assert_eq!(fig.dos_flood.len(), 3);
        let mut rntis = Vec::new();
        for ladder in &fig.dos_flood {
            let names: Vec<&str> = ladder.rungs.iter().map(|(_, m, _)| m.as_str()).collect();
            assert!(names.contains(&"AuthenticationRequest"));
            assert!(!names.contains(&"AuthenticationResponse"));
            rntis.push(ladder.rungs[0].2.clone());
        }
        rntis.dedup();
        assert_eq!(rntis.len(), 3, "flood RNTIs must differ");

        // Rendering is non-empty and mentions both figures.
        let text = fig.render();
        assert!(text.contains("Figure 2(a)"));
        assert!(text.contains("Figure 2(b)"));
    }
}
