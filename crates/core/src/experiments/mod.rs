//! Reproductions of every table and figure in the paper's evaluation (§4).
//!
//! Each experiment is a pure function from a seed/config to a structured
//! result plus a `render()` that prints the same rows/series the paper
//! reports. The `xsec-bench` crate exposes one binary per experiment:
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table 2 (detection performance) | [`table2`] | `cargo run -p xsec-bench --bin table2` |
//! | Table 3 (LLM evaluation matrix) | [`table3`] | `cargo run -p xsec-bench --bin table3` |
//! | Figure 2 (attack message ladders) | [`fig2`] | `cargo run -p xsec-bench --bin fig2` |
//! | Figure 4 (reconstruction errors) | [`fig4`] | `cargo run -p xsec-bench --bin fig4` |
//! | Figure 5 (prompt & response) | [`fig5`] | `cargo run -p xsec-bench --bin fig5` |

pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod table2;
pub mod table3;
