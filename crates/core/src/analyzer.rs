//! The LLM analyzer xApp: expert referencing on flagged windows.
//!
//! Subscribes to the `anomalies` topic, turns each alert into the Figure 5
//! zero-shot prompt, queries the configured LLM backend, parses the answer,
//! and cross-compares it with the detector's decision. Contradictions land
//! in the human-supervision queue (§3.3).

use crate::mobiwatch::AnomalyAlert;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;
use xsec_llm::{cross_compare, CrossVerdict, LlmBackend, ParsedResponse, PromptTemplate};
use xsec_mobiflow::{decode_ue_record, UeMobiFlow};
use xsec_obs::{FlightEvent, FlightRecorder, Histogram, Obs, TraceStage};
use xsec_ric::{XApp, XAppContext};
use xsec_types::Timestamp;

/// One analyzed alert.
#[derive(Debug, Clone)]
pub struct AnalyzerFinding {
    /// Stream index of the alert's flagged window.
    pub at_record: u64,
    /// Detector score that triggered the alert.
    pub score: f32,
    /// The model's full completion text.
    pub response: String,
    /// The parsed verdict.
    pub parsed: ParsedResponse,
    /// Detector/model agreement.
    pub verdict: CrossVerdict,
}

/// Shared inspection state.
#[derive(Debug, Default)]
pub struct AnalyzerState {
    /// Every analyzed alert, in arrival order.
    pub findings: Vec<AnalyzerFinding>,
    /// Indices (into `findings`) queued for human supervision.
    pub human_review: Vec<usize>,
}

/// The expert-referencing xApp.
pub struct LlmAnalyzer {
    backend: Box<dyn LlmBackend>,
    template: PromptTemplate,
    topic: String,
    state: Arc<Mutex<AnalyzerState>>,
    turnaround: Histogram,
    recorder: FlightRecorder,
}

impl LlmAnalyzer {
    /// Creates the analyzer over a backend; returns the shared state handle.
    pub fn new(backend: Box<dyn LlmBackend>, topic: &str) -> (Self, Arc<Mutex<AnalyzerState>>) {
        let state = Arc::new(Mutex::new(AnalyzerState::default()));
        (
            LlmAnalyzer {
                backend,
                template: PromptTemplate::default(),
                topic: topic.to_string(),
                state: state.clone(),
                turnaround: Obs::new().histogram("xsec_analyzer_turnaround_us", &[]),
                recorder: FlightRecorder::new(),
            },
            state,
        )
    }

    /// Re-homes the turnaround histogram into `obs`'s registry and flight
    /// recording into `obs`'s recorder. Call before analysis starts —
    /// samples do not carry over.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.turnaround = obs.histogram("xsec_analyzer_turnaround_us", &[]);
        self.recorder = obs.recorder.clone();
    }

    /// The topic this analyzer listens on.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Analyzes one alert directly (also used by the Table 3 harness).
    pub fn analyze_alert(&mut self, alert: &AnomalyAlert) -> AnalyzerFinding {
        let start = Instant::now();
        let records: Vec<UeMobiFlow> =
            alert.records.iter().filter_map(|l| decode_ue_record(l).ok()).collect();
        let prompt = self.template.render(&records);
        let response = match self.backend.complete(&prompt) {
            Ok(text) => text,
            Err(e) => format!("Verdict: BENIGN\n(backend error: {e})"),
        };
        let parsed = ParsedResponse::parse(&response);
        let verdict = cross_compare(true, &parsed);
        self.turnaround.observe_duration_with_exemplar(start.elapsed(), alert.trace);
        self.recorder.record_stage(FlightEvent {
            trace: alert.trace,
            stage: TraceStage::Verdict,
            at_us: alert.at_time.as_micros(),
            a: u64::from(matches!(verdict, CrossVerdict::ConfirmedAnomalous)),
            b: u64::from(matches!(verdict, CrossVerdict::NeedsHumanReview { .. })),
        });
        let finding = AnalyzerFinding {
            at_record: alert.at_record,
            score: alert.score,
            response,
            parsed,
            verdict,
        };
        let mut state = self.state.lock();
        if matches!(finding.verdict, CrossVerdict::NeedsHumanReview { .. }) {
            let idx = state.findings.len();
            state.human_review.push(idx);
        }
        state.findings.push(finding.clone());
        finding
    }
}

impl XApp for LlmAnalyzer {
    fn name(&self) -> &str {
        "llm-analyzer"
    }

    fn on_records(
        &mut self,
        _ctx: &mut XAppContext<'_>,
        _records: &[UeMobiFlow],
        _window_end: Timestamp,
    ) {
        // The analyzer consumes alerts, not raw telemetry.
    }

    fn on_message(&mut self, ctx: &mut XAppContext<'_>, topic: &str, payload: &[u8]) {
        if topic != self.topic {
            return;
        }
        let Ok(alert) = serde_json::from_slice::<AnomalyAlert>(payload) else {
            return;
        };
        let finding = self.analyze_alert(&alert);
        // Downstream consumers (the mitigator) get the conclusion, not the
        // raw completion text: verdict, named attacks, and the evidence
        // records needed to scope a response.
        let notice = crate::mitigator::FindingNotice {
            trace: alert.trace,
            at_record: alert.at_record,
            at_time: alert.at_time,
            score: alert.score,
            threshold: alert.threshold,
            anomalous: finding.parsed.anomalous,
            confirmed: matches!(finding.verdict, CrossVerdict::ConfirmedAnomalous),
            needs_human: matches!(finding.verdict, CrossVerdict::NeedsHumanReview { .. }),
            attacks: finding.parsed.attacks.clone(),
            records: alert.records.clone(),
        };
        if let Ok(json) = serde_json::to_vec(&notice) {
            ctx.publish(crate::mitigator::FINDINGS_TOPIC, &json);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_llm::{ModelPersonality, SimulatedExpert};
    use xsec_proto::MessageKind;
    use xsec_types::{CellId, Rnti};

    fn flood_alert() -> AnomalyAlert {
        use MessageKind as K;
        let mut lines = Vec::new();
        let mut id = 0u64;
        for conn in 1..=6u32 {
            for k in [
                K::RrcSetupRequest,
                K::RrcSetup,
                K::RrcSetupComplete,
                K::NasRegistrationRequest,
                K::NasAuthenticationRequest,
            ] {
                let r = UeMobiFlow {
                    msg_id: id,
                    timestamp: Timestamp(id * 500),
                    cell: CellId(1),
                    rnti: Rnti(0x4600 + conn as u16),
                    du_ue_id: conn,
                    direction: k.direction(),
                    msg: k,
                    tmsi: None,
                    supi: None,
                    cipher_alg: None,
                    integrity_alg: None,
                    establishment_cause: None,
                    release_cause: None,
                };
                lines.push(xsec_mobiflow::encode_ue_record(&r));
                id += 1;
            }
        }
        AnomalyAlert {
            trace: 0,
            at_record: id,
            at_time: Timestamp(id * 500),
            score: 0.5,
            threshold: 0.1,
            records: lines,
        }
    }

    #[test]
    fn flood_alert_is_confirmed_by_gpt4o() {
        let (mut analyzer, state) = LlmAnalyzer::new(
            Box::new(SimulatedExpert::new(ModelPersonality::CHATGPT_4O)),
            "anomalies",
        );
        let obs = Obs::new();
        analyzer.attach_obs(&obs);
        let finding = analyzer.analyze_alert(&flood_alert());
        assert!(finding.parsed.anomalous);
        assert_eq!(finding.verdict, CrossVerdict::ConfirmedAnomalous);
        assert!(finding.response.contains("Signaling storm"));
        assert!(state.lock().human_review.is_empty());
        assert_eq!(
            obs.snapshot().histogram_count("xsec_analyzer_turnaround_us"),
            1,
            "turnaround must be sampled once per alert"
        );
    }

    #[test]
    fn blind_model_disagreement_goes_to_human_review() {
        // Llama3 is flood-blind: the detector flagged, the model says
        // benign → human supervision.
        let (mut analyzer, state) = LlmAnalyzer::new(
            Box::new(SimulatedExpert::new(ModelPersonality::LLAMA3)),
            "anomalies",
        );
        let finding = analyzer.analyze_alert(&flood_alert());
        assert!(!finding.parsed.anomalous);
        assert!(matches!(finding.verdict, CrossVerdict::NeedsHumanReview { .. }));
        assert_eq!(state.lock().human_review, vec![0]);
    }

    #[test]
    fn malformed_topic_payloads_are_ignored() {
        let (mut analyzer, state) = LlmAnalyzer::new(
            Box::new(SimulatedExpert::new(ModelPersonality::ORACLE)),
            "anomalies",
        );
        let sdl = xsec_ric::SharedDataLayer::new();
        let router = xsec_ric::Router::new();
        let mut control = Vec::new();
        let mut ctx = xsec_ric::XAppContext {
            sdl: &sdl,
            router: &router,
            control_out: &mut control,
            scope: None,
        };
        analyzer.on_message(&mut ctx, "anomalies", b"not json");
        analyzer.on_message(&mut ctx, "other-topic", b"{}");
        assert!(state.lock().findings.is_empty());
    }
}
