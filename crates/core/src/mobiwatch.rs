//! The MOBIWATCH xApp: unsupervised anomaly detection in the near-RT loop.
//!
//! Consumes MobiFlow telemetry from E2 indications, maintains the sliding
//! window over the live stream, scores each window with the deployed model,
//! and — when a window exceeds the threshold — publishes the window plus its
//! context to the `anomalies` topic for the LLM analyzer (§3.3: MobiWatch is
//! the pre-filter that keeps the expensive model out of the hot path).

use crate::smo::DeployedModels;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;
use parking_lot::Mutex;
use xsec_dl::{FeatureRing, Featurizer, Precision, Workspace, FEATURES_PER_RECORD};
use xsec_mobiflow::{encode_ue_record, UeMobiFlow};
use xsec_obs::{
    Counter, FlightEvent, FlightRecorder, FlightRing, Histogram, Obs, TraceStage,
};
use xsec_ric::{XApp, XAppContext};
use xsec_types::Timestamp;

/// Which deployed model scores the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Detector {
    /// Reconstruction-error scoring.
    Autoencoder,
    /// Next-step prediction-error scoring.
    Lstm,
}

impl Detector {
    /// The metric label value for this detector.
    pub fn label(self) -> &'static str {
        match self {
            Detector::Autoencoder => "autoencoder",
            Detector::Lstm => "lstm",
        }
    }
}

/// MobiWatch's per-stage instruments, labelled by the detector in force.
#[derive(Debug, Clone)]
pub(crate) struct WatchMetrics {
    pub(crate) featurize_latency: Histogram,
    pub(crate) inference_latency: Histogram,
    pub(crate) alerts: Counter,
}

impl WatchMetrics {
    pub(crate) fn register(obs: &Obs, detector: Detector) -> Self {
        let labels = &[("detector", detector.label())];
        WatchMetrics {
            featurize_latency: obs.histogram("xsec_mobiwatch_featurize_latency_us", labels),
            inference_latency: obs.histogram("xsec_mobiwatch_inference_latency_us", labels),
            alerts: obs.counter("xsec_mobiwatch_alerts_total", labels),
        }
    }
}

/// MobiWatch configuration.
#[derive(Debug, Clone)]
pub struct MobiWatchConfig {
    /// Model selection.
    pub detector: Detector,
    /// Records of context (before the window) attached to each alert.
    pub context_records: usize,
    /// Topic alerts are published on.
    pub publish_topic: String,
    /// Minimum records between two published alerts (LLM cost control).
    pub publish_cooldown: usize,
    /// Numeric scoring path ([`Precision::F32`] or the quantized
    /// [`Precision::Int8`] weights).
    pub precision: Precision,
}

impl Default for MobiWatchConfig {
    fn default() -> Self {
        MobiWatchConfig {
            detector: Detector::Autoencoder,
            context_records: 48,
            publish_topic: "anomalies".to_string(),
            publish_cooldown: 16,
            precision: Precision::F32,
        }
    }
}

/// One alert as published to the analyzer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnomalyAlert {
    /// Causal trace id of the record that completed the flagged window
    /// (0 = untraced; ids start at 1). Downstream xApps propagate it so the
    /// flight recorder can stitch detection → mitigation → ack into one
    /// incident trace.
    pub trace: u64,
    /// Stream index of the last record in the flagged window.
    pub at_record: u64,
    /// Virtual time of that record.
    pub at_time: Timestamp,
    /// The anomaly score.
    pub score: f32,
    /// The decision threshold in force.
    pub threshold: f32,
    /// Window + context records, oldest first, in the MobiFlow line coding.
    pub records: Vec<String>,
}

/// Shared inspection state (scores and flags survive the platform run).
#[derive(Debug, Default)]
pub struct MobiWatchState {
    /// `(record index, score, flagged)` per completed window.
    pub scores: Vec<(u64, f32, bool)>,
    /// Published alerts.
    pub alerts: Vec<AnomalyAlert>,
}

/// The anomaly-detection xApp.
pub struct MobiWatch {
    models: DeployedModels,
    config: MobiWatchConfig,
    featurizer: Featurizer,
    /// Flattened feature window — the scoring hot path reads contiguous
    /// slices out of this ring instead of rebuilding a window per record.
    ring: FeatureRing,
    /// Raw records for alert context only, eagerly capped.
    raw_history: VecDeque<UeMobiFlow>,
    feature_buf: Vec<f32>,
    workspace: Workspace,
    records_seen: u64,
    last_publish_at: Option<u64>,
    state: Arc<Mutex<MobiWatchState>>,
    metrics: WatchMetrics,
    recorder: FlightRecorder,
    flight: FlightRing,
}

impl MobiWatch {
    /// Creates the xApp with deployed models; returns the shared state
    /// handle for post-run inspection.
    pub fn new(
        models: DeployedModels,
        config: MobiWatchConfig,
    ) -> (Self, Arc<Mutex<MobiWatchState>>) {
        let state = Arc::new(Mutex::new(MobiWatchState::default()));
        let metrics = WatchMetrics::register(&Obs::new(), config.detector);
        // The LSTM consumes window + 1 rows (sequence plus predicted step).
        let ring = FeatureRing::new(FEATURES_PER_RECORD, models.feature_config.window + 1);
        let recorder = FlightRecorder::new();
        let flight = recorder.ring();
        (
            MobiWatch {
                models,
                config,
                featurizer: Featurizer::new(),
                ring,
                raw_history: VecDeque::new(),
                feature_buf: Vec::with_capacity(FEATURES_PER_RECORD),
                workspace: Workspace::new(),
                records_seen: 0,
                last_publish_at: None,
                state: state.clone(),
                metrics,
                recorder,
                flight,
            },
            state,
        )
    }

    /// Re-homes the xApp's instruments into `obs`'s registry and its flight
    /// recording into `obs`'s recorder. Call before feeding records
    /// (deployment time) — samples do not carry over.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.metrics = WatchMetrics::register(obs, self.config.detector);
        self.recorder = obs.recorder.clone();
        self.flight = self.recorder.ring();
    }

    /// The sliding-window length in force.
    pub fn window(&self) -> usize {
        self.models.feature_config.window
    }

    /// How often the scoring workspace had to grow a buffer. Stable across
    /// calls once warm — the steady-state zero-allocation guarantee.
    pub fn workspace_grow_events(&self) -> usize {
        self.workspace.grow_events()
    }

    /// Feeds one record; returns an alert when the window it completes is
    /// anomalous (alert emission respects the publish cooldown; scoring
    /// happens for every window regardless).
    pub fn process_record(&mut self, record: &UeMobiFlow) -> Option<AnomalyAlert> {
        let featurize_start = Instant::now();
        let mut features = std::mem::take(&mut self.feature_buf);
        self.featurizer.encode_record_into(record, &mut features);
        self.ring.push(&features);
        self.feature_buf = features;
        self.metrics.featurize_latency.observe_duration(featurize_start.elapsed());

        // Cap memory eagerly: only the records an alert can ever reference
        // (context + window, at least window + 1 so the LSTM span fits).
        let n = self.window();
        let keep = (self.config.context_records + n).max(n + 1);
        self.raw_history.push_back(record.clone());
        while self.raw_history.len() > keep {
            self.raw_history.pop_front();
        }
        self.records_seen += 1;

        let inference_start = Instant::now();
        let (score, threshold) = match self.config.detector {
            Detector::Autoencoder => {
                if self.ring.len() < n {
                    return None;
                }
                let score = self.models.autoencoder.score_window_with(
                    self.ring.last_n(n),
                    &mut self.workspace,
                    self.config.precision,
                );
                (score, self.models.ae_threshold)
            }
            Detector::Lstm => {
                if self.ring.len() < n + 1 {
                    return None;
                }
                let span = self.ring.last_n(n + 1);
                let (window_flat, next) = span.split_at(n * FEATURES_PER_RECORD);
                let score = self.models.lstm.score_window_with(
                    window_flat,
                    next,
                    &mut self.workspace,
                    self.config.precision,
                );
                (score, self.models.lstm_threshold)
            }
        };

        // Recover the causal trace the E2 agent rooted for this record and
        // log the inference span (skipped entirely when untraced).
        let trace = self.recorder.trace_for(record.msg_id);
        self.metrics
            .inference_latency
            .observe_duration_with_exemplar(inference_start.elapsed(), trace);
        self.flight.record(FlightEvent {
            trace,
            stage: TraceStage::Inference,
            at_us: record.timestamp.as_micros(),
            a: u64::from(score.to_bits()),
            b: u64::from(threshold.value.to_bits()),
        });

        let flagged = threshold.is_anomalous(score);
        let record_index = self.records_seen - 1;
        self.state.lock().scores.push((record_index, score, flagged));
        if !flagged {
            return None;
        }

        // Cooldown: one alert per burst, not one per window.
        if let Some(last) = self.last_publish_at {
            if record_index.saturating_sub(last) < self.config.publish_cooldown as u64 {
                return None;
            }
        }
        self.last_publish_at = Some(record_index);

        let context = self.config.context_records + n;
        let start = self.raw_history.len().saturating_sub(context);
        let alert = AnomalyAlert {
            trace,
            at_record: record_index,
            at_time: record.timestamp,
            score,
            threshold: threshold.value,
            records: self.raw_history.iter().skip(start).map(encode_ue_record).collect(),
        };
        // A detection fired: freeze this trace's causal slice and append the
        // alert span to it.
        self.recorder.mark_incident(trace);
        self.recorder.record_stage(FlightEvent {
            trace,
            stage: TraceStage::Alert,
            at_us: record.timestamp.as_micros(),
            a: u64::from(score.to_bits()),
            b: u64::from(threshold.value.to_bits()),
        });
        self.state.lock().alerts.push(alert.clone());
        self.metrics.alerts.inc();
        Some(alert)
    }
}

impl XApp for MobiWatch {
    fn name(&self) -> &str {
        "mobiwatch"
    }

    fn on_records(
        &mut self,
        ctx: &mut XAppContext<'_>,
        records: &[UeMobiFlow],
        _window_end: Timestamp,
    ) {
        for record in records {
            if let Some(alert) = self.process_record(record) {
                let payload = serde_json::to_vec(&alert).expect("alert serializes");
                ctx.publish(&self.config.publish_topic, &payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smo::{Smo, TrainingConfig};
    use xsec_attacks::DatasetBuilder;
    use xsec_mobiflow::extract_from_events;
    use xsec_types::AttackKind;

    fn quick_models(seed: u64) -> DeployedModels {
        let report = DatasetBuilder::small(seed, 15).benign();
        let stream = extract_from_events(&report.events);
        Smo::train(
            &TrainingConfig {
                autoencoder_epochs: 12,
                lstm_epochs: 3,
                autoencoder_hidden: vec![48, 12],
                lstm_hidden: 24,
                ..TrainingConfig::default()
            },
            &stream,
        )
        .unwrap()
    }

    #[test]
    fn benign_replay_is_mostly_quiet() {
        let models = quick_models(10);
        let (mut watch, state) = MobiWatch::new(models, MobiWatchConfig::default());
        // Fresh benign traffic from a different seed.
        let report = DatasetBuilder::small(11, 10).benign();
        let stream = extract_from_events(&report.events);
        for r in &stream.records {
            watch.process_record(r);
        }
        let state = state.lock();
        let flagged = state.scores.iter().filter(|(_, _, f)| *f).count();
        let total = state.scores.len();
        assert!(total > 50);
        assert!(
            (flagged as f64) < 0.12 * total as f64,
            "too many benign flags: {flagged}/{total}"
        );
    }

    #[test]
    fn bts_dos_raises_alerts() {
        let models = quick_models(12);
        let (mut watch, state) = MobiWatch::new(models, MobiWatchConfig::default());
        let obs = Obs::new();
        watch.attach_obs(&obs);
        let ds = DatasetBuilder::small(13, 10).attack(AttackKind::BtsDos);
        let stream = extract_from_events(&ds.report.events);
        let mut alerts = 0;
        for r in &stream.records {
            if watch.process_record(r).is_some() {
                alerts += 1;
            }
        }
        assert!(alerts >= 1, "the flood must raise at least one alert");
        let snap = obs.snapshot();
        assert!(
            snap.histogram_count("xsec_mobiwatch_inference_latency_us") > 0,
            "inference latency must be sampled"
        );
        assert!(snap.histogram_count("xsec_mobiwatch_featurize_latency_us") > 0);
        assert_eq!(snap.counter_total("xsec_mobiwatch_alerts_total"), alerts as u64);
        let state = state.lock();
        assert_eq!(state.alerts.len(), alerts);
        // Alerts carry decodable context records.
        for line in &state.alerts[0].records {
            xsec_mobiflow::decode_ue_record(line).unwrap();
        }
    }

    #[test]
    fn cooldown_limits_alert_rate() {
        let models = quick_models(14);
        let config =
            MobiWatchConfig { publish_cooldown: 1000, ..MobiWatchConfig::default() };
        let (mut watch, state) = MobiWatch::new(models, config);
        let ds = DatasetBuilder::small(15, 10).attack(AttackKind::BtsDos);
        let stream = extract_from_events(&ds.report.events);
        for r in &stream.records {
            watch.process_record(r);
        }
        // Scores accumulate freely; alerts are capped by the cooldown.
        let state = state.lock();
        let flagged = state.scores.iter().filter(|(_, _, f)| *f).count();
        assert!(flagged > state.alerts.len(), "cooldown should suppress repeats");
        assert!(state.alerts.len() <= 2);
    }

    #[test]
    fn history_stays_bounded_and_scoring_stops_allocating() {
        let models = quick_models(18);
        let keep = {
            let config = MobiWatchConfig::default();
            (config.context_records + models.feature_config.window)
                .max(models.feature_config.window + 1)
        };
        let (mut watch, state) = MobiWatch::new(models, MobiWatchConfig::default());
        let report = DatasetBuilder::small(19, 10).benign();
        let stream = extract_from_events(&report.events);
        assert!(stream.records.len() > keep + 10, "stream must outrun the cap");
        let mut grows_after_warmup = None;
        for (i, r) in stream.records.iter().enumerate() {
            watch.process_record(r);
            // Raw history must never exceed the alert-context cap — the old
            // implementation let it grow to 4× before draining.
            assert!(
                watch.raw_history.len() <= keep,
                "history grew to {} (cap {keep}) at record {i}",
                watch.raw_history.len()
            );
            if i == 2 * watch.window() {
                grows_after_warmup = Some(watch.workspace_grow_events());
            }
        }
        assert_eq!(
            Some(watch.workspace_grow_events()),
            grows_after_warmup,
            "steady-state scoring must not grow workspace buffers"
        );
        assert!(!state.lock().scores.is_empty());
    }

    #[test]
    fn lstm_detector_also_works() {
        let models = quick_models(16);
        let config = MobiWatchConfig { detector: Detector::Lstm, ..MobiWatchConfig::default() };
        let (mut watch, state) = MobiWatch::new(models, config);
        let ds = DatasetBuilder::small(17, 10).attack(AttackKind::BtsDos);
        let stream = extract_from_events(&ds.report.events);
        for r in &stream.records {
            watch.process_record(r);
        }
        assert!(!state.lock().scores.is_empty());
    }
}
