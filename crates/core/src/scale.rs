//! Multi-agent RIC deployments: one platform terminating N gNB agents.
//!
//! [`crate::pipeline::Pipeline`] wires a single agent to the platform —
//! the paper's testbed shape. This module scales that out: one
//! [`RicPlatform`] terminating one in-proc E2 connection *per cell*, the
//! shape the readiness-driven reactor exists for. The same xApp set
//! (MobiWatch, analyzer, mitigator) serves every agent, a declared
//! neighbour topology arms QuarantineCell broadcast fan-out, and the
//! per-agent ack-latency histograms land in the shared registry.
//!
//! ## Determinism across agent counts
//!
//! Detections and incident traces must not depend on how many agents the
//! traffic is split over — a 1-agent and a 256-agent run of the same
//! records are the same experiment. The harness guarantees this by
//! construction: records buffer per report bucket and flush in *cell-major*
//! order (stable per-cell arrival order), so the concatenation of per-agent
//! indications the platform delivers is the identical global sequence at
//! every agent count. Per-UE sharded scoring, trace allocation, and the
//! mitigator's virtual clock are all pure functions of that sequence.

use crate::analyzer::{AnalyzerState, LlmAnalyzer};
use crate::mitigator::{
    MitigationSummary, Mitigator, MitigatorState, A1_POLICY_STATUS_TOPIC, A1_POLICY_TOPIC,
    CONTROL_ACKS_TOPIC, FINDINGS_TOPIC,
};
use crate::mobiwatch::{MobiWatch, MobiWatchConfig, MobiWatchState};
use crate::pipeline::Pipeline;
use crate::smo::A1PolicyClient;
use parking_lot::Mutex;
use std::sync::Arc;
use xsec_control::{ControlAction, PolicyEngine};
use xsec_e2::{in_proc_pair, InProcTransport, RicAgent, RicAgentConfig};
use xsec_llm::SimulatedExpert;
use xsec_mobiflow::{TelemetryStream, UeMobiFlow};
use xsec_obs::{Obs, Snapshot};
use xsec_ran::stream::StreamingScenario;
use xsec_ric::{Grants, RicPlatform, RouterHandle, SubscriptionSpec, XApp, XAppIdentity};
use xsec_types::{CellId, Duration, GnbId, Timestamp};

/// One platform, N agents (agent `i` serves `CellId(i + 1)`, matching the
/// streaming engine's cell-index layout), and the standard xApp trio.
pub struct ScaleDeployment {
    obs: Obs,
    agents: Vec<RicAgent<InProcTransport>>,
    platform: RicPlatform,
    watch_state: Arc<Mutex<MobiWatchState>>,
    analyzer_state: Arc<Mutex<AnalyzerState>>,
    mitigator_state: Arc<Mutex<MitigatorState>>,
    period: Duration,
    /// Records buffered for the current report bucket, flushed cell-major.
    bucket: Vec<UeMobiFlow>,
    records: usize,
    /// The SMO's registered identity (secured deployments only).
    smo_scope: Option<RouterHandle>,
}

/// End-of-run summary for a scale deployment.
#[derive(Debug)]
pub struct ScaleOutcome {
    /// Telemetry records replayed.
    pub records: usize,
    /// Windows the detector flagged.
    pub flagged_windows: usize,
    /// Alerts published to the analyzer (post-cooldown).
    pub alerts: usize,
    /// Analyzer findings produced.
    pub findings: usize,
    /// Closed-loop mitigation outcome.
    pub mitigation: MitigationSummary,
    /// End-of-run metrics snapshot (includes the per-agent
    /// `xsec_ric_control_ack_latency_us{agent="gnb-<id>"}` histograms).
    pub metrics: Snapshot,
}

impl ScaleDeployment {
    /// Deploys `agents` connections with a ring topology of radius 1 (each
    /// cell's neighbours are the adjacent cells, wrapping). The deployment
    /// is secured: the trio runs under scoped identities on an enforcing,
    /// sealed router.
    pub fn new(pipeline: &Pipeline, agents: usize) -> Self {
        Self::with_ring_radius(pipeline, agents, 1)
    }

    /// Deploys `agents` connections; each cell's declared neighbours are
    /// the `radius` cells on either side of it in the ring (0 = no
    /// topology, broadcasts degrade to unicasts).
    pub fn with_ring_radius(pipeline: &Pipeline, agents: usize, radius: usize) -> Self {
        Self::deploy(pipeline, agents, radius, true, Vec::new())
    }

    /// The pre-authorization deployment shape: open router, no identities,
    /// nothing enforced. Kept so the authorization layer's zero-cost claim
    /// stays testable — a secured run of the same traffic must produce
    /// byte-identical detections and incident traces.
    pub fn open(pipeline: &Pipeline, agents: usize) -> Self {
        Self::deploy(pipeline, agents, 1, false, Vec::new())
    }

    /// A secured deployment hosting `extra` xApps alongside the standard
    /// trio, each under its own identity with the given grants. This is how
    /// the rogue-xApp scenario plants its attacker: registered like any
    /// tenant, holding only what it was granted, before the router seals.
    pub fn with_extra_xapps(
        pipeline: &Pipeline,
        agents: usize,
        extra: Vec<(Box<dyn XApp>, SubscriptionSpec, Grants)>,
    ) -> Self {
        Self::deploy(pipeline, agents, 1, true, extra)
    }

    fn deploy(
        pipeline: &Pipeline,
        agents: usize,
        radius: usize,
        secured: bool,
        extra: Vec<(Box<dyn XApp>, SubscriptionSpec, Grants)>,
    ) -> Self {
        assert!(agents > 0, "at least one agent");
        let config = pipeline.config();
        let obs = Obs::from_env();
        let mut platform = RicPlatform::with_obs(obs.clone());
        let mut ric_agents = Vec::with_capacity(agents);
        for i in 0..agents {
            let (agent_end, ric_end) = in_proc_pair();
            let mut agent = RicAgent::new(
                RicAgentConfig { gnb_id: GnbId(i as u32 + 1), cell: CellId(i as u32 + 1) },
                agent_end,
            )
            .expect("agent starts");
            agent.attach_obs(&obs);
            platform.add_agent(Box::new(ric_end));
            ric_agents.push(agent);
        }
        if agents > 1 && radius > 0 {
            for i in 0..agents {
                let mut neighbours = Vec::new();
                for d in 1..=radius.min(agents - 1) {
                    neighbours.push(CellId(((i + d) % agents) as u32 + 1));
                    neighbours.push(CellId(((i + agents - d) % agents) as u32 + 1));
                }
                neighbours.dedup();
                platform.set_neighbours(CellId(i as u32 + 1), neighbours);
            }
        }

        let watch_config = MobiWatchConfig {
            detector: config.detector,
            precision: config.precision,
            ..MobiWatchConfig::default()
        };
        let (watch, watch_state): (Box<dyn XApp>, _) = if config.scoring_shards > 0 {
            let (mut pool, state) = crate::shard::ShardedMobiWatch::new(
                pipeline.models().clone(),
                watch_config,
                config.scoring_shards,
            );
            pool.attach_obs(&obs);
            (Box::new(pool), state)
        } else {
            let (mut watch, state) = MobiWatch::new(pipeline.models().clone(), watch_config);
            watch.attach_obs(&obs);
            (Box::new(watch), state)
        };
        let (mut analyzer, analyzer_state) = LlmAnalyzer::new(
            Box::new(SimulatedExpert::new(config.personality)),
            "anomalies",
        );
        analyzer.attach_obs(&obs);
        let (mitigator, mitigator_state) =
            Mitigator::with_obs(PolicyEngine::default(), obs.clone());
        let watch_spec = SubscriptionSpec::telemetry(config.report_period_ms);
        let analyzer_spec = SubscriptionSpec::topics_only(&["anomalies"]);
        let mitigator_spec = SubscriptionSpec::telemetry(config.report_period_ms)
            .with_topic(FINDINGS_TOPIC)
            .with_topic(CONTROL_ACKS_TOPIC)
            .with_topic(A1_POLICY_TOPIC);
        let mut smo_scope = None;
        if secured {
            platform.harden();
            platform
                .register_xapp_scoped(watch, watch_spec, Grants::none().publish("anomalies"))
                .expect("register mobiwatch");
            platform
                .register_xapp_scoped(
                    Box::new(analyzer),
                    analyzer_spec,
                    Grants::none().subscribe("anomalies").publish(FINDINGS_TOPIC),
                )
                .expect("register analyzer");
            platform
                .register_xapp_scoped(
                    Box::new(mitigator),
                    mitigator_spec,
                    Grants::none()
                        .subscribe(FINDINGS_TOPIC)
                        .subscribe(CONTROL_ACKS_TOPIC)
                        .subscribe(A1_POLICY_TOPIC)
                        .publish(A1_POLICY_STATUS_TOPIC)
                        .control("release-ue")
                        .control("blacklist-rnti")
                        .control("force-reauth")
                        .control("quarantine-cell")
                        .control("rate-limit-cause"),
                )
                .expect("register mitigator");
            for (app, spec, grants) in extra {
                platform.register_xapp_scoped(app, spec, grants).expect("register extra xapp");
            }
            smo_scope = Some(
                platform
                    .register_identity(
                        XAppIdentity::named("smo"),
                        Grants::none()
                            .publish(A1_POLICY_TOPIC)
                            .subscribe(A1_POLICY_STATUS_TOPIC)
                            .a1_all(),
                    )
                    .expect("register smo"),
            );
            platform.seal();
        } else {
            assert!(extra.is_empty(), "extra xApps require the secured deployment");
            platform.register_xapp(watch, watch_spec);
            platform.register_xapp(Box::new(analyzer), analyzer_spec);
            platform.register_xapp(Box::new(mitigator), mitigator_spec);
        }

        let period = Duration::from_millis(u64::from(config.report_period_ms));
        let mut d = ScaleDeployment {
            obs,
            agents: ric_agents,
            platform,
            watch_state,
            analyzer_state,
            mitigator_state,
            period,
            bucket: Vec::new(),
            records: 0,
            smo_scope,
        };
        // E2 setup + subscription handshake, all agents in lockstep.
        for _ in 0..3 {
            d.platform.pump().expect("pump");
            for agent in &mut d.agents {
                agent.poll(Timestamp::ZERO).expect("agent poll");
            }
        }
        assert!(d.agents.iter().all(|a| a.is_setup()), "handshake incomplete");
        d
    }

    /// The shared observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The platform (for reactor counters: acks, drops, broadcast copies).
    pub fn platform(&self) -> &RicPlatform {
        &self.platform
    }

    /// Connected agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Report period in force.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Frames dropped RAN-side across every agent's egress queue.
    pub fn agent_egress_dropped(&self) -> u64 {
        self.agents.iter().map(|a| a.egress_dropped()).sum()
    }

    /// Shared mitigator state (executor outcomes, supervision queue).
    pub fn mitigator_state(&self) -> Arc<Mutex<MitigatorState>> {
        self.mitigator_state.clone()
    }

    /// An A1 client for this deployment: bound to the SMO's registered
    /// identity on secured deployments (operations go out as signed
    /// envelopes), unscoped on [`ScaleDeployment::open`] ones.
    pub fn a1_client(&self) -> A1PolicyClient {
        match &self.smo_scope {
            Some(handle) => A1PolicyClient::scoped(handle.clone()),
            None => A1PolicyClient::new(self.platform.router()),
        }
    }

    /// The agent index owning `cell` (modulo, so any cell routes somewhere).
    fn agent_for(&self, cell: CellId) -> usize {
        if self.agents.len() <= 1 {
            0
        } else {
            (cell.0.saturating_sub(1) as usize) % self.agents.len()
        }
    }

    /// Buffers one record for the current report bucket.
    pub fn push_record(&mut self, record: UeMobiFlow) {
        self.bucket.push(record);
    }

    /// Flushes the bucket to the owning agents in cell-major order — the
    /// invariant that makes delivered record order (and therefore every
    /// detection and trace) independent of the agent count.
    fn flush_bucket(&mut self) {
        self.bucket.sort_by_key(|r| r.cell.0);
        for record in std::mem::take(&mut self.bucket) {
            self.records += 1;
            let ai = self.agent_for(record.cell);
            self.agents[ai].push_record(record);
        }
    }

    /// Closes one report bucket at `now`: ships buffered records, drives
    /// every agent and the platform through indication → detection →
    /// control → ack, and returns the decoded Control Requests each agent
    /// received (the RAN-enforcement feed for closed loops).
    pub fn step(&mut self, now: Timestamp) -> Vec<ControlAction> {
        self.flush_bucket();
        for agent in &mut self.agents {
            agent.poll(now).expect("agent poll");
        }
        self.platform.pump().expect("pump");
        self.platform.pump().expect("pump");
        let mut actions = Vec::new();
        for agent in &mut self.agents {
            agent.poll(now).expect("agent poll");
            for payload in agent.take_control_requests() {
                if let Ok(action) = ControlAction::decode(&payload) {
                    actions.push(action);
                }
            }
        }
        // Relay the acks back onto the mitigator's topic.
        self.platform.pump().expect("pump");
        actions
    }

    /// Open-loop replay of a telemetry stream in report-period buckets
    /// (the multi-agent analogue of [`Pipeline::run_stream`]).
    pub fn run_stream(&mut self, stream: &TelemetryStream) {
        let mut bucket_end = Timestamp::ZERO + self.period;
        for record in &stream.records {
            while record.timestamp >= bucket_end {
                self.step(bucket_end);
                bucket_end += self.period;
            }
            self.push_record(record.clone());
        }
        for _ in 0..4 {
            self.step(bucket_end);
            bucket_end += self.period;
        }
    }

    /// Closed-loop drive of a streaming scenario: each bucket's events
    /// flow through the deployment, and every Control Request any agent
    /// receives is enforced on the engine before the next bucket runs.
    /// Returns the enforced actions in arrival order.
    pub fn run_streaming(
        &mut self,
        engine: &mut StreamingScenario,
        max_virtual: Duration,
    ) -> Vec<(Timestamp, ControlAction)> {
        engine.attach_recorder(&self.obs.recorder);
        let hard_stop = Timestamp::ZERO + max_virtual;
        let mut bucket_end = Timestamp::ZERO + self.period;
        let mut cursor = 0u64;
        let mut enforced = Vec::new();
        let mut grace = 0;
        while grace < 4 && bucket_end <= hard_stop {
            let events = engine.step(bucket_end);
            let chunk = xsec_mobiflow::extract_from_events_at(&events, cursor);
            cursor += chunk.records.len() as u64;
            for record in chunk.records {
                self.push_record(record);
            }
            for action in self.step(bucket_end) {
                engine.apply_control(bucket_end, &action);
                enforced.push((bucket_end, action));
            }
            if engine.done() {
                grace += 1;
            }
            bucket_end += self.period;
        }
        enforced
    }

    /// A canonical rendering of every completed detector window:
    /// `index:score-bits:flag` per line. Byte-identical across agent
    /// counts for the same traffic.
    pub fn detections_digest(&self) -> String {
        let state = self.watch_state.lock();
        let mut out = String::new();
        for (index, score, flagged) in &state.scores {
            out.push_str(&format!("{}:{:08x}:{}\n", index, score.to_bits(), u8::from(*flagged)));
        }
        out
    }

    /// The run's incident traces as canonical JSONL (stable across
    /// replays, shard counts, and agent counts).
    pub fn incidents_digest(&self) -> String {
        self.obs.recorder.incidents_jsonl()
    }

    /// Summarises the run.
    pub fn outcome(&self) -> ScaleOutcome {
        let watch = self.watch_state.lock();
        ScaleOutcome {
            records: self.records,
            flagged_windows: watch.scores.iter().filter(|(_, _, f)| *f).count(),
            alerts: watch.alerts.len(),
            findings: self.analyzer_state.lock().findings.len(),
            mitigation: self.mitigator_state.lock().summary(),
            metrics: self.obs.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use xsec_mobiflow::extract_from_events;
    use xsec_ran::stream::StreamConfig;

    fn benign_stream(seed: u64, cells: usize, ues: u64) -> TelemetryStream {
        let mut engine = StreamingScenario::new(StreamConfig {
            seed,
            cells,
            total_ues: ues,
            mean_inter_arrival: Duration::from_millis(6),
            mobility_fraction: 0.0,
            max_live: 64,
            ..StreamConfig::default()
        });
        let mut events = Vec::new();
        let mut deadline = Timestamp::ZERO + Duration::from_millis(100);
        while !engine.done() {
            events.extend(engine.step(deadline));
            deadline += Duration::from_millis(100);
        }
        extract_from_events(&events)
    }

    #[test]
    fn detections_and_traces_are_identical_across_agent_counts() {
        // The satellite guarantee: splitting the same traffic over 1 vs N
        // agents changes nothing observable — detector windows and incident
        // traces come out byte-identical.
        let mut config = PipelineConfig::small(31, 12);
        config.scoring_shards = 2;
        let training = benign_stream(91, 4, 40);
        let pipeline = Pipeline::train_on(&config, &training);
        let eval = {
            let mut engine = StreamingScenario::new(StreamConfig {
                seed: 92,
                cells: 4,
                total_ues: 36,
                mean_inter_arrival: Duration::from_millis(6),
                mobility_fraction: 0.0,
                max_live: 64,
                ..StreamConfig::default()
            });
            xsec_attacks::MigrationSchedule::tour(
                &[2],
                Timestamp::ZERO + Duration::from_millis(150),
                Duration::from_millis(600),
                xsec_attacks::MigrateConfig {
                    connections_per_visit: 30,
                    ..xsec_attacks::MigrateConfig::default()
                },
            )
            .install(&mut engine);
            let mut events = Vec::new();
            let mut deadline = Timestamp::ZERO + Duration::from_millis(100);
            while !engine.done() {
                events.extend(engine.step(deadline));
                deadline += Duration::from_millis(100);
            }
            extract_from_events(&events)
        };

        let mut digests = Vec::new();
        for agents in [1usize, 4] {
            let mut d = ScaleDeployment::new(&pipeline, agents);
            d.run_stream(&eval);
            let outcome = d.outcome();
            assert!(outcome.flagged_windows > 0, "{agents}-agent run flagged nothing");
            digests.push((d.detections_digest(), d.incidents_digest()));
        }
        assert!(!digests[0].0.is_empty(), "no detector windows recorded");
        assert!(!digests[0].1.is_empty(), "no incident traces recorded");
        assert_eq!(digests[0].0, digests[1].0, "detections diverge across agent counts");
        assert_eq!(digests[0].1, digests[1].1, "incident traces diverge across agent counts");
    }

    #[test]
    fn every_scale_agent_is_subscribed_and_routable() {
        let config = PipelineConfig::small(32, 10);
        let pipeline = Pipeline::train(&config);
        let d = ScaleDeployment::new(&pipeline, 6);
        assert_eq!(d.agent_count(), 6);
        assert_eq!(d.platform().agent_count(), 6);
        // MobiWatch + mitigator both subscribe on every agent.
        // (Subscription counts live agent-side.)
        assert_eq!(d.agents.iter().map(|a| a.subscription_count()).sum::<usize>(), 12);
        assert_eq!(d.platform().egress_dropped(), 0);
        assert_eq!(d.agent_egress_dropped(), 0);
    }
}
