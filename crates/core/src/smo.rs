//! The SMO / non-RT-RIC side: offline model training and deployment.
//!
//! Per the paper (§3.2 "Deployment"), model training happens outside the
//! near-RT loop — in the Service Management and Orchestration framework —
//! and trained models are deployed into the MobiWatch xApp. [`Smo::train`]
//! is that offline job: benign telemetry in, serialized [`DeployedModels`]
//! out.
//!
//! The SMO also owns the A1 side of runtime policy governance:
//! [`A1PolicyClient`] speaks the A1-flavoured message API to the live
//! mitigation xApp over the platform router, so playbooks can be installed,
//! replaced, disabled, or withdrawn mid-run without redeploying anything.

use crate::mitigator::{A1_POLICY_STATUS_TOPIC, A1_POLICY_TOPIC};
use crossbeam_channel::Receiver;
use serde::{Deserialize, Serialize};
use xsec_control::{A1Request, A1Response, PolicyRule};
use xsec_ric::Router;
use xsec_dl::{
    Autoencoder, AutoencoderConfig, FeatureConfig, Featurizer, Lstm, LstmConfig, Threshold,
    Workspace, FEATURES_PER_RECORD,
};
use xsec_mobiflow::TelemetryStream;
use xsec_types::{Result, XsecError};

/// Training hyperparameters for both model classes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Sliding-window length `N`.
    pub window: usize,
    /// Threshold percentile over training errors (paper: 99.0).
    pub threshold_pct: f64,
    /// Autoencoder hyperparameters (input width is derived).
    pub autoencoder_hidden: Vec<usize>,
    /// Autoencoder epochs.
    pub autoencoder_epochs: usize,
    /// LSTM hidden width.
    pub lstm_hidden: usize,
    /// LSTM epochs.
    pub lstm_epochs: usize,
    /// Seed for deterministic training.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            window: 4,
            threshold_pct: 99.0,
            autoencoder_hidden: vec![64, 16],
            autoencoder_epochs: 100,
            lstm_hidden: 48,
            lstm_epochs: 8,
            seed: 42,
        }
    }
}

/// The deployment artifact the SMO hands to MobiWatch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeployedModels {
    /// Featurization parameters (must match at inference).
    pub feature_config: FeatureConfig,
    /// The trained autoencoder.
    pub autoencoder: Autoencoder,
    /// Its fitted decision threshold.
    pub ae_threshold: Threshold,
    /// The trained LSTM.
    pub lstm: Lstm,
    /// Its fitted decision threshold.
    pub lstm_threshold: Threshold,
}

impl DeployedModels {
    /// Serializes the artifact (what the SMO ships to the RIC).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("models serialize")
    }

    /// Loads a shipped artifact.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| XsecError::Model(e.to_string()))
    }
}

/// The SMO's handle on the near-RT RIC's live policy store: an A1-flavoured
/// message client over the platform router.
///
/// Requests are JSON [`A1Request`]s published on the `a1-policies` topic;
/// the mitigation xApp consumes them on its next pump, applies them to its
/// [`xsec_control::PolicyStore`], and answers with an [`A1Response`] on the
/// `a1-policy-status` topic, which [`A1PolicyClient::drain_responses`]
/// collects.
pub struct A1PolicyClient {
    router: Router,
    responses: Receiver<Vec<u8>>,
}

impl A1PolicyClient {
    /// A client over the platform's router
    /// ([`xsec_ric::RicPlatform::router`]).
    pub fn new(router: Router) -> Self {
        let responses = router.subscribe(A1_POLICY_STATUS_TOPIC);
        A1PolicyClient { router, responses }
    }

    /// Publishes one A1 operation; returns how many mailboxes accepted it
    /// (0 means no mitigator is subscribed yet).
    pub fn send(&self, request: &A1Request) -> usize {
        let json = serde_json::to_vec(request).expect("A1 requests serialize");
        self.router.publish(A1_POLICY_TOPIC, &json)
    }

    /// Installs a rule (supersedes an existing rule with the same id).
    pub fn create(&self, rule: PolicyRule) -> usize {
        self.send(&A1Request::CreatePolicy { rule })
    }

    /// Replaces an installed rule in place.
    pub fn update(&self, rule: PolicyRule) -> usize {
        self.send(&A1Request::UpdatePolicy { rule })
    }

    /// Removes an installed rule.
    pub fn delete(&self, id: &str) -> usize {
        self.send(&A1Request::DeletePolicy { id: id.to_string() })
    }

    /// Toggles a rule without removing it.
    pub fn set_enabled(&self, id: &str, enabled: bool) -> usize {
        self.send(&A1Request::SetEnabled { id: id.to_string(), enabled })
    }

    /// Asks for the live rule inventory.
    pub fn query_status(&self) -> usize {
        self.send(&A1Request::QueryStatus)
    }

    /// Drains every A1 answer that has arrived since the last call.
    pub fn drain_responses(&self) -> Vec<A1Response> {
        let mut out = Vec::new();
        while let Ok(payload) = self.responses.try_recv() {
            if let Ok(response) = serde_json::from_slice::<A1Response>(&payload) {
                out.push(response);
            }
        }
        out
    }
}

/// The offline training service.
#[derive(Debug, Default)]
pub struct Smo;

impl Smo {
    /// Trains both detectors on a benign telemetry stream.
    ///
    /// # Errors
    /// Fails if the stream contains attack labels (training must be
    /// benign-only, §3.2) or is too short to window.
    pub fn train(config: &TrainingConfig, benign: &TelemetryStream) -> Result<DeployedModels> {
        if benign.attack_count() > 0 {
            return Err(XsecError::Model(format!(
                "training stream contains {} attack-labeled records; unsupervised training \
                 requires benign-only data",
                benign.attack_count()
            )));
        }
        let feature_config = FeatureConfig { window: config.window };
        let dataset = Featurizer::encode_stream(&feature_config, benign);
        if dataset.num_windows() < 10 {
            return Err(XsecError::Model(format!(
                "only {} windows; need at least 10 to train",
                dataset.num_windows()
            )));
        }

        // Hold out a benign validation slice for threshold fitting: scores
        // on *unseen* benign data reflect deployment conditions better than
        // training-set errors, which underestimate the benign tail on small
        // datasets (see DESIGN.md ablations).
        let mut ws = Workspace::new();
        let flat = dataset.flat_windows();
        let n = flat.rows();
        let val_start = n - n / 5 - 1;
        let train = flat.slice_rows(0, val_start);
        let ae_config = AutoencoderConfig {
            input_dim: config.window * FEATURES_PER_RECORD,
            hidden: config.autoencoder_hidden.clone(),
            epochs: config.autoencoder_epochs,
            seed: config.seed,
            ..AutoencoderConfig::for_input(config.window * FEATURES_PER_RECORD)
        };
        let autoencoder = Autoencoder::train(ae_config, &train);
        let val_scores = autoencoder.score_rows(&flat.slice_rows(val_start, n), &mut ws);
        let ae_threshold = Threshold::fit(&val_scores, config.threshold_pct);

        let (windows, nexts) = dataset.lstm_pairs();
        let lstm_val_start = windows.len() - windows.len() / 5 - 1;
        let lstm_config = LstmConfig {
            input_dim: FEATURES_PER_RECORD,
            hidden: config.lstm_hidden,
            epochs: config.lstm_epochs,
            seed: config.seed,
            ..LstmConfig::for_input(FEATURES_PER_RECORD)
        };
        let lstm = Lstm::train(
            lstm_config,
            &windows[..lstm_val_start],
            &nexts[..lstm_val_start],
        );
        let lstm_val =
            lstm.score_batch(&windows[lstm_val_start..], &nexts[lstm_val_start..], &mut ws);
        let lstm_threshold = Threshold::fit(&lstm_val, config.threshold_pct);

        Ok(DeployedModels { feature_config, autoencoder, ae_threshold, lstm, lstm_threshold })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_attacks::DatasetBuilder;
    use xsec_mobiflow::extract_from_events;

    fn quick_config() -> TrainingConfig {
        TrainingConfig {
            autoencoder_epochs: 5,
            lstm_epochs: 2,
            autoencoder_hidden: vec![32, 8],
            lstm_hidden: 16,
            ..TrainingConfig::default()
        }
    }

    #[test]
    fn trains_on_benign_data() {
        let report = DatasetBuilder::small(1, 10).benign();
        let stream = extract_from_events(&report.events);
        let models = Smo::train(&quick_config(), &stream).unwrap();
        assert!(models.ae_threshold.value > 0.0);
        assert!(models.lstm_threshold.value > 0.0);
    }

    #[test]
    fn refuses_attack_contaminated_training_data() {
        let ds = DatasetBuilder::small(2, 10).attack(xsec_types::AttackKind::BtsDos);
        let stream = extract_from_events(&ds.report.events);
        let err = Smo::train(&quick_config(), &stream).unwrap_err();
        assert_eq!(err.category(), "model");
    }

    #[test]
    fn refuses_tiny_streams() {
        let stream = TelemetryStream::default();
        assert!(Smo::train(&quick_config(), &stream).is_err());
    }

    #[test]
    fn deployment_artifact_round_trips() {
        let report = DatasetBuilder::small(3, 10).benign();
        let stream = extract_from_events(&report.events);
        let models = Smo::train(&quick_config(), &stream).unwrap();
        let back = DeployedModels::from_json(&models.to_json()).unwrap();
        assert_eq!(back.ae_threshold, models.ae_threshold);
        assert_eq!(back.feature_config.window, models.feature_config.window);
    }
}
