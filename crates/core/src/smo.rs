//! The SMO / non-RT-RIC side: offline model training and deployment.
//!
//! Per the paper (§3.2 "Deployment"), model training happens outside the
//! near-RT loop — in the Service Management and Orchestration framework —
//! and trained models are deployed into the MobiWatch xApp. [`Smo::train`]
//! is that offline job: benign telemetry in, serialized [`DeployedModels`]
//! out.
//!
//! The SMO also owns the A1 side of runtime policy governance:
//! [`A1PolicyClient`] speaks the A1-flavoured message API to the live
//! mitigation xApp over the platform router, so playbooks can be installed,
//! replaced, disabled, or withdrawn mid-run without redeploying anything.

use crate::mitigator::{A1SignedRequest, A1_POLICY_STATUS_TOPIC, A1_POLICY_TOPIC};
use crossbeam_channel::Receiver;
use serde::{Deserialize, Serialize};
use std::fmt;
use xsec_control::{A1Request, A1Response, PolicyRule};
use xsec_ric::{PublishError, Router, RouterHandle};
use xsec_dl::{
    Autoencoder, AutoencoderConfig, FeatureConfig, Featurizer, Lstm, LstmConfig, Threshold,
    Workspace, FEATURES_PER_RECORD,
};
use xsec_mobiflow::TelemetryStream;
use xsec_types::{Result, XsecError};

/// Training hyperparameters for both model classes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Sliding-window length `N`.
    pub window: usize,
    /// Threshold percentile over training errors (paper: 99.0).
    pub threshold_pct: f64,
    /// Autoencoder hyperparameters (input width is derived).
    pub autoencoder_hidden: Vec<usize>,
    /// Autoencoder epochs.
    pub autoencoder_epochs: usize,
    /// LSTM hidden width.
    pub lstm_hidden: usize,
    /// LSTM epochs.
    pub lstm_epochs: usize,
    /// Seed for deterministic training.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            window: 4,
            threshold_pct: 99.0,
            autoencoder_hidden: vec![64, 16],
            autoencoder_epochs: 100,
            lstm_hidden: 48,
            lstm_epochs: 8,
            seed: 42,
        }
    }
}

/// The deployment artifact the SMO hands to MobiWatch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeployedModels {
    /// Featurization parameters (must match at inference).
    pub feature_config: FeatureConfig,
    /// The trained autoencoder.
    pub autoencoder: Autoencoder,
    /// Its fitted decision threshold.
    pub ae_threshold: Threshold,
    /// The trained LSTM.
    pub lstm: Lstm,
    /// Its fitted decision threshold.
    pub lstm_threshold: Threshold,
}

impl DeployedModels {
    /// Serializes the artifact (what the SMO ships to the RIC).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("models serialize")
    }

    /// Loads a shipped artifact.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| XsecError::Model(e.to_string()))
    }
}

/// Why an A1 operation never left the SMO side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum A1ClientError {
    /// The router refused the publish for lack of a grant.
    Denied {
        /// Identity the denial was counted against.
        xapp: String,
        /// The capability label that was missing.
        capability: String,
    },
    /// No live subscriber on the topic — the operation would have vanished
    /// silently (typically: the mitigator is not deployed / already gone).
    Unrouted {
        /// The subscriber-less topic.
        topic: String,
    },
}

impl From<PublishError> for A1ClientError {
    fn from(e: PublishError) -> Self {
        match e {
            PublishError::Denied { xapp, capability } => A1ClientError::Denied { xapp, capability },
            PublishError::Unrouted { topic } => A1ClientError::Unrouted { topic },
        }
    }
}

impl fmt::Display for A1ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            A1ClientError::Denied { xapp, capability } => {
                write!(f, "A1 publish denied for {xapp:?} (missing {capability})")
            }
            A1ClientError::Unrouted { topic } => {
                write!(f, "no live subscriber on {topic:?}; A1 operation not delivered")
            }
        }
    }
}

impl std::error::Error for A1ClientError {}

/// The SMO's handle on the near-RT RIC's live policy store: an A1-flavoured
/// message client over the platform router.
///
/// Requests are published on the `a1-policies` topic; the mitigation xApp
/// consumes them on its next pump, applies them to its
/// [`xsec_control::PolicyStore`], and answers with an [`A1Response`] on the
/// `a1-policy-status` topic, which [`A1PolicyClient::drain_responses`]
/// collects. A scoped client ([`A1PolicyClient::scoped`]) wraps each
/// request in an [`A1SignedRequest`] envelope carrying its identity and
/// token — required once the platform router enforces; the plain
/// constructor sends bare [`A1Request`] JSON for open/compat routers.
///
/// Every send returns `Err` instead of silently dropping when the operation
/// cannot reach a mitigator: [`A1ClientError::Unrouted`] when the topic has
/// no live subscriber, [`A1ClientError::Denied`] when the sender lacks the
/// publish grant.
pub struct A1PolicyClient {
    router: Router,
    scope: Option<RouterHandle>,
    responses: Receiver<Vec<u8>>,
}

impl A1PolicyClient {
    /// An unscoped client over the platform's router
    /// ([`xsec_ric::RicPlatform::router`]) — test/compat form; its
    /// publishes are refused once the router enforces.
    pub fn new(router: Router) -> Self {
        let responses = router.subscribe(A1_POLICY_STATUS_TOPIC);
        A1PolicyClient { router, scope: None, responses }
    }

    /// A client bound to a registered identity; requests go out in signed
    /// envelopes the mitigator can verify. The handle needs
    /// `publish:a1-policies` and `subscribe:a1-policy-status` grants plus
    /// A1 op rights for the operations it will issue.
    pub fn scoped(handle: RouterHandle) -> Self {
        let responses = handle.subscribe(A1_POLICY_STATUS_TOPIC);
        A1PolicyClient { router: handle.router().clone(), scope: Some(handle), responses }
    }

    /// Publishes one A1 operation; returns how many mailboxes accepted it.
    ///
    /// # Errors
    /// [`A1ClientError::Unrouted`] when no mitigator is subscribed (the op
    /// would otherwise vanish), [`A1ClientError::Denied`] when the publish
    /// grant is missing.
    pub fn send(&self, request: &A1Request) -> std::result::Result<usize, A1ClientError> {
        let delivered = match &self.scope {
            Some(handle) => {
                let signed = A1SignedRequest {
                    xapp: handle.name().to_string(),
                    token: handle.token(),
                    request: request.clone(),
                };
                let json = serde_json::to_vec(&signed).expect("A1 requests serialize");
                handle.try_publish(A1_POLICY_TOPIC, &json)?
            }
            None => {
                let json = serde_json::to_vec(request).expect("A1 requests serialize");
                self.router.try_publish(A1_POLICY_TOPIC, &json)?
            }
        };
        Ok(delivered)
    }

    /// Installs a rule (supersedes an existing rule with the same id).
    ///
    /// # Errors
    /// See [`A1PolicyClient::send`].
    pub fn create(&self, rule: PolicyRule) -> std::result::Result<usize, A1ClientError> {
        self.send(&A1Request::CreatePolicy { rule })
    }

    /// Replaces an installed rule in place.
    ///
    /// # Errors
    /// See [`A1PolicyClient::send`].
    pub fn update(&self, rule: PolicyRule) -> std::result::Result<usize, A1ClientError> {
        self.send(&A1Request::UpdatePolicy { rule })
    }

    /// Removes an installed rule.
    ///
    /// # Errors
    /// See [`A1PolicyClient::send`].
    pub fn delete(&self, id: &str) -> std::result::Result<usize, A1ClientError> {
        self.send(&A1Request::DeletePolicy { id: id.to_string() })
    }

    /// Toggles a rule without removing it.
    ///
    /// # Errors
    /// See [`A1PolicyClient::send`].
    pub fn set_enabled(
        &self,
        id: &str,
        enabled: bool,
    ) -> std::result::Result<usize, A1ClientError> {
        self.send(&A1Request::SetEnabled { id: id.to_string(), enabled })
    }

    /// Asks for the live rule inventory.
    ///
    /// # Errors
    /// See [`A1PolicyClient::send`].
    pub fn query_status(&self) -> std::result::Result<usize, A1ClientError> {
        self.send(&A1Request::QueryStatus)
    }

    /// Drains every A1 answer that has arrived since the last call.
    pub fn drain_responses(&self) -> Vec<A1Response> {
        let mut out = Vec::new();
        while let Ok(payload) = self.responses.try_recv() {
            if let Ok(response) = serde_json::from_slice::<A1Response>(&payload) {
                out.push(response);
            }
        }
        out
    }
}

/// The offline training service.
#[derive(Debug, Default)]
pub struct Smo;

impl Smo {
    /// Trains both detectors on a benign telemetry stream.
    ///
    /// # Errors
    /// Fails if the stream contains attack labels (training must be
    /// benign-only, §3.2) or is too short to window.
    pub fn train(config: &TrainingConfig, benign: &TelemetryStream) -> Result<DeployedModels> {
        if benign.attack_count() > 0 {
            return Err(XsecError::Model(format!(
                "training stream contains {} attack-labeled records; unsupervised training \
                 requires benign-only data",
                benign.attack_count()
            )));
        }
        let feature_config = FeatureConfig { window: config.window };
        let dataset = Featurizer::encode_stream(&feature_config, benign);
        if dataset.num_windows() < 10 {
            return Err(XsecError::Model(format!(
                "only {} windows; need at least 10 to train",
                dataset.num_windows()
            )));
        }

        // Hold out a benign validation slice for threshold fitting: scores
        // on *unseen* benign data reflect deployment conditions better than
        // training-set errors, which underestimate the benign tail on small
        // datasets (see DESIGN.md ablations).
        let mut ws = Workspace::new();
        let flat = dataset.flat_windows();
        let n = flat.rows();
        let val_start = n - n / 5 - 1;
        let train = flat.slice_rows(0, val_start);
        let ae_config = AutoencoderConfig {
            input_dim: config.window * FEATURES_PER_RECORD,
            hidden: config.autoencoder_hidden.clone(),
            epochs: config.autoencoder_epochs,
            seed: config.seed,
            ..AutoencoderConfig::for_input(config.window * FEATURES_PER_RECORD)
        };
        let autoencoder = Autoencoder::train(ae_config, &train);
        let val_scores = autoencoder.score_rows(&flat.slice_rows(val_start, n), &mut ws);
        let ae_threshold = Threshold::fit(&val_scores, config.threshold_pct);

        let (windows, nexts) = dataset.lstm_pairs();
        let lstm_val_start = windows.len() - windows.len() / 5 - 1;
        let lstm_config = LstmConfig {
            input_dim: FEATURES_PER_RECORD,
            hidden: config.lstm_hidden,
            epochs: config.lstm_epochs,
            seed: config.seed,
            ..LstmConfig::for_input(FEATURES_PER_RECORD)
        };
        let lstm = Lstm::train(
            lstm_config,
            &windows[..lstm_val_start],
            &nexts[..lstm_val_start],
        );
        let lstm_val =
            lstm.score_batch(&windows[lstm_val_start..], &nexts[lstm_val_start..], &mut ws);
        let lstm_threshold = Threshold::fit(&lstm_val, config.threshold_pct);

        Ok(DeployedModels { feature_config, autoencoder, ae_threshold, lstm, lstm_threshold })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_attacks::DatasetBuilder;
    use xsec_mobiflow::extract_from_events;

    fn quick_config() -> TrainingConfig {
        TrainingConfig {
            autoencoder_epochs: 5,
            lstm_epochs: 2,
            autoencoder_hidden: vec![32, 8],
            lstm_hidden: 16,
            ..TrainingConfig::default()
        }
    }

    #[test]
    fn a1_sends_surface_unrouted_topics_as_errors() {
        let router = xsec_ric::Router::new();
        let client = A1PolicyClient::new(router.clone());
        // No mitigator subscribed yet: the op must not vanish silently.
        let err = client.query_status().unwrap_err();
        assert_eq!(err, A1ClientError::Unrouted { topic: A1_POLICY_TOPIC.to_string() });
        assert_eq!(router.unrouted(A1_POLICY_TOPIC), 1);
        // Once a mitigator mailbox is live the same op is delivered.
        let _rx = router.subscribe(A1_POLICY_TOPIC);
        assert_eq!(client.query_status().unwrap(), 1);
    }

    #[test]
    fn trains_on_benign_data() {
        let report = DatasetBuilder::small(1, 10).benign();
        let stream = extract_from_events(&report.events);
        let models = Smo::train(&quick_config(), &stream).unwrap();
        assert!(models.ae_threshold.value > 0.0);
        assert!(models.lstm_threshold.value > 0.0);
    }

    #[test]
    fn refuses_attack_contaminated_training_data() {
        let ds = DatasetBuilder::small(2, 10).attack(xsec_types::AttackKind::BtsDos);
        let stream = extract_from_events(&ds.report.events);
        let err = Smo::train(&quick_config(), &stream).unwrap_err();
        assert_eq!(err.category(), "model");
    }

    #[test]
    fn refuses_tiny_streams() {
        let stream = TelemetryStream::default();
        assert!(Smo::train(&quick_config(), &stream).is_err());
    }

    #[test]
    fn deployment_artifact_round_trips() {
        let report = DatasetBuilder::small(3, 10).benign();
        let stream = extract_from_events(&report.events);
        let models = Smo::train(&quick_config(), &stream).unwrap();
        let back = DeployedModels::from_json(&models.to_json()).unwrap();
        assert_eq!(back.ae_threshold, models.ae_threshold);
        assert_eq!(back.feature_config.window, models.feature_config.window);
    }
}
