//! The mitigation xApp: the actuation end of the closed loop.
//!
//! Listens on the `findings` topic for the analyzer's conclusions, scopes
//! each finding to concrete network entities (connections, C-RNTIs, an
//! establishment cause), asks the [`PolicyEngine`] what to do, and drives
//! the [`ActionExecutor`] that ships E2 Control Requests back toward the
//! RAN. Ack outcomes return on the platform's `control-acks` topic, closing
//! the delivery loop; telemetry windows provide the virtual clock that
//! paces retries and TTL expiry.
//!
//! The playbooks themselves are live: A1 policy operations arriving on the
//! `a1-policies` topic are applied to the engine's [`xsec_control::PolicyStore`]
//! mid-run (install / update / delete / enable-disable), answered on
//! `a1-policy-status`, and tallied into `xsec_a1_policy_ops_total{op,outcome}`.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use xsec_control::{
    attack_from_title, A1OpTally, A1Request, ActionExecutor, ActionState, PolicyDecision,
    PolicyEngine, SupervisionTicket, ThreatAssessment,
};
use xsec_mobiflow::{decode_ue_record, UeMobiFlow};
use xsec_obs::{FlightEvent, Obs, TraceStage};
use xsec_proto::MessageKind;
use xsec_ric::{LatencyClass, XApp, XAppContext};
use xsec_types::{
    AttackKind, CellId, CipherAlg, Duration, EstablishmentCause, IntegrityAlg, Rnti, Timestamp,
};

/// Topic the analyzer publishes [`FindingNotice`]s on.
pub const FINDINGS_TOPIC: &str = "findings";

/// Topic the platform relays Control Ack outcomes on.
pub const CONTROL_ACKS_TOPIC: &str = "control-acks";

/// Topic the SMO publishes A1 policy operations ([`A1Request`] JSON) on.
pub const A1_POLICY_TOPIC: &str = "a1-policies";

/// Topic the mitigator answers A1 operations on
/// ([`xsec_control::A1Response`] JSON).
pub const A1_POLICY_STATUS_TOPIC: &str = "a1-policy-status";

/// The analyzer's conclusion about one alert, serialized for the router.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FindingNotice {
    /// Causal trace id of the detection (0 = untraced), carried from the
    /// alert so the policy decision and Control Request join the incident
    /// trace.
    pub trace: u64,
    /// Stream index of the flagged window's last record.
    pub at_record: u64,
    /// Virtual time of that record (the detection timestamp).
    pub at_time: Timestamp,
    /// Detector anomaly score.
    pub score: f32,
    /// Decision threshold in force when the alert fired.
    pub threshold: f32,
    /// Whether the model agreed the window is anomalous.
    pub anomalous: bool,
    /// Whether detector and model agree (cross-verdict confirmed).
    pub confirmed: bool,
    /// Whether the cross-verdict demands human review.
    pub needs_human: bool,
    /// Attack titles the model named.
    pub attacks: Vec<String>,
    /// Window + context records in the MobiFlow line coding.
    pub records: Vec<String>,
}

/// An A1 policy operation wrapped in the sender's router identity — the
/// wire form the SMO's scoped [`crate::smo::A1PolicyClient`] publishes on
/// [`A1_POLICY_TOPIC`]. The mitigator checks the `(xapp, token)` pair and
/// the per-op A1 grant against the router's registry before the request is
/// allowed anywhere near the [`xsec_control::PolicyStore`]. Bare
/// [`A1Request`] JSON remains accepted for compatibility, but only while
/// the router is not enforcing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A1SignedRequest {
    /// Registered identity name of the sender.
    pub xapp: String,
    /// The sender's registration token (proof it holds the handle).
    pub token: u64,
    /// The operation being requested.
    pub request: A1Request,
}

/// Aggregate mitigation outcome of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct MitigationSummary {
    /// Control actions the policy engine issued.
    pub issued: usize,
    /// Actions acknowledged as enforced.
    pub acked: usize,
    /// Actions the agent refused.
    pub failed: usize,
    /// Actions whose TTL elapsed unacked.
    pub expired: usize,
    /// Actions that ran out of retry attempts.
    pub exhausted: usize,
    /// Findings escalated to the human-supervision queue.
    pub supervised: usize,
    /// A1 policy operations the run consumed, by enforcement outcome.
    pub policy_ops: A1OpTally,
    /// Virtual detection→ack latencies, one per acked action (µs).
    pub detection_to_ack_us: Vec<u64>,
}

impl MitigationSummary {
    /// The p99 detection→ack latency, if any action was acked.
    pub fn detection_to_ack_p99(&self) -> Option<Duration> {
        if self.detection_to_ack_us.is_empty() {
            return None;
        }
        let mut sorted = self.detection_to_ack_us.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 * 0.99).ceil() as usize).clamp(1, sorted.len());
        Some(Duration::from_micros(sorted[rank - 1]))
    }

    /// Classifies the p99 against the O-RAN near-RT budget.
    pub fn budget_class(&self) -> Option<LatencyClass> {
        self.detection_to_ack_p99()
            .map(|d| xsec_ric::latency::classify(std::time::Duration::from_micros(d.as_micros())))
    }
}

/// Shared inspection state for the mitigator.
#[derive(Debug)]
pub struct MitigatorState {
    /// The delivery tracker.
    pub executor: ActionExecutor,
    /// The decision table.
    pub policy: PolicyEngine,
    /// Findings the engine refused to act on autonomously.
    pub supervised: Vec<SupervisionTicket>,
    /// A1 policy operations consumed so far, by enforcement outcome.
    pub a1_ops: A1OpTally,
    /// Virtual clock (latest telemetry window end / finding time seen).
    pub clock: Timestamp,
}

impl MitigatorState {
    /// Snapshots the run's mitigation outcome.
    pub fn summary(&self) -> MitigationSummary {
        let mut summary = MitigationSummary {
            supervised: self.supervised.len(),
            issued: self.executor.outcomes().len(),
            policy_ops: self.a1_ops,
            ..MitigationSummary::default()
        };
        for tracked in self.executor.outcomes() {
            match tracked.state {
                ActionState::Acked { success: true, .. } => summary.acked += 1,
                ActionState::Acked { success: false, .. } => summary.failed += 1,
                ActionState::Expired => summary.expired += 1,
                ActionState::Exhausted => summary.exhausted += 1,
                _ => {}
            }
        }
        summary.detection_to_ack_us = self
            .executor
            .detection_to_ack_latencies()
            .into_iter()
            .map(|d| d.as_micros())
            .collect();
        summary
    }
}

/// The closed-loop mitigation xApp.
pub struct Mitigator {
    state: Arc<Mutex<MitigatorState>>,
    obs: Obs,
}

impl Mitigator {
    /// Creates the mitigator with a silent observability handle; returns the
    /// shared state handle.
    pub fn new(policy: PolicyEngine) -> (Self, Arc<Mutex<MitigatorState>>) {
        Self::with_obs(policy, Obs::new())
    }

    /// Creates the mitigator recording per-action-kind metrics
    /// (`xsec_control_actions_*_total{kind=}` and
    /// `xsec_control_detection_to_ack_us{kind=}`) into `obs`.
    pub fn with_obs(policy: PolicyEngine, obs: Obs) -> (Self, Arc<Mutex<MitigatorState>>) {
        let state = Arc::new(Mutex::new(MitigatorState {
            executor: ActionExecutor::default(),
            policy,
            supervised: Vec::new(),
            a1_ops: A1OpTally::default(),
            clock: Timestamp::ZERO,
        }));
        (Mitigator { state: state.clone(), obs }, state)
    }

    fn handle_finding(&mut self, ctx: &mut XAppContext<'_>, notice: &FindingNotice) {
        let records: Vec<UeMobiFlow> =
            notice.records.iter().filter_map(|l| decode_ue_record(l).ok()).collect();
        let assessment = assess(notice, &records);
        let mut state = self.state.lock();
        state.clock = state.clock.max(notice.at_time);
        let now = state.clock;
        match state.policy.decide(&assessment) {
            PolicyDecision::Act(actions) => {
                self.obs.recorder.record_stage(FlightEvent {
                    trace: notice.trace,
                    stage: TraceStage::Policy,
                    at_us: now.as_micros(),
                    a: u64::from(assessment.confidence.to_bits()),
                    b: actions.len() as u64,
                });
                for action in actions {
                    self.obs
                        .counter(
                            "xsec_control_actions_issued_total",
                            &[("kind", action.action.name())],
                        )
                        .inc();
                    state.executor.submit(action, Some(assessment.cell), assessment.detected_at, now);
                }
                ship_due(&mut state, now, ctx, &self.obs);
            }
            PolicyDecision::Supervise(ticket) => state.supervised.push(ticket),
            PolicyDecision::StandDown => {}
        }
    }
}

/// Ships everything the executor deems due, each action pinned to its cell
/// and carrying its trace for ack correlation at the pump. QuarantineCell
/// actions fan out to the cell's declared neighbours as well — the
/// displaced attacker's next hop should find the door already closing.
fn ship_due(state: &mut MitigatorState, now: Timestamp, ctx: &mut XAppContext<'_>, obs: &Obs) {
    for (cell, trace, payload) in state.executor.take_due(now) {
        let action = xsec_control::ControlAction::decode(&payload).ok();
        if let Some(trace) = trace {
            let action_id = action.as_ref().map(|a| a.id).unwrap_or(0);
            obs.recorder.record_stage(FlightEvent {
                trace,
                stage: TraceStage::ControlShip,
                at_us: now.as_micros(),
                a: u64::from(action_id),
                b: payload.len() as u64,
            });
        }
        let quarantine = matches!(
            action.as_ref().map(|a| &a.action),
            Some(xsec_control::MitigationAction::QuarantineCell { .. })
        );
        // Declare the action kind so a scoped mitigator is checked against
        // its per-kind control grant (an undecodable payload declares the
        // wildcard, which deployments deliberately do not grant).
        let kind = action.as_ref().map_or("*", |a| a.action.name());
        ctx.send_control_action(kind, cell, trace, quarantine && cell.is_some(), payload);
    }
}

/// Builds a [`ThreatAssessment`] from a finding notice: names the attack,
/// derives a confidence from how far the score cleared the threshold, and
/// scopes the suspect entities attack-specifically — a null-cipher finding
/// implicates only downgraded sessions, a flood implicates the connections
/// behind the dominant establishment cause, anything else implicates every
/// connection in the window.
pub fn assess(notice: &FindingNotice, records: &[UeMobiFlow]) -> ThreatAssessment {
    let attack = notice.attacks.iter().find_map(|t| attack_from_title(t));
    let llm_confirmed = notice.confirmed && !notice.needs_human;
    // score/threshold ≥ 1 whenever the detector flagged; squash the excess
    // into [0, 1): barely-over-threshold ≈ 0, a 5× clearance ≈ 0.8.
    let margin = if notice.score > 0.0 {
        (1.0 - notice.threshold / notice.score).clamp(0.0, 1.0)
    } else {
        0.0
    };
    // The margin is one detector's opinion of one window; the LLM verdict is
    // an independent read of the surrounding stream. When the cross-check
    // confirms a *named* attack, that corroboration dominates a thin margin
    // — per-UE windows structurally compress clearance during floods (each
    // fabricated connection looks near-benign in isolation, the storm only
    // shows in the shared context), yet the combined evidence is strong.
    let confidence = if llm_confirmed && attack.is_some() {
        margin.max(0.75)
    } else {
        margin
    };
    // The notice's record list is trailing *global* context followed by the
    // flagged window, so the last record is the detection itself — its cell
    // is the attack cell. (The first record is the oldest context line; in a
    // multi-cell deployment that is usually some *other* cell's traffic, and
    // targeting it mis-aims every cell-scoped action.)
    let cell = records.last().map_or(CellId(0), |r| r.cell);

    let dominant_cause = dominant_setup_cause(records);
    let implicated: Vec<&UeMobiFlow> = match attack {
        Some(AttackKind::NullCipher) => records
            .iter()
            .filter(|r| {
                r.cipher_alg == Some(CipherAlg::Nea0)
                    || r.integrity_alg == Some(IntegrityAlg::Nia0)
            })
            .collect(),
        Some(AttackKind::BtsDos) => records
            .iter()
            .filter(|r| {
                r.msg == MessageKind::RrcSetupRequest && r.establishment_cause == dominant_cause
            })
            .collect(),
        _ => records.iter().collect(),
    };
    let mut suspect_conns: Vec<u32> = implicated.iter().map(|r| r.du_ue_id).collect();
    suspect_conns.sort_unstable();
    suspect_conns.dedup();
    let mut suspect_rntis: Vec<Rnti> =
        implicated.iter().map(|r| r.rnti).filter(|r| r.is_valid_c_rnti()).collect();
    suspect_rntis.sort();
    suspect_rntis.dedup();

    ThreatAssessment {
        attack,
        confidence,
        llm_confirmed,
        detected_at: notice.at_time,
        cell,
        suspect_conns,
        suspect_rntis,
        dominant_cause,
        trace: (notice.trace != 0).then_some(notice.trace),
    }
}

fn dominant_setup_cause(records: &[UeMobiFlow]) -> Option<EstablishmentCause> {
    let mut counts: Vec<(EstablishmentCause, usize)> = Vec::new();
    for r in records {
        if r.msg != MessageKind::RrcSetupRequest {
            continue;
        }
        let Some(cause) = r.establishment_cause else { continue };
        match counts.iter_mut().find(|(c, _)| *c == cause) {
            Some((_, n)) => *n += 1,
            None => counts.push((cause, 1)),
        }
    }
    counts.into_iter().max_by_key(|(_, n)| *n).map(|(c, _)| c)
}

impl XApp for Mitigator {
    fn name(&self) -> &str {
        "mitigator"
    }

    fn on_records(
        &mut self,
        ctx: &mut XAppContext<'_>,
        _records: &[UeMobiFlow],
        window_end: Timestamp,
    ) {
        // Telemetry windows are the mitigator's clock: advance TTL/retry
        // bookkeeping and ship anything (re)due.
        let mut state = self.state.lock();
        state.clock = state.clock.max(window_end);
        let now = state.clock;
        state.executor.tick(now);
        ship_due(&mut state, now, ctx, &self.obs);
    }

    fn on_message(&mut self, ctx: &mut XAppContext<'_>, topic: &str, payload: &[u8]) {
        match topic {
            FINDINGS_TOPIC => {
                let Ok(notice) = serde_json::from_slice::<FindingNotice>(payload) else {
                    return;
                };
                self.handle_finding(ctx, &notice);
            }
            A1_POLICY_TOPIC => {
                // Signed envelopes are checked against the router registry
                // (identity, token, per-op A1 grant) before the store is
                // touched; a failed check is counted + flight-recorded and
                // the operation vanishes — no status reply, no tally. Bare
                // requests only pass while the router is open.
                let request = if let Ok(signed) =
                    serde_json::from_slice::<A1SignedRequest>(payload)
                {
                    let cap = xsec_ric::Capability::a1(signed.request.op());
                    if !ctx.router.verify(&signed.xapp, signed.token, &cap) {
                        ctx.router.deny(&signed.xapp, &cap.label());
                        return;
                    }
                    signed.request
                } else {
                    let Ok(request) = serde_json::from_slice::<A1Request>(payload) else {
                        return;
                    };
                    if ctx.router.enforcing() {
                        let cap = xsec_ric::Capability::a1(request.op());
                        ctx.router.deny("unsigned", &cap.label());
                        return;
                    }
                    request
                };
                let mut state = self.state.lock();
                let response = state.policy.apply(&request);
                state.a1_ops.record(response.outcome);
                self.obs
                    .counter(
                        "xsec_a1_policy_ops_total",
                        &[("op", request.op()), ("outcome", response.outcome.label())],
                    )
                    .inc();
                drop(state);
                if let Ok(json) = serde_json::to_vec(&response) {
                    ctx.publish(A1_POLICY_STATUS_TOPIC, &json);
                }
            }
            CONTROL_ACKS_TOPIC => {
                let Some(&flag) = payload.first() else { return };
                // Traced acks ([success][trace BE]) correlate by trace id —
                // robust to cross-agent reordering and broadcast fan-out;
                // bare one-byte acks settle FIFO as before.
                let ack_trace = (payload.len() == 9)
                    .then(|| u64::from_be_bytes(payload[1..9].try_into().unwrap()))
                    .filter(|t| *t != 0);
                let mut state = self.state.lock();
                let now = state.clock;
                if let Some(res) = state.executor.on_ack_traced(flag != 0, ack_trace, now) {
                    let outcome = if res.success { "acked" } else { "failed" };
                    self.obs
                        .counter(
                            &format!("xsec_control_actions_{outcome}_total"),
                            &[("kind", res.kind)],
                        )
                        .inc();
                    let trace = res.trace.unwrap_or(0);
                    let mut latency_us = 0;
                    if let Some(latency) = res.detection_to_ack {
                        latency_us = latency.as_micros();
                        self.obs
                            .histogram("xsec_control_detection_to_ack_us", &[("kind", res.kind)])
                            .observe_with_exemplar(latency_us, trace);
                    }
                    // The ack closes the causal chain: detection → policy →
                    // control → enforcement → acknowledged.
                    self.obs.recorder.record_stage(FlightEvent {
                        trace,
                        stage: TraceStage::Ack,
                        at_us: now.as_micros(),
                        a: u64::from(res.success),
                        b: latency_us,
                    });
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_control::{ControlAction, MitigationAction};
    use xsec_proto::Direction;

    fn record(conn: u32, rnti: u16, msg: MessageKind) -> UeMobiFlow {
        UeMobiFlow {
            msg_id: 0,
            timestamp: Timestamp(1_000),
            cell: CellId(1),
            rnti: Rnti(rnti),
            du_ue_id: conn,
            direction: Direction::Uplink,
            msg,
            tmsi: None,
            supi: None,
            cipher_alg: None,
            integrity_alg: None,
            establishment_cause: Some(EstablishmentCause::MoSignalling),
            release_cause: None,
        }
    }

    fn notice(attacks: Vec<String>, records: &[UeMobiFlow]) -> FindingNotice {
        FindingNotice {
            trace: 0,
            at_record: 10,
            at_time: Timestamp(1_000),
            score: 0.5,
            threshold: 0.1,
            anomalous: true,
            confirmed: true,
            needs_human: false,
            attacks,
            records: records.iter().map(xsec_mobiflow::encode_ue_record).collect(),
        }
    }

    #[test]
    fn assessment_names_attack_and_scopes_flood_suspects() {
        let records = vec![
            record(1, 0x4601, MessageKind::RrcSetupRequest),
            record(2, 0x4602, MessageKind::RrcSetupRequest),
            record(2, 0x4602, MessageKind::RrcSetup),
            record(3, 0x4603, MessageKind::NasRegistrationRequest),
        ];
        let n = notice(vec!["Signaling storm / RRC flooding DoS (BTS DoS)".into()], &records);
        let decoded: Vec<UeMobiFlow> =
            n.records.iter().map(|l| decode_ue_record(l).unwrap()).collect();
        let a = assess(&n, &decoded);
        assert_eq!(a.attack, Some(AttackKind::BtsDos));
        assert!(a.confidence > 0.6, "confidence {}", a.confidence);
        assert!(a.llm_confirmed);
        // Only the setup-request connections are implicated, not conn 3.
        assert_eq!(a.suspect_conns, vec![1, 2]);
        assert_eq!(a.dominant_cause, Some(EstablishmentCause::MoSignalling));
    }

    #[test]
    fn null_cipher_assessment_implicates_only_downgraded_sessions() {
        let mut clean = record(1, 0x4601, MessageKind::NasRegistrationAccept);
        clean.cipher_alg = Some(CipherAlg::Nea2);
        clean.integrity_alg = Some(IntegrityAlg::Nia2);
        let mut tainted = record(2, 0x4602, MessageKind::NasRegistrationAccept);
        tainted.cipher_alg = Some(CipherAlg::Nea0);
        tainted.integrity_alg = Some(IntegrityAlg::Nia0);
        let n = notice(
            vec!["Security capability bidding-down (null cipher & integrity)".into()],
            &[clean, tainted],
        );
        let decoded: Vec<UeMobiFlow> =
            n.records.iter().map(|l| decode_ue_record(l).unwrap()).collect();
        let a = assess(&n, &decoded);
        assert_eq!(a.attack, Some(AttackKind::NullCipher));
        assert_eq!(a.suspect_conns, vec![2]);
    }

    #[test]
    fn summary_percentile_and_budget_classification() {
        let mut summary = MitigationSummary::default();
        assert!(summary.detection_to_ack_p99().is_none());
        summary.detection_to_ack_us = vec![20_000, 40_000, 100_000];
        assert_eq!(summary.detection_to_ack_p99(), Some(Duration::from_millis(100)));
        assert_eq!(summary.budget_class(), Some(LatencyClass::WithinBudget));
    }

    #[test]
    fn mitigator_issues_controls_for_confirmed_findings_and_tracks_acks() {
        let (mut mitigator, state) = Mitigator::new(PolicyEngine::default());
        let sdl = xsec_ric::SharedDataLayer::new();
        let router = xsec_ric::Router::new();
        let mut control = Vec::new();

        let records = vec![
            record(1, 0x4601, MessageKind::RrcSetupRequest),
            record(2, 0x4602, MessageKind::RrcSetupRequest),
        ];
        let n = notice(vec!["Signaling storm / RRC flooding DoS (BTS DoS)".into()], &records);
        {
            let mut ctx = xsec_ric::XAppContext {
                sdl: &sdl,
                router: &router,
                control_out: &mut control,
                scope: None,
            };
            mitigator.on_message(&mut ctx, FINDINGS_TOPIC, &serde_json::to_vec(&n).unwrap());
        }
        // Rate-limit + two blacklists, all shipped immediately and pinned to
        // the finding's cell so the RIC routes them to the owning agent.
        assert_eq!(control.len(), 3);
        for out in &control {
            assert_eq!(out.cell, Some(CellId(1)));
            ControlAction::decode(&out.payload).unwrap();
        }
        assert!(matches!(
            ControlAction::decode(&control[0].payload).unwrap().action,
            MitigationAction::RateLimitCause { .. }
        ));

        // Acks resolve in FIFO order against the mitigator clock.
        let mut ack_out = Vec::new();
        let mut ctx = xsec_ric::XAppContext {
            sdl: &sdl,
            router: &router,
            control_out: &mut ack_out,
            scope: None,
        };
        mitigator.on_message(&mut ctx, CONTROL_ACKS_TOPIC, &[1]);
        mitigator.on_message(&mut ctx, CONTROL_ACKS_TOPIC, &[1]);
        mitigator.on_message(&mut ctx, CONTROL_ACKS_TOPIC, &[0]);
        let summary = state.lock().summary();
        assert_eq!((summary.issued, summary.acked, summary.failed), (3, 2, 1));
        assert_eq!(summary.detection_to_ack_us.len(), 2);
    }

    #[test]
    fn a1_requests_mutate_the_live_policy_and_answer_on_status_topic() {
        let obs = Obs::new();
        let (mut mitigator, state) = Mitigator::with_obs(PolicyEngine::default(), obs.clone());
        let sdl = xsec_ric::SharedDataLayer::new();
        let router = xsec_ric::Router::new();
        let status_rx = router.subscribe(A1_POLICY_STATUS_TOPIC);
        let mut control = Vec::new();
        let mut ctx = xsec_ric::XAppContext {
            sdl: &sdl,
            router: &router,
            control_out: &mut control,
            scope: None,
        };

        // Swap the null-cipher playbook to quarantine, then query.
        let mut rule = xsec_control::default_rules()
            .into_iter()
            .find(|r| r.id == "null-cipher")
            .unwrap();
        rule.templates = vec![xsec_control::ActionTemplate::QuarantineCell];
        let update = A1Request::UpdatePolicy { rule };
        mitigator.on_message(&mut ctx, A1_POLICY_TOPIC, &serde_json::to_vec(&update).unwrap());
        let query = A1Request::QueryStatus;
        mitigator.on_message(&mut ctx, A1_POLICY_TOPIC, &serde_json::to_vec(&query).unwrap());

        let first: xsec_control::A1Response =
            serde_json::from_slice(&status_rx.try_recv().unwrap()).unwrap();
        assert_eq!(first.outcome, xsec_control::PolicyOpOutcome::Superseded);
        assert_eq!((first.op.as_str(), first.version), ("update", 2));
        let second: xsec_control::A1Response =
            serde_json::from_slice(&status_rx.try_recv().unwrap()).unwrap();
        assert_eq!(second.status.len(), 5);

        // The very next detection uses the swapped rule.
        let mut tainted = record(2, 0x4602, MessageKind::NasRegistrationAccept);
        tainted.cipher_alg = Some(CipherAlg::Nea0);
        let n = notice(
            vec!["Security capability bidding-down (null cipher & integrity)".into()],
            &[tainted],
        );
        mitigator.on_message(&mut ctx, FINDINGS_TOPIC, &serde_json::to_vec(&n).unwrap());
        assert_eq!(control.len(), 1);
        assert!(matches!(
            ControlAction::decode(&control[0].payload).unwrap().action,
            MitigationAction::QuarantineCell { .. }
        ));

        let summary = state.lock().summary();
        assert_eq!(summary.policy_ops.superseded, 1);
        assert_eq!(summary.policy_ops.applied, 1);
        assert_eq!(obs.snapshot().counter_total("xsec_a1_policy_ops_total"), 2);
    }

    #[test]
    fn enforcing_router_requires_a_verifiable_a1_envelope() {
        let (mut mitigator, state) = Mitigator::new(PolicyEngine::default());
        let sdl = xsec_ric::SharedDataLayer::new();
        let router = xsec_ric::Router::new();
        router.enforce();
        let smo = router
            .register(
                xsec_ric::XAppIdentity::named("smo"),
                xsec_ric::Grants::none().a1("set-enabled"),
            )
            .unwrap();
        // The mitigator itself runs scoped, as deployments wire it: it must
        // hold the status-reply publish grant or its own answers get denied.
        let scope = router
            .register(
                xsec_ric::XAppIdentity::named("mitigator"),
                xsec_ric::Grants::none().publish(A1_POLICY_STATUS_TOPIC),
            )
            .unwrap();
        let mut control = Vec::new();
        let mut ctx = xsec_ric::XAppContext {
            sdl: &sdl,
            router: &router,
            control_out: &mut control,
            scope: Some(&scope),
        };

        let disable = A1Request::SetEnabled { id: "null-cipher".into(), enabled: false };
        // Bare request on an enforcing router: denied, store untouched.
        mitigator.on_message(&mut ctx, A1_POLICY_TOPIC, &serde_json::to_vec(&disable).unwrap());
        // Forged token: denied.
        let forged = A1SignedRequest {
            xapp: "smo".into(),
            token: smo.token().wrapping_add(1),
            request: disable.clone(),
        };
        mitigator.on_message(&mut ctx, A1_POLICY_TOPIC, &serde_json::to_vec(&forged).unwrap());
        // Op outside the sender's A1 grant: denied.
        let ungranted = A1SignedRequest {
            xapp: "smo".into(),
            token: smo.token(),
            request: A1Request::DeletePolicy { id: "null-cipher".into() },
        };
        mitigator.on_message(&mut ctx, A1_POLICY_TOPIC, &serde_json::to_vec(&ungranted).unwrap());
        assert_eq!(state.lock().a1_ops.total(), 0);
        assert_eq!(router.denied(), 3);

        // The genuine envelope within the grant goes through.
        let signed =
            A1SignedRequest { xapp: "smo".into(), token: smo.token(), request: disable };
        mitigator.on_message(&mut ctx, A1_POLICY_TOPIC, &serde_json::to_vec(&signed).unwrap());
        assert_eq!(state.lock().a1_ops.applied, 1);
        assert_eq!(router.denied(), 3);
    }

    #[test]
    fn unconfirmed_findings_land_in_supervision() {
        let (mut mitigator, state) = Mitigator::new(PolicyEngine::default());
        let sdl = xsec_ric::SharedDataLayer::new();
        let router = xsec_ric::Router::new();
        let mut control = Vec::new();
        let mut ctx = xsec_ric::XAppContext {
            sdl: &sdl,
            router: &router,
            control_out: &mut control,
            scope: None,
        };
        let records = vec![record(1, 0x4601, MessageKind::RrcSetupRequest)];
        let mut n = notice(vec!["Signaling storm / RRC flooding DoS (BTS DoS)".into()], &records);
        n.needs_human = true;
        mitigator.on_message(&mut ctx, FINDINGS_TOPIC, &serde_json::to_vec(&n).unwrap());
        assert!(control.is_empty());
        let state = state.lock();
        assert_eq!(state.supervised.len(), 1);
        assert!(state.executor.outcomes().is_empty());
    }
}
