//! Per-UE sharded MobiWatch scoring: fan inference out across worker
//! threads without changing what gets detected.
//!
//! The single-threaded [`MobiWatch`](crate::mobiwatch::MobiWatch) scores one
//! global sliding window; past a few hundred thousand records per second one
//! core becomes the ceiling. This module splits the *scoring* work by UE:
//!
//! * **Featurization stays global and sequential** on the ingest thread.
//!   The relational features (TMSI reuse across connections, inter-arrival
//!   gaps, setup/release burst density) are stream-level state — computing
//!   them per shard would change their values. Every record's feature vector
//!   is therefore identical to the single-threaded pipeline's.
//! * **Windowing and scoring are per UE.** Each `du_ue_id` hashes to exactly
//!   one shard, which keeps that UE's [`FeatureRing`] and alert cooldown.
//!   A UE's records arrive at its shard in stream order,
//!   so per-UE state evolves deterministically — the score and alert sets
//!   are *invariant in the shard count*, which is what makes the pool safe
//!   to widen with the machine.
//! * **Merging is a fork/join per E2 batch.** The ingest thread sends each
//!   shard **one message per batch** — its slice of the featurized records —
//!   and collects one reply each; results are ordered by global record index
//!   before they touch the shared state, so downstream consumers observe one
//!   deterministic stream. Batched dispatch matters: a channel send is a
//!   lock + wakeup, and paying it per *record* made one shard slower than
//!   the unsharded xApp it was supposed to scale past.

use crate::mobiwatch::{AnomalyAlert, MobiWatchConfig, MobiWatchState, WatchMetrics};
use crate::smo::DeployedModels;
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use xsec_dl::{FeatureRing, Featurizer, Workspace, FEATURES_PER_RECORD};
use xsec_mobiflow::{encode_ue_record, TelemetryStream, UeMobiFlow};
use xsec_obs::{FlightEvent, FlightRecorder, FlightRing, Obs, TraceStage};
use xsec_ric::{XApp, XAppContext};
use xsec_types::Timestamp;

use crate::mobiwatch::Detector;

/// Which shard owns a connection. A fixed multiplicative hash keeps the
/// mapping deterministic across runs and spreads sequential IDs.
fn shard_of(du_ue_id: u32, shards: usize) -> usize {
    (du_ue_id.wrapping_mul(0x9E37_79B1) as usize) % shards
}

/// One featurized record owned by a shard's UE set. Only what scoring
/// needs crosses the channel — the raw record stays on the ingest thread,
/// which owns alert context.
struct ShardRecord {
    index: u64,
    du_ue_id: u32,
    at_time: Timestamp,
    /// The record is an RRC release: score it, then drop the UE's state.
    evict: bool,
    features: Vec<f32>,
}

/// Work sent to a shard: its slice of one E2 batch (possibly empty), in
/// stream order. Exactly one message per shard per batch — the reply is the
/// fork/join barrier, so no separate drain token exists to pay a second
/// channel round-trip for.
struct ShardWork {
    records: Vec<ShardRecord>,
}

/// One shard's results for one batch.
#[derive(Default)]
struct ShardBatch {
    /// `(global record index, score, flagged)` in this shard's arrival order.
    scores: Vec<(u64, f32, bool)>,
    /// Alerts raised this batch, tagged with their global record index.
    alerts: Vec<(u64, AnomalyAlert)>,
    /// UEs this shard still tracks after the batch (leak telemetry).
    tracked: usize,
    /// The drained work buffer, returned for the ingest thread to reuse.
    spent: Vec<ShardRecord>,
}

/// Per-UE detection state owned by exactly one shard. Deliberately small:
/// alert context is assembled from the ingest thread's *global* record tail
/// (matching the single-threaded MobiWatch), so shards keep only what
/// scoring needs.
struct UeState {
    ring: FeatureRing,
    seen: u64,
    last_publish: Option<u64>,
}

impl UeState {
    /// Builds fresh state, reusing a ring from `pool` when one is free so
    /// churning UEs don't reallocate the (large) flat feature buffer.
    fn new(window: usize, pool: &mut Vec<FeatureRing>) -> Self {
        let ring = pool
            .pop()
            .unwrap_or_else(|| FeatureRing::new(FEATURES_PER_RECORD, window + 1));
        UeState { ring, seen: 0, last_publish: None }
    }
}

/// The sharded anomaly-detection xApp. Drop-in replacement for `MobiWatch`
/// in the platform: same name, same topics, same shared-state type — the
/// scores it records are per-UE windows rather than one global window.
pub struct ShardedMobiWatch {
    models: DeployedModels,
    config: MobiWatchConfig,
    shards: usize,
    featurizer: Featurizer,
    feature_buf: Vec<f32>,
    records_seen: u64,
    tracked_ues: usize,
    /// Trailing window of the *global* stream, for alert context. The same
    /// records the single-threaded MobiWatch would attach: a pure function
    /// of global record order, hence invariant in the shard count.
    context: VecDeque<UeMobiFlow>,
    state: Arc<Mutex<MobiWatchState>>,
    metrics: WatchMetrics,
    /// Flight recording happens exclusively on the ingest thread, post
    /// merge, in global record order — so the recorded causal slices are
    /// invariant in the shard count, like every other output of the pool.
    recorder: FlightRecorder,
    flight: FlightRing,
    workers: Vec<JoinHandle<()>>,
    to_shards: Vec<Sender<ShardWork>>,
    /// Per-shard staging for the current batch, reused across batches so
    /// dispatch allocates nothing in steady state (the `Vec`s round-trip
    /// through the workers and come back with the replies).
    staging: Vec<Vec<ShardRecord>>,
    from_shards: Option<Receiver<ShardBatch>>,
}

impl ShardedMobiWatch {
    /// Creates the pool (threads start lazily on the first batch, after
    /// [`attach_obs`](Self::attach_obs) has had a chance to run).
    ///
    /// # Panics
    /// If `shards` is zero.
    pub fn new(
        models: DeployedModels,
        config: MobiWatchConfig,
        shards: usize,
    ) -> (Self, Arc<Mutex<MobiWatchState>>) {
        assert!(shards > 0, "shard count must be positive");
        let state = Arc::new(Mutex::new(MobiWatchState::default()));
        let metrics = WatchMetrics::register(&Obs::new(), config.detector);
        let recorder = FlightRecorder::new();
        let flight = recorder.ring();
        (
            ShardedMobiWatch {
                models,
                config,
                shards,
                featurizer: Featurizer::new(),
                feature_buf: Vec::with_capacity(FEATURES_PER_RECORD),
                records_seen: 0,
                tracked_ues: 0,
                context: VecDeque::new(),
                state: state.clone(),
                metrics,
                recorder,
                flight,
                workers: Vec::new(),
                to_shards: Vec::new(),
                staging: Vec::new(),
                from_shards: None,
            },
            state,
        )
    }

    /// Re-homes the pool's instruments into `obs`'s registry. Call before
    /// the first batch — worker threads capture the instruments at spawn.
    pub fn attach_obs(&mut self, obs: &Obs) {
        assert!(self.workers.is_empty(), "attach_obs must precede the first batch");
        self.metrics = WatchMetrics::register(obs, self.config.detector);
        self.recorder = obs.recorder.clone();
        self.flight = self.recorder.ring();
    }

    /// The sliding-window length in force.
    pub fn window(&self) -> usize {
        self.models.feature_config.window
    }

    /// UEs with live window state across all shards, as of the last batch.
    /// Flat over a churning stream; growth here is the per-UE state leak the
    /// eviction-on-release path exists to prevent.
    pub fn tracked_ues(&self) -> usize {
        self.tracked_ues
    }

    fn ensure_started(&mut self) {
        if !self.workers.is_empty() {
            return;
        }
        let (reply_tx, reply_rx) = unbounded::<ShardBatch>();
        self.staging = (0..self.shards).map(|_| Vec::new()).collect();
        for _ in 0..self.shards {
            let (tx, rx) = unbounded::<ShardWork>();
            let models = self.models.clone();
            let config = self.config.clone();
            let metrics = self.metrics.clone();
            let reply = reply_tx.clone();
            self.to_shards.push(tx);
            self.workers.push(std::thread::spawn(move || {
                shard_loop(models, config, metrics, rx, reply);
            }));
        }
        self.from_shards = Some(reply_rx);
    }

    /// Featurizes, dispatches, and joins one batch of records; returns the
    /// alerts raised, ordered by global record index.
    pub fn process_batch(&mut self, records: &[UeMobiFlow]) -> Vec<AnomalyAlert> {
        self.ensure_started();
        let batch_start = self.records_seen;
        // Causal traces for this batch, indexed by batch offset. Looked up
        // here (the single thread that owns stream order) so the merge below
        // can stamp flight events without shipping ids through the shards.
        let traces: Vec<u64> =
            records.iter().map(|r| self.recorder.trace_for(r.msg_id)).collect();
        // Featurize sequentially (stream-level state), staging each record
        // on its owner shard; every shard then gets exactly one send.
        for record in records {
            let t0 = Instant::now();
            let mut features = std::mem::take(&mut self.feature_buf);
            self.featurizer.encode_record_into(record, &mut features);
            self.metrics.featurize_latency.observe_duration(t0.elapsed());
            let shard = shard_of(record.du_ue_id, self.shards);
            self.staging[shard].push(ShardRecord {
                index: self.records_seen,
                du_ue_id: record.du_ue_id,
                at_time: record.timestamp,
                evict: record.msg == xsec_proto::MessageKind::RrcRelease,
                features: features.clone(),
            });
            self.feature_buf = features;
            self.records_seen += 1;
        }
        // Fork/join: one work message per shard (empty slices included — the
        // reply is the barrier), one reply per shard.
        for (tx, staged) in self.to_shards.iter().zip(&mut self.staging) {
            tx.send(ShardWork { records: std::mem::take(staged) }).expect("shard alive");
        }
        let rx = self.from_shards.as_ref().expect("started");
        let mut scores = Vec::new();
        let mut alerts = Vec::new();
        let mut tracked = 0;
        for _ in 0..self.shards {
            let batch = rx.recv().expect("shard replies");
            scores.extend(batch.scores);
            alerts.extend(batch.alerts);
            tracked += batch.tracked;
            if let Some(slot) = self.staging.iter_mut().find(|s| s.capacity() == 0) {
                *slot = batch.spent;
            }
        }
        self.tracked_ues = tracked;
        // Deterministic merge: shard arrival order is per-UE only; global
        // record index restores the stream order regardless of shard count.
        scores.sort_unstable_by_key(|(i, _, _)| *i);
        alerts.sort_unstable_by_key(|(i, _)| *i);
        // Log one inference span per scored record, in global record order —
        // identical timestamps and payloads to the single-threaded xApp's.
        let threshold = match self.config.detector {
            Detector::Autoencoder => self.models.ae_threshold.value,
            Detector::Lstm => self.models.lstm_threshold.value,
        };
        for &(index, score, _) in &scores {
            let offset = (index - batch_start) as usize;
            self.flight.record(FlightEvent {
                trace: traces[offset],
                stage: TraceStage::Inference,
                at_us: records[offset].timestamp.as_micros(),
                a: u64::from(score.to_bits()),
                b: u64::from(threshold.to_bits()),
            });
        }
        // Attach global alert context: the trailing `keep` records of the
        // stream *as of the alert's record* — exactly what the
        // single-threaded MobiWatch's history would hold. Shards can't build
        // this (each sees only its own UEs), and a per-UE context would hide
        // stream-level signatures like a storm of one-shot connections.
        let window = self.models.feature_config.window;
        let keep = (self.config.context_records + window).max(window + 1);
        let alerts: Vec<AnomalyAlert> = alerts
            .into_iter()
            .map(|(index, mut alert)| {
                let offset = (index - batch_start) as usize;
                let upto = &records[..=offset];
                let from_batch = upto.len().min(keep);
                let from_tail = (keep - from_batch).min(self.context.len());
                alert.records = self
                    .context
                    .iter()
                    .skip(self.context.len() - from_tail)
                    .chain(upto[upto.len() - from_batch..].iter())
                    .map(encode_ue_record)
                    .collect();
                alert.trace = traces[offset];
                self.recorder.mark_incident(alert.trace);
                self.recorder.record_stage(FlightEvent {
                    trace: alert.trace,
                    stage: TraceStage::Alert,
                    at_us: alert.at_time.as_micros(),
                    a: u64::from(alert.score.to_bits()),
                    b: u64::from(alert.threshold.to_bits()),
                });
                alert
            })
            .collect();
        for record in records {
            if self.context.len() == keep {
                self.context.pop_front();
            }
            self.context.push_back(record.clone());
        }
        let mut state = self.state.lock();
        state.scores.extend(scores);
        state.alerts.extend(alerts.iter().cloned());
        alerts
    }
}

impl Drop for ShardedMobiWatch {
    fn drop(&mut self) {
        self.to_shards.clear(); // hang up: workers exit on channel close
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl XApp for ShardedMobiWatch {
    fn name(&self) -> &str {
        "mobiwatch"
    }

    fn on_records(
        &mut self,
        ctx: &mut XAppContext<'_>,
        records: &[UeMobiFlow],
        _window_end: Timestamp,
    ) {
        for alert in self.process_batch(records) {
            let payload = serde_json::to_vec(&alert).expect("alert serializes");
            ctx.publish(&self.config.publish_topic, &payload);
        }
    }
}

/// The worker body: per-UE windowing and scoring over this shard's UE set.
fn shard_loop(
    models: DeployedModels,
    config: MobiWatchConfig,
    metrics: WatchMetrics,
    rx: Receiver<ShardWork>,
    reply: Sender<ShardBatch>,
) {
    let n = models.feature_config.window;
    let mut ues: HashMap<u32, UeState> = HashMap::new();
    let mut ring_pool: Vec<FeatureRing> = Vec::new();
    let mut ws = Workspace::new();
    let mut batch = ShardBatch::default();
    while let Ok(work) = rx.recv() {
        let mut spent = work.records;
        for ShardRecord { index, du_ue_id, at_time, evict, features } in spent.drain(..) {
            // An RRC release ends the connection for good — DU ids are
            // never reused within a run — so once the release record
            // itself is scored, the UE's window state is dead weight.
            // It is evicted after the labeled block below (several score
            // paths break out of it early) or a million-UE stream would
            // pin a million rings.
            'scored: {
                let ue = ues
                    .entry(du_ue_id)
                    .or_insert_with(|| UeState::new(n, &mut ring_pool));
                ue.ring.push(&features);
                ue.seen += 1;

                let t0 = Instant::now();
                let (score, threshold) = match config.detector {
                    Detector::Autoencoder => {
                        if ue.ring.len() < n {
                            break 'scored;
                        }
                        let score = models.autoencoder.score_window_with(
                            ue.ring.last_n(n),
                            &mut ws,
                            config.precision,
                        );
                        (score, models.ae_threshold)
                    }
                    Detector::Lstm => {
                        if ue.ring.len() < n + 1 {
                            break 'scored;
                        }
                        let span = ue.ring.last_n(n + 1);
                        let (window_flat, next) = span.split_at(n * FEATURES_PER_RECORD);
                        let score = models.lstm.score_window_with(
                            window_flat,
                            next,
                            &mut ws,
                            config.precision,
                        );
                        (score, models.lstm_threshold)
                    }
                };
                metrics.inference_latency.observe_duration(t0.elapsed());

                let flagged = threshold.is_anomalous(score);
                batch.scores.push((index, score, flagged));
                if !flagged {
                    break 'scored;
                }
                // Cooldown in the UE's own record count, so it is
                // invariant in both the shard count and the other UEs'
                // traffic.
                if let Some(last) = ue.last_publish {
                    if ue.seen.saturating_sub(last) < config.publish_cooldown as u64 {
                        break 'scored;
                    }
                }
                ue.last_publish = Some(ue.seen);
                // Context records are attached by the ingest thread on
                // merge — a shard only sees its own UEs, but the analyst
                // (and the LLM behind it) needs the surrounding *stream*
                // to recognize e.g. a flood of one-shot connections.
                // The trace id, like the context records, is stamped by
                // the ingest thread on merge.
                let alert = AnomalyAlert {
                    trace: 0,
                    at_record: index,
                    at_time,
                    score,
                    threshold: threshold.value,
                    records: Vec::new(),
                };
                metrics.alerts.inc();
                batch.alerts.push((index, alert));
            }
            if evict {
                if let Some(state) = ues.remove(&du_ue_id) {
                    let mut ring = state.ring;
                    ring.clear();
                    ring_pool.push(ring);
                }
            }
        }
        batch.tracked = ues.len();
        batch.spent = spent;
        if reply.send(std::mem::take(&mut batch)).is_err() {
            return; // pool is shutting down
        }
    }
}

/// Ground truth aligned with the sharded pool's per-UE emissions.
///
/// Mirrors the shards' window accounting over the labeled stream: walking
/// records in order, a score is emitted at record `i` once its UE has
/// accumulated `window` records (autoencoder) or `window + 1` (LSTM), and
/// the window is anomalous if *any* record in the UE's span is
/// attack-labeled — the paper's labeling rule, applied per UE.
pub fn per_ue_truth(stream: &TelemetryStream, window: usize, detector: Detector) -> Vec<bool> {
    let span = match detector {
        Detector::Autoencoder => window,
        Detector::Lstm => window + 1,
    };
    let mut per_ue: HashMap<u32, VecDeque<bool>> = HashMap::new();
    let mut truth = Vec::new();
    for (record, label) in stream.records.iter().zip(&stream.labels) {
        let labels = per_ue.entry(record.du_ue_id).or_default();
        labels.push_back(label.attack_kind().is_some());
        while labels.len() > span {
            labels.pop_front();
        }
        if labels.len() == span {
            truth.push(labels.iter().any(|&a| a));
        }
    }
    truth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smo::{Smo, TrainingConfig};
    use xsec_attacks::DatasetBuilder;
    use xsec_mobiflow::extract_from_events;
    use xsec_types::AttackKind;

    fn quick_models(seed: u64) -> DeployedModels {
        let report = DatasetBuilder::small(seed, 15).benign();
        let stream = extract_from_events(&report.events);
        Smo::train(
            &TrainingConfig {
                autoencoder_epochs: 12,
                lstm_epochs: 3,
                autoencoder_hidden: vec![48, 12],
                lstm_hidden: 24,
                ..TrainingConfig::default()
            },
            &stream,
        )
        .unwrap()
    }

    fn run_sharded(
        models: &DeployedModels,
        config: &MobiWatchConfig,
        shards: usize,
        stream: &TelemetryStream,
    ) -> MobiWatchState {
        let (mut pool, state) = ShardedMobiWatch::new(models.clone(), config.clone(), shards);
        // Mixed batch sizes exercise the fork/join on uneven boundaries.
        for chunk in stream.records.chunks(23) {
            pool.process_batch(chunk);
        }
        drop(pool);
        Arc::try_unwrap(state).expect("pool dropped").into_inner()
    }

    #[test]
    fn alert_and_score_sets_are_shard_count_invariant() {
        let models = quick_models(30);
        let config = MobiWatchConfig::default();
        let ds = DatasetBuilder::small(31, 10).attack(AttackKind::NullCipher);
        let stream = extract_from_events(&ds.report.events);

        let single = run_sharded(&models, &config, 1, &stream);
        let quad = run_sharded(&models, &config, 4, &stream);

        assert!(!single.scores.is_empty(), "stream must produce scores");
        assert_eq!(single.scores, quad.scores, "scores must not depend on shard count");
        assert_eq!(single.alerts.len(), quad.alerts.len());
        for (a, b) in single.alerts.iter().zip(&quad.alerts) {
            assert_eq!(a.at_record, b.at_record);
            assert_eq!(a.score, b.score);
            assert_eq!(a.records, b.records);
        }
    }

    #[test]
    fn scores_arrive_in_global_record_order() {
        let models = quick_models(32);
        let ds = DatasetBuilder::small(33, 8).attack(AttackKind::BtsDos);
        let stream = extract_from_events(&ds.report.events);
        let state = run_sharded(&models, &MobiWatchConfig::default(), 3, &stream);
        let indices: Vec<u64> = state.scores.iter().map(|(i, _, _)| *i).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted, "merged scores must be stream-ordered");
    }

    #[test]
    fn released_ues_are_evicted_from_shard_state() {
        let models = quick_models(36);
        let ds = DatasetBuilder::small(37, 12).attack(AttackKind::BtsDos);
        let stream = extract_from_events(&ds.report.events);

        let (mut pool, _state) =
            ShardedMobiWatch::new(models.clone(), MobiWatchConfig::default(), 3);
        for chunk in stream.records.chunks(50) {
            pool.process_batch(chunk);
        }

        // The pool should only still track connections that never saw an
        // RRC release (e.g. admission-rejected setups); everything released
        // — benign teardowns and guard-expired DoS contexts alike — must be
        // evicted.
        let mut open: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for record in &stream.records {
            if record.msg == xsec_proto::MessageKind::RrcRelease {
                open.remove(&record.du_ue_id);
            } else {
                open.insert(record.du_ue_id);
            }
        }
        let distinct: std::collections::HashSet<u32> =
            stream.records.iter().map(|r| r.du_ue_id).collect();
        assert_eq!(
            pool.tracked_ues(),
            open.len(),
            "tracked state diverged from open connections"
        );
        assert!(
            pool.tracked_ues() < distinct.len() / 2,
            "eviction barely fired: {} tracked of {} distinct",
            pool.tracked_ues(),
            distinct.len()
        );
        drop(pool);
    }

    #[test]
    fn detections_are_shard_invariant_under_churn() {
        use xsec_ran::{StreamConfig, StreamingScenario};
        use xsec_types::{Duration, Timestamp};

        // A stream where UEs register, hand over between cells, and retire
        // mid-run — slab slots and DU ranges churn constantly.
        let mut engine = StreamingScenario::new(StreamConfig {
            seed: 41,
            cells: 3,
            total_ues: 50,
            mean_inter_arrival: Duration::from_millis(4),
            mobility_fraction: 0.5,
            max_handovers: 2,
            max_live: 24,
            ..StreamConfig::default()
        });
        let mut events = Vec::new();
        let mut deadline = Timestamp::ZERO + Duration::from_millis(50);
        while !engine.done() {
            events.extend(engine.step(deadline));
            deadline += Duration::from_millis(50);
        }
        assert!(engine.stats().handovers > 0, "churn stream must hand over");
        let stream = extract_from_events(&events);

        let models = quick_models(38);
        let config = MobiWatchConfig::default();
        let single = run_sharded(&models, &config, 1, &stream);
        let quad = run_sharded(&models, &config, 4, &stream);

        assert!(!single.scores.is_empty(), "churn stream must produce scores");
        assert_eq!(single.scores, quad.scores, "churn broke shard invariance");
        assert_eq!(single.alerts.len(), quad.alerts.len());
        for (a, b) in single.alerts.iter().zip(&quad.alerts) {
            assert_eq!(a.at_record, b.at_record);
            assert_eq!(a.records, b.records);
        }
    }

    #[test]
    fn per_ue_truth_matches_emission_accounting() {
        let models = quick_models(34);
        let ds = DatasetBuilder::small(35, 8).attack(AttackKind::NullCipher);
        let stream = extract_from_events(&ds.report.events);
        for detector in [Detector::Autoencoder, Detector::Lstm] {
            let config = MobiWatchConfig { detector, ..MobiWatchConfig::default() };
            let state = run_sharded(&models, &config, 2, &stream);
            let truth =
                per_ue_truth(&stream, models.feature_config.window, detector);
            assert_eq!(
                state.scores.len(),
                truth.len(),
                "{detector:?}: emission accounting diverged from truth helper"
            );
        }
    }
}
