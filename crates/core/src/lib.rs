//! # 6G-XSec
//!
//! An explainable edge-security framework for OpenRAN architectures — a
//! from-scratch Rust reproduction of *6G-XSec: Explainable Edge Security for
//! Emerging OpenRAN Architectures* (Wen et al., HotNets '24).
//!
//! The framework chains three stages over an O-RAN control plane
//! (paper Figure 3):
//!
//! 1. **Telemetry** — the RAN data plane is instrumented with a RIC agent
//!    that extracts fine-grained MobiFlow security telemetry and reports it
//!    over the E2 interface (`xsec-ran`, `xsec-mobiflow`, `xsec-e2`).
//! 2. **Detection** — the [`MobiWatch`] xApp scores sliding windows of
//!    telemetry with lightweight unsupervised models (autoencoder / LSTM
//!    from `xsec-dl`) trained on benign traffic only, and flags deviations.
//! 3. **Explanation** — the [`LlmAnalyzer`] xApp sends flagged windows
//!    (plus context) to an LLM backend using the paper's zero-shot prompt
//!    template, yielding classification, explanation, attribution, and
//!    remediation (`xsec-llm`); disagreements between detector and model
//!    land in a human-supervision queue.
//! 4. **Mitigation** — the [`Mitigator`] xApp closes the loop: confirmed
//!    findings are mapped through a policy engine to typed E2 control
//!    actions (`xsec-control`) the RAN enforces — RNTI blacklists,
//!    establishment-cause rate limits, forced re-authentication, session
//!    releases — while anything below the autonomy bar is escalated to the
//!    human-supervision queue.
//!
//! ## Quick start
//!
//! ```
//! use sixg_xsec::pipeline::{Pipeline, PipelineConfig};
//! use xsec_types::AttackKind;
//!
//! // Train on benign traffic, then run the full pipeline over a BTS DoS
//! // attack dataset (small sizes keep the doctest fast).
//! let mut config = PipelineConfig::small(7, 12);
//! config.detector_window = 4;
//! let pipeline = Pipeline::train(&config);
//! let outcome = pipeline.run_attack(AttackKind::BtsDos);
//! assert!(outcome.flagged_windows > 0, "the flood must be flagged");
//! ```
//!
//! The `xsec-bench` crate regenerates every table and figure of the paper's
//! evaluation section from the [`experiments`] module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod experiments;
pub mod mitigator;
pub mod mobiwatch;
pub mod pipeline;
pub mod scale;
pub mod shard;
pub mod smo;

pub use analyzer::{AnalyzerFinding, LlmAnalyzer};
pub use mitigator::{
    A1SignedRequest, FindingNotice, MitigationSummary, Mitigator, MitigatorState,
};
pub use mobiwatch::{Detector, MobiWatch, MobiWatchConfig};
pub use scale::{ScaleDeployment, ScaleOutcome};
pub use shard::ShardedMobiWatch;
pub use pipeline::{ClosedLoopOutcome, Pipeline, PipelineConfig, PipelineOutcome};
pub use smo::{A1ClientError, A1PolicyClient, DeployedModels, Smo, TrainingConfig};
