//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms with quantile estimation.
//!
//! Design constraints, in order:
//!
//! 1. **Lock-cheap hot path.** Handles ([`Counter`], [`Gauge`],
//!    [`Histogram`]) are `Arc`s over atomics; recording a sample is a few
//!    `fetch_add`s and never takes a lock. The registry's mutex guards only
//!    registration (get-or-create), which components do once at
//!    construction.
//! 2. **Deterministic exposition.** Metrics live in a `BTreeMap` keyed by
//!    `(name, labels)`, so snapshots and the Prometheus rendering are
//!    stably ordered run to run.
//! 3. **No dependencies.** Pure `std`, so every crate in the workspace can
//!    afford the import.
//!
//! Naming scheme (see DESIGN.md "Observability"): `xsec_<crate>_<name>`,
//! with `_total` for counters and `_us` for microsecond latencies.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration as StdDuration;

/// Default histogram buckets for microsecond latencies: roughly
/// logarithmic from 1 µs to 10 s, bracketing the O-RAN near-RT window
/// (10 ms – 1 s) with fine resolution on both sides. Values above the last
/// bound land in the implicit `+Inf` bucket.
pub const LATENCY_BUCKETS_US: [u64; 22] = [
    1,
    2,
    5,
    10,
    25,
    50,
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
];

/// A metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (`xsec_<crate>_<name>` by convention).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Ascending upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<u64>,
    /// One per bound, plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Latest exemplar pair; a zero trace id means "none yet".
    exemplar_value: AtomicU64,
    exemplar_trace: AtomicU64,
}

/// A fixed-bucket histogram over `u64` samples (microseconds by
/// convention), with p50/p90/p99/max estimation.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            exemplar_value: AtomicU64::new(0),
            exemplar_trace: AtomicU64::new(0),
        }))
    }

    /// Records one sample.
    pub fn observe(&self, value: u64) {
        let core = &self.0;
        let idx = core.bounds.partition_point(|b| *b < value);
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in microseconds.
    pub fn observe_duration(&self, d: StdDuration) {
        self.observe(d.as_micros() as u64);
    }

    /// Records one sample and, when `trace` is a real trace id (non-zero),
    /// remembers `(value, trace)` as the series' exemplar — the hook that
    /// links a latency quantile back to a causal incident trace.
    pub fn observe_with_exemplar(&self, value: u64, trace: u64) {
        self.observe(value);
        if trace != 0 {
            self.0.exemplar_value.store(value, Ordering::Relaxed);
            self.0.exemplar_trace.store(trace, Ordering::Relaxed);
        }
    }

    /// Records a wall-clock duration with a trace-id exemplar.
    pub fn observe_duration_with_exemplar(&self, d: StdDuration, trace: u64) {
        self.observe_with_exemplar(d.as_micros() as u64, trace);
    }

    /// The latest `(value, trace_id)` exemplar, if any sample carried one.
    pub fn exemplar(&self) -> Option<(u64, u64)> {
        let trace = self.0.exemplar_trace.load(Ordering::Relaxed);
        if trace == 0 {
            return None;
        }
        Some((self.0.exemplar_value.load(Ordering::Relaxed), trace))
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (exact, not bucket-estimated).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation inside the owning bucket — the standard
    /// `histogram_quantile` estimate. Unlike Prometheus, the estimate is
    /// clamped to the exact observed max, so a high quantile never reports
    /// a value no sample reached. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let core = &self.0;
        let counts: Vec<u64> =
            core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, n) in counts.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            if cum + n >= rank {
                let lower = if i == 0 { 0 } else { core.bounds[i - 1] };
                let upper = if i < core.bounds.len() {
                    core.bounds[i]
                } else {
                    // Overflow bucket: the exact max bounds it above.
                    self.max().max(lower)
                };
                let frac = (rank - cum) as f64 / *n as f64;
                let estimate = lower as f64 + frac * (upper - lower) as f64;
                return estimate.min(self.max() as f64);
            }
            cum += n;
        }
        self.max() as f64
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs; the final entry is
    /// the `+Inf` bucket reported as `(u64::MAX, total)`.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let core = &self.0;
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(core.buckets.len());
        for (i, bucket) in core.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            let le = core.bounds.get(i).copied().unwrap_or(u64::MAX);
            out.push((le, cum));
        }
        out
    }
}

#[derive(Debug, Clone)]
enum MetricHandle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl MetricHandle {
    fn kind(&self) -> &'static str {
        match self {
            MetricHandle::Counter(_) => "counter",
            MetricHandle::Gauge(_) => "gauge",
            MetricHandle::Histogram(_) => "histogram",
        }
    }
}

/// The registry: get-or-create metric handles, snapshot everything.
///
/// Cloning shares the underlying store — components hold clones and
/// register their own metrics.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<MetricKey, MetricHandle>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.lock().map(|m| m.len()).unwrap_or(0);
        write!(f, "MetricsRegistry({n} metrics)")
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, key: MetricKey, make: impl FnOnce() -> MetricHandle) -> MetricHandle {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        metrics.entry(key).or_insert_with(make).clone()
    }

    /// Gets or creates a counter.
    ///
    /// # Panics
    /// Panics if the same `(name, labels)` was registered as another type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(MetricKey::new(name, labels), || {
            MetricHandle::Counter(Counter::default())
        }) {
            MetricHandle::Counter(c) => c,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Gets or creates a gauge.
    ///
    /// # Panics
    /// Panics if the same `(name, labels)` was registered as another type.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(MetricKey::new(name, labels), || {
            MetricHandle::Gauge(Gauge::default())
        }) {
            MetricHandle::Gauge(g) => g,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Gets or creates a histogram with the default latency buckets.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with(name, labels, &LATENCY_BUCKETS_US)
    }

    /// Gets or creates a histogram with explicit bucket bounds (used on
    /// first registration; later calls return the existing histogram).
    ///
    /// # Panics
    /// Panics if the same `(name, labels)` was registered as another type.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Histogram {
        match self.get_or_insert(MetricKey::new(name, labels), || {
            MetricHandle::Histogram(Histogram::new(bounds))
        }) {
            MetricHandle::Histogram(h) => h,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().expect("metrics registry poisoned").len()
    }

    /// Whether nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every metric, stably ordered by key.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let samples = metrics
            .iter()
            .map(|(key, handle)| MetricSample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match handle {
                    MetricHandle::Counter(c) => SampleValue::Counter(c.get()),
                    MetricHandle::Gauge(g) => SampleValue::Gauge(g.get()),
                    MetricHandle::Histogram(h) => SampleValue::Histogram(HistogramSummary {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                        mean: h.mean(),
                        p50: h.quantile(0.50),
                        p90: h.quantile(0.90),
                        p99: h.quantile(0.99),
                        buckets: h.cumulative_buckets(),
                        exemplar: h.exemplar(),
                    }),
                },
            })
            .collect();
        Snapshot { samples }
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// Quantile summary of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Mean sample.
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Cumulative `(le, count)` pairs, `+Inf` reported as `u64::MAX`.
    pub buckets: Vec<(u64, u64)>,
    /// Latest `(value, trace_id)` exemplar, when a sample carried one.
    pub exemplar: Option<(u64, u64)>,
}

/// One metric's snapshot value.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSummary),
}

/// One `(name, labels)` entry of a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SampleValue,
}

/// A point-in-time copy of a registry, ready for exposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Every metric, ordered by `(name, labels)`.
    pub samples: Vec<MetricSample>,
}

impl Snapshot {
    /// The counter with this exact name, summed across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match &s.value {
                SampleValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Every histogram whose name matches, with its labels.
    pub fn histograms(&self, name: &str) -> Vec<(&MetricSample, &HistogramSummary)> {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match &s.value {
                SampleValue::Histogram(h) => Some((s, h)),
                _ => None,
            })
            .collect()
    }

    /// Total sample count across every histogram with this name.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.histograms(name).iter().map(|(_, h)| h.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("xsec_test_total", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same identity → same handle.
        assert_eq!(registry.counter("xsec_test_total", &[]).get(), 5);
        let g = registry.gauge("xsec_test_depth", &[("q", "main")]);
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn label_order_does_not_split_identity() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("m", &[("a", "1"), ("b", "2")]);
        a.inc();
        let b = registry.counter("m", &[("b", "2"), ("a", "1")]);
        assert_eq!(b.get(), 1);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("m", &[]);
        registry.gauge("m", &[]);
    }

    #[test]
    fn histogram_exact_bucket_quantile() {
        // 5 samples ≤ 50, 5 samples in (50, 100]: the median lands exactly
        // on the first bucket's cumulative count → exactly its upper bound.
        let h = Histogram::new(&[50, 100]);
        for _ in 0..5 {
            h.observe(30);
        }
        for _ in 0..5 {
            h.observe(80);
        }
        assert_eq!(h.quantile(0.5), 50.0);
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 80);
    }

    #[test]
    fn histogram_interpolated_quantile() {
        // All 10 samples in the (50, 100] bucket. p50 → rank 5 of 10 →
        // halfway through the bucket: 50 + 0.5·(100-50) = 75.
        let h = Histogram::new(&[50, 100]);
        for _ in 0..9 {
            h.observe(60);
        }
        h.observe(95);
        assert_eq!(h.quantile(0.5), 75.0);
        // p99 → rank 10 → the bucket's upper bound (100), clamped to the
        // exact max so the estimate never exceeds any observed sample.
        assert_eq!(h.quantile(0.99), 95.0);
        // First bucket interpolates from 0 (clamped to the max, 60).
        let h = Histogram::new(&[100]);
        h.observe(10);
        h.observe(60);
        assert_eq!(h.quantile(0.5), 50.0);
        assert_eq!(h.quantile(1.0), 60.0);
    }

    #[test]
    fn histogram_overflow_bucket_uses_exact_max() {
        let h = Histogram::new(&[10]);
        h.observe(1_000);
        h.observe(4_000);
        assert_eq!(h.max(), 4_000);
        // Both samples overflow; quantiles interpolate between the last
        // bound and the exact max.
        assert!(h.quantile(0.99) <= 4_000.0);
        assert!(h.quantile(0.99) > 10.0);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets, vec![(10, 0), (u64::MAX, 2)]);
    }

    #[test]
    fn exemplar_links_quantiles_to_traces() {
        let h = Histogram::new(&[100]);
        h.observe(10);
        assert_eq!(h.exemplar(), None);
        h.observe_with_exemplar(40, 0); // untraced sample: no exemplar
        assert_eq!(h.exemplar(), None);
        h.observe_with_exemplar(55, 7);
        assert_eq!(h.exemplar(), Some((55, 7)));
        assert_eq!(h.count(), 3, "exemplar observes still count as samples");
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new(&LATENCY_BUCKETS_US);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn concurrent_counters_and_histograms_do_not_drop_samples() {
        let registry = MetricsRegistry::new();
        let mut handles = Vec::new();
        for t in 0..8 {
            let registry = registry.clone();
            handles.push(std::thread::spawn(move || {
                // Half the threads race on one shared counter identity,
                // all race registration of per-thread metrics.
                let shared = registry.counter("xsec_test_shared_total", &[]);
                let own = registry.counter("xsec_test_thread_total", &[("t", &t.to_string())]);
                let h = registry.histogram("xsec_test_latency_us", &[]);
                for i in 0..1_000u64 {
                    shared.inc();
                    own.inc();
                    h.observe(i % 97 + 1);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter_total("xsec_test_shared_total"), 8_000);
        assert_eq!(snapshot.counter_total("xsec_test_thread_total"), 8_000);
        assert_eq!(snapshot.histogram_count("xsec_test_latency_us"), 8_000);
    }

    #[test]
    fn snapshot_is_stably_ordered() {
        let registry = MetricsRegistry::new();
        registry.counter("b_metric", &[]).inc();
        registry.counter("a_metric", &[("z", "1")]).inc();
        registry.counter("a_metric", &[("a", "1")]).inc();
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a_metric", "a_metric", "b_metric"]);
    }
}
