//! The span/event tracing facade.
//!
//! A [`Tracer`] is a cheap-clone handle over: a level filter (one atomic
//! read on the hot path), a bounded ring buffer of recent events (always
//! on, for post-run inspection), and an optional pluggable [`EventSink`]
//! (stderr for CLI binaries, anything else for tests). Spans are RAII
//! guards that emit a close event with their elapsed time and can feed a
//! latency [`Histogram`](crate::Histogram) directly.
//!
//! The `XSEC_LOG` environment variable (`off`, `error`, `warn`, `info`,
//! `debug`, `trace`) picks the level for sinks installed via
//! [`Tracer::stderr`] / [`crate::Obs::for_cli`].

use crate::metrics::Histogram;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The pipeline cannot proceed correctly.
    Error = 1,
    /// Something degraded but handled.
    Warn = 2,
    /// Progress and lifecycle messages (the default).
    Info = 3,
    /// Per-stage details, span closures.
    Debug = 4,
    /// Per-record noise.
    Trace = 5,
}

impl Level {
    /// Short uppercase tag for rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Parses an `XSEC_LOG`-style level name. `None` for unknown names and
    /// for `off`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Severity.
    pub level: Level,
    /// Component that emitted it (crate or binary name by convention).
    pub target: String,
    /// Rendered message.
    pub message: String,
    /// For span-close events: the span's wall-clock duration in µs.
    pub elapsed_us: Option<u64>,
}

/// Where emitted events go besides the ring buffer.
pub trait EventSink: Send {
    /// Delivers one event that passed the level filter.
    fn emit(&mut self, record: &EventRecord);
}

/// Renders events to stderr as `[LEVEL target] message`.
///
/// Each event is formatted into one buffer and delivered with a single
/// `write_all` on the locked stream, so concurrent emitters (sharded
/// scoring workers, the RIC pump) never interleave half-lines.
#[derive(Debug, Default)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn emit(&mut self, record: &EventRecord) {
        use std::io::Write as _;
        let mut line = match record.elapsed_us {
            Some(us) => format!(
                "[{:5} {}] {} ({:.1} ms)",
                record.level.as_str(),
                record.target,
                record.message,
                us as f64 / 1000.0
            ),
            None => {
                format!("[{:5} {}] {}", record.level.as_str(), record.target, record.message)
            }
        };
        line.push('\n');
        // Best-effort, like eprintln! — but line-atomic.
        let _ = std::io::stderr().lock().write_all(line.as_bytes());
    }
}

/// A sink that appends into a shared vector — for tests.
#[derive(Debug, Clone, Default)]
pub struct VecSink(pub Arc<Mutex<Vec<EventRecord>>>);

impl EventSink for VecSink {
    fn emit(&mut self, record: &EventRecord) {
        self.0.lock().expect("vec sink poisoned").push(record.clone());
    }
}

struct TracerInner {
    max_level: AtomicU8,
    capacity: usize,
    ring: Mutex<VecDeque<EventRecord>>,
    sink: Mutex<Option<Box<dyn EventSink>>>,
}

/// The event/span recorder handle. Clones share state.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(Level::Info)
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracer(max_level={})", self.max_level().as_str())
    }
}

const RING_CAPACITY: usize = 1024;

impl Tracer {
    /// A sink-less tracer recording into the ring at `max_level`.
    pub fn new(max_level: Level) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                max_level: AtomicU8::new(max_level as u8),
                capacity: RING_CAPACITY,
                ring: Mutex::new(VecDeque::new()),
                sink: Mutex::new(None),
            }),
        }
    }

    /// A tracer with a [`StderrSink`], filtered at the level named by
    /// `XSEC_LOG` (default `info`; `XSEC_LOG=off` silences the sink but
    /// keeps the ring at `info`).
    pub fn stderr() -> Self {
        let var = std::env::var("XSEC_LOG").unwrap_or_default();
        let tracer = Tracer::new(Level::parse(&var).unwrap_or(Level::Info));
        if !var.trim().eq_ignore_ascii_case("off") {
            tracer.set_sink(Box::new(StderrSink));
        }
        tracer
    }

    /// The active level filter.
    pub fn max_level(&self) -> Level {
        Level::from_u8(self.inner.max_level.load(Ordering::Relaxed))
    }

    /// Changes the level filter.
    pub fn set_max_level(&self, level: Level) {
        self.inner.max_level.store(level as u8, Ordering::Relaxed);
    }

    /// Installs (or replaces) the sink.
    pub fn set_sink(&self, sink: Box<dyn EventSink>) {
        *self.inner.sink.lock().expect("tracer sink poisoned") = Some(sink);
    }

    /// Whether an event at `level` would be recorded — check before
    /// formatting an expensive message (the macros do).
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.max_level()
    }

    /// Records one event (after the filter; the macros pre-check).
    pub fn emit(&self, level: Level, target: &str, message: String) {
        self.emit_record(EventRecord {
            level,
            target: target.to_string(),
            message,
            elapsed_us: None,
        });
    }

    fn emit_record(&self, record: EventRecord) {
        if !self.enabled(record.level) {
            return;
        }
        {
            let mut ring = self.inner.ring.lock().expect("tracer ring poisoned");
            if ring.len() == self.inner.capacity {
                ring.pop_front();
            }
            ring.push_back(record.clone());
        }
        if let Some(sink) = self.inner.sink.lock().expect("tracer sink poisoned").as_mut() {
            sink.emit(&record);
        }
    }

    /// Opens a span; the returned guard emits a Debug-level close event
    /// with the elapsed time when dropped.
    pub fn span(&self, target: &str, name: &str) -> SpanGuard {
        SpanGuard {
            tracer: self.clone(),
            target: target.to_string(),
            name: name.to_string(),
            started: Instant::now(),
            histogram: None,
        }
    }

    /// Recent events, oldest first (bounded ring).
    pub fn recent(&self) -> Vec<EventRecord> {
        self.inner.ring.lock().expect("tracer ring poisoned").iter().cloned().collect()
    }
}

/// RAII span: measures from creation to drop.
pub struct SpanGuard {
    tracer: Tracer,
    target: String,
    name: String,
    started: Instant,
    histogram: Option<Histogram>,
}

impl SpanGuard {
    /// Also records the span's duration into `histogram` on drop —
    /// the one-liner that ties a pipeline stage to its latency metric.
    pub fn with_histogram(mut self, histogram: Histogram) -> Self {
        self.histogram = Some(histogram);
        self
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        if let Some(h) = &self.histogram {
            h.observe_duration(elapsed);
        }
        if self.tracer.enabled(Level::Debug) {
            self.tracer.emit_record(EventRecord {
                level: Level::Debug,
                target: std::mem::take(&mut self.target),
                message: std::mem::take(&mut self.name),
                elapsed_us: Some(elapsed.as_micros() as u64),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_filtering_and_ring() {
        let tracer = Tracer::new(Level::Info);
        assert!(tracer.enabled(Level::Error));
        assert!(!tracer.enabled(Level::Debug));
        tracer.emit(Level::Info, "test", "kept".into());
        tracer.emit(Level::Debug, "test", "dropped".into());
        let recent = tracer.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].message, "kept");
    }

    #[test]
    fn sink_receives_filtered_events() {
        let sink = VecSink::default();
        let seen = sink.0.clone();
        let tracer = Tracer::new(Level::Warn);
        tracer.set_sink(Box::new(sink));
        tracer.emit(Level::Error, "t", "a".into());
        tracer.emit(Level::Info, "t", "b".into());
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].level, Level::Error);
    }

    #[test]
    fn span_records_into_histogram_and_ring() {
        let tracer = Tracer::new(Level::Debug);
        let h = crate::MetricsRegistry::new().histogram("span_us", &[]);
        {
            let _guard = tracer.span("test", "stage").with_histogram(h.clone());
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1_000, "span shorter than the sleep: {}", h.max());
        let recent = tracer.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].message, "stage");
        assert!(recent[0].elapsed_us.is_some());
    }

    #[test]
    fn span_histogram_still_records_when_filtered() {
        // The metric must not depend on the log level.
        let tracer = Tracer::new(Level::Error);
        let h = crate::MetricsRegistry::new().histogram("span_us", &[]);
        drop(tracer.span("test", "stage").with_histogram(h.clone()));
        assert_eq!(h.count(), 1);
        assert!(tracer.recent().is_empty());
    }

    #[test]
    fn ring_is_bounded() {
        let tracer = Tracer::new(Level::Info);
        for i in 0..(RING_CAPACITY + 10) {
            tracer.emit(Level::Info, "t", format!("{i}"));
        }
        let recent = tracer.recent();
        assert_eq!(recent.len(), RING_CAPACITY);
        assert_eq!(recent[0].message, "10");
    }

    #[test]
    fn level_parse() {
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse("nonsense"), None);
    }
}
