//! Exposition: Prometheus text format and JSON snapshots.
//!
//! Both renderers work off a [`Snapshot`], so one consistent point-in-time
//! view backs `metrics.prom` and `metrics.json`. The JSON is hand-rolled
//! (the crate is dependency-free) and flat: one object per metric with its
//! labels and either a scalar value or the histogram summary.

use crate::metrics::{MetricSample, SampleValue, Snapshot};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Escapes a Prometheus label value: backslash, double quote, newline.
fn escape_prom_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes a JSON string body.
fn escape_json(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            other => out.push(other),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_prom_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_prom_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn sample_kind(sample: &MetricSample) -> &'static str {
    match sample.value {
        SampleValue::Counter(_) => "counter",
        SampleValue::Gauge(_) => "gauge",
        SampleValue::Histogram(_) => "histogram",
    }
}

impl Snapshot {
    /// Renders the snapshot in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for sample in &self.samples {
            if last_name != Some(sample.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {}", sample.name, sample_kind(sample));
                last_name = Some(sample.name.as_str());
            }
            match &sample.value {
                SampleValue::Counter(v) => {
                    let _ =
                        writeln!(out, "{}{} {v}", sample.name, label_block(&sample.labels, None));
                }
                SampleValue::Gauge(v) => {
                    let _ =
                        writeln!(out, "{}{} {v}", sample.name, label_block(&sample.labels, None));
                }
                SampleValue::Histogram(h) => {
                    // OpenMetrics-style exemplar on the bucket that owns
                    // the exemplified sample, linking the quantile back to
                    // its incident trace id.
                    let exemplar_le = h.exemplar.and_then(|(value, _)| {
                        h.buckets.iter().map(|(le, _)| *le).find(|le| *le >= value)
                    });
                    for (le, cum) in &h.buckets {
                        let suffix = match (h.exemplar, exemplar_le) {
                            (Some((value, trace)), Some(owner)) if owner == *le => {
                                format!(" # {{trace_id=\"{trace}\"}} {value}")
                            }
                            _ => String::new(),
                        };
                        let le = if *le == u64::MAX {
                            "+Inf".to_string()
                        } else {
                            le.to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}{suffix}",
                            sample.name,
                            label_block(&sample.labels, Some(("le", &le))),
                        );
                    }
                    let block = label_block(&sample.labels, None);
                    let _ = writeln!(out, "{}_sum{block} {}", sample.name, h.sum);
                    let _ = writeln!(out, "{}_count{block} {}", sample.name, h.count);
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON document:
    /// `{"metrics": [{"name": ..., "labels": {...}, "type": ..., ...}]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[\n");
        for (i, sample) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let labels = sample
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"labels\":{{{labels}}},\"type\":\"{}\"",
                escape_json(&sample.name),
                sample_kind(sample),
            );
            match &sample.value {
                SampleValue::Counter(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                SampleValue::Gauge(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                SampleValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        ",\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\
                         \"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3}",
                        h.count, h.sum, h.max, h.mean, h.p50, h.p90, h.p99,
                    );
                    if let Some((value, trace)) = h.exemplar {
                        let _ = write!(
                            out,
                            ",\"exemplar\":{{\"value\":{value},\"trace_id\":{trace}}}",
                        );
                    }
                }
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes `<stem>.prom` and `<stem>.json` under `dir` (created if
    /// missing); returns both paths. Each file lands via temp-file +
    /// rename, so a concurrent reader (CI artifact scrape, a scraper
    /// polling mid-run) never observes a partially written exposition.
    pub fn write_files(&self, dir: &Path, stem: &str) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let prom = dir.join(format!("{stem}.prom"));
        let json = dir.join(format!("{stem}.json"));
        atomic_write(&prom, &self.render_prometheus())?;
        atomic_write(&json, &self.render_json())?;
        Ok((prom, json))
    }
}

/// Writes `contents` to `path` by writing a sibling `<path>.tmp` and
/// renaming it over the target — atomic on POSIX, so readers see either
/// the old file or the new one, never a torn write.
pub(crate) fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use crate::metrics::MetricsRegistry;

    #[test]
    fn prometheus_rendering_covers_all_types() {
        let registry = MetricsRegistry::new();
        registry.counter("xsec_test_total", &[("agent", "gnb-1")]).add(3);
        registry.gauge("xsec_test_depth", &[]).set(-2);
        let h = registry.histogram_with("xsec_test_latency_us", &[], &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5_000);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE xsec_test_total counter"));
        assert!(text.contains("xsec_test_total{agent=\"gnb-1\"} 3"));
        assert!(text.contains("xsec_test_depth -2"));
        assert!(text.contains("xsec_test_latency_us_bucket{le=\"10\"} 1"));
        assert!(text.contains("xsec_test_latency_us_bucket{le=\"100\"} 2"));
        assert!(text.contains("xsec_test_latency_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("xsec_test_latency_us_sum 5055"));
        assert!(text.contains("xsec_test_latency_us_count 3"));
        // One TYPE line per metric name.
        assert_eq!(text.matches("# TYPE xsec_test_latency_us").count(), 1);
    }

    #[test]
    fn prometheus_label_escaping() {
        let registry = MetricsRegistry::new();
        registry.counter("m", &[("k", "a\"b\\c\nd")]).inc();
        let text = registry.render_prometheus();
        assert!(text.contains(r#"m{k="a\"b\\c\nd"} 1"#), "got: {text}");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let registry = MetricsRegistry::new();
        registry.counter("m", &[("k", "quote\"backslash\\tab\t")]).inc();
        registry.histogram_with("h_us", &[], &[100]).observe(40);
        let json = registry.snapshot().render_json();
        assert!(json.contains(r#""k":"quote\"backslash\\tab\t""#), "got: {json}");
        assert!(json.contains(r#""name":"h_us","labels":{},"type":"histogram","count":1"#));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON dependency).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn write_files_round_trips() {
        let dir = std::env::temp_dir().join("xsec-obs-test-export");
        let registry = MetricsRegistry::new();
        registry.counter("m", &[]).inc();
        let (prom, json) = registry.snapshot().write_files(&dir, "metrics").unwrap();
        assert!(std::fs::read_to_string(&prom).unwrap().contains("m 1"));
        assert!(std::fs::read_to_string(json).unwrap().contains("\"name\":\"m\""));
        // The atomic write must not leave its temp file behind.
        let mut tmp = prom.into_os_string();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists(), "temp file left behind");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn exemplars_render_in_both_expositions() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram_with("h_us", &[], &[10, 100]);
        h.observe(5);
        h.observe_with_exemplar(40, 7);
        let text = registry.render_prometheus();
        assert!(
            text.contains("h_us_bucket{le=\"100\"} 2 # {trace_id=\"7\"} 40"),
            "exemplar missing from its owning bucket: {text}"
        );
        // Only the owning bucket carries the exemplar.
        assert_eq!(text.matches("trace_id").count(), 1);
        let json = registry.snapshot().render_json();
        assert!(json.contains("\"exemplar\":{\"value\":40,\"trace_id\":7}"), "got: {json}");
    }
}
