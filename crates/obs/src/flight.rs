//! The flight recorder: causal trace contexts plus always-on bounded event
//! rings that turn a detection into a replayable incident file.
//!
//! Every MobiFlow record admitted at the E2 agent gets a **trace id** from a
//! counter-based generator — no wall clock, no randomness — so two replays
//! of the same seeded scenario allocate identical ids. The id rides the
//! record through featurize → inference → alert → analyzer verdict → policy
//! decision → Control Request (as an optional TLV) → gNB enforcement → ack,
//! and each stage drops a fixed-size [`FlightEvent`] into a bounded ring.
//!
//! Recording is two-tier so the hot path stays cheap:
//!
//! * **Hot stages** ([`TraceStage::Ingest`], [`TraceStage::Inference`])
//!   write into fixed-capacity [`FlightRing`]s — one short mutex-guarded
//!   array write per event, steady-state zero allocation, oldest events
//!   overwritten on wrap.
//! * **Incident stages** (everything from the alert on) only exist for
//!   detections, so they append straight to the bounded incident store.
//!
//! When a detection fires, [`FlightRecorder::mark_incident`] snapshots the
//! causal slice for that trace id out of every ring into an [`Incident`];
//! later stages extend it via [`FlightRecorder::record_stage`]. Incidents
//! export as a JSONL decision trace ([`FlightRecorder::incidents_jsonl`])
//! and a Chrome/Perfetto `trace.json`
//! ([`FlightRecorder::perfetto_json`]); both order-normalize events by
//! `(trace, time, stage)` so the export is invariant to how many scoring
//! shards raced to produce it.
//!
//! Span identity is positional, not allocated: a span is `(trace id,
//! stage)`, with the parent edge implied by the fixed stage order. Worker
//! threads therefore never mint ids, which is what keeps a 4-shard run's
//! incident trace byte-identical to a 1-shard run's.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Capacity of each per-thread event ring. Sized to hold several ingest
/// buckets' worth of hot-path events, so a detection fired at batch-merge
/// time still finds its ingest/inference events un-overwritten.
pub const FLIGHT_RING_CAPACITY: usize = 4096;

/// Capacity of the bounded msg-id → trace-id slot map.
const TRACE_SLOTS: usize = 16_384;

/// Maximum incidents retained per run; later detections count as dropped.
pub const MAX_INCIDENTS: usize = 64;

/// Maximum authorization denials retained per run; later ones only count.
pub const MAX_DENIALS: usize = 256;

/// One stage of the detection→enforcement causal chain. The numeric order
/// *is* the causal order: each stage's parent span is the previous stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceStage {
    /// Record admitted at the E2 agent (`a` = DU UE id, `b` = msg id).
    Ingest = 0,
    /// Model scored the record (`a` = score bits, `b` = threshold bits).
    Inference = 1,
    /// Detection fired (`a` = score bits, `b` = threshold bits).
    Alert = 2,
    /// Analyzer verdict (`a` = confirmed, `b` = needs human review).
    Verdict = 3,
    /// Policy decision (`a` = confidence bits, `b` = actions issued).
    Policy = 4,
    /// Control Request shipped (`a` = action id, `b` = payload length).
    ControlShip = 5,
    /// gNB enforced the action (`a` = action id, `b` = action kind).
    Enforce = 6,
    /// Ack correlated at the RIC (`a` = success, `b` = detection→ack µs).
    Ack = 7,
}

impl TraceStage {
    /// Every stage, in causal order.
    pub const ALL: [TraceStage; 8] = [
        TraceStage::Ingest,
        TraceStage::Inference,
        TraceStage::Alert,
        TraceStage::Verdict,
        TraceStage::Policy,
        TraceStage::ControlShip,
        TraceStage::Enforce,
        TraceStage::Ack,
    ];

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Ingest => "ingest",
            TraceStage::Inference => "inference",
            TraceStage::Alert => "alert",
            TraceStage::Verdict => "verdict",
            TraceStage::Policy => "policy",
            TraceStage::ControlShip => "control_ship",
            TraceStage::Enforce => "enforce",
            TraceStage::Ack => "ack",
        }
    }
}

/// The causal context one stage runs under: which trace it belongs to and
/// where it sits in the chain. Span ids are positional (`stage + 1`, parent
/// is the previous stage's span, 0 at the root), so contexts are derivable
/// anywhere from `(trace, stage)` without cross-thread id allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace id (counter-allocated, starts at 1; 0 means "untraced").
    pub trace: u64,
    /// This stage's span id within the trace.
    pub span: u32,
    /// Parent span id (0 for the root ingest span).
    pub parent: u32,
}

impl TraceCtx {
    /// The context for `stage` of trace `trace`.
    pub fn at(trace: u64, stage: TraceStage) -> TraceCtx {
        TraceCtx { trace, span: stage as u32 + 1, parent: stage as u32 }
    }
}

/// One fixed-size flight-recorder event. `a`/`b` are stage-specific
/// payloads (see [`TraceStage`]); f32 scores travel as `to_bits()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Owning trace id (0 = untraced; such events are never recorded).
    pub trace: u64,
    /// The causal stage.
    pub stage: TraceStage,
    /// Virtual timestamp in microseconds (sim time, never wall clock, so
    /// replays produce identical exports).
    pub at_us: u64,
    /// First stage-specific payload word.
    pub a: u64,
    /// Second stage-specific payload word.
    pub b: u64,
}

impl FlightEvent {
    /// Order-normalization key: time, then causal stage, then payload.
    fn sort_key(&self) -> (u64, u8, u64, u64) {
        (self.at_us, self.stage as u8, self.a, self.b)
    }
}

#[derive(Debug, Default)]
struct RingBuf {
    events: Vec<FlightEvent>,
    next: usize,
}

impl RingBuf {
    fn push(&mut self, event: FlightEvent) {
        if self.events.len() < FLIGHT_RING_CAPACITY {
            self.events.push(event);
        } else {
            self.events[self.next] = event;
        }
        self.next = (self.next + 1) % FLIGHT_RING_CAPACITY;
    }
}

/// A handle onto one bounded event ring. Components that record hot-path
/// stages acquire one via [`FlightRecorder::ring`] (typically one per
/// recording thread) and push through it; pushing is a single short lock
/// over a fixed-size buffer and allocates nothing in steady state.
#[derive(Debug, Clone, Default)]
pub struct FlightRing {
    buf: Arc<Mutex<RingBuf>>,
}

impl FlightRing {
    /// Records one hot-path event. Untraced events (`trace == 0`) are
    /// skipped, which is how a disabled recorder keeps the hot path free.
    pub fn record(&self, event: FlightEvent) {
        if event.trace == 0 {
            return;
        }
        self.buf.lock().expect("flight ring poisoned").push(event);
    }

    fn snapshot_trace(&self, trace: u64, out: &mut Vec<FlightEvent>) {
        let buf = self.buf.lock().expect("flight ring poisoned");
        out.extend(buf.events.iter().filter(|e| e.trace == trace));
    }
}

/// One detection's causal slice: every flight event recorded for its trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// The trace id the detection fired on.
    pub trace: u64,
    /// Events for this trace, order-normalized at export time.
    pub events: Vec<FlightEvent>,
}

#[derive(Debug, Default)]
struct IncidentStore {
    incidents: Vec<Incident>,
    dropped: u64,
}

/// One recorded authorization denial. Denials are not part of any causal
/// trace (the denied action never happened, so no trace id was allocated
/// for it — which is also what keeps granted-path exports byte-identical
/// whether enforcement is on or off); they carry their own sequence number
/// instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenialRecord {
    /// Per-recorder denial sequence number, starting at 1.
    pub seq: u64,
    /// The denied principal.
    pub xapp: String,
    /// The missing capability label (`class:target`).
    pub capability: String,
}

#[derive(Debug, Default)]
struct DenialStore {
    records: Vec<DenialRecord>,
    next_seq: u64,
    dropped: u64,
}

#[derive(Debug)]
struct RecorderInner {
    enabled: AtomicBool,
    next_trace: AtomicU64,
    /// `msg_id % TRACE_SLOTS` → `(msg_id + 1, trace)`; sized lazily so an
    /// unused recorder costs nothing.
    slots: Mutex<Vec<(u64, u64)>>,
    rings: Mutex<Vec<FlightRing>>,
    incidents: Mutex<IncidentStore>,
    denials: Mutex<DenialStore>,
}

/// The flight recorder: trace-id generator, ring registry, and incident
/// store. Cloning shares the recorder; [`Default`] builds a fresh, enabled
/// one (the recorder is always-on — [`FlightRecorder::set_enabled`] exists
/// for overhead measurement).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                enabled: AtomicBool::new(true),
                next_trace: AtomicU64::new(1),
                slots: Mutex::new(Vec::new()),
                rings: Mutex::new(Vec::new()),
                incidents: Mutex::new(IncidentStore::default()),
                denials: Mutex::new(DenialStore::default()),
            }),
        }
    }
}

impl FlightRecorder {
    /// A fresh, enabled recorder.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Turns recording on or off. Off, `begin_trace` returns 0 and every
    /// downstream record call short-circuits on the untraced id.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the recorder is currently recording.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Registers and returns a new bounded event ring. Acquire one per
    /// recording thread at attach time, not per event.
    pub fn ring(&self) -> FlightRing {
        let ring = FlightRing::default();
        self.inner.rings.lock().expect("flight rings poisoned").push(ring.clone());
        ring
    }

    /// Allocates the next trace id for `msg_id` and remembers the mapping
    /// in a bounded slot map so downstream stages can recover the trace
    /// from the record alone. Returns 0 when disabled.
    ///
    /// Must be called from the (single) ingest path so the counter order —
    /// and therefore every replayed id — is deterministic.
    pub fn begin_trace(&self, msg_id: u64) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let trace = self.inner.next_trace.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.inner.slots.lock().expect("trace slots poisoned");
        if slots.is_empty() {
            slots.resize(TRACE_SLOTS, (0, 0));
        }
        slots[(msg_id % TRACE_SLOTS as u64) as usize] = (msg_id.wrapping_add(1), trace);
        trace
    }

    /// The trace id allocated for `msg_id`, or 0 when unknown (never
    /// ingested, disabled at ingest, or evicted from the slot map).
    pub fn trace_for(&self, msg_id: u64) -> u64 {
        let slots = self.inner.slots.lock().expect("trace slots poisoned");
        match slots.get((msg_id % TRACE_SLOTS.max(1) as u64) as usize) {
            Some((owner, trace)) if *owner == msg_id.wrapping_add(1) => *trace,
            _ => 0,
        }
    }

    /// Promotes `trace` to an incident: snapshots its causal slice out of
    /// every registered ring. Idempotent per trace; at most
    /// [`MAX_INCIDENTS`] are kept and the rest are counted as dropped.
    pub fn mark_incident(&self, trace: u64) {
        if trace == 0 || !self.enabled() {
            return;
        }
        let mut store = self.inner.incidents.lock().expect("incident store poisoned");
        if store.incidents.iter().any(|i| i.trace == trace) {
            return;
        }
        if store.incidents.len() >= MAX_INCIDENTS {
            store.dropped += 1;
            return;
        }
        let mut events = Vec::new();
        for ring in self.inner.rings.lock().expect("flight rings poisoned").iter() {
            ring.snapshot_trace(trace, &mut events);
        }
        events.sort_by_key(FlightEvent::sort_key);
        events.dedup();
        store.incidents.push(Incident { trace, events });
    }

    /// Appends a post-detection stage event to its incident, if the trace
    /// was marked. Incident stages are rare (per detection, not per
    /// record), so they bypass the rings and can never be overwritten.
    pub fn record_stage(&self, event: FlightEvent) {
        if event.trace == 0 || !self.enabled() {
            return;
        }
        let mut store = self.inner.incidents.lock().expect("incident store poisoned");
        if let Some(incident) = store.incidents.iter_mut().find(|i| i.trace == event.trace) {
            incident.events.push(event);
        }
    }

    /// Records one authorization denial (rogue publish, ungranted control
    /// kind, forged A1 envelope, …) so it shows up in `incidents.jsonl`
    /// alongside the causal traces. Bounded at [`MAX_DENIALS`]; overflow
    /// bumps the sequence counter but keeps no record.
    pub fn record_denial(&self, xapp: &str, capability: &str) {
        if !self.enabled() {
            return;
        }
        let mut store = self.inner.denials.lock().expect("denial store poisoned");
        store.next_seq += 1;
        if store.records.len() >= MAX_DENIALS {
            store.dropped += 1;
            return;
        }
        let seq = store.next_seq;
        store.records.push(DenialRecord {
            seq,
            xapp: xapp.to_string(),
            capability: capability.to_string(),
        });
    }

    /// Every retained denial, in record order.
    pub fn denials(&self) -> Vec<DenialRecord> {
        self.inner.denials.lock().expect("denial store poisoned").records.clone()
    }

    /// Denials recorded after the denial store filled up.
    pub fn dropped_denials(&self) -> u64 {
        self.inner.denials.lock().expect("denial store poisoned").dropped
    }

    /// Every retained incident, events order-normalized and deduplicated.
    pub fn incidents(&self) -> Vec<Incident> {
        let store = self.inner.incidents.lock().expect("incident store poisoned");
        let mut out = store.incidents.clone();
        for incident in &mut out {
            incident.events.sort_by_key(FlightEvent::sort_key);
            incident.events.dedup();
        }
        out.sort_by_key(|i| i.trace);
        out
    }

    /// Detections that arrived after the incident store filled up.
    pub fn dropped_incidents(&self) -> u64 {
        self.inner.incidents.lock().expect("incident store poisoned").dropped
    }

    /// Renders every incident as a JSONL decision trace: one JSON object
    /// per event with stage-specific field names, grouped by trace in
    /// allocation order, followed by one `authz_deny` line per recorded
    /// denial (trace 0 — the denied action never entered the causal
    /// chain). A run without denials renders exactly as it did before
    /// authorization existed. Stable across replays and shard counts.
    pub fn incidents_jsonl(&self) -> String {
        let mut out = String::new();
        for incident in self.incidents() {
            for event in &incident.events {
                out.push_str(&event_jsonl(event));
                out.push('\n');
            }
        }
        for denial in self.denials() {
            out.push_str(&format!(
                "{{\"trace\":0,\"stage\":\"authz_deny\",\"seq\":{},\"xapp\":\"{}\",\
                 \"capability\":\"{}\"}}\n",
                denial.seq,
                escape_json(&denial.xapp),
                escape_json(&denial.capability),
            ));
        }
        out
    }

    /// Renders every incident as a Chrome/Perfetto trace-event JSON file
    /// (open in <https://ui.perfetto.dev> or `chrome://tracing`). Each
    /// trace id becomes one "process"; each stage one complete (`"X"`)
    /// span, with its duration stretched to the next event so the causal
    /// chain reads as a cascade. Every span carries `args.trace_id`.
    pub fn perfetto_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for incident in self.incidents() {
            let mut push = |s: &str| {
                if first {
                    first = false;
                } else {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(s);
            };
            push(&format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"incident trace {}\"}}}}",
                incident.trace, incident.trace,
            ));
            for (i, event) in incident.events.iter().enumerate() {
                let next_at = incident.events[i + 1..]
                    .iter()
                    .map(|e| e.at_us)
                    .find(|at| *at > event.at_us);
                let dur = next_at.map(|at| at - event.at_us).unwrap_or(1).max(1);
                let ctx = TraceCtx::at(event.trace, event.stage);
                push(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"xsec\",\"ph\":\"X\",\"ts\":{},\"dur\":{dur},\
                     \"pid\":{},\"tid\":{},\"args\":{{\"trace_id\":{},\"span\":{},\
                     \"parent\":{},{}}}}}",
                    event.stage.name(),
                    event.at_us,
                    event.trace,
                    event.stage as u8 + 1,
                    event.trace,
                    ctx.span,
                    ctx.parent,
                    event_args(event),
                ));
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes `<stem>.jsonl` (decision trace) and `<stem>_trace.json`
    /// (Perfetto) under `dir`, atomically via temp-file + rename; returns
    /// both paths.
    pub fn write_incident_files(
        &self,
        dir: &Path,
        stem: &str,
    ) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let jsonl = dir.join(format!("{stem}.jsonl"));
        let perfetto = dir.join(format!("{stem}_trace.json"));
        crate::export::atomic_write(&jsonl, &self.incidents_jsonl())?;
        crate::export::atomic_write(&perfetto, &self.perfetto_json())?;
        Ok((jsonl, perfetto))
    }
}

/// Minimal JSON string escape for principal/capability names (quotes,
/// backslashes, control characters).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite f32 for JSON (NaN/inf would break the document).
fn finite(bits: u64) -> f32 {
    let v = f32::from_bits(bits as u32);
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Stage-specific `"key":value` args (no surrounding braces).
fn event_args(event: &FlightEvent) -> String {
    match event.stage {
        TraceStage::Ingest => format!("\"ue\":{},\"msg_id\":{}", event.a, event.b),
        TraceStage::Inference | TraceStage::Alert => {
            format!("\"score\":{},\"threshold\":{}", finite(event.a), finite(event.b))
        }
        TraceStage::Verdict => {
            format!("\"confirmed\":{},\"needs_human\":{}", event.a != 0, event.b != 0)
        }
        TraceStage::Policy => {
            format!("\"confidence\":{},\"actions\":{}", finite(event.a), event.b)
        }
        TraceStage::ControlShip => {
            format!("\"action_id\":{},\"payload_len\":{}", event.a, event.b)
        }
        TraceStage::Enforce => format!("\"action_id\":{},\"kind\":{}", event.a, event.b),
        TraceStage::Ack => {
            format!("\"success\":{},\"latency_us\":{}", event.a != 0, event.b)
        }
    }
}

fn event_jsonl(event: &FlightEvent) -> String {
    format!(
        "{{\"trace\":{},\"stage\":\"{}\",\"at_us\":{},{}}}",
        event.trace,
        event.stage.name(),
        event.at_us,
        event_args(event),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, stage: TraceStage, at_us: u64) -> FlightEvent {
        FlightEvent { trace, stage, at_us, a: 0, b: 0 }
    }

    #[test]
    fn trace_ids_are_sequential_and_recoverable() {
        let rec = FlightRecorder::new();
        assert_eq!(rec.begin_trace(100), 1);
        assert_eq!(rec.begin_trace(101), 2);
        assert_eq!(rec.trace_for(100), 1);
        assert_eq!(rec.trace_for(101), 2);
        assert_eq!(rec.trace_for(999), 0, "unknown msg_id must be untraced");
        // Slot collision: the newer msg_id evicts the older mapping.
        let collider = 100 + TRACE_SLOTS as u64;
        assert_eq!(rec.begin_trace(collider), 3);
        assert_eq!(rec.trace_for(collider), 3);
        assert_eq!(rec.trace_for(100), 0, "evicted mapping must not alias");
    }

    #[test]
    fn disabled_recorder_allocates_nothing() {
        let rec = FlightRecorder::new();
        rec.set_enabled(false);
        assert_eq!(rec.begin_trace(1), 0);
        let ring = rec.ring();
        ring.record(ev(0, TraceStage::Ingest, 10));
        rec.mark_incident(0);
        assert!(rec.incidents().is_empty());
        rec.set_enabled(true);
        assert_eq!(rec.begin_trace(1), 1, "ids resume from the counter");
    }

    #[test]
    fn rings_are_bounded_and_overwrite_oldest() {
        let rec = FlightRecorder::new();
        let ring = rec.ring();
        for i in 0..(FLIGHT_RING_CAPACITY as u64 + 10) {
            ring.record(ev(i + 1, TraceStage::Ingest, i));
        }
        // The first 10 traces were overwritten; the last one survives.
        rec.mark_incident(1);
        rec.mark_incident(FLIGHT_RING_CAPACITY as u64 + 10);
        let incidents = rec.incidents();
        assert_eq!(incidents.len(), 2);
        assert!(incidents[0].events.is_empty(), "overwritten event resurfaced");
        assert_eq!(incidents[1].events.len(), 1);
    }

    #[test]
    fn mark_incident_snapshots_and_record_stage_appends() {
        let rec = FlightRecorder::new();
        let ring_a = rec.ring();
        let ring_b = rec.ring();
        let trace = rec.begin_trace(7);
        ring_a.record(ev(trace, TraceStage::Ingest, 10));
        ring_b.record(ev(trace, TraceStage::Inference, 20));
        ring_b.record(ev(trace + 99, TraceStage::Inference, 21)); // other trace
        rec.mark_incident(trace);
        rec.mark_incident(trace); // idempotent
        rec.record_stage(ev(trace, TraceStage::Alert, 30));
        rec.record_stage(ev(trace + 99, TraceStage::Alert, 31)); // unmarked: dropped
        let incidents = rec.incidents();
        assert_eq!(incidents.len(), 1);
        let stages: Vec<TraceStage> = incidents[0].events.iter().map(|e| e.stage).collect();
        assert_eq!(stages, vec![TraceStage::Ingest, TraceStage::Inference, TraceStage::Alert]);
    }

    #[test]
    fn incident_store_is_bounded() {
        let rec = FlightRecorder::new();
        for i in 1..=(MAX_INCIDENTS as u64 + 5) {
            rec.mark_incident(i);
        }
        assert_eq!(rec.incidents().len(), MAX_INCIDENTS);
        assert_eq!(rec.dropped_incidents(), 5);
    }

    #[test]
    fn exports_are_order_normalized_and_stage_named() {
        let rec = FlightRecorder::new();
        let trace = rec.begin_trace(1);
        rec.mark_incident(trace);
        // Append out of order; export must sort by time.
        rec.record_stage(FlightEvent {
            trace,
            stage: TraceStage::Ack,
            at_us: 900,
            a: 1,
            b: 250,
        });
        rec.record_stage(FlightEvent {
            trace,
            stage: TraceStage::Alert,
            at_us: 100,
            a: 0.9f32.to_bits() as u64,
            b: 0.5f32.to_bits() as u64,
        });
        let jsonl = rec.incidents_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"stage\":\"alert\""), "got: {}", lines[0]);
        assert!(lines[0].contains("\"score\":0.9"));
        assert!(lines[1].contains("\"stage\":\"ack\""));
        assert!(lines[1].contains("\"latency_us\":250"));

        let perfetto = rec.perfetto_json();
        assert!(perfetto.contains("\"traceEvents\""));
        assert!(perfetto.contains("\"name\":\"alert\""));
        assert!(perfetto.contains(&format!("\"trace_id\":{trace}")));
        // Alert's span stretches to the ack (900 - 100).
        assert!(perfetto.contains("\"dur\":800"), "got: {perfetto}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(perfetto.matches(open).count(), perfetto.matches(close).count());
        }
    }

    #[test]
    fn denials_are_bounded_and_render_after_incidents() {
        let rec = FlightRecorder::new();
        let trace = rec.begin_trace(1);
        rec.mark_incident(trace);
        rec.record_stage(ev(trace, TraceStage::Alert, 10));
        rec.record_denial("rogue", "publish:a1-policies");
        rec.record_denial("rogue", "control:quarantine-cell");
        let jsonl = rec.incidents_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"stage\":\"alert\""));
        assert!(lines[1].contains("\"stage\":\"authz_deny\""), "got: {}", lines[1]);
        assert!(lines[1].contains("\"xapp\":\"rogue\""));
        assert!(lines[1].contains("\"capability\":\"publish:a1-policies\""));
        assert!(lines[2].contains("\"seq\":2"));
        // No denials → the export is exactly the pre-authz rendering.
        let clean = FlightRecorder::new();
        let t = clean.begin_trace(1);
        clean.mark_incident(t);
        clean.record_stage(ev(t, TraceStage::Alert, 10));
        assert!(!clean.incidents_jsonl().contains("authz_deny"));
        // The store is bounded; overflow only counts.
        for _ in 0..(MAX_DENIALS + 7) {
            rec.record_denial("rogue", "publish:findings");
        }
        assert_eq!(rec.denials().len(), MAX_DENIALS);
        assert_eq!(rec.dropped_denials(), 9);
    }

    #[test]
    fn denial_strings_are_json_escaped() {
        let rec = FlightRecorder::new();
        rec.record_denial("ro\"gue\\", "publish:a\nb");
        let jsonl = rec.incidents_jsonl();
        assert!(jsonl.contains("\"xapp\":\"ro\\\"gue\\\\\""), "got: {jsonl}");
        assert!(jsonl.contains("\"capability\":\"publish:a\\u000ab\""));
    }

    #[test]
    fn trace_ctx_spans_are_positional() {
        let ctx = TraceCtx::at(5, TraceStage::Ingest);
        assert_eq!((ctx.span, ctx.parent), (1, 0));
        let ctx = TraceCtx::at(5, TraceStage::Ack);
        assert_eq!((ctx.span, ctx.parent), (8, 7));
    }

    #[test]
    fn write_incident_files_round_trips() {
        let dir = std::env::temp_dir().join("xsec-obs-test-flight");
        let rec = FlightRecorder::new();
        let trace = rec.begin_trace(1);
        rec.mark_incident(trace);
        rec.record_stage(ev(trace, TraceStage::Alert, 10));
        let (jsonl, perfetto) = rec.write_incident_files(&dir, "incidents").unwrap();
        assert!(std::fs::read_to_string(jsonl).unwrap().contains("\"stage\":\"alert\""));
        assert!(std::fs::read_to_string(perfetto).unwrap().contains("traceEvents"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
