//! # xsec-obs
//!
//! The observability substrate for the 6G-XSec pipeline: one metrics
//! registry and one tracing facade that every stage — E2 ingest, indication
//! pump, MobiWatch inference, LLM analysis, mitigation delivery, RAN
//! enforcement — records into, so a single snapshot explains where the
//! detection→control budget went.
//!
//! ## Pieces
//!
//! * [`MetricsRegistry`] — lock-cheap [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s with p50/p90/p99/max estimates. Handles
//!   are `Arc`s over atomics; the hot path never takes a lock.
//! * [`Tracer`] — leveled events ([`event!`], [`info!`], …) and RAII spans
//!   ([`span!`]) with a bounded ring buffer and a pluggable [`EventSink`]
//!   (stderr for binaries, silent for library use). `XSEC_LOG` picks the
//!   CLI level.
//! * Exposition — [`Snapshot::render_prometheus`],
//!   [`Snapshot::render_json`], and [`Snapshot::write_files`] dump
//!   `metrics.prom` / `metrics.json` per run.
//! * [`Obs`] — the pair of them, cloned cheaply into every component.
//!
//! ## Example
//!
//! ```
//! use xsec_obs::{Level, Obs};
//!
//! let obs = Obs::new();
//! let decoded = obs.counter("xsec_e2_pdus_total", &[]);
//! let latency = obs.histogram("xsec_e2_decode_latency_us", &[]);
//! {
//!     let _span = xsec_obs::span!(obs, "e2", "decode").with_histogram(latency.clone());
//!     decoded.inc(); // ... decode work ...
//! }
//! xsec_obs::info!(obs, "e2", "decoded {} PDUs", decoded.get());
//! assert_eq!(latency.count(), 1);
//! assert!(obs.metrics.render_prometheus().contains("xsec_e2_pdus_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod flight;
mod metrics;
mod trace;

pub use flight::{
    DenialRecord, FlightEvent, FlightRecorder, FlightRing, Incident, TraceCtx, TraceStage,
    FLIGHT_RING_CAPACITY, MAX_DENIALS, MAX_INCIDENTS,
};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, MetricKey, MetricSample, MetricsRegistry,
    SampleValue, Snapshot, LATENCY_BUCKETS_US,
};
pub use trace::{EventRecord, EventSink, Level, SpanGuard, StderrSink, Tracer, VecSink};

/// The combined observability handle: a metrics registry, a tracer, and
/// the causal flight recorder. Cloning shares all three. [`Obs::default`]
/// is silent (ring-buffer only) — safe to embed in any component;
/// binaries use [`Obs::for_cli`].
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// The metrics registry.
    pub metrics: MetricsRegistry,
    /// The event/span recorder.
    pub tracer: Tracer,
    /// The causal incident flight recorder.
    pub recorder: FlightRecorder,
}

impl Obs {
    /// A silent observability handle (events go to the ring buffer only).
    pub fn new() -> Self {
        Obs::default()
    }

    /// A CLI handle: events render to stderr, level-filtered by the
    /// `XSEC_LOG` environment variable (default `info`, `off` silences).
    pub fn for_cli() -> Self {
        Obs {
            metrics: MetricsRegistry::new(),
            tracer: Tracer::stderr(),
            recorder: FlightRecorder::new(),
        }
    }

    /// A library handle that honours `XSEC_LOG` when it is set and stays
    /// silent otherwise — what the pipeline embeds, so tests are quiet but
    /// `XSEC_LOG=debug cargo test` narrates.
    pub fn from_env() -> Self {
        match std::env::var("XSEC_LOG") {
            Ok(_) => Obs::for_cli(),
            Err(_) => Obs::new(),
        }
    }

    /// Shorthand for [`MetricsRegistry::counter`].
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.metrics.counter(name, labels)
    }

    /// Shorthand for [`MetricsRegistry::gauge`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.metrics.gauge(name, labels)
    }

    /// Shorthand for [`MetricsRegistry::histogram`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.metrics.histogram(name, labels)
    }

    /// Shorthand for [`MetricsRegistry::snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }
}

/// Anything the event/span macros can write through: an [`Obs`], a
/// [`Tracer`], or a reference to either.
pub trait AsTracer {
    /// The tracer to record into.
    fn tracer(&self) -> &Tracer;
}

impl AsTracer for Tracer {
    fn tracer(&self) -> &Tracer {
        self
    }
}

impl AsTracer for Obs {
    fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

impl<T: AsTracer + ?Sized> AsTracer for &T {
    fn tracer(&self) -> &Tracer {
        (**self).tracer()
    }
}

/// Records one event: `event!(obs, Level::Info, "target", "fmt {}", x)`.
/// The message is only formatted when the level passes the filter.
#[macro_export]
macro_rules! event {
    ($obs:expr, $level:expr, $target:expr, $($arg:tt)+) => {{
        let tracer = $crate::AsTracer::tracer(&$obs);
        if tracer.enabled($level) {
            tracer.emit($level, $target, format!($($arg)+));
        }
    }};
}

/// [`event!`] at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($obs:expr, $target:expr, $($arg:tt)+) => {
        $crate::event!($obs, $crate::Level::Error, $target, $($arg)+)
    };
}

/// [`event!`] at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($obs:expr, $target:expr, $($arg:tt)+) => {
        $crate::event!($obs, $crate::Level::Warn, $target, $($arg)+)
    };
}

/// [`event!`] at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($obs:expr, $target:expr, $($arg:tt)+) => {
        $crate::event!($obs, $crate::Level::Info, $target, $($arg)+)
    };
}

/// [`event!`] at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($obs:expr, $target:expr, $($arg:tt)+) => {
        $crate::event!($obs, $crate::Level::Debug, $target, $($arg)+)
    };
}

/// Opens a span: `let _g = span!(obs, "target", "stage");`. Chain
/// [`SpanGuard::with_histogram`] to also record the duration as a metric.
#[macro_export]
macro_rules! span {
    ($obs:expr, $target:expr, $name:expr) => {
        $crate::AsTracer::tracer(&$obs).span($target, $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_filter_before_formatting() {
        let obs = Obs::new();
        obs.tracer.set_max_level(Level::Warn);
        let formatted = std::cell::Cell::new(false);
        let expensive = || {
            formatted.set(true);
            "x"
        };
        info!(obs, "test", "{}", expensive());
        assert!(!formatted.get(), "message formatted despite the filter");
        crate::warn!(obs, "test", "kept");
        assert_eq!(obs.tracer.recent().len(), 1);
    }

    #[test]
    fn macros_accept_references() {
        let obs = Obs::new();
        let by_ref: &Obs = &obs;
        info!(by_ref, "test", "via ref");
        info!(obs.tracer, "test", "via tracer");
        assert_eq!(obs.tracer.recent().len(), 2);
    }

    #[test]
    fn span_macro_times_into_histogram() {
        let obs = Obs::new();
        let h = obs.histogram("stage_us", &[]);
        drop(span!(obs, "test", "stage").with_histogram(h.clone()));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn from_env_is_silent_without_xsec_log() {
        // The test harness does not set XSEC_LOG; from_env must not
        // install a stderr sink (we can only observe the level here).
        let obs = Obs::new();
        assert_eq!(obs.tracer.max_level(), Level::Info);
    }
}
