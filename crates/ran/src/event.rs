//! The structured, ground-truth-labeled event stream the telemetry pipeline
//! consumes.
//!
//! One [`RanEvent`] is emitted for every L3 message observed at the network
//! side of the air interface (the same vantage point as the paper's
//! instrumented F1AP/NGAP taps), carrying the protocol content plus the
//! security-context state parameters MobiFlow records (paper Table 1), plus
//! out-of-band ground truth used only by the evaluation harness.

use xsec_proto::{Direction, L3Message};
use xsec_types::{
    CellId, CipherAlg, EstablishmentCause, IntegrityAlg, Rnti, Supi, Timestamp, Tmsi,
    TrafficClass, UeId,
};

/// One observed control-plane message with its context snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct RanEvent {
    /// Observation time at the network tap.
    pub at: Timestamp,
    /// Serving cell.
    pub cell: CellId,
    /// The connection's C-RNTI.
    pub rnti: Rnti,
    /// DU-local UE association id (gNB-DU UE F1AP ID).
    pub du_ue_id: u32,
    /// Message direction relative to the UE.
    pub direction: Direction,
    /// The message itself.
    pub msg: L3Message,
    /// Ciphering algorithm active for this UE context (None before AS/NAS
    /// security establishes).
    pub cipher: Option<CipherAlg>,
    /// Integrity algorithm active for this UE context.
    pub integrity: Option<IntegrityAlg>,
    /// The establishment cause the connection started with.
    pub establishment_cause: Option<EstablishmentCause>,
    /// The temporary identity currently bound to the context, if known.
    pub tmsi: Option<Tmsi>,
    /// A permanent identity observed in plaintext in *this* message, if any.
    pub supi_exposed: Option<Supi>,
    /// Ground truth: the simulator-internal UE that sent/received this
    /// message. `None` for messages fabricated by an over-the-air attacker.
    pub ue: Option<UeId>,
    /// Ground truth label for evaluation. Never exposed to the detector.
    pub label: TrafficClass,
}

impl RanEvent {
    /// Short one-line rendering for logs and example output.
    pub fn summary(&self) -> String {
        format!(
            "{} {} {} rnti={} {}",
            self.at,
            self.direction,
            self.msg.kind().name(),
            self.rnti,
            self.label
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_proto::RrcMessage;

    #[test]
    fn summary_contains_the_essentials() {
        let ev = RanEvent {
            at: Timestamp(2_000_000),
            cell: CellId(1),
            rnti: Rnti(0x4601),
            du_ue_id: 3,
            direction: Direction::Downlink,
            msg: L3Message::Rrc(RrcMessage::Setup),
            cipher: None,
            integrity: None,
            establishment_cause: None,
            tmsi: None,
            supi_exposed: None,
            ue: Some(UeId(1)),
            label: TrafficClass::Benign,
        };
        let s = ev.summary();
        assert!(s.contains("RRCSetup"));
        assert!(s.contains("0x4601"));
        assert!(s.contains("benign"));
        assert!(s.contains("DL"));
    }
}
