//! Man-in-the-middle hooks on the air interface.
//!
//! The paper's threat model includes adversarial relays that overshadow or
//! overwrite unprotected messages between a victim UE and the RAN (AdaptOver,
//! LTrack, capability-stripping downgrades). An [`Interceptor`] sits on the
//! Uu path and may pass, drop, or replace each message; a replacement can
//! also taint the victim's connection so the evaluation harness labels the
//! fallout correctly.

use xsec_proto::{L3Message, MessageKind};
use xsec_types::{AttackKind, UeId};

/// How far a tampering's ground-truth label extends (the paper labels "each
/// malicious telemetry entry", not whole sessions — except where the attack
/// genuinely corrupts the rest of the session).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintScope {
    /// Skip the victim's next `skip` messages (tampered slots whose
    /// telemetry content is indistinguishable from benign traffic), then
    /// attack-label the following `label` messages (the observable fallout,
    /// e.g. the provoked plaintext identity response).
    Burst {
        /// Unobservable tampered messages to leave benign-labeled.
        skip: u32,
        /// Observable malicious entries to label.
        label: u32,
    },
    /// Everything from here to the end of the victim's session is
    /// attack-labeled (e.g. a downgraded session stays downgraded).
    Session,
    /// Label the victim's messages from the first `from`-kind message
    /// through the first `to`-kind message (inclusive) — anchored on
    /// message kinds, so channel retransmissions cannot shift the labels.
    Span {
        /// The kind that opens the labeled span.
        from: MessageKind,
        /// The kind that closes it.
        to: MessageKind,
    },
}

/// What the interceptor decided for one message.
#[derive(Debug, Clone, PartialEq)]
pub enum Intercept {
    /// Deliver unchanged.
    Pass,
    /// Silently drop the message.
    Drop,
    /// Deliver `message` instead, labeling the affected traffic with
    /// `taint` over `scope` (ground truth for evaluation).
    Replace {
        /// The substituted message.
        message: L3Message,
        /// Attack to attribute the tampering (and the victim's induced
        /// responses) to.
        taint: AttackKind,
        /// How many of the victim's subsequent messages the label covers.
        scope: TaintScope,
    },
}

/// A MiTM attached to the air interface.
///
/// Both callbacks see every message along with the ground-truth UE identity
/// (the simulator knows who is who; a real attacker would filter by RNTI —
/// the identity is provided for targeting convenience and determinism).
pub trait Interceptor {
    /// Inspects a downlink message about to be delivered to `ue`.
    fn on_downlink(&mut self, ue: UeId, msg: &L3Message) -> Intercept {
        let _ = (ue, msg);
        Intercept::Pass
    }

    /// Inspects an uplink message about to be delivered to the network.
    fn on_uplink(&mut self, ue: UeId, msg: &L3Message) -> Intercept {
        let _ = (ue, msg);
        Intercept::Pass
    }
}

/// A no-op interceptor (the default air interface).
#[derive(Debug, Default, Clone, Copy)]
pub struct PassThrough;

impl Interceptor for PassThrough {}

/// Runs several interceptors in order; the first non-[`Intercept::Pass`]
/// decision wins. Lets a passive sniffer coexist with an active MiTM, or
/// several attacks run in one scenario.
#[derive(Default)]
pub struct Chain {
    links: Vec<Box<dyn Interceptor>>,
}

impl Chain {
    /// An empty chain (equivalent to [`PassThrough`]).
    pub fn new() -> Self {
        Chain::default()
    }

    /// Appends an interceptor.
    pub fn push(mut self, link: Box<dyn Interceptor>) -> Self {
        self.links.push(link);
        self
    }
}

impl Interceptor for Chain {
    fn on_downlink(&mut self, ue: UeId, msg: &L3Message) -> Intercept {
        for link in &mut self.links {
            match link.on_downlink(ue, msg) {
                Intercept::Pass => continue,
                decision => return decision,
            }
        }
        Intercept::Pass
    }

    fn on_uplink(&mut self, ue: UeId, msg: &L3Message) -> Intercept {
        for link in &mut self.links {
            match link.on_uplink(ue, msg) {
                Intercept::Pass => continue,
                decision => return decision,
            }
        }
        Intercept::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_proto::RrcMessage;

    #[test]
    fn passthrough_passes_everything() {
        let mut mitm = PassThrough;
        let msg = L3Message::Rrc(RrcMessage::Setup);
        assert_eq!(mitm.on_downlink(UeId(1), &msg), Intercept::Pass);
        assert_eq!(mitm.on_uplink(UeId(1), &msg), Intercept::Pass);
    }

    #[test]
    fn chain_first_decision_wins() {
        struct Dropper;
        impl Interceptor for Dropper {
            fn on_uplink(&mut self, _ue: UeId, _msg: &L3Message) -> Intercept {
                Intercept::Drop
            }
        }
        let mut chain = Chain::new().push(Box::new(PassThrough)).push(Box::new(Dropper));
        let msg = L3Message::Rrc(RrcMessage::Setup);
        assert_eq!(chain.on_uplink(UeId(1), &msg), Intercept::Drop);
        // Downlink: Dropper only drops uplink, so the chain passes.
        assert_eq!(chain.on_downlink(UeId(1), &msg), Intercept::Pass);
    }

    #[test]
    fn empty_chain_passes() {
        let mut chain = Chain::new();
        let msg = L3Message::Rrc(RrcMessage::Setup);
        assert_eq!(chain.on_uplink(UeId(1), &msg), Intercept::Pass);
    }

    #[test]
    fn replace_carries_taint() {
        struct Downgrader;
        impl Interceptor for Downgrader {
            fn on_downlink(&mut self, _ue: UeId, msg: &L3Message) -> Intercept {
                Intercept::Replace {
                    message: msg.clone(),
                    taint: AttackKind::NullCipher,
                    scope: TaintScope::Session,
                }
            }
        }
        let mut mitm = Downgrader;
        match mitm.on_downlink(UeId(9), &L3Message::Rrc(RrcMessage::Setup)) {
            Intercept::Replace { taint, scope, .. } => {
                assert_eq!(taint, AttackKind::NullCipher);
                assert_eq!(scope, TaintScope::Session);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
