//! The simulated gNodeB: O-DU MAC functions (RNTI allocation, admission
//! control) and O-CU RRC handling (connection management, AS security, NAS
//! relay toward the AMF).
//!
//! Like the [`crate::amf::Amf`], the gNB is a pure state machine: the
//! simulator feeds it uplink messages and AMF actions, it returns
//! [`GnbAction`]s. Resource management is the part that makes the DoS
//! attacks *mean* something:
//!
//! * every RRC connection holds a C-RNTI and a UE context until it is
//!   released or its guard timer expires;
//! * when the context table is full, new `RRCSetupRequest`s get `RRCReject`
//!   — the observable denial of service the BTS DoS flood causes.

use crate::amf::AmfAction;
use std::collections::{HashMap, VecDeque};
use xsec_control::{ControlAction, MitigationAction};
use xsec_obs::{Counter, Obs};
use xsec_proto::{L3Message, NasMessage, RrcMessage};
use xsec_types::{
    CellId, CipherAlg, Duration, EstablishmentCause, IntegrityAlg, ReleaseCause, Rnti, Timestamp,
    Tmsi,
};

/// gNB policy knobs.
#[derive(Debug, Clone)]
pub struct GnbConfig {
    /// Serving cell id.
    pub cell: CellId,
    /// Maximum simultaneous UE contexts (admission control).
    pub max_contexts: usize,
    /// How long an un-registered context may live before the CU garbage
    /// collects it (stalled handshakes — the resource the BTS DoS burns).
    pub setup_guard: Duration,
    /// First C-RNTI to hand out (OAI starts around 0x4601).
    pub first_rnti: u16,
    /// First DU-local connection id. Multi-cell deployments give each cell a
    /// disjoint range so `du_ue_id` stays globally unique across gNBs.
    pub first_conn: u32,
}

impl Default for GnbConfig {
    fn default() -> Self {
        GnbConfig {
            cell: CellId(1),
            max_contexts: 48,
            setup_guard: Duration::from_millis(600),
            first_rnti: 0x4601,
            first_conn: 1,
        }
    }
}

/// Something the gNB wants the simulator to do.
#[derive(Debug, Clone, PartialEq)]
pub enum GnbAction {
    /// Transmit a downlink L3 message on connection `conn`.
    Downlink {
        /// DU-local UE association.
        conn: u32,
        /// The message.
        msg: L3Message,
    },
    /// Forward an uplink NAS message to the AMF.
    ToAmf {
        /// DU-local UE association.
        conn: u32,
        /// The NAS message.
        msg: NasMessage,
    },
    /// The context was freed (after release/expiry) — the AMF should be told.
    ContextFreed {
        /// DU-local UE association.
        conn: u32,
    },
}

/// Per-connection CU context (the resource under attack).
#[derive(Debug, Clone)]
pub struct UeContext {
    /// Assigned C-RNTI.
    pub rnti: Rnti,
    /// When the context was admitted.
    pub created_at: Timestamp,
    /// Establishment cause from the setup request.
    pub cause: EstablishmentCause,
    /// Negotiated ciphering algorithm, once NAS security ran.
    pub cipher: Option<CipherAlg>,
    /// Negotiated integrity algorithm, once NAS security ran.
    pub integrity: Option<IntegrityAlg>,
    /// Temporary identity bound to this context, if known.
    pub tmsi: Option<Tmsi>,
    /// Whether registration completed.
    pub registered: bool,
    /// Whether AS (RRC-level) security was activated.
    pub as_secured: bool,
}

/// Why admission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Context table full.
    Congestion,
    /// No free C-RNTI.
    RntiExhausted,
    /// A RIC rate-limit on this establishment cause is saturated; the MAC
    /// drops the setup request silently (no reject, no context).
    RateLimited,
    /// The cell is under a RIC admission quarantine.
    Quarantined,
}

/// A RIC-installed cap on admissions carrying one establishment cause.
#[derive(Debug, Clone)]
struct RateLimit {
    max_setups: u16,
    window: Duration,
    until: Timestamp,
    recent: VecDeque<Timestamp>,
}

/// Point-in-time counter snapshot for reports and the DoS experiments. The
/// counters themselves live in the `xsec-obs` registry (metric names
/// `xsec_ran_gnb_*_total`); this struct is a read-out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GnbStats {
    /// Connections admitted.
    pub admitted: u64,
    /// Setup requests rejected by admission control.
    pub rejected: u64,
    /// Contexts garbage-collected by the setup guard timer.
    pub guard_expired: u64,
    /// Connections released normally.
    pub released: u64,
    /// Setup requests silently dropped by RIC mitigations (rate limits and
    /// cell quarantine).
    pub mitigation_dropped: u64,
    /// Uplink messages dropped because their C-RNTI is blacklisted.
    pub blacklist_dropped: u64,
    /// Connections detached by a RIC force-reauth action.
    pub forced_reauth: u64,
}

/// Registry-backed gNB counters (the single observability path).
#[derive(Debug, Clone)]
struct GnbMetrics {
    admitted: Counter,
    rejected: Counter,
    guard_expired: Counter,
    released: Counter,
    mitigation_dropped: Counter,
    blacklist_dropped: Counter,
    forced_reauth: Counter,
}

impl GnbMetrics {
    fn register(obs: &Obs) -> Self {
        GnbMetrics {
            admitted: obs.counter("xsec_ran_gnb_admitted_total", &[]),
            rejected: obs.counter("xsec_ran_gnb_rejected_total", &[]),
            guard_expired: obs.counter("xsec_ran_gnb_guard_expired_total", &[]),
            released: obs.counter("xsec_ran_gnb_released_total", &[]),
            mitigation_dropped: obs.counter("xsec_ran_gnb_mitigation_dropped_total", &[]),
            blacklist_dropped: obs.counter("xsec_ran_gnb_blacklist_dropped_total", &[]),
            forced_reauth: obs.counter("xsec_ran_gnb_forced_reauth_total", &[]),
        }
    }
}

/// The gNB state machine (DU + CU).
#[derive(Debug)]
pub struct Gnb {
    config: GnbConfig,
    contexts: HashMap<u32, UeContext>,
    rnti_cursor: u16,
    next_conn: u32,
    metrics: GnbMetrics,
    /// RIC-blacklisted C-RNTIs → enforcement deadline.
    blacklist: HashMap<u16, Timestamp>,
    /// RIC-installed per-cause admission caps.
    rate_limits: HashMap<EstablishmentCause, RateLimit>,
    /// RIC admission quarantine deadline, if one is active.
    quarantine_until: Option<Timestamp>,
}

impl Gnb {
    /// Creates a gNB with the given configuration.
    pub fn new(config: GnbConfig) -> Self {
        let rnti_cursor = config.first_rnti;
        let next_conn = config.first_conn;
        Gnb {
            config,
            contexts: HashMap::new(),
            rnti_cursor,
            next_conn,
            metrics: GnbMetrics::register(&Obs::new()),
            blacklist: HashMap::new(),
            rate_limits: HashMap::new(),
            quarantine_until: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GnbConfig {
        &self.config
    }

    /// Re-homes the gNB's counters into `obs` (accumulated counts are
    /// carried over), so a simulation attached to a pipeline's registry
    /// reports through it.
    pub fn attach_obs(&mut self, obs: &Obs) {
        let stats = self.stats();
        let metrics = GnbMetrics::register(obs);
        metrics.admitted.add(stats.admitted);
        metrics.rejected.add(stats.rejected);
        metrics.guard_expired.add(stats.guard_expired);
        metrics.released.add(stats.released);
        metrics.mitigation_dropped.add(stats.mitigation_dropped);
        metrics.blacklist_dropped.add(stats.blacklist_dropped);
        metrics.forced_reauth.add(stats.forced_reauth);
        self.metrics = metrics;
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> GnbStats {
        GnbStats {
            admitted: self.metrics.admitted.get(),
            rejected: self.metrics.rejected.get(),
            guard_expired: self.metrics.guard_expired.get(),
            released: self.metrics.released.get(),
            mitigation_dropped: self.metrics.mitigation_dropped.get(),
            blacklist_dropped: self.metrics.blacklist_dropped.get(),
            forced_reauth: self.metrics.forced_reauth.get(),
        }
    }

    /// Live context count.
    pub fn active_contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Read access to a context (for telemetry snapshots).
    pub fn context(&self, conn: u32) -> Option<&UeContext> {
        self.contexts.get(&conn)
    }

    fn alloc_rnti(&mut self, now: Timestamp) -> Option<Rnti> {
        let in_use: std::collections::HashSet<u16> =
            self.contexts.values().map(|c| c.rnti.0).collect();
        // Walk the C-RNTI space from the cursor; bounded scan.
        for _ in 0..=(Rnti::MAX.0 - Rnti::MIN.0) {
            let candidate = self.rnti_cursor;
            self.rnti_cursor = if self.rnti_cursor >= Rnti::MAX.0 {
                Rnti::MIN.0
            } else {
                self.rnti_cursor + 1
            };
            if !in_use.contains(&candidate)
                && Rnti(candidate).is_valid_c_rnti()
                && !self.is_blacklisted(Rnti(candidate), now)
            {
                return Some(Rnti(candidate));
            }
        }
        None
    }

    fn is_blacklisted(&self, rnti: Rnti, now: Timestamp) -> bool {
        self.blacklist.get(&rnti.0).is_some_and(|until| now < *until)
    }

    /// Admission control + RNTI allocation for a new `RRCSetupRequest`.
    pub fn admit(&mut self, now: Timestamp, cause: EstablishmentCause) -> Result<u32, AdmitError> {
        if self.quarantine_until.is_some_and(|until| now < until) {
            self.metrics.mitigation_dropped.inc();
            return Err(AdmitError::Quarantined);
        }
        if let Some(limit) = self.rate_limits.get_mut(&cause) {
            if now < limit.until {
                while limit
                    .recent
                    .front()
                    .is_some_and(|&at| now.saturating_since(at) >= limit.window)
                {
                    limit.recent.pop_front();
                }
                if limit.recent.len() >= limit.max_setups as usize {
                    self.metrics.mitigation_dropped.inc();
                    return Err(AdmitError::RateLimited);
                }
                limit.recent.push_back(now);
            }
        }
        if self.contexts.len() >= self.config.max_contexts {
            self.metrics.rejected.inc();
            return Err(AdmitError::Congestion);
        }
        let Some(rnti) = self.alloc_rnti(now) else {
            self.metrics.rejected.inc();
            return Err(AdmitError::RntiExhausted);
        };
        let conn = self.next_conn;
        self.next_conn += 1;
        self.contexts.insert(
            conn,
            UeContext {
                rnti,
                created_at: now,
                cause,
                cipher: None,
                integrity: None,
                tmsi: None,
                registered: false,
                as_secured: false,
            },
        );
        self.metrics.admitted.inc();
        Ok(conn)
    }

    /// Handles an uplink L3 message on an admitted connection.
    ///
    /// `RRCSetupRequest` is *not* handled here — the simulator calls
    /// [`Gnb::admit`] first and replies `RRCSetup`/`RRCReject` itself, since
    /// the request arrives before any context exists.
    pub fn handle_uplink(&mut self, conn: u32, msg: &L3Message) -> Vec<GnbAction> {
        let Some(ctx) = self.contexts.get_mut(&conn) else {
            return Vec::new(); // stale message for a freed context
        };
        match msg {
            L3Message::Rrc(rrc) => match rrc {
                RrcMessage::SetupComplete { nas_container }
                | RrcMessage::UlInformationTransfer { nas_container } => {
                    match xsec_proto::decode_l3(nas_container) {
                        Ok(L3Message::Nas(nas)) => {
                            // Track TMSIs presented uplink.
                            if let NasMessage::ServiceRequest { tmsi } = &nas {
                                ctx.tmsi = Some(*tmsi);
                            }
                            if let NasMessage::RegistrationRequest {
                                identity: xsec_proto::MobileIdentity::FiveGSTmsi(tmsi),
                                ..
                            } = &nas
                            {
                                ctx.tmsi = Some(*tmsi);
                            }
                            vec![GnbAction::ToAmf { conn, msg: nas }]
                        }
                        _ => Vec::new(), // undecodable container: dropped
                    }
                }
                RrcMessage::SecurityModeComplete => {
                    ctx.as_secured = true;
                    // AS security done → finish the ladder with an RRC
                    // reconfiguration (bearer setup).
                    vec![GnbAction::Downlink {
                        conn,
                        msg: L3Message::Rrc(RrcMessage::Reconfiguration),
                    }]
                }
                RrcMessage::ReconfigurationComplete => Vec::new(),
                RrcMessage::ReestablishmentRequest { .. } => vec![GnbAction::Downlink {
                    conn,
                    msg: L3Message::Rrc(RrcMessage::Reestablishment),
                }],
                _ => Vec::new(),
            },
            // NAS sent bare (the simulator's shorthand for
            // ULInformationTransfer) — relay to the AMF.
            L3Message::Nas(nas) => {
                if let NasMessage::ServiceRequest { tmsi } = nas {
                    ctx.tmsi = Some(*tmsi);
                }
                vec![GnbAction::ToAmf { conn, msg: nas.clone() }]
            }
        }
    }

    /// Applies an AMF action, producing downlink transmissions.
    pub fn handle_amf(&mut self, action: &AmfAction) -> Vec<GnbAction> {
        match action {
            AmfAction::SendNas { conn, msg } => {
                let conn = *conn as u32;
                let Some(ctx) = self.contexts.get_mut(&conn) else {
                    return Vec::new();
                };
                let mut out = Vec::new();
                // The CU snoops NAS to keep its context in sync (exactly the
                // instrumentation point the MobiFlow agent hooks).
                match msg {
                    NasMessage::SecurityModeCommand { cipher, integrity, .. } => {
                        ctx.cipher = Some(*cipher);
                        ctx.integrity = Some(*integrity);
                    }
                    NasMessage::RegistrationAccept { new_tmsi } => {
                        ctx.tmsi = Some(*new_tmsi);
                        ctx.registered = true;
                    }
                    _ => {}
                }
                out.push(GnbAction::Downlink { conn, msg: L3Message::Nas(msg.clone()) });
                // After registration accept, activate AS security.
                if matches!(msg, NasMessage::RegistrationAccept { .. }) && !ctx.as_secured {
                    let cipher = ctx.cipher.unwrap_or(CipherAlg::Nea2);
                    let integrity = ctx.integrity.unwrap_or(IntegrityAlg::Nia2);
                    out.push(GnbAction::Downlink {
                        conn,
                        msg: L3Message::Rrc(RrcMessage::SecurityModeCommand { cipher, integrity }),
                    });
                }
                out
            }
            AmfAction::ReleaseConnection { conn, cause } => self.release(*conn as u32, *cause),
        }
    }

    /// Releases a connection: sends `RRCRelease` and frees the context.
    pub fn release(&mut self, conn: u32, cause: ReleaseCause) -> Vec<GnbAction> {
        if self.contexts.remove(&conn).is_none() {
            return Vec::new();
        }
        self.metrics.released.inc();
        vec![
            GnbAction::Downlink { conn, msg: L3Message::Rrc(RrcMessage::Release { cause }) },
            GnbAction::ContextFreed { conn },
        ]
    }

    /// Garbage-collects contexts that stalled before registering.
    pub fn expire_stale(&mut self, now: Timestamp) -> Vec<GnbAction> {
        let mut stale: Vec<u32> = self
            .contexts
            .iter()
            .filter(|(_, ctx)| {
                !ctx.registered && now.saturating_since(ctx.created_at) > self.config.setup_guard
            })
            .map(|(conn, _)| *conn)
            .collect();
        // HashMap iteration order is unstable; sort so expiry processing (and
        // thus the whole run) stays deterministic.
        stale.sort_unstable();
        let mut actions = Vec::new();
        for conn in stale {
            self.metrics.guard_expired.inc();
            self.contexts.remove(&conn);
            self.metrics.released.inc();
            actions.push(GnbAction::Downlink {
                conn,
                msg: L3Message::Rrc(RrcMessage::Release { cause: ReleaseCause::RadioLinkFailure }),
            });
            actions.push(GnbAction::ContextFreed { conn });
        }
        actions
    }

    /// MAC-level filter: true when the connection's C-RNTI is blacklisted
    /// and its uplink traffic must be dropped before any processing (or
    /// telemetry tap — a dropped frame never reaches the network).
    pub fn uplink_blocked(&mut self, conn: u32, now: Timestamp) -> bool {
        let Some(ctx) = self.contexts.get(&conn) else {
            return false;
        };
        if self.is_blacklisted(ctx.rnti, now) {
            self.metrics.blacklist_dropped.inc();
            true
        } else {
            false
        }
    }

    /// Enforces one RIC control action. This is the actuation endpoint of
    /// the closed loop: decoded `ControlRequest` payloads land here.
    pub fn apply_control(&mut self, now: Timestamp, control: &ControlAction) -> Vec<GnbAction> {
        match &control.action {
            MitigationAction::ReleaseUe { conn, cause } => self.release(*conn, *cause),
            MitigationAction::BlacklistRnti { rnti } => {
                let until = now + control.ttl;
                let entry = self.blacklist.entry(rnti.0).or_insert(until);
                *entry = (*entry).max(until);
                Vec::new()
            }
            MitigationAction::ForceReauth { conn } => {
                // The simulated AMF challenges every fresh SUCI registration,
                // so a network-abort detach forces the subscriber through the
                // full authentication ladder on its next attach.
                let actions = self.release(*conn, ReleaseCause::NetworkAbort);
                if !actions.is_empty() {
                    self.metrics.forced_reauth.inc();
                }
                actions
            }
            MitigationAction::QuarantineCell { cell } => {
                if *cell == self.config.cell {
                    let until = now + control.ttl;
                    self.quarantine_until =
                        Some(self.quarantine_until.map_or(until, |u| u.max(until)));
                }
                Vec::new()
            }
            MitigationAction::RateLimitCause { cause, max_setups, window } => {
                self.rate_limits.insert(
                    *cause,
                    RateLimit {
                        max_setups: *max_setups,
                        window: *window,
                        until: now + control.ttl,
                        recent: VecDeque::new(),
                    },
                );
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gnb() -> Gnb {
        Gnb::new(GnbConfig::default())
    }

    #[test]
    fn admission_allocates_distinct_rntis() {
        let mut gnb = gnb();
        let a = gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
        let b = gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
        assert_ne!(a, b);
        assert_ne!(gnb.context(a).unwrap().rnti, gnb.context(b).unwrap().rnti);
        assert_eq!(gnb.stats().admitted, 2);
    }

    #[test]
    fn admission_rejects_when_full() {
        let mut gnb = Gnb::new(GnbConfig { max_contexts: 2, ..GnbConfig::default() });
        gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
        gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
        assert_eq!(
            gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData),
            Err(AdmitError::Congestion)
        );
        assert_eq!(gnb.stats().rejected, 1);
    }

    #[test]
    fn setup_complete_relays_nas_to_amf() {
        let mut gnb = gnb();
        let conn = gnb.admit(Timestamp::ZERO, EstablishmentCause::MoSignalling).unwrap();
        let nas = NasMessage::RegistrationComplete;
        let container = xsec_proto::encode_l3(&L3Message::Nas(nas.clone()));
        let actions = gnb.handle_uplink(
            conn,
            &L3Message::Rrc(RrcMessage::SetupComplete { nas_container: container }),
        );
        assert_eq!(actions, vec![GnbAction::ToAmf { conn, msg: nas }]);
    }

    #[test]
    fn amf_smc_updates_context_algorithms() {
        let mut gnb = gnb();
        let conn = gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
        let action = AmfAction::SendNas {
            conn: conn as u64,
            msg: NasMessage::SecurityModeCommand {
                cipher: CipherAlg::Nea0,
                integrity: IntegrityAlg::Nia0,
                replayed_capabilities: xsec_types::SecurityCapabilities::null_only(),
            },
        };
        gnb.handle_amf(&action);
        let ctx = gnb.context(conn).unwrap();
        assert_eq!(ctx.cipher, Some(CipherAlg::Nea0));
        assert_eq!(ctx.integrity, Some(IntegrityAlg::Nia0));
    }

    #[test]
    fn registration_accept_triggers_as_security() {
        let mut gnb = gnb();
        let conn = gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
        let actions = gnb.handle_amf(&AmfAction::SendNas {
            conn: conn as u64,
            msg: NasMessage::RegistrationAccept { new_tmsi: Tmsi(42) },
        });
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            actions[1],
            GnbAction::Downlink {
                msg: L3Message::Rrc(RrcMessage::SecurityModeCommand { .. }),
                ..
            }
        ));
        let ctx = gnb.context(conn).unwrap();
        assert!(ctx.registered);
        assert_eq!(ctx.tmsi, Some(Tmsi(42)));
    }

    #[test]
    fn as_security_complete_triggers_reconfiguration() {
        let mut gnb = gnb();
        let conn = gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
        let actions =
            gnb.handle_uplink(conn, &L3Message::Rrc(RrcMessage::SecurityModeComplete));
        assert!(matches!(
            actions[0],
            GnbAction::Downlink { msg: L3Message::Rrc(RrcMessage::Reconfiguration), .. }
        ));
        assert!(gnb.context(conn).unwrap().as_secured);
    }

    #[test]
    fn release_frees_context_and_rnti() {
        let mut gnb = gnb();
        let conn = gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
        let actions = gnb.release(conn, ReleaseCause::Normal);
        assert_eq!(actions.len(), 2);
        assert!(gnb.context(conn).is_none());
        assert_eq!(gnb.active_contexts(), 0);
        // Releasing again is a no-op.
        assert!(gnb.release(conn, ReleaseCause::Normal).is_empty());
    }

    #[test]
    fn guard_timer_collects_stalled_handshakes() {
        let mut gnb = Gnb::new(GnbConfig {
            setup_guard: Duration::from_millis(100),
            ..GnbConfig::default()
        });
        let conn = gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
        // Not yet expired.
        assert!(gnb.expire_stale(Timestamp(50_000)).is_empty());
        // Expired.
        let actions = gnb.expire_stale(Timestamp(200_000));
        assert_eq!(actions.len(), 2);
        assert!(gnb.context(conn).is_none());
        assert_eq!(gnb.stats().guard_expired, 1);
    }

    #[test]
    fn registered_contexts_survive_the_guard() {
        let mut gnb = Gnb::new(GnbConfig {
            setup_guard: Duration::from_millis(100),
            ..GnbConfig::default()
        });
        let conn = gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
        gnb.handle_amf(&AmfAction::SendNas {
            conn: conn as u64,
            msg: NasMessage::RegistrationAccept { new_tmsi: Tmsi(1) },
        });
        assert!(gnb.expire_stale(Timestamp(10_000_000)).is_empty());
        assert!(gnb.context(conn).is_some());
    }

    #[test]
    fn rnti_reuse_after_release() {
        let mut gnb = Gnb::new(GnbConfig { max_contexts: 4, ..GnbConfig::default() });
        let conn = gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
        let rnti = gnb.context(conn).unwrap().rnti;
        gnb.release(conn, ReleaseCause::Normal);
        // Cursor walks forward, so the freed RNTI comes back only after the
        // space wraps — but allocation must keep succeeding far beyond the
        // context cap, proving RNTIs are recycled.
        for _ in 0..100 {
            let c = gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
            gnb.release(c, ReleaseCause::Normal);
        }
        assert_eq!(gnb.active_contexts(), 0);
        let _ = rnti;
    }

    #[test]
    fn uplink_on_unknown_connection_is_dropped() {
        let mut gnb = gnb();
        assert!(gnb
            .handle_uplink(99, &L3Message::Rrc(RrcMessage::SecurityModeComplete))
            .is_empty());
    }

    fn control(ttl: Duration, action: MitigationAction) -> ControlAction {
        ControlAction { id: 1, ttl, action, trace: None }
    }

    #[test]
    fn blacklist_drops_uplinks_until_ttl_and_skips_allocation() {
        let mut gnb = gnb();
        let conn = gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
        let rnti = gnb.context(conn).unwrap().rnti;
        gnb.apply_control(
            Timestamp::ZERO,
            &control(Duration::from_secs(1), MitigationAction::BlacklistRnti { rnti }),
        );
        assert!(gnb.uplink_blocked(conn, Timestamp(500_000)));
        assert_eq!(gnb.stats().blacklist_dropped, 1);
        // Past the TTL the RNTI is usable again.
        assert!(!gnb.uplink_blocked(conn, Timestamp(1_500_000)));
        // While blacklisted, a release + wrap-around never re-allocates it.
        gnb.release(conn, ReleaseCause::Normal);
        let next = gnb.admit(Timestamp(500_000), EstablishmentCause::MoData).unwrap();
        assert_ne!(gnb.context(next).unwrap().rnti, rnti);
    }

    #[test]
    fn rate_limit_caps_admissions_per_window() {
        let mut gnb = gnb();
        gnb.apply_control(
            Timestamp::ZERO,
            &control(
                Duration::from_secs(10),
                MitigationAction::RateLimitCause {
                    cause: EstablishmentCause::MoSignalling,
                    max_setups: 2,
                    window: Duration::from_millis(100),
                },
            ),
        );
        assert!(gnb.admit(Timestamp(1_000), EstablishmentCause::MoSignalling).is_ok());
        assert!(gnb.admit(Timestamp(2_000), EstablishmentCause::MoSignalling).is_ok());
        assert_eq!(
            gnb.admit(Timestamp(3_000), EstablishmentCause::MoSignalling),
            Err(AdmitError::RateLimited)
        );
        // Other causes are unaffected; the window eventually drains.
        assert!(gnb.admit(Timestamp(3_000), EstablishmentCause::MoData).is_ok());
        assert!(gnb.admit(Timestamp(200_000), EstablishmentCause::MoSignalling).is_ok());
        // Past the TTL the limit stops applying entirely.
        for i in 0..5 {
            assert!(gnb
                .admit(Timestamp(11_000_000 + i), EstablishmentCause::MoSignalling)
                .is_ok());
        }
        assert_eq!(gnb.stats().mitigation_dropped, 1);
    }

    #[test]
    fn quarantine_freezes_admission_for_matching_cell_only() {
        let mut gnb = gnb();
        // A quarantine for some other cell is ignored.
        gnb.apply_control(
            Timestamp::ZERO,
            &control(
                Duration::from_secs(1),
                MitigationAction::QuarantineCell { cell: CellId(99) },
            ),
        );
        assert!(gnb.admit(Timestamp(1_000), EstablishmentCause::MoData).is_ok());
        gnb.apply_control(
            Timestamp::ZERO,
            &control(
                Duration::from_secs(1),
                MitigationAction::QuarantineCell { cell: GnbConfig::default().cell },
            ),
        );
        assert_eq!(
            gnb.admit(Timestamp(2_000), EstablishmentCause::MoData),
            Err(AdmitError::Quarantined)
        );
        assert!(gnb.admit(Timestamp(1_500_000), EstablishmentCause::MoData).is_ok());
    }

    #[test]
    fn force_reauth_detaches_with_network_abort() {
        let mut gnb = gnb();
        let conn = gnb.admit(Timestamp::ZERO, EstablishmentCause::MoData).unwrap();
        let actions = gnb.apply_control(
            Timestamp::ZERO,
            &control(Duration::from_secs(1), MitigationAction::ForceReauth { conn }),
        );
        assert!(matches!(
            &actions[0],
            GnbAction::Downlink {
                msg: L3Message::Rrc(RrcMessage::Release { cause: ReleaseCause::NetworkAbort }),
                ..
            }
        ));
        assert_eq!(gnb.stats().forced_reauth, 1);
        assert!(gnb.context(conn).is_none());
        // Re-applying against the freed context is a counted no-op.
        let again = gnb.apply_control(
            Timestamp::ZERO,
            &control(Duration::from_secs(1), MitigationAction::ForceReauth { conn }),
        );
        assert!(again.is_empty());
        assert_eq!(gnb.stats().forced_reauth, 1);
    }
}
