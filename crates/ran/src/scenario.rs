//! Workload scenarios: the stand-in for the paper's dataset collection on
//! commodity phones and COLOSSEUM.
//!
//! A [`Scenario`] provisions a subscriber population, schedules benign UE
//! sessions with exponential-ish inter-arrival times and per-model device
//! mixes, and produces a ready-to-run [`RanSimulator`]. The paper's benign
//! dataset — "over 100 UE sessions" from four phone models plus OAI soft
//! UEs — corresponds to [`ScenarioConfig::benign_sessions`] ≈ 100+ with the
//! default device mix.

use crate::amf::SubscriberRecord;
use crate::device::DeviceModel;
use crate::sim::{RanSimulator, SimConfig};
use crate::ue::BenignUe;
use rand::Rng;
use xsec_netsim::RngStreams;
use xsec_types::{Duration, Plmn, Supi, Timestamp, TrafficClass, Tmsi};

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Simulation parameters (seed, channel, gNB, AMF).
    pub sim: SimConfig,
    /// Number of benign UE sessions to schedule.
    pub benign_sessions: usize,
    /// Mean inter-arrival time between session starts.
    pub mean_inter_arrival: Duration,
    /// Relative weights over [`DeviceModel::ALL`] for the device mix.
    /// Default mixes phones and soft UEs like the paper's collection.
    pub device_mix: [u32; DeviceModel::COUNT],
    /// Fraction of sessions that are re-registrations presenting a cached
    /// TMSI (the UE is provisioned with one it "remembers").
    pub warm_start_fraction: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            sim: SimConfig::default(),
            benign_sessions: 110,
            mean_inter_arrival: Duration::from_millis(120),
            device_mix: [18, 18, 16, 16, 32], // 4 phones + a heavier soft-UE share
            warm_start_fraction: 0.35,
        }
    }
}

/// A provisioned, schedulable workload.
pub struct Scenario {
    config: ScenarioConfig,
}

impl Scenario {
    /// Creates a scenario from its config.
    pub fn new(config: ScenarioConfig) -> Self {
        Scenario { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Builds the simulator with the benign population installed. Attack
    /// crates take the returned simulator and add their adversarial UEs /
    /// interceptors before running.
    pub fn build(&self) -> RanSimulator {
        let mut sim = RanSimulator::new(self.config.sim.clone());
        self.populate(&mut sim);
        sim
    }

    /// Installs the benign population into an existing simulator.
    pub fn populate(&self, sim: &mut RanSimulator) {
        let streams = RngStreams::new(self.config.sim.seed);
        let mut rng = streams.stream("scenario");
        let mut at = Timestamp::ZERO;
        let mix_total: u32 = self.config.device_mix.iter().sum();
        assert!(mix_total > 0, "device mix must have weight");

        for i in 0..self.config.benign_sessions {
            // Device model draw.
            let mut pick = rng.gen_range(0..mix_total);
            let mut model = DeviceModel::OaiSoftUe;
            for (j, w) in self.config.device_mix.iter().enumerate() {
                if pick < *w {
                    model = DeviceModel::ALL[j];
                    break;
                }
                pick -= w;
            }

            // Subscriber provisioning.
            let msin = 100_000 + i as u64;
            let key = 0xAB00_0000 + i as u64;
            let supi = Supi::new(Plmn::TEST, msin);
            sim.add_subscriber(SubscriberRecord { supi, key });

            // Warm-start UEs carry a TMSI from "a previous power cycle" that
            // the AMF can still resolve (persistent TMSI state), so benign
            // re-registrations proceed without identity procedures.
            let cached_tmsi = if rng.gen_bool(self.config.warm_start_fraction) {
                let tmsi = Tmsi(0x00F0_0000 + i as u32);
                sim.add_stale_tmsi(tmsi, msin);
                Some(tmsi)
            } else {
                None
            };

            let ue = BenignUe::new(model, supi, key, cached_tmsi, &mut rng);
            sim.add_ue(Box::new(ue), TrafficClass::Benign, at);

            // Exponential inter-arrival (inverse-CDF on a uniform draw).
            let u: f64 = rng.gen_range(1e-6..1.0f64);
            let gap = (-(u.ln()) * self.config.mean_inter_arrival.as_micros() as f64) as u64;
            at += Duration::from_micros(gap.max(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsec_netsim::ChannelConfig;

    fn small(seed: u64, sessions: usize) -> ScenarioConfig {
        ScenarioConfig {
            sim: SimConfig {
                seed,
                channel: ChannelConfig::ideal(),
                horizon: Duration::from_secs(120),
                ..SimConfig::default()
            },
            benign_sessions: sessions,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn scenario_produces_the_requested_sessions() {
        let report = Scenario::new(small(3, 20)).build().run();
        // With cached TMSIs unknown to the AMF some sessions go through the
        // identity procedure, but everyone should eventually register.
        assert_eq!(report.registrations, 20);
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = Scenario::new(small(9, 15)).build().run();
        let b = Scenario::new(small(9, 15)).build().run();
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn benign_scenario_has_no_attack_labels() {
        let report = Scenario::new(small(4, 25)).build().run();
        assert!(report.events.iter().all(|e| !e.label.is_attack()));
        assert!(report.events.len() > 25 * 8, "suspiciously few events: {}", report.events.len());
    }

    #[test]
    fn sessions_are_spread_in_time() {
        let report = Scenario::new(small(5, 30)).build().run();
        let setup_times: Vec<_> = report
            .events
            .iter()
            .filter(|e| e.msg.kind().name() == "RRCSetupRequest")
            .map(|e| e.at)
            .collect();
        assert!(setup_times.len() >= 30);
        assert!(setup_times.windows(2).any(|w| w[1] > w[0]), "all sessions at once");
    }
}
