//! # xsec-ran
//!
//! A deterministic, event-driven 5G standalone (SA) network simulator — the
//! substrate that replaces the paper's OpenAirInterface gNB + core, USRP B210
//! radio, and COLOSSEUM emulator.
//!
//! ## Topology
//!
//! ```text
//!  UE(s) ──Uu (impaired channel)──> O-DU ──F1AP──> O-CU ──NGAP──> AMF
//!                                    │               │
//!                                    └── trace tap ──┴── RanEvent stream
//! ```
//!
//! * UEs are pluggable [`ue::UeBehavior`] state machines. Benign devices
//!   ([`ue::BenignUe`]) follow the 3GPP registration ladder with per-device
//!   quirks from [`device::DeviceModel`] profiles; the `xsec-attacks` crate
//!   plugs in rogue behaviors through the same trait.
//! * The air interface runs through `xsec-netsim`'s impairment model; the
//!   network-internal F1/NG interfaces are reliable (they are inside the
//!   trust boundary of the paper's threat model).
//! * A man-in-the-middle can be attached via [`intercept::Interceptor`] to
//!   drop/replace messages on the air interface — how the identity
//!   extraction and downgrade attacks are mounted.
//! * Every message crossing F1AP/NGAP is captured twice: as raw bytes in the
//!   pcap-like `TraceLog`, and as a structured, ground-truth-labeled
//!   [`event::RanEvent`] that the MobiFlow extractor consumes.
//!
//! ## Determinism
//!
//! All randomness flows from one master seed through named RNG streams; two
//! runs of the same scenario produce byte-identical traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amf;
pub mod auth;
pub mod device;
pub mod event;
pub mod gnb;
pub mod intercept;
pub mod scenario;
pub mod sim;
pub mod stream;
pub mod ue;

pub use amf::{Amf, AmfConfig, SubscriberRecord};
pub use device::DeviceModel;
pub use event::RanEvent;
pub use gnb::{Gnb, GnbConfig};
pub use intercept::{Chain, Intercept, Interceptor, PassThrough};
pub use scenario::{Scenario, ScenarioConfig};
pub use sim::{RanSimulator, SimConfig, SimReport};
pub use stream::{StormConfig, StreamConfig, StreamStats, StreamingScenario};
pub use ue::{BenignUe, SessionPlan, UeActions, UeBehavior};
