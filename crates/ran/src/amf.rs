//! The simulated Access and Mobility Management Function (5G core).
//!
//! Implements the NAS side of registration: identity resolution (SUCI
//! de-concealment, TMSI lookup, plaintext fallback), 5G-AKA challenge /
//! verification, NAS security-mode negotiation, TMSI allocation, service
//! requests, PDU sessions, and deregistration.
//!
//! The AMF is deliberately a pure, synchronous state machine: the simulator
//! feeds it uplink NAS messages and it returns [`AmfAction`]s (downlink NAS
//! to send, connections to release). This keeps it unit-testable without the
//! event loop, and mirrors how the paper treats the core network as a
//! trusted black box behind NGAP.
//!
//! ## Security-relevant policies
//!
//! * **Identity fallback** — when the presented identity cannot be resolved
//!   (unknown TMSI, garbled SUCI), the AMF falls back to an
//!   `IdentityRequest`. [`AmfConfig::identity_fallback_plaintext`] selects
//!   whether it demands the *plaintext* SUPI (the permissive behavior the
//!   uplink identity-extraction attack exploits) or a fresh SUCI.
//! * **TMSI conflict** — a registration/service request presenting a TMSI
//!   that is *currently attached on another connection* detaches the old
//!   connection (the victim), which is exactly the Blind-DoS disruption.

use crate::auth;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{HashMap, VecDeque};
use xsec_proto::nas::{IdentityType, NasMessage, NasRejectCause};
use xsec_proto::MobileIdentity;
use xsec_types::{ReleaseCause, SecurityCapabilities, Supi, Tmsi};

/// One provisioned subscriber (SIM profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberRecord {
    /// The permanent identity.
    pub supi: Supi,
    /// The long-term AKA key.
    pub key: u64,
}

/// AMF policy knobs.
#[derive(Debug, Clone)]
pub struct AmfConfig {
    /// When an identity cannot be resolved, demand the plaintext SUPI
    /// (`true`, permissive — the behavior the AdaptOver-style uplink
    /// extraction banks on) or a fresh SUCI (`false`, strict).
    pub identity_fallback_plaintext: bool,
    /// Maximum authentication attempts per connection before rejecting.
    pub max_auth_attempts: u32,
    /// Upper bound on remembered TMSI→subscriber bindings. `None` keeps
    /// every binding forever (fine for bounded scenario runs); streaming
    /// runs set a cap so the AMF forgets the oldest *detached* TMSIs first
    /// and its memory stays flat while millions of UEs churn through.
    pub tmsi_retention: Option<usize>,
}

impl Default for AmfConfig {
    fn default() -> Self {
        AmfConfig {
            identity_fallback_plaintext: true,
            max_auth_attempts: 2,
            tmsi_retention: None,
        }
    }
}

/// Something the AMF wants the RAN/simulator to do.
#[derive(Debug, Clone, PartialEq)]
pub enum AmfAction {
    /// Send a downlink NAS message on the given connection.
    SendNas {
        /// RAN UE NGAP id of the target connection.
        conn: u64,
        /// The message.
        msg: NasMessage,
    },
    /// Release a (different) connection — e.g. the victim of a TMSI
    /// conflict, or a deregistered UE.
    ReleaseConnection {
        /// RAN UE NGAP id of the connection to drop.
        conn: u64,
        /// Why.
        cause: ReleaseCause,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnPhase {
    Resolving,
    AuthPending,
    SecurityMode,
    Registered,
}

#[derive(Debug)]
struct ConnContext {
    phase: ConnPhase,
    msin: Option<u64>,
    capabilities: SecurityCapabilities,
    challenge: Option<(u64, u64)>, // (rand, expected res)
    auth_attempts: u32,
    tmsi: Option<Tmsi>,
}

/// The AMF state machine.
#[derive(Debug)]
pub struct Amf {
    config: AmfConfig,
    subscribers: HashMap<u64, SubscriberRecord>, // msin → record
    tmsi_owner: HashMap<Tmsi, u64>,              // allocated tmsi → msin
    tmsi_order: VecDeque<Tmsi>,                  // allocation order, for retention eviction
    attached: HashMap<Tmsi, u64>,                // tmsi → active conn
    conns: HashMap<u64, ConnContext>,
    next_tmsi: u32,
    rng: StdRng,
}

impl Amf {
    /// Creates an AMF with the given policy and RNG stream.
    pub fn new(config: AmfConfig, rng: StdRng) -> Self {
        Amf {
            config,
            subscribers: HashMap::new(),
            tmsi_owner: HashMap::new(),
            tmsi_order: VecDeque::new(),
            attached: HashMap::new(),
            conns: HashMap::new(),
            next_tmsi: 0x0100_0000,
            rng,
        }
    }

    /// Provisions a subscriber.
    pub fn provision(&mut self, record: SubscriberRecord) {
        self.subscribers.insert(record.supi.msin, record);
    }

    /// Removes a subscriber's SIM profile (e.g. after the streaming engine
    /// retires the UE for good). Any live attachment is unaffected; the
    /// subscriber simply cannot authenticate fresh registrations anymore.
    pub fn forget_subscriber(&mut self, msin: u64) {
        self.subscribers.remove(&msin);
    }

    /// Number of provisioned subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Number of remembered TMSI→subscriber bindings.
    pub fn tmsi_binding_count(&self) -> usize {
        self.tmsi_owner.len()
    }

    /// Provisions a *stale* TMSI binding: the AMF remembers it belongs to
    /// `msin` (e.g. from before a restart) although no connection is
    /// attached under it. A warm-starting UE presenting this TMSI resolves
    /// directly — no identity procedure, exactly like a production AMF with
    /// persistent TMSI state.
    pub fn provision_stale_tmsi(&mut self, tmsi: Tmsi, msin: u64) {
        if self.tmsi_owner.insert(tmsi, msin).is_none() {
            self.tmsi_order.push_back(tmsi);
        }
        self.enforce_tmsi_retention();
    }

    /// Drops the oldest detached TMSI bindings until the retention cap (if
    /// configured) is respected. Currently attached TMSIs are never evicted
    /// — they are re-queued behind the newest allocation instead.
    fn enforce_tmsi_retention(&mut self) {
        let Some(cap) = self.config.tmsi_retention else { return };
        let mut budget = self.tmsi_order.len();
        while self.tmsi_owner.len() > cap && budget > 0 {
            budget -= 1;
            let Some(tmsi) = self.tmsi_order.pop_front() else { break };
            if self.attached.contains_key(&tmsi) {
                self.tmsi_order.push_back(tmsi);
            } else {
                self.tmsi_owner.remove(&tmsi);
            }
        }
    }

    /// Number of currently attached (registered) subscribers.
    pub fn attached_count(&self) -> usize {
        self.attached.len()
    }

    /// Whether the TMSI is attached on an active connection right now.
    pub fn is_attached(&self, tmsi: Tmsi) -> bool {
        self.attached.contains_key(&tmsi)
    }

    /// Informs the AMF that the RAN dropped a connection (guard timer,
    /// radio failure). Cleans up the association.
    pub fn connection_closed(&mut self, conn: u64) {
        if let Some(ctx) = self.conns.remove(&conn) {
            if let Some(tmsi) = ctx.tmsi {
                if self.attached.get(&tmsi) == Some(&conn) {
                    self.attached.remove(&tmsi);
                }
            }
        }
    }

    /// Feeds one uplink NAS message from connection `conn`.
    pub fn handle_uplink(&mut self, conn: u64, msg: &NasMessage) -> Vec<AmfAction> {
        match msg {
            NasMessage::RegistrationRequest { identity, capabilities } => {
                self.handle_registration(conn, identity, *capabilities)
            }
            NasMessage::IdentityResponse { identity } => self.handle_identity(conn, identity),
            NasMessage::AuthenticationResponse { res } => self.handle_auth_response(conn, *res),
            NasMessage::AuthenticationFailure { .. } => {
                vec![AmfAction::SendNas { conn, msg: NasMessage::AuthenticationReject }]
            }
            NasMessage::SecurityModeComplete => self.handle_smc_complete(conn),
            NasMessage::SecurityModeReject { .. } => vec![
                AmfAction::SendNas {
                    conn,
                    msg: NasMessage::RegistrationReject { cause: NasRejectCause::IllegalUe },
                },
                AmfAction::ReleaseConnection { conn, cause: ReleaseCause::NetworkAbort },
            ],
            NasMessage::RegistrationComplete => Vec::new(),
            NasMessage::ServiceRequest { tmsi } => self.handle_service_request(conn, *tmsi),
            NasMessage::PduSessionEstablishmentRequest { session_id } => {
                match self.conns.get(&conn) {
                    Some(ctx) if ctx.phase == ConnPhase::Registered => vec![AmfAction::SendNas {
                        conn,
                        msg: NasMessage::PduSessionEstablishmentAccept { session_id: *session_id },
                    }],
                    _ => Vec::new(), // session request before registration: ignored
                }
            }
            NasMessage::DeregistrationRequest => {
                let mut actions = vec![AmfAction::SendNas {
                    conn,
                    msg: NasMessage::DeregistrationAccept,
                }];
                if let Some(ctx) = self.conns.get(&conn) {
                    if let Some(tmsi) = ctx.tmsi {
                        self.attached.remove(&tmsi);
                    }
                }
                actions.push(AmfAction::ReleaseConnection { conn, cause: ReleaseCause::Normal });
                actions
            }
            // Downlink-only kinds arriving uplink are dropped silently (the
            // conformance checker, not the AMF, is the anomaly detector).
            _ => Vec::new(),
        }
    }

    fn ctx(&mut self, conn: u64) -> &mut ConnContext {
        self.conns.entry(conn).or_insert_with(|| ConnContext {
            phase: ConnPhase::Resolving,
            msin: None,
            capabilities: SecurityCapabilities::full(),
            challenge: None,
            auth_attempts: 0,
            tmsi: None,
        })
    }

    fn identity_fallback(&self) -> IdentityType {
        if self.config.identity_fallback_plaintext {
            IdentityType::PlainSupi
        } else {
            IdentityType::Suci
        }
    }

    fn handle_registration(
        &mut self,
        conn: u64,
        identity: &MobileIdentity,
        capabilities: SecurityCapabilities,
    ) -> Vec<AmfAction> {
        self.ctx(conn).capabilities = capabilities;
        let mut actions = Vec::new();

        let msin = match identity {
            MobileIdentity::Suci { concealed, .. } => {
                let msin = auth::reveal_supi(*concealed);
                if self.subscribers.contains_key(&msin) {
                    Some(msin)
                } else {
                    None
                }
            }
            MobileIdentity::FiveGSTmsi(tmsi) => {
                // TMSI conflict: if attached elsewhere, detach the victim.
                if let Some(old_conn) = self.attached.get(tmsi).copied() {
                    if old_conn != conn {
                        self.connection_closed(old_conn);
                        actions.push(AmfAction::ReleaseConnection {
                            conn: old_conn,
                            cause: ReleaseCause::NetworkAbort,
                        });
                    }
                }
                self.tmsi_owner.get(tmsi).copied()
            }
            MobileIdentity::PlainSupi(supi) => {
                if self.subscribers.contains_key(&supi.msin) {
                    Some(supi.msin)
                } else {
                    None
                }
            }
        };

        match msin {
            Some(msin) => {
                actions.extend(self.start_authentication(conn, msin));
                actions
            }
            None => {
                // Cannot resolve: identity procedure (the uplink-extraction
                // lever when the fallback is plaintext).
                let id_type = self.identity_fallback();
                self.ctx(conn).phase = ConnPhase::Resolving;
                actions.push(AmfAction::SendNas {
                    conn,
                    msg: NasMessage::IdentityRequest { id_type },
                });
                actions
            }
        }
    }

    fn handle_identity(&mut self, conn: u64, identity: &MobileIdentity) -> Vec<AmfAction> {
        let msin = match identity {
            MobileIdentity::Suci { concealed, .. } => Some(auth::reveal_supi(*concealed)),
            MobileIdentity::PlainSupi(supi) => Some(supi.msin),
            MobileIdentity::FiveGSTmsi(tmsi) => self.tmsi_owner.get(tmsi).copied(),
        };
        match msin.filter(|m| self.subscribers.contains_key(m)) {
            Some(msin) => self.start_authentication(conn, msin),
            None => vec![
                AmfAction::SendNas {
                    conn,
                    msg: NasMessage::RegistrationReject { cause: NasRejectCause::IllegalUe },
                },
                AmfAction::ReleaseConnection { conn, cause: ReleaseCause::NetworkAbort },
            ],
        }
    }

    fn start_authentication(&mut self, conn: u64, msin: u64) -> Vec<AmfAction> {
        let key = self.subscribers[&msin].key;
        let rand: u64 = self.rng.gen();
        let expected = auth::aka_response(key, rand);
        let ctx = self.ctx(conn);
        ctx.msin = Some(msin);
        ctx.challenge = Some((rand, expected));
        ctx.phase = ConnPhase::AuthPending;
        vec![AmfAction::SendNas {
            conn,
            msg: NasMessage::AuthenticationRequest { rand, autn: auth::aka_response(rand, key) },
        }]
    }

    fn handle_auth_response(&mut self, conn: u64, res: u64) -> Vec<AmfAction> {
        let Some(ctx) = self.conns.get_mut(&conn) else {
            return Vec::new();
        };
        let Some((_, expected)) = ctx.challenge else {
            return Vec::new(); // response without outstanding challenge
        };
        if res == expected {
            ctx.phase = ConnPhase::SecurityMode;
            let caps = ctx.capabilities;
            let (cipher, integrity) = caps.negotiate();
            vec![AmfAction::SendNas {
                conn,
                msg: NasMessage::SecurityModeCommand {
                    cipher,
                    integrity,
                    replayed_capabilities: caps,
                },
            }]
        } else {
            ctx.auth_attempts += 1;
            if ctx.auth_attempts >= self.config.max_auth_attempts {
                vec![
                    AmfAction::SendNas { conn, msg: NasMessage::AuthenticationReject },
                    AmfAction::ReleaseConnection { conn, cause: ReleaseCause::NetworkAbort },
                ]
            } else if let Some(msin) = ctx.msin {
                self.start_authentication(conn, msin)
            } else {
                Vec::new()
            }
        }
    }

    fn handle_smc_complete(&mut self, conn: u64) -> Vec<AmfAction> {
        let Some(ctx) = self.conns.get_mut(&conn) else {
            return Vec::new();
        };
        if ctx.phase != ConnPhase::SecurityMode {
            return Vec::new();
        }
        let Some(msin) = ctx.msin else { return Vec::new() };
        let tmsi = Tmsi(self.next_tmsi);
        self.next_tmsi = self.next_tmsi.wrapping_add(1);
        ctx.phase = ConnPhase::Registered;
        ctx.tmsi = Some(tmsi);
        if self.tmsi_owner.insert(tmsi, msin).is_none() {
            self.tmsi_order.push_back(tmsi);
        }
        self.attached.insert(tmsi, conn);
        self.enforce_tmsi_retention();
        vec![AmfAction::SendNas { conn, msg: NasMessage::RegistrationAccept { new_tmsi: tmsi } }]
    }

    fn handle_service_request(&mut self, conn: u64, tmsi: Tmsi) -> Vec<AmfAction> {
        let mut actions = Vec::new();
        // Conflict check first (Blind DoS lever).
        if let Some(old_conn) = self.attached.get(&tmsi).copied() {
            if old_conn != conn {
                self.connection_closed(old_conn);
                actions.push(AmfAction::ReleaseConnection {
                    conn: old_conn,
                    cause: ReleaseCause::NetworkAbort,
                });
            }
        }
        match self.tmsi_owner.get(&tmsi).copied() {
            Some(msin) => {
                // Re-authenticate on service request (conservative policy —
                // also what makes a replayed TMSI stall at the challenge).
                actions.extend(self.start_authentication(conn, msin));
                actions
            }
            None => {
                let id_type = self.identity_fallback();
                actions.push(AmfAction::SendNas {
                    conn,
                    msg: NasMessage::IdentityRequest { id_type },
                });
                actions
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xsec_types::Plmn;

    fn amf() -> Amf {
        let mut amf = Amf::new(AmfConfig::default(), StdRng::seed_from_u64(7));
        amf.provision(SubscriberRecord { supi: Supi::new(Plmn::TEST, 1000), key: 0xAA });
        amf.provision(SubscriberRecord { supi: Supi::new(Plmn::TEST, 2000), key: 0xBB });
        amf
    }

    fn suci(msin: u64, nonce: u32) -> MobileIdentity {
        MobileIdentity::Suci { plmn: Plmn::TEST, concealed: auth::conceal_supi(msin, nonce) }
    }

    /// Drives a full benign registration; returns the assigned TMSI.
    fn register(amf: &mut Amf, conn: u64, msin: u64, key: u64) -> Tmsi {
        let actions = amf.handle_uplink(
            conn,
            &NasMessage::RegistrationRequest {
                identity: suci(msin, conn as u32),
                capabilities: SecurityCapabilities::full(),
            },
        );
        let AmfAction::SendNas { msg: NasMessage::AuthenticationRequest { rand, .. }, .. } =
            &actions[0]
        else {
            panic!("expected challenge, got {actions:?}");
        };
        let res = auth::aka_response(key, *rand);
        let actions = amf.handle_uplink(conn, &NasMessage::AuthenticationResponse { res });
        assert!(
            matches!(
                actions[0],
                AmfAction::SendNas { msg: NasMessage::SecurityModeCommand { .. }, .. }
            ),
            "expected SMC, got {actions:?}"
        );
        let actions = amf.handle_uplink(conn, &NasMessage::SecurityModeComplete);
        let AmfAction::SendNas { msg: NasMessage::RegistrationAccept { new_tmsi }, .. } =
            &actions[0]
        else {
            panic!("expected accept, got {actions:?}");
        };
        *new_tmsi
    }

    #[test]
    fn full_registration_ladder_succeeds() {
        let mut amf = amf();
        let tmsi = register(&mut amf, 1, 1000, 0xAA);
        assert!(amf.is_attached(tmsi));
        assert_eq!(amf.attached_count(), 1);
    }

    #[test]
    fn wrong_auth_response_retries_then_rejects() {
        let mut amf = amf();
        amf.handle_uplink(
            1,
            &NasMessage::RegistrationRequest {
                identity: suci(1000, 5),
                capabilities: SecurityCapabilities::full(),
            },
        );
        // First wrong answer → fresh challenge.
        let actions = amf.handle_uplink(1, &NasMessage::AuthenticationResponse { res: 0 });
        assert!(matches!(
            actions[0],
            AmfAction::SendNas { msg: NasMessage::AuthenticationRequest { .. }, .. }
        ));
        // Second wrong answer → reject + release.
        let actions = amf.handle_uplink(1, &NasMessage::AuthenticationResponse { res: 0 });
        assert!(matches!(
            actions[0],
            AmfAction::SendNas { msg: NasMessage::AuthenticationReject, .. }
        ));
        assert!(matches!(actions[1], AmfAction::ReleaseConnection { .. }));
    }

    #[test]
    fn unknown_suci_triggers_identity_request_with_plaintext_fallback() {
        let mut amf = amf();
        // Garbled SUCI that reveals to an unknown MSIN.
        let actions = amf.handle_uplink(
            1,
            &NasMessage::RegistrationRequest {
                identity: MobileIdentity::Suci { plmn: Plmn::TEST, concealed: 0xBAD },
                capabilities: SecurityCapabilities::full(),
            },
        );
        assert_eq!(
            actions,
            vec![AmfAction::SendNas {
                conn: 1,
                msg: NasMessage::IdentityRequest { id_type: IdentityType::PlainSupi },
            }]
        );
    }

    #[test]
    fn strict_fallback_asks_for_suci_instead() {
        let mut amf = Amf::new(
            AmfConfig { identity_fallback_plaintext: false, ..AmfConfig::default() },
            StdRng::seed_from_u64(1),
        );
        let actions = amf.handle_uplink(
            1,
            &NasMessage::RegistrationRequest {
                identity: MobileIdentity::FiveGSTmsi(Tmsi(0xDEAD)),
                capabilities: SecurityCapabilities::full(),
            },
        );
        assert!(matches!(
            actions[0],
            AmfAction::SendNas {
                msg: NasMessage::IdentityRequest { id_type: IdentityType::Suci },
                ..
            }
        ));
    }

    #[test]
    fn identity_response_with_plain_supi_resumes_authentication() {
        let mut amf = amf();
        amf.handle_uplink(
            1,
            &NasMessage::RegistrationRequest {
                identity: MobileIdentity::Suci { plmn: Plmn::TEST, concealed: 0xBAD },
                capabilities: SecurityCapabilities::full(),
            },
        );
        let actions = amf.handle_uplink(
            1,
            &NasMessage::IdentityResponse {
                identity: MobileIdentity::PlainSupi(Supi::new(Plmn::TEST, 1000)),
            },
        );
        assert!(matches!(
            actions[0],
            AmfAction::SendNas { msg: NasMessage::AuthenticationRequest { .. }, .. }
        ));
    }

    #[test]
    fn tmsi_conflict_detaches_the_victim_connection() {
        let mut amf = amf();
        let tmsi = register(&mut amf, 1, 1000, 0xAA);
        // A second connection presents the victim's TMSI.
        let actions = amf.handle_uplink(
            2,
            &NasMessage::RegistrationRequest {
                identity: MobileIdentity::FiveGSTmsi(tmsi),
                capabilities: SecurityCapabilities::full(),
            },
        );
        assert!(
            actions.contains(&AmfAction::ReleaseConnection {
                conn: 1,
                cause: ReleaseCause::NetworkAbort,
            }),
            "victim was not detached: {actions:?}"
        );
        assert!(!amf.is_attached(tmsi));
        // The imposter still faces an AKA challenge it cannot answer.
        assert!(actions.iter().any(|a| matches!(
            a,
            AmfAction::SendNas { msg: NasMessage::AuthenticationRequest { .. }, .. }
        )));
    }

    #[test]
    fn stripped_capabilities_negotiate_null_algorithms() {
        let mut amf = amf();
        let actions = amf.handle_uplink(
            1,
            &NasMessage::RegistrationRequest {
                identity: suci(1000, 9),
                capabilities: SecurityCapabilities::null_only(),
            },
        );
        let AmfAction::SendNas { msg: NasMessage::AuthenticationRequest { rand, .. }, .. } =
            &actions[0]
        else {
            panic!("expected challenge");
        };
        let res = auth::aka_response(0xAA, *rand);
        let actions = amf.handle_uplink(1, &NasMessage::AuthenticationResponse { res });
        let AmfAction::SendNas {
            msg: NasMessage::SecurityModeCommand { cipher, integrity, .. },
            ..
        } = &actions[0]
        else {
            panic!("expected SMC");
        };
        assert!(cipher.is_null());
        assert!(integrity.is_null());
    }

    #[test]
    fn deregistration_detaches_and_releases() {
        let mut amf = amf();
        let tmsi = register(&mut amf, 1, 1000, 0xAA);
        let actions = amf.handle_uplink(1, &NasMessage::DeregistrationRequest);
        assert!(matches!(
            actions[0],
            AmfAction::SendNas { msg: NasMessage::DeregistrationAccept, .. }
        ));
        assert!(matches!(
            actions[1],
            AmfAction::ReleaseConnection { conn: 1, cause: ReleaseCause::Normal }
        ));
        assert!(!amf.is_attached(tmsi));
    }

    #[test]
    fn pdu_session_only_after_registration() {
        let mut amf = amf();
        // Before registration: ignored.
        let actions =
            amf.handle_uplink(1, &NasMessage::PduSessionEstablishmentRequest { session_id: 1 });
        assert!(actions.is_empty());
        register(&mut amf, 1, 1000, 0xAA);
        let actions =
            amf.handle_uplink(1, &NasMessage::PduSessionEstablishmentRequest { session_id: 1 });
        assert!(matches!(
            actions[0],
            AmfAction::SendNas {
                msg: NasMessage::PduSessionEstablishmentAccept { session_id: 1 },
                ..
            }
        ));
    }

    #[test]
    fn connection_closed_cleans_attachment() {
        let mut amf = amf();
        let tmsi = register(&mut amf, 1, 1000, 0xAA);
        amf.connection_closed(1);
        assert!(!amf.is_attached(tmsi));
    }

    #[test]
    fn tmsi_retention_evicts_oldest_detached_binding_first() {
        let mut amf = Amf::new(
            AmfConfig { tmsi_retention: Some(2), ..AmfConfig::default() },
            StdRng::seed_from_u64(3),
        );
        amf.provision(SubscriberRecord { supi: Supi::new(Plmn::TEST, 1000), key: 0xAA });
        let attached = register(&mut amf, 1, 1000, 0xAA);
        // Two stale bindings push past the cap; the attached TMSI must
        // survive while the oldest detached binding is evicted.
        amf.provision_stale_tmsi(Tmsi(0xA1), 1000);
        amf.provision_stale_tmsi(Tmsi(0xA2), 1000);
        assert_eq!(amf.tmsi_binding_count(), 2);
        assert!(amf.tmsi_owner.contains_key(&attached));
        assert!(!amf.tmsi_owner.contains_key(&Tmsi(0xA1)));
        assert!(amf.tmsi_owner.contains_key(&Tmsi(0xA2)));
    }

    #[test]
    fn forget_subscriber_removes_the_sim_profile() {
        let mut amf = amf();
        assert_eq!(amf.subscriber_count(), 2);
        amf.forget_subscriber(1000);
        assert_eq!(amf.subscriber_count(), 1);
        // Fresh registrations for the forgotten MSIN now hit the identity
        // fallback instead of authenticating.
        let actions = amf.handle_uplink(
            9,
            &NasMessage::RegistrationRequest {
                identity: suci(1000, 1),
                capabilities: SecurityCapabilities::full(),
            },
        );
        assert!(matches!(
            actions[0],
            AmfAction::SendNas { msg: NasMessage::IdentityRequest { .. }, .. }
        ));
    }

    #[test]
    fn smc_complete_without_context_is_ignored() {
        let mut amf = amf();
        assert!(amf.handle_uplink(99, &NasMessage::SecurityModeComplete).is_empty());
    }
}
