//! Commodity-device profiles.
//!
//! The paper collects benign traffic from four commodity smartphones (Pixel
//! 5/6, Galaxy A22/A53) plus OAI soft UEs on COLOSSEUM. Devices differ in
//! timing, establishment-cause mix, and how eagerly they open data sessions;
//! those differences are what makes the benign distribution *diverse*, which
//! in turn is what the anomaly detector must learn to tolerate.

use xsec_types::{Duration, EstablishmentCause};

/// The device models used for benign dataset collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceModel {
    /// Google Pixel 5.
    Pixel5,
    /// Google Pixel 6.
    Pixel6,
    /// Samsung Galaxy A22.
    GalaxyA22,
    /// Samsung Galaxy A53.
    GalaxyA53,
    /// OpenAirInterface soft UE (COLOSSEUM-style emulated device).
    OaiSoftUe,
}

/// Behavioral parameters of one device model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name, used in reports.
    pub name: &'static str,
    /// Typical delay between receiving a downlink message and answering.
    pub response_delay: Duration,
    /// Extra uniform jitter on top of `response_delay`.
    pub response_jitter: Duration,
    /// Relative weights over [`EstablishmentCause::ALL`] for session starts.
    pub cause_weights: [u32; 7],
    /// Probability the device opens a PDU session after registering.
    pub pdu_session_probability: f64,
    /// Probability a re-registration presents the stored TMSI instead of a
    /// fresh SUCI (commodity phones cache their TMSI aggressively; soft UEs
    /// start fresh every run).
    pub tmsi_reuse_probability: f64,
    /// How long the device stays attached before tearing down.
    pub hold_time: Duration,
    /// Extra uniform jitter on the hold time.
    pub hold_jitter: Duration,
}

impl DeviceModel {
    /// Number of device models — array types that must stay in sync with
    /// [`DeviceModel::ALL`] (e.g. `ScenarioConfig::device_mix`) should be
    /// sized with this constant so they cannot silently drift.
    pub const COUNT: usize = DeviceModel::ALL.len();

    /// All models, in the order the paper lists them.
    pub const ALL: [DeviceModel; 5] = [
        DeviceModel::Pixel5,
        DeviceModel::Pixel6,
        DeviceModel::GalaxyA22,
        DeviceModel::GalaxyA53,
        DeviceModel::OaiSoftUe,
    ];

    /// The behavioral profile of this model.
    pub fn profile(self) -> DeviceProfile {
        match self {
            DeviceModel::Pixel5 => DeviceProfile {
                name: "Google Pixel 5",
                response_delay: Duration::from_millis(6),
                response_jitter: Duration::from_millis(3),
                // mostly signalling + data, occasional voice/SMS
                cause_weights: [0, 0, 5, 40, 45, 6, 4],
                pdu_session_probability: 0.9,
                tmsi_reuse_probability: 0.7,
                hold_time: Duration::from_millis(600),
                hold_jitter: Duration::from_millis(400),
            },
            DeviceModel::Pixel6 => DeviceProfile {
                name: "Google Pixel 6",
                response_delay: Duration::from_millis(4),
                response_jitter: Duration::from_millis(2),
                cause_weights: [0, 0, 6, 38, 48, 5, 3],
                pdu_session_probability: 0.92,
                tmsi_reuse_probability: 0.75,
                hold_time: Duration::from_millis(700),
                hold_jitter: Duration::from_millis(500),
            },
            DeviceModel::GalaxyA22 => DeviceProfile {
                name: "Samsung Galaxy A22",
                response_delay: Duration::from_millis(9),
                response_jitter: Duration::from_millis(5),
                cause_weights: [0, 0, 8, 42, 38, 7, 5],
                pdu_session_probability: 0.85,
                tmsi_reuse_probability: 0.6,
                hold_time: Duration::from_millis(500),
                hold_jitter: Duration::from_millis(300),
            },
            DeviceModel::GalaxyA53 => DeviceProfile {
                name: "Samsung Galaxy A53",
                response_delay: Duration::from_millis(7),
                response_jitter: Duration::from_millis(4),
                cause_weights: [0, 0, 7, 40, 42, 6, 5],
                pdu_session_probability: 0.88,
                tmsi_reuse_probability: 0.65,
                hold_time: Duration::from_millis(550),
                hold_jitter: Duration::from_millis(350),
            },
            DeviceModel::OaiSoftUe => DeviceProfile {
                name: "OAI soft UE",
                response_delay: Duration::from_millis(2),
                response_jitter: Duration::from_millis(1),
                // emulated devices: almost pure signalling+data
                cause_weights: [0, 0, 2, 55, 43, 0, 0],
                pdu_session_probability: 0.95,
                tmsi_reuse_probability: 0.1,
                hold_time: Duration::from_millis(400),
                hold_jitter: Duration::from_millis(200),
            },
        }
    }

    /// Draws an establishment cause from this model's mix.
    pub fn draw_cause(self, rng: &mut impl rand::Rng) -> EstablishmentCause {
        let profile = self.profile();
        let total: u32 = profile.cause_weights.iter().sum();
        let mut pick = rng.gen_range(0..total);
        for (i, w) in profile.cause_weights.iter().enumerate() {
            if pick < *w {
                return EstablishmentCause::ALL[i];
            }
            pick -= w;
        }
        EstablishmentCause::MoSignalling
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_model_has_a_valid_profile() {
        for model in DeviceModel::ALL {
            let p = model.profile();
            assert!(!p.name.is_empty());
            assert!(p.cause_weights.iter().sum::<u32>() > 0, "{:?} has zero weights", model);
            assert!((0.0..=1.0).contains(&p.pdu_session_probability));
            assert!((0.0..=1.0).contains(&p.tmsi_reuse_probability));
        }
    }

    #[test]
    fn cause_draws_respect_zero_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let cause = DeviceModel::Pixel5.draw_cause(&mut rng);
            assert_ne!(cause, EstablishmentCause::Emergency);
            assert_ne!(cause, EstablishmentCause::HighPriorityAccess);
        }
    }

    #[test]
    fn cause_distribution_is_diverse_for_phones() {
        use std::collections::HashSet;
        let mut rng = StdRng::seed_from_u64(2);
        let causes: HashSet<_> =
            (0..1000).map(|_| DeviceModel::GalaxyA22.draw_cause(&mut rng)).collect();
        assert!(causes.len() >= 4, "expected diverse causes, got {causes:?}");
    }

    #[test]
    fn soft_ue_is_faster_than_phones() {
        let soft = DeviceModel::OaiSoftUe.profile();
        for phone in [DeviceModel::Pixel5, DeviceModel::GalaxyA22] {
            assert!(soft.response_delay < phone.profile().response_delay);
        }
    }
}
