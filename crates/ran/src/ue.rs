//! UE behaviors: the pluggable state machines driving each simulated device.
//!
//! [`UeBehavior`] is the single integration point for both legitimate
//! devices and the rogue UEs in `xsec-attacks` — the simulator does not know
//! or care which is which (ground-truth labels are attached out-of-band).
//!
//! [`BenignUe`] implements the normal 24.501 registration ladder with
//! device-profile timing and session habits; it is the behavior behind every
//! entry of the benign dataset.

use crate::auth;
use crate::device::DeviceModel;
use rand::rngs::StdRng;
use rand::Rng;
use xsec_proto::nas::IdentityType;
use xsec_proto::{L3Message, MobileIdentity, NasMessage, RrcMessage};
use xsec_types::{Duration, SecurityCapabilities, Supi, Timestamp, Tmsi};

/// What a behavior wants the simulator to do after handling an event.
#[derive(Debug, Default)]
pub struct UeActions {
    /// Uplink messages to transmit, in order.
    pub sends: Vec<L3Message>,
    /// Timers to arm: after `Duration`, deliver `on_timer(token)`.
    pub timers: Vec<(Duration, u32)>,
    /// Tear down local state and go silent (end of this UE's life).
    pub power_off: bool,
}

impl UeActions {
    /// No action.
    pub fn none() -> Self {
        UeActions::default()
    }

    /// Queues an uplink send.
    pub fn send(mut self, msg: L3Message) -> Self {
        self.sends.push(msg);
        self
    }

    /// Arms a timer.
    pub fn timer(mut self, delay: Duration, token: u32) -> Self {
        self.timers.push((delay, token));
        self
    }

    /// Marks the UE as done.
    pub fn off(mut self) -> Self {
        self.power_off = true;
        self
    }
}

/// A pluggable UE state machine.
///
/// The simulator guarantees: `on_power_on` is called exactly once, then
/// `on_downlink`/`on_timer` as events arrive. All randomness must come from
/// the provided RNG so runs stay deterministic.
pub trait UeBehavior: Send {
    /// Called when the UE starts; typically returns an `RRCSetupRequest`.
    fn on_power_on(&mut self, now: Timestamp, rng: &mut StdRng) -> UeActions;

    /// Called for each downlink message delivered to this UE.
    fn on_downlink(&mut self, now: Timestamp, msg: &L3Message, rng: &mut StdRng) -> UeActions;

    /// Called when a previously armed timer fires.
    fn on_timer(&mut self, now: Timestamp, token: u32, rng: &mut StdRng) -> UeActions {
        let _ = (now, token, rng);
        UeActions::none()
    }

    /// The response latency this device adds before its uplink sends.
    fn response_delay(&self, rng: &mut StdRng) -> Duration {
        let _ = rng;
        Duration::from_millis(3)
    }
}

/// The per-session plan a benign UE commits to at power-on.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionPlan {
    /// Present the cached TMSI instead of a fresh SUCI.
    pub reuse_tmsi: bool,
    /// Open a PDU session after registering.
    pub open_pdu_session: bool,
    /// How long to stay attached after registration completes.
    pub hold: Duration,
}

/// Timer tokens used by [`BenignUe`].
mod timer {
    pub const HOLD_EXPIRED: u32 = 1;
    pub const OPEN_PDU_SESSION: u32 = 2;
}

/// Registration ladder position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Off,
    WaitSetup,
    WaitAuth,
    WaitSecurityMode,
    WaitAccept,
    Registered,
    Deregistering,
}

/// A legitimate device following the 3GPP registration ladder.
#[derive(Debug)]
pub struct BenignUe {
    /// Which commodity device this models.
    pub model: DeviceModel,
    supi: Supi,
    key: u64,
    capabilities: SecurityCapabilities,
    cached_tmsi: Option<Tmsi>,
    plan: SessionPlan,
    stage: Stage,
    sent_capabilities: SecurityCapabilities,
}

impl BenignUe {
    /// Creates a benign UE with the given subscription credentials. The
    /// session plan is drawn from the device profile using `rng`.
    pub fn new(
        model: DeviceModel,
        supi: Supi,
        key: u64,
        cached_tmsi: Option<Tmsi>,
        rng: &mut StdRng,
    ) -> Self {
        let profile = model.profile();
        let plan = SessionPlan {
            reuse_tmsi: cached_tmsi.is_some() && rng.gen_bool(profile.tmsi_reuse_probability),
            open_pdu_session: rng.gen_bool(profile.pdu_session_probability),
            hold: profile.hold_time
                + Duration::from_micros(rng.gen_range(0..=profile.hold_jitter.as_micros())),
        };
        BenignUe {
            model,
            supi,
            key,
            capabilities: SecurityCapabilities::full(),
            cached_tmsi,
            plan,
            stage: Stage::Off,
            sent_capabilities: SecurityCapabilities::full(),
        }
    }

    /// Creates a benign UE with an explicit session plan instead of drawing
    /// one from the device profile. Handover re-registrations use this to
    /// guarantee the UE presents the TMSI it carried from the source cell.
    pub fn with_plan(
        model: DeviceModel,
        supi: Supi,
        key: u64,
        cached_tmsi: Option<Tmsi>,
        plan: SessionPlan,
    ) -> Self {
        BenignUe {
            model,
            supi,
            key,
            capabilities: SecurityCapabilities::full(),
            cached_tmsi,
            plan,
            stage: Stage::Off,
            sent_capabilities: SecurityCapabilities::full(),
        }
    }

    /// The session plan committed at construction (visible for tests).
    pub fn plan(&self) -> &SessionPlan {
        &self.plan
    }

    /// The TMSI the UE currently holds.
    pub fn tmsi(&self) -> Option<Tmsi> {
        self.cached_tmsi
    }

    fn fresh_suci(&self, rng: &mut StdRng) -> MobileIdentity {
        MobileIdentity::Suci {
            plmn: self.supi.plmn,
            concealed: auth::conceal_supi(self.supi.msin, rng.gen()),
        }
    }

    fn registration_identity(&self, rng: &mut StdRng) -> MobileIdentity {
        match (self.plan.reuse_tmsi, self.cached_tmsi) {
            (true, Some(tmsi)) => MobileIdentity::FiveGSTmsi(tmsi),
            _ => self.fresh_suci(rng),
        }
    }

    fn identity_of_type(&self, id_type: IdentityType, rng: &mut StdRng) -> MobileIdentity {
        match id_type {
            IdentityType::Suci => self.fresh_suci(rng),
            // Complying with a plaintext identity request is the 24.501
            // §5.4.3 fallback — and the vulnerability identity-extraction
            // attacks exploit.
            IdentityType::PlainSupi => MobileIdentity::PlainSupi(self.supi),
            IdentityType::Tmsi => match self.cached_tmsi {
                Some(tmsi) => MobileIdentity::FiveGSTmsi(tmsi),
                None => self.fresh_suci(rng),
            },
        }
    }
}

impl UeBehavior for BenignUe {
    fn on_power_on(&mut self, _now: Timestamp, rng: &mut StdRng) -> UeActions {
        self.stage = Stage::WaitSetup;
        let cause = self.model.draw_cause(rng);
        UeActions::none().send(L3Message::Rrc(RrcMessage::SetupRequest {
            ue_identity: rng.gen(),
            cause,
        }))
    }

    fn on_downlink(&mut self, _now: Timestamp, msg: &L3Message, rng: &mut StdRng) -> UeActions {
        match msg {
            L3Message::Rrc(rrc) => match rrc {
                RrcMessage::Setup => {
                    if self.stage != Stage::WaitSetup {
                        return UeActions::none(); // duplicate grant
                    }
                    self.stage = Stage::WaitAuth;
                    let identity = self.registration_identity(rng);
                    self.sent_capabilities = self.capabilities;
                    let reg = NasMessage::RegistrationRequest {
                        identity,
                        capabilities: self.capabilities,
                    };
                    let container = xsec_proto::encode_l3(&L3Message::Nas(reg.clone()));
                    UeActions::none()
                        .send(L3Message::Rrc(RrcMessage::SetupComplete {
                            nas_container: container,
                        }))
                }
                RrcMessage::Reject { .. } => {
                    self.stage = Stage::Off;
                    UeActions::none().off()
                }
                RrcMessage::SecurityModeCommand { .. } => {
                    UeActions::none().send(L3Message::Rrc(RrcMessage::SecurityModeComplete))
                }
                RrcMessage::Reconfiguration => {
                    UeActions::none().send(L3Message::Rrc(RrcMessage::ReconfigurationComplete))
                }
                RrcMessage::Release { .. } => {
                    self.stage = Stage::Off;
                    UeActions::none().off()
                }
                _ => UeActions::none(),
            },
            L3Message::Nas(nas) => match nas {
                NasMessage::AuthenticationRequest { rand, .. } => {
                    // Re-answer duplicates: RLC retransmissions make the
                    // network resend, and a real UE re-answers.
                    if matches!(self.stage, Stage::WaitAuth | Stage::WaitSecurityMode) {
                        self.stage = Stage::WaitSecurityMode;
                        let res = auth::aka_response(self.key, *rand);
                        UeActions::none()
                            .send(L3Message::Nas(NasMessage::AuthenticationResponse { res }))
                    } else {
                        UeActions::none()
                    }
                }
                NasMessage::SecurityModeCommand { replayed_capabilities, .. } => {
                    if *replayed_capabilities != self.sent_capabilities {
                        // Anti-bidding-down: the echo does not match what we
                        // sent — a capability-stripping MiTM was detected.
                        return UeActions::none().send(L3Message::Nas(
                            NasMessage::SecurityModeReject { cause: 23 },
                        ));
                    }
                    self.stage = Stage::WaitAccept;
                    UeActions::none().send(L3Message::Nas(NasMessage::SecurityModeComplete))
                }
                NasMessage::RegistrationAccept { new_tmsi } => {
                    if self.stage == Stage::Registered {
                        return UeActions::none(); // duplicate accept
                    }
                    self.stage = Stage::Registered;
                    self.cached_tmsi = Some(*new_tmsi);
                    let mut actions = UeActions::none()
                        .send(L3Message::Nas(NasMessage::RegistrationComplete))
                        .timer(self.plan.hold, timer::HOLD_EXPIRED);
                    if self.plan.open_pdu_session {
                        actions = actions.timer(Duration::from_millis(20), timer::OPEN_PDU_SESSION);
                    }
                    actions
                }
                NasMessage::IdentityRequest { id_type } => {
                    let identity = self.identity_of_type(*id_type, rng);
                    UeActions::none()
                        .send(L3Message::Nas(NasMessage::IdentityResponse { identity }))
                }
                NasMessage::RegistrationReject { .. } | NasMessage::AuthenticationReject => {
                    self.stage = Stage::Off;
                    UeActions::none().off()
                }
                NasMessage::DeregistrationAccept => {
                    self.stage = Stage::Off;
                    UeActions::none()
                }
                _ => UeActions::none(),
            },
        }
    }

    fn on_timer(&mut self, _now: Timestamp, token: u32, _rng: &mut StdRng) -> UeActions {
        match token {
            timer::OPEN_PDU_SESSION if self.stage == Stage::Registered => UeActions::none().send(
                L3Message::Nas(NasMessage::PduSessionEstablishmentRequest { session_id: 1 }),
            ),
            timer::HOLD_EXPIRED if self.stage == Stage::Registered => {
                self.stage = Stage::Deregistering;
                UeActions::none().send(L3Message::Nas(NasMessage::DeregistrationRequest))
            }
            _ => UeActions::none(),
        }
    }

    fn response_delay(&self, rng: &mut StdRng) -> Duration {
        let profile = self.model.profile();
        profile.response_delay
            + Duration::from_micros(rng.gen_range(0..=profile.response_jitter.as_micros().max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xsec_types::Plmn;

    fn ue(seed: u64) -> (BenignUe, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ue = BenignUe::new(
            DeviceModel::Pixel5,
            Supi::new(Plmn::TEST, 1000),
            0xC0FFEE,
            None,
            &mut rng,
        );
        (ue, rng)
    }

    #[test]
    fn power_on_sends_setup_request() {
        let (mut ue, mut rng) = ue(1);
        let actions = ue.on_power_on(Timestamp::ZERO, &mut rng);
        assert_eq!(actions.sends.len(), 1);
        assert!(matches!(actions.sends[0], L3Message::Rrc(RrcMessage::SetupRequest { .. })));
    }

    #[test]
    fn setup_triggers_registration_with_suci_when_no_tmsi() {
        let (mut ue, mut rng) = ue(2);
        ue.on_power_on(Timestamp::ZERO, &mut rng);
        let actions = ue.on_downlink(Timestamp::ZERO, &L3Message::Rrc(RrcMessage::Setup), &mut rng);
        assert_eq!(actions.sends.len(), 1);
        let L3Message::Rrc(RrcMessage::SetupComplete { nas_container }) = &actions.sends[0] else {
            panic!("expected SetupComplete");
        };
        let nas = xsec_proto::decode_l3(nas_container).unwrap();
        let L3Message::Nas(NasMessage::RegistrationRequest { identity, .. }) = nas else {
            panic!("expected RegistrationRequest");
        };
        assert!(matches!(identity, MobileIdentity::Suci { .. }));
    }

    #[test]
    fn auth_request_gets_correct_response() {
        let (mut ue, mut rng) = ue(3);
        ue.on_power_on(Timestamp::ZERO, &mut rng);
        ue.on_downlink(Timestamp::ZERO, &L3Message::Rrc(RrcMessage::Setup), &mut rng);
        let challenge = L3Message::Nas(NasMessage::AuthenticationRequest { rand: 777, autn: 1 });
        let actions = ue.on_downlink(Timestamp::ZERO, &challenge, &mut rng);
        let L3Message::Nas(NasMessage::AuthenticationResponse { res }) = actions.sends[0] else {
            panic!("expected AuthenticationResponse");
        };
        assert_eq!(res, auth::aka_response(0xC0FFEE, 777));
    }

    #[test]
    fn capability_echo_mismatch_triggers_smc_reject() {
        let (mut ue, mut rng) = ue(4);
        ue.on_power_on(Timestamp::ZERO, &mut rng);
        ue.on_downlink(Timestamp::ZERO, &L3Message::Rrc(RrcMessage::Setup), &mut rng);
        ue.on_downlink(
            Timestamp::ZERO,
            &L3Message::Nas(NasMessage::AuthenticationRequest { rand: 1, autn: 1 }),
            &mut rng,
        );
        let smc = L3Message::Nas(NasMessage::SecurityModeCommand {
            cipher: xsec_types::CipherAlg::Nea0,
            integrity: xsec_types::IntegrityAlg::Nia0,
            replayed_capabilities: SecurityCapabilities::null_only(), // mismatch
        });
        let actions = ue.on_downlink(Timestamp::ZERO, &smc, &mut rng);
        assert!(matches!(
            actions.sends[0],
            L3Message::Nas(NasMessage::SecurityModeReject { cause: 23 })
        ));
    }

    #[test]
    fn plaintext_identity_request_is_answered_with_supi() {
        let (mut ue, mut rng) = ue(5);
        ue.on_power_on(Timestamp::ZERO, &mut rng);
        ue.on_downlink(Timestamp::ZERO, &L3Message::Rrc(RrcMessage::Setup), &mut rng);
        let req = L3Message::Nas(NasMessage::IdentityRequest {
            id_type: IdentityType::PlainSupi,
        });
        let actions = ue.on_downlink(Timestamp::ZERO, &req, &mut rng);
        let L3Message::Nas(NasMessage::IdentityResponse { identity }) = &actions.sends[0] else {
            panic!("expected IdentityResponse");
        };
        assert!(identity.exposes_supi());
    }

    #[test]
    fn registration_accept_caches_tmsi_and_arms_timers() {
        let (mut ue, mut rng) = ue(6);
        ue.on_power_on(Timestamp::ZERO, &mut rng);
        ue.on_downlink(Timestamp::ZERO, &L3Message::Rrc(RrcMessage::Setup), &mut rng);
        let accept = L3Message::Nas(NasMessage::RegistrationAccept { new_tmsi: Tmsi(42) });
        let actions = ue.on_downlink(Timestamp::ZERO, &accept, &mut rng);
        assert_eq!(ue.tmsi(), Some(Tmsi(42)));
        assert!(matches!(
            actions.sends[0],
            L3Message::Nas(NasMessage::RegistrationComplete)
        ));
        assert!(!actions.timers.is_empty());
    }

    #[test]
    fn duplicate_accept_is_ignored() {
        let (mut ue, mut rng) = ue(7);
        ue.on_power_on(Timestamp::ZERO, &mut rng);
        ue.on_downlink(Timestamp::ZERO, &L3Message::Rrc(RrcMessage::Setup), &mut rng);
        let accept = L3Message::Nas(NasMessage::RegistrationAccept { new_tmsi: Tmsi(42) });
        ue.on_downlink(Timestamp::ZERO, &accept, &mut rng);
        let again = ue.on_downlink(Timestamp::ZERO, &accept, &mut rng);
        assert!(again.sends.is_empty());
    }

    #[test]
    fn hold_timer_triggers_deregistration() {
        let (mut ue, mut rng) = ue(8);
        ue.on_power_on(Timestamp::ZERO, &mut rng);
        ue.on_downlink(Timestamp::ZERO, &L3Message::Rrc(RrcMessage::Setup), &mut rng);
        ue.on_downlink(
            Timestamp::ZERO,
            &L3Message::Nas(NasMessage::RegistrationAccept { new_tmsi: Tmsi(1) }),
            &mut rng,
        );
        let actions = ue.on_timer(Timestamp::ZERO, super::timer::HOLD_EXPIRED, &mut rng);
        assert!(matches!(
            actions.sends[0],
            L3Message::Nas(NasMessage::DeregistrationRequest)
        ));
    }

    #[test]
    fn release_powers_off() {
        let (mut ue, mut rng) = ue(9);
        ue.on_power_on(Timestamp::ZERO, &mut rng);
        let actions = ue.on_downlink(
            Timestamp::ZERO,
            &L3Message::Rrc(RrcMessage::Release { cause: xsec_types::ReleaseCause::Normal }),
            &mut rng,
        );
        assert!(actions.power_off);
    }

    #[test]
    fn tmsi_reuse_presents_cached_tmsi() {
        // Force a plan with TMSI reuse by trying seeds until one reuses.
        for seed in 0..64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ue = BenignUe::new(
                DeviceModel::Pixel6,
                Supi::new(Plmn::TEST, 2000),
                1,
                Some(Tmsi(555)),
                &mut rng,
            );
            if !ue.plan().reuse_tmsi {
                continue;
            }
            ue.on_power_on(Timestamp::ZERO, &mut rng);
            let actions =
                ue.on_downlink(Timestamp::ZERO, &L3Message::Rrc(RrcMessage::Setup), &mut rng);
            let L3Message::Rrc(RrcMessage::SetupComplete { nas_container }) = &actions.sends[0]
            else {
                panic!("expected SetupComplete");
            };
            let L3Message::Nas(NasMessage::RegistrationRequest { identity, .. }) =
                xsec_proto::decode_l3(nas_container).unwrap()
            else {
                panic!("expected RegistrationRequest");
            };
            assert_eq!(identity, MobileIdentity::FiveGSTmsi(Tmsi(555)));
            return;
        }
        panic!("no seed produced a TMSI-reusing plan");
    }
}
