//! The end-to-end network simulator: UEs ⇄ (impaired Uu, optional MiTM) ⇄
//! gNB ⇄ AMF, all driven by one deterministic discrete-event loop.
//!
//! The simulator produces the two artifacts the rest of 6G-XSec consumes:
//!
//! * a ground-truth-labeled [`RanEvent`] stream (the structured view the
//!   MobiFlow extractor reads), and
//! * a raw pcap-like [`TraceLog`] of encoded F1AP/NGAP PDUs (the byte-level
//!   view, used to validate that extraction-from-capture agrees with the
//!   structured stream).

use crate::amf::{Amf, AmfAction, AmfConfig, SubscriberRecord};
use crate::event::RanEvent;
use crate::gnb::{AdmitError, Gnb, GnbAction, GnbConfig};
use crate::intercept::{Intercept, Interceptor, PassThrough, TaintScope};
use crate::ue::UeBehavior;
use rand::rngs::StdRng;
use std::collections::HashMap;
use xsec_netsim::{ChannelConfig, ChannelModel, ChannelOutcome, ChannelStats, RngStreams, Scheduler, TraceLog, TraceRecord};
use xsec_proto::{F1apPdu, L3Message, MessageKind, NgapPdu, RrcMessage};
use xsec_types::{
    AttackKind, CipherAlg, Duration, EstablishmentCause, IntegrityAlg, Rnti, Timestamp,
    TrafficClass, Tmsi, UeId,
};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed for all RNG streams.
    pub seed: u64,
    /// Air-interface impairment profile.
    pub channel: ChannelConfig,
    /// gNB policy.
    pub gnb: GnbConfig,
    /// AMF policy.
    pub amf: AmfConfig,
    /// Hard stop for virtual time.
    pub horizon: Duration,
    /// Period of the CU guard-timer sweep.
    pub guard_poll: Duration,
    /// Fixed network-internal processing delay (CU/AMF) added to downlinks.
    pub core_delay: Duration,
    /// Whether to record the raw F1AP/NGAP byte capture alongside the
    /// structured event stream. Streaming soaks turn this off: the capture
    /// grows without bound and detection only reads the structured view.
    pub capture_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            channel: ChannelConfig::lab_over_the_air(),
            gnb: GnbConfig::default(),
            amf: AmfConfig::default(),
            horizon: Duration::from_secs(60),
            guard_poll: Duration::from_millis(250),
            core_delay: Duration::from_millis(2),
            capture_trace: true,
        }
    }
}

/// Everything a simulation run produced.
#[derive(Debug)]
pub struct SimReport {
    /// Structured, labeled message stream at the network tap.
    pub events: Vec<RanEvent>,
    /// Raw encoded F1AP/NGAP capture.
    pub trace: TraceLog,
    /// gNB counters.
    pub gnb_stats: crate::gnb::GnbStats,
    /// Channel counters.
    pub channel_stats: ChannelStats,
    /// Virtual time when the run ended.
    pub ended_at: Timestamp,
    /// UEs that completed registration at least once.
    pub registrations: u64,
}

impl SimReport {
    /// Events labeled benign.
    pub fn benign_events(&self) -> impl Iterator<Item = &RanEvent> {
        self.events.iter().filter(|e| !e.label.is_attack())
    }

    /// Events labeled as any attack.
    pub fn attack_events(&self) -> impl Iterator<Item = &RanEvent> {
        self.events.iter().filter(|e| e.label.is_attack())
    }
}

/// A generation-checked handle to a UE slab slot. Slots are recycled through
/// a free list as UEs retire, so an in-flight event can outlive the UE it
/// was addressed to; the generation distinguishes the current occupant from
/// a previous one and stale events are dropped on dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct UeRef {
    slot: u32,
    gen: u32,
}

/// One slab slot: the live entry (if any) plus the reuse generation.
struct UeSlot {
    gen: u32,
    entry: Option<UeEntry>,
}

enum SimEvent {
    PowerOn { ue: UeRef },
    /// UE finished its think time; the message enters the air interface.
    UplinkSend { ue: UeRef, msg: L3Message },
    /// The message survived the channel and reaches the network tap.
    UplinkArrive { ue: UeRef, msg: L3Message },
    /// The network's processing delay elapsed; the downlink is transmitted
    /// (tapped at the network, then MiTM + channel). `ue` was resolved when
    /// the network decided to send, so releases still reach UEs whose
    /// contexts were freed in the meantime.
    DownlinkSend { conn: u32, ue: Option<UeRef>, msg: L3Message },
    /// A downlink survived the channel and reaches the UE.
    DownlinkArrive { ue: UeRef, msg: L3Message },
    UeTimer { ue: UeRef, token: u32 },
    GuardPoll,
}

/// Active ground-truth tampering label on a UE.
#[derive(Debug, Clone, Copy)]
enum TaintState {
    /// Skip `skip` messages, then label `remaining`.
    Burst { kind: AttackKind, skip: u32, remaining: u32 },
    /// Label until the session ends.
    Session { kind: AttackKind },
    /// Label from the first `from`-kind message through the first
    /// `to`-kind message.
    Span { kind: AttackKind, from: MessageKind, to: MessageKind, active: bool },
}

struct UeEntry {
    id: UeId,
    behavior: Box<dyn UeBehavior>,
    label: TrafficClass,
    conn: Option<u32>,
    taint: Option<TaintState>,
    rng: StdRng,
}

/// Last-known context parameters per connection, kept so events emitted
/// after a context is freed (e.g. the `RRCRelease` itself) still carry the
/// right snapshot.
#[derive(Debug, Clone, Copy)]
struct Snapshot {
    rnti: Rnti,
    cipher: Option<CipherAlg>,
    integrity: Option<IntegrityAlg>,
    cause: Option<EstablishmentCause>,
    tmsi: Option<Tmsi>,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot { rnti: Rnti(0), cipher: None, integrity: None, cause: None, tmsi: None }
    }
}

/// The simulator. Build it, add subscribers and UEs, attach an optional
/// interceptor, then [`RanSimulator::run`].
pub struct RanSimulator {
    config: SimConfig,
    scheduler: Scheduler<SimEvent>,
    channel: ChannelModel,
    gnb: Gnb,
    amf: Amf,
    /// Compact per-UE slab: retired UEs free their slot back to `free` for
    /// reuse, so the slab's size tracks the number of *concurrently* live
    /// UEs rather than the total ever created — the property that lets a
    /// streaming scenario push millions of distinct UEs through a flat
    /// memory ceiling.
    slots: Vec<UeSlot>,
    free: Vec<u32>,
    /// Total UEs ever added; keys the per-UE RNG stream so replays stay
    /// stable under churn (a reused slot draws a *fresh* stream, not the
    /// previous occupant's).
    ue_seq: u64,
    live: usize,
    retired: Vec<UeId>,
    guard_scheduled: bool,
    conn_to_ue: HashMap<u32, UeRef>,
    snapshots: HashMap<u32, Snapshot>,
    interceptor: Box<dyn Interceptor>,
    events: Vec<RanEvent>,
    trace: TraceLog,
    registrations: u64,
    streams: RngStreams,
    temp_rnti_cursor: u16,
    /// Flight recorder the enforcement stage logs into (a detached default
    /// until [`RanSimulator::attach_obs`] re-homes it).
    recorder: xsec_obs::FlightRecorder,
}

impl RanSimulator {
    /// Creates a simulator from a config.
    pub fn new(config: SimConfig) -> Self {
        let streams = RngStreams::new(config.seed);
        let channel = ChannelModel::new(config.channel.clone(), streams.stream("channel"));
        let gnb = Gnb::new(config.gnb.clone());
        let amf = Amf::new(config.amf.clone(), streams.stream("amf"));
        let mut scheduler = Scheduler::new();
        scheduler.schedule_in(config.guard_poll, SimEvent::GuardPoll);
        RanSimulator {
            config,
            scheduler,
            channel,
            gnb,
            amf,
            slots: Vec::new(),
            free: Vec::new(),
            ue_seq: 0,
            live: 0,
            retired: Vec::new(),
            guard_scheduled: true,
            conn_to_ue: HashMap::new(),
            snapshots: HashMap::new(),
            interceptor: Box::new(PassThrough),
            events: Vec::new(),
            trace: TraceLog::new(),
            registrations: 0,
            streams,
            temp_rnti_cursor: 0x0100,
            recorder: xsec_obs::FlightRecorder::new(),
        }
    }

    /// Re-homes the simulator's counters (gNB admission/enforcement, channel
    /// impairments) into `obs`, so a pipeline run collects RAN-side metrics
    /// in the same registry as the detection stages. Accumulated counts are
    /// carried over.
    pub fn attach_obs(&mut self, obs: &xsec_obs::Obs) {
        self.gnb.attach_obs(obs);
        self.channel.attach_obs(obs);
        self.recorder = obs.recorder.clone();
    }

    /// Re-homes only the flight recorder (streaming deployments use this:
    /// their per-cell metrics stay local, but enforcement spans must land in
    /// the shared incident traces).
    pub fn attach_recorder(&mut self, recorder: &xsec_obs::FlightRecorder) {
        self.recorder = recorder.clone();
    }

    /// Provisions a subscriber in the core.
    pub fn add_subscriber(&mut self, record: SubscriberRecord) {
        self.amf.provision(record);
    }

    /// Provisions a stale TMSI the AMF can still resolve (see
    /// [`Amf::provision_stale_tmsi`]).
    pub fn add_stale_tmsi(&mut self, tmsi: xsec_types::Tmsi, msin: u64) {
        self.amf.provision_stale_tmsi(tmsi, msin);
    }

    /// Registers a UE to power on at `start_at`. Returns its ground-truth id.
    ///
    /// UEs may be added at any point, including mid-run after earlier UEs
    /// retired: the entry goes into a recycled slab slot, but its identity
    /// and RNG stream are keyed by the monotonically increasing arrival
    /// sequence, so the same arrival order always replays identically no
    /// matter how slots were reused.
    pub fn add_ue(
        &mut self,
        behavior: Box<dyn UeBehavior>,
        label: TrafficClass,
        start_at: Timestamp,
    ) -> UeId {
        let id = UeId(self.ue_seq + 1);
        let entry = UeEntry {
            id,
            behavior,
            label,
            conn: None,
            taint: None,
            rng: self.streams.indexed_stream("ue", self.ue_seq),
        };
        self.ue_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].entry = Some(entry);
                slot
            }
            None => {
                self.slots.push(UeSlot { gen: 0, entry: Some(entry) });
                (self.slots.len() - 1) as u32
            }
        };
        self.live += 1;
        let ue = UeRef { slot, gen: self.slots[slot as usize].gen };
        self.scheduler.schedule_at(start_at, SimEvent::PowerOn { ue });
        // The guard sweep cancels itself once the sim quiesces; a fresh UE
        // (e.g. from the streaming generator) must re-arm it.
        if !self.guard_scheduled {
            self.scheduler.schedule_in(self.config.guard_poll, SimEvent::GuardPoll);
            self.guard_scheduled = true;
        }
        id
    }

    /// Resolves a generation-checked reference to the current slab index,
    /// or `None` if the addressed UE has retired (stale in-flight event).
    fn resolve(&self, r: UeRef) -> Option<usize> {
        let slot = self.slots.get(r.slot as usize)?;
        (slot.gen == r.gen && slot.entry.is_some()).then_some(r.slot as usize)
    }

    /// Retires a powered-off UE: frees its slot and generation for reuse
    /// and records the id so external drivers (the streaming engine) can
    /// evict downstream per-UE state. Stale in-flight events addressed to
    /// the old occupant are dropped by the generation check.
    fn retire(&mut self, r: UeRef) {
        let Some(idx) = self.resolve(r) else { return };
        let entry = self.slots[idx].entry.take().expect("resolved slot is occupied");
        if let Some(conn) = entry.conn {
            self.conn_to_ue.remove(&conn);
            // The UE vanished; the CU context lingers until guard expiry
            // or an explicit release already in flight.
        }
        self.slots[idx].gen = self.slots[idx].gen.wrapping_add(1);
        self.free.push(r.slot);
        self.live -= 1;
        self.retired.push(entry.id);
    }

    /// Attaches a man-in-the-middle on the air interface.
    pub fn set_interceptor(&mut self, interceptor: Box<dyn Interceptor>) {
        self.interceptor = interceptor;
    }

    /// Occupied-slot access; only valid for indices that came out of
    /// [`RanSimulator::resolve`] within the same dispatch.
    fn entry_mut(&mut self, idx: usize) -> &mut UeEntry {
        self.slots[idx].entry.as_mut().expect("resolved slot is occupied")
    }

    /// Applies a tampering label to a UE. An existing session-scope taint is
    /// never narrowed by a later burst.
    fn apply_taint(&mut self, ue: usize, kind: AttackKind, scope: TaintScope) {
        let state = match scope {
            TaintScope::Burst { label: 0, .. } => return, // no labelable effect
            TaintScope::Burst { skip, label } => {
                TaintState::Burst { kind, skip, remaining: label }
            }
            TaintScope::Session => TaintState::Session { kind },
            TaintScope::Span { from, to } => {
                TaintState::Span { kind, from, to, active: false }
            }
        };
        let entry = self.entry_mut(ue);
        match entry.taint {
            Some(TaintState::Session { .. }) => {} // session taint already in force
            _ => entry.taint = Some(state),
        }
    }

    /// Runs to completion (queue drained or horizon reached).
    pub fn run(mut self) -> SimReport {
        let horizon = Timestamp::ZERO + self.config.horizon;
        self.run_until(horizon);
        self.finish()
    }

    /// Processes every queued event up to (and including) `deadline`,
    /// clamped to the configured horizon, then returns. This is the stepped
    /// interface the closed-loop pipeline drives: advance the RAN one report
    /// period, extract telemetry, let the RIC react, apply the resulting
    /// control actions, repeat.
    pub fn run_until(&mut self, deadline: Timestamp) {
        let deadline = deadline.min(Timestamp::ZERO + self.config.horizon);
        while let Some(at) = self.scheduler.peek_time() {
            if at > deadline {
                break;
            }
            let (now, event) = self.scheduler.pop().expect("peeked event exists");
            self.dispatch(now, event);
        }
    }

    /// Consumes the simulator and produces the final report.
    pub fn finish(self) -> SimReport {
        SimReport {
            events: self.events,
            trace: self.trace,
            gnb_stats: self.gnb.stats(),
            channel_stats: self.channel.stats(),
            ended_at: self.scheduler.now(),
            registrations: self.registrations,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.scheduler.now()
    }

    /// The labeled event stream accumulated so far (grows as the run
    /// advances — the closed-loop driver re-extracts telemetry from it).
    pub fn events(&self) -> &[RanEvent] {
        &self.events
    }

    /// Drains the labeled events accumulated since the last drain. The
    /// streaming drivers use this instead of [`RanSimulator::events`] so the
    /// event buffer stays flat no matter how long the run goes.
    pub fn take_events(&mut self) -> Vec<RanEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains the ids of UEs retired (powered off and slab-freed) since the
    /// last drain, so external drivers can evict downstream per-UE state.
    pub fn take_retired(&mut self) -> Vec<UeId> {
        std::mem::take(&mut self.retired)
    }

    /// Number of UEs currently alive (added and not yet retired).
    pub fn live_ues(&self) -> usize {
        self.live
    }

    /// Total UEs ever added to this simulator.
    pub fn total_ues(&self) -> u64 {
        self.ue_seq
    }

    /// Size of the UE slab — the high-water mark of *concurrently* live
    /// UEs, not the total ever created (retired slots are recycled).
    pub fn slab_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Whether the event queue is fully drained — nothing more will happen
    /// unless new UEs are added.
    pub fn is_idle(&self) -> bool {
        self.scheduler.is_idle()
    }

    /// Removes a subscriber's SIM profile from the core (streaming retire).
    pub fn remove_subscriber(&mut self, msin: u64) {
        self.amf.forget_subscriber(msin);
    }

    /// Point-in-time gNB counters (available mid-run; `finish` reports the
    /// same numbers at the end).
    pub fn gnb_stats(&self) -> crate::gnb::GnbStats {
        self.gnb.stats()
    }

    /// Number of currently attached (registered) subscribers at the AMF.
    pub fn attached_count(&self) -> usize {
        self.amf.attached_count()
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Enforces one RIC control action at virtual time `now`, routing any
    /// resulting downlinks (releases, detaches) through the normal
    /// transmission path so they are tapped and delivered like any other
    /// network-initiated traffic.
    pub fn apply_control(&mut self, now: Timestamp, control: &xsec_control::ControlAction) {
        if let Some(trace) = control.trace {
            use xsec_control::MitigationAction as M;
            let kind = match control.action {
                M::ReleaseUe { .. } => 0,
                M::BlacklistRnti { .. } => 1,
                M::ForceReauth { .. } => 2,
                M::QuarantineCell { .. } => 3,
                M::RateLimitCause { .. } => 4,
            };
            self.recorder.record_stage(xsec_obs::FlightEvent {
                trace,
                stage: xsec_obs::TraceStage::Enforce,
                at_us: now.as_micros(),
                a: u64::from(control.id),
                b: kind,
            });
        }
        for action in self.gnb.apply_control(now, control) {
            self.apply_gnb_action(now, action);
        }
    }

    // --- event dispatch -----------------------------------------------------

    fn dispatch(&mut self, now: Timestamp, event: SimEvent) {
        match event {
            SimEvent::PowerOn { ue } => {
                let Some(idx) = self.resolve(ue) else { return };
                let entry = self.entry_mut(idx);
                let actions = entry.behavior.on_power_on(now, &mut entry.rng);
                self.apply_ue_actions(now, ue, actions);
            }
            SimEvent::UplinkSend { ue, msg } => self.uplink_send(now, ue, msg),
            SimEvent::UplinkArrive { ue, msg } => self.uplink_arrive(now, ue, msg),
            SimEvent::DownlinkSend { conn, ue, msg } => self.downlink_send(now, conn, ue, msg),
            SimEvent::DownlinkArrive { ue, msg } => {
                let Some(idx) = self.resolve(ue) else { return };
                let entry = self.entry_mut(idx);
                let actions = entry.behavior.on_downlink(now, &msg, &mut entry.rng);
                self.apply_ue_actions(now, ue, actions);
            }
            SimEvent::UeTimer { ue, token } => {
                let Some(idx) = self.resolve(ue) else { return };
                let entry = self.entry_mut(idx);
                let actions = entry.behavior.on_timer(now, token, &mut entry.rng);
                self.apply_ue_actions(now, ue, actions);
            }
            SimEvent::GuardPoll => {
                self.guard_scheduled = false;
                let actions = self.gnb.expire_stale(now);
                for action in actions {
                    self.apply_gnb_action(now, action);
                }
                // Keep polling while anything can still happen. Once the sim
                // quiesces, the sweep stops; `add_ue` re-arms it.
                if self.live > 0 || self.gnb.active_contexts() > 0 {
                    self.scheduler.schedule_in(self.config.guard_poll, SimEvent::GuardPoll);
                    self.guard_scheduled = true;
                }
            }
        }
    }

    fn apply_ue_actions(&mut self, now: Timestamp, ue: UeRef, actions: crate::ue::UeActions) {
        for (delay, token) in actions.timers {
            self.scheduler.schedule_at(now + delay, SimEvent::UeTimer { ue, token });
        }
        let mut offset = Duration::ZERO;
        for msg in actions.sends {
            let delay = {
                let Some(idx) = self.resolve(ue) else { return };
                let entry = self.entry_mut(idx);
                entry.behavior.response_delay(&mut entry.rng)
            };
            offset = offset + delay;
            self.scheduler.schedule_at(now + offset, SimEvent::UplinkSend { ue, msg });
        }
        if actions.power_off {
            self.retire(ue);
        }
    }

    /// The message leaves the UE: MiTM first, then the radio channel.
    fn uplink_send(&mut self, now: Timestamp, ue: UeRef, msg: L3Message) {
        let Some(idx) = self.resolve(ue) else { return };
        let ue_id = self.slots[idx].entry.as_ref().expect("resolved slot is occupied").id;
        let msg = match self.interceptor.on_uplink(ue_id, &msg) {
            Intercept::Pass => msg,
            Intercept::Drop => return,
            Intercept::Replace { message, taint, scope } => {
                self.apply_taint(idx, taint, scope);
                message
            }
        };
        match self.channel.transmit() {
            ChannelOutcome::Lost => {}
            ChannelOutcome::Delivered { latency, retransmissions } => {
                self.scheduler
                    .schedule_at(now + latency, SimEvent::UplinkArrive { ue, msg: msg.clone() });
                // An RLC retransmission duplicates the message at the
                // receiver — the benign noise source the paper blames for
                // false positives.
                if retransmissions > 0 {
                    let dup_at = now + latency + self.config.channel.retx_interval;
                    self.scheduler.schedule_at(dup_at, SimEvent::UplinkArrive { ue, msg });
                }
            }
        }
    }

    /// The message reaches the network: tap it, then process it.
    fn uplink_arrive(&mut self, now: Timestamp, ue: UeRef, msg: L3Message) {
        let Some(idx) = self.resolve(ue) else { return };
        if let L3Message::Rrc(RrcMessage::SetupRequest { cause, .. }) = &msg {
            self.handle_setup_request(now, ue, msg.clone(), *cause);
            return;
        }
        let Some(conn) = self.slots[idx].entry.as_ref().expect("resolved slot is occupied").conn
        else {
            return; // stale uplink for a torn-down connection
        };
        // MAC-level enforcement: a blacklisted C-RNTI's frames are dropped
        // before the tap, so mitigated traffic leaves no telemetry.
        if self.gnb.uplink_blocked(conn, now) {
            return;
        }
        // RRC messages are tapped here; uplink NAS is tapped at the NGAP
        // relay point (`ToAmf`) so piggybacked containers get their own
        // telemetry entry, matching the paper's message ladders.
        if matches!(msg, L3Message::Rrc(_)) {
            self.emit_event(now, conn, true, &msg, Some(idx));
        }
        let actions = self.gnb.handle_uplink(conn, &msg);
        for action in actions {
            self.apply_gnb_action(now, action);
        }
    }

    fn handle_setup_request(
        &mut self,
        now: Timestamp,
        ue: UeRef,
        msg: L3Message,
        cause: EstablishmentCause,
    ) {
        let Some(idx) = self.resolve(ue) else { return };
        match self.gnb.admit(now, cause) {
            Ok(conn) => {
                // A fresh connection; any previous one from this UE lingers
                // at the CU (that *is* the BTS DoS resource burn). Its
                // routing entry stays so the eventual guard-expiry release
                // is still attributed (and ground-truth-labeled) correctly.
                self.entry_mut(idx).conn = Some(conn);
                self.conn_to_ue.insert(conn, ue);
                self.emit_event(now, conn, true, &msg, Some(idx));
                self.downlink_send(now, conn, Some(ue), L3Message::Rrc(RrcMessage::Setup));
            }
            Err(AdmitError::RateLimited) | Err(AdmitError::Quarantined) => {
                // RIC-mitigation drop at the MAC: the frame is discarded
                // before the network tap, so no event and no reject — the
                // attacker just hears silence.
            }
            Err(AdmitError::Congestion) | Err(AdmitError::RntiExhausted) => {
                // Reject on a temporary RNTI; no context is created.
                let temp_rnti = Rnti(self.temp_rnti_cursor);
                self.temp_rnti_cursor = self.temp_rnti_cursor.wrapping_add(1).max(0x0100);
                let snapshot = Snapshot { rnti: temp_rnti, cause: Some(cause), ..Snapshot::default() };
                self.emit_event_with_snapshot(now, 0, snapshot, true, &msg, Some(idx));
                let reject = L3Message::Rrc(RrcMessage::Reject { wait_time_s: 16 });
                self.emit_event_with_snapshot(now, 0, snapshot, false, &reject, Some(idx));
                self.deliver_downlink(now, ue, reject);
            }
        }
    }

    fn apply_gnb_action(&mut self, now: Timestamp, action: GnbAction) {
        match action {
            GnbAction::Downlink { conn, msg } => {
                // Resolve the recipient now (the mapping may be gone by the
                // time the send fires, e.g. for the release itself).
                let ue = self.conn_to_ue.get(&conn).copied();
                self.scheduler.schedule_in(
                    self.config.core_delay,
                    SimEvent::DownlinkSend { conn, ue, msg },
                );
            }
            GnbAction::ToAmf { conn, msg } => {
                let ue = self.conn_to_ue.get(&conn).copied().and_then(|r| self.resolve(r));
                self.emit_event(now, conn, true, &L3Message::Nas(msg.clone()), ue);
                // If an attack-labeled uplink forces the AMF to detach a
                // *different* connection (the TMSI-conflict lever of Blind
                // DoS), the victim's teardown is attack fallout: label it.
                let source_attack = ue.and_then(|idx| {
                    let entry = self.slots[idx].entry.as_ref().expect("resolved slot");
                    match entry.taint {
                        Some(TaintState::Burst { kind, skip: 0, .. })
                        | Some(TaintState::Session { kind }) => Some(kind),
                        _ => entry.label.attack_kind(),
                    }
                });
                let amf_actions = self.amf.handle_uplink(conn as u64, &msg);
                if let Some(kind) = source_attack {
                    for action in &amf_actions {
                        if let AmfAction::ReleaseConnection { conn: victim_conn, .. } = action {
                            let victim_conn = *victim_conn as u32;
                            if victim_conn != conn {
                                if let Some(victim) = self
                                    .conn_to_ue
                                    .get(&victim_conn)
                                    .copied()
                                    .and_then(|r| self.resolve(r))
                                {
                                    self.apply_taint(
                                        victim,
                                        kind,
                                        TaintScope::Burst { skip: 0, label: 1 },
                                    );
                                }
                            }
                        }
                    }
                }
                for amf_action in amf_actions {
                    if let AmfAction::SendNas {
                        msg: xsec_proto::NasMessage::RegistrationAccept { .. },
                        ..
                    } = &amf_action
                    {
                        self.registrations += 1;
                    }
                    let gnb_actions = self.gnb.handle_amf(&amf_action);
                    for ga in gnb_actions {
                        self.apply_gnb_action(now, ga);
                    }
                }
            }
            GnbAction::ContextFreed { conn } => {
                self.amf.connection_closed(conn as u64);
                if let Some(idx) = self.conn_to_ue.remove(&conn).and_then(|r| self.resolve(r)) {
                    let entry = self.entry_mut(idx);
                    if entry.conn == Some(conn) {
                        entry.conn = None;
                    }
                }
            }
        }
    }

    /// Taps a downlink at the network side, then sends it through MiTM +
    /// channel toward the UE.
    fn downlink_send(&mut self, now: Timestamp, conn: u32, ue: Option<UeRef>, msg: L3Message) {
        let released = matches!(msg, L3Message::Rrc(RrcMessage::Release { .. }));
        let Some((r, idx)) = ue.and_then(|r| self.resolve(r).map(|idx| (r, idx))) else {
            // The UE was already gone when the network decided to transmit;
            // tap the transmission for the record anyway.
            self.emit_event(now, conn, false, &msg, None);
            if released {
                self.snapshots.remove(&conn);
            }
            return;
        };
        // The MiTM decision is taken *before* the network tap records the
        // transmission, so an overwritten transmission slot (e.g. the
        // authentication request a downlink extractor replaces) is itself
        // ground-truth-labeled as the attack — exactly where Figure 2a puts
        // the malicious entry. The tap still records the original content:
        // that is what the network transmitted.
        let ue_id = self.slots[idx].entry.as_ref().expect("resolved slot is occupied").id;
        let decision = self.interceptor.on_downlink(ue_id, &msg);
        if let Intercept::Replace { taint, scope, .. } = &decision {
            self.apply_taint(idx, *taint, *scope);
        }
        self.emit_event(now, conn, false, &msg, Some(idx));
        if released {
            // Conn ids are never reused within a run, so once the release
            // is tapped the cached snapshot can never be needed again.
            self.snapshots.remove(&conn);
        }
        let msg = match decision {
            Intercept::Pass => msg,
            Intercept::Drop => return,
            Intercept::Replace { message, .. } => message,
        };
        self.deliver_downlink(now, r, msg);
    }

    fn deliver_downlink(&mut self, now: Timestamp, ue: UeRef, msg: L3Message) {
        match self.channel.transmit() {
            ChannelOutcome::Lost => {}
            ChannelOutcome::Delivered { latency, retransmissions } => {
                self.scheduler
                    .schedule_at(now + latency, SimEvent::DownlinkArrive { ue, msg: msg.clone() });
                if retransmissions > 0 {
                    let dup_at = now + latency + self.config.channel.retx_interval;
                    self.scheduler.schedule_at(dup_at, SimEvent::DownlinkArrive { ue, msg });
                }
            }
        }
    }

    // --- event emission -------------------------------------------------------

    fn snapshot_for(&mut self, conn: u32) -> Snapshot {
        if let Some(ctx) = self.gnb.context(conn) {
            let snap = Snapshot {
                rnti: ctx.rnti,
                cipher: ctx.cipher,
                integrity: ctx.integrity,
                cause: Some(ctx.cause),
                tmsi: ctx.tmsi,
            };
            self.snapshots.insert(conn, snap);
            snap
        } else {
            self.snapshots.get(&conn).copied().unwrap_or_default()
        }
    }

    fn emit_event(
        &mut self,
        now: Timestamp,
        conn: u32,
        uplink: bool,
        msg: &L3Message,
        ue: Option<usize>,
    ) {
        let snapshot = self.snapshot_for(conn);
        self.emit_event_with_snapshot(now, conn, snapshot, uplink, msg, ue);
    }

    fn emit_event_with_snapshot(
        &mut self,
        now: Timestamp,
        conn: u32,
        snapshot: Snapshot,
        uplink: bool,
        msg: &L3Message,
        ue: Option<usize>,
    ) {
        let (ue_id, label) = match ue {
            Some(idx) => {
                let entry = self.slots[idx].entry.as_mut().expect("resolved slot is occupied");
                let label = match entry.taint {
                    // Still inside the unobservable-slot prefix: benign.
                    Some(TaintState::Burst { kind, skip, remaining }) if skip > 0 => {
                        entry.taint =
                            Some(TaintState::Burst { kind, skip: skip - 1, remaining });
                        entry.label
                    }
                    Some(TaintState::Burst { kind, remaining, .. }) => {
                        entry.taint = (remaining > 1).then_some(TaintState::Burst {
                            kind,
                            skip: 0,
                            remaining: remaining - 1,
                        });
                        TrafficClass::Attack(kind)
                    }
                    Some(TaintState::Session { kind }) => TrafficClass::Attack(kind),
                    Some(TaintState::Span { kind, from, to, active }) => {
                        let msg_kind = msg.kind();
                        if active || msg_kind == from {
                            if msg_kind == to {
                                entry.taint = None;
                            } else {
                                entry.taint = Some(TaintState::Span {
                                    kind,
                                    from,
                                    to,
                                    active: true,
                                });
                            }
                            TrafficClass::Attack(kind)
                        } else {
                            entry.label
                        }
                    }
                    None => entry.label,
                };
                (Some(entry.id), label)
            }
            None => (None, TrafficClass::Benign),
        };
        let supi_exposed = match msg {
            L3Message::Nas(nas) => nas.disclosed_identity().and_then(|id| match id {
                xsec_proto::MobileIdentity::PlainSupi(supi) => Some(*supi),
                _ => None,
            }),
            L3Message::Rrc(_) => None,
        };
        let direction =
            if uplink { xsec_proto::Direction::Uplink } else { xsec_proto::Direction::Downlink };

        // Raw capture: RRC goes to the F1AP tap, NAS to the NGAP tap.
        if self.config.capture_trace {
            match msg {
                L3Message::Rrc(_) => {
                    let pdu = F1apPdu::wrap(conn, snapshot.rnti, self.config.gnb.cell, uplink, msg);
                    self.trace.push(TraceRecord {
                        at: now,
                        interface: "F1AP",
                        uplink,
                        summary: format!("{msg} rnti={}", snapshot.rnti),
                        payload: pdu.encode(),
                    });
                }
                L3Message::Nas(_) => {
                    let pdu = NgapPdu::wrap(conn as u64, conn as u64, uplink, msg);
                    self.trace.push(TraceRecord {
                        at: now,
                        interface: "NGAP",
                        uplink,
                        summary: format!("{msg} conn={conn}"),
                        payload: pdu.encode(),
                    });
                }
            }
        }

        self.events.push(RanEvent {
            at: now,
            cell: self.config.gnb.cell,
            rnti: snapshot.rnti,
            du_ue_id: conn,
            direction,
            msg: msg.clone(),
            cipher: snapshot.cipher,
            integrity: snapshot.integrity,
            establishment_cause: snapshot.cause,
            tmsi: snapshot.tmsi,
            supi_exposed,
            ue: ue_id,
            label,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use crate::ue::BenignUe;
    use xsec_types::{Plmn, Supi};

    fn simple_sim(seed: u64, n_ues: usize) -> RanSimulator {
        let mut sim = RanSimulator::new(SimConfig {
            seed,
            channel: ChannelConfig::ideal(),
            horizon: Duration::from_secs(30),
            ..SimConfig::default()
        });
        let mut rng = sim.streams.stream("test-setup");
        for i in 0..n_ues {
            let msin = 1000 + i as u64;
            let key = 0xA000 + i as u64;
            sim.add_subscriber(SubscriberRecord {
                supi: Supi::new(Plmn::TEST, msin),
                key,
            });
            let ue = BenignUe::new(
                DeviceModel::ALL[i % DeviceModel::ALL.len()],
                Supi::new(Plmn::TEST, msin),
                key,
                None,
                &mut rng,
            );
            sim.add_ue(
                Box::new(ue),
                TrafficClass::Benign,
                Timestamp(50_000 * i as u64),
            );
        }
        sim
    }

    #[test]
    fn single_benign_ue_completes_registration() {
        let report = simple_sim(11, 1).run();
        assert_eq!(report.registrations, 1, "events:\n{}", dump(&report));
        let kinds: Vec<_> = report.events.iter().map(|e| e.msg.kind().name()).collect();
        assert!(kinds.contains(&"RRCSetupRequest"));
        assert!(kinds.contains(&"RegistrationRequest"));
        assert!(kinds.contains(&"AuthenticationRequest"));
        assert!(kinds.contains(&"AuthenticationResponse"));
        assert!(kinds.contains(&"RegistrationAccept"));
    }

    fn dump(report: &SimReport) -> String {
        report.events.iter().map(|e| e.summary() + "\n").collect()
    }

    #[test]
    fn benign_session_releases_cleanly() {
        let report = simple_sim(12, 1).run();
        let kinds: Vec<_> = report.events.iter().map(|e| e.msg.kind().name()).collect();
        assert!(kinds.contains(&"DeregistrationRequest"), "events:\n{}", dump(&report));
        assert!(kinds.contains(&"RRCRelease"), "events:\n{}", dump(&report));
        assert_eq!(report.gnb_stats.released, 1);
    }

    #[test]
    fn multiple_ues_all_register() {
        let report = simple_sim(13, 8).run();
        assert_eq!(report.registrations, 8, "events:\n{}", dump(&report));
        // All benign.
        assert!(report.events.iter().all(|e| !e.label.is_attack()));
    }

    #[test]
    fn runs_are_deterministic() {
        let a = simple_sim(77, 4).run();
        let b = simple_sim(77, 4).run();
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x, y);
        }
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = simple_sim(1, 4).run();
        let b = simple_sim(2, 4).run();
        // Same message types overall, but timings must differ somewhere.
        let ta: Vec<_> = a.events.iter().map(|e| e.at).collect();
        let tb: Vec<_> = b.events.iter().map(|e| e.at).collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn events_carry_security_context_after_smc() {
        let report = simple_sim(21, 1).run();
        let post_smc: Vec<_> = report
            .events
            .iter()
            .skip_while(|e| e.msg.kind().name() != "NASSecurityModeCommand")
            .collect();
        assert!(!post_smc.is_empty());
        // Everything after the SMC carries the negotiated algorithms.
        let accept = post_smc
            .iter()
            .find(|e| e.msg.kind().name() == "RegistrationAccept")
            .expect("registration accept present");
        assert_eq!(accept.cipher, Some(CipherAlg::Nea2));
        assert_eq!(accept.integrity, Some(IntegrityAlg::Nia2));
    }

    #[test]
    fn trace_and_events_have_consistent_counts() {
        let report = simple_sim(31, 3).run();
        assert_eq!(report.trace.len(), report.events.len());
        // Raw F1AP records decode back to the same RRC kinds.
        for (rec, ev) in report.trace.records().iter().zip(&report.events) {
            match &ev.msg {
                L3Message::Rrc(_) => {
                    assert_eq!(rec.interface, "F1AP");
                    let pdu = F1apPdu::decode(&rec.payload).unwrap();
                    assert_eq!(pdu.unwrap_l3().unwrap(), ev.msg);
                    assert_eq!(pdu.rnti, ev.rnti);
                }
                L3Message::Nas(_) => {
                    assert_eq!(rec.interface, "NGAP");
                    let pdu = NgapPdu::decode(&rec.payload).unwrap();
                    assert_eq!(pdu.unwrap_l3().unwrap(), ev.msg);
                }
            }
        }
    }

    #[test]
    fn lossy_channel_still_converges() {
        let mut sim = RanSimulator::new(SimConfig {
            seed: 5,
            channel: ChannelConfig::lab_over_the_air(),
            horizon: Duration::from_secs(30),
            ..SimConfig::default()
        });
        let mut rng = sim.streams.stream("test-setup");
        for i in 0..10 {
            let msin = 5000 + i;
            sim.add_subscriber(SubscriberRecord { supi: Supi::new(Plmn::TEST, msin), key: i });
            let ue = BenignUe::new(
                DeviceModel::Pixel5,
                Supi::new(Plmn::TEST, msin),
                i,
                None,
                &mut rng,
            );
            sim.add_ue(Box::new(ue), TrafficClass::Benign, Timestamp(100_000 * i));
        }
        let report = sim.run();
        // With ~3% retransmission probability most sessions complete; losses
        // can strand some, but the sim must terminate and register >half.
        assert!(report.registrations >= 6, "only {} registered", report.registrations);
    }
}
