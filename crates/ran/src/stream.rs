//! Streaming scenario engine: millions of UEs through a flat-memory RAN.
//!
//! [`Scenario::populate`] provisions every subscriber and schedules every
//! session up front — fine for hundreds of sessions, hopeless for a million.
//! [`StreamingScenario`] instead *generates* the population lazily: UEs are
//! provisioned the moment they arrive, retire when their session ends (the
//! simulator recycles their slab slot), and the engine prunes every piece of
//! per-UE bookkeeping at retirement. Peak memory tracks the number of
//! *concurrently live* UEs, never the total streamed.
//!
//! The engine also owns the mobility workload family:
//!
//! * **Handover** — a slice of UEs carries `hops_left > 0`; when such a UE
//!   retires in cell A the engine re-provisions the same subscriber in cell
//!   B, hands it the TMSI it was last issued, and removes it from A. The
//!   target AMF resolves the stale TMSI and reallocates a fresh one at SMC
//!   completion — inter-cell handover with TMSI reallocation.
//! * **Registration storms** — periodic bursts of simultaneous arrivals in
//!   one cell ([`StormConfig`]).
//! * **Attacker hooks** — `xsec-attacks` installs adversarial UEs in any
//!   cell at any virtual time ([`StreamingScenario::add_ue_at`]), including
//!   populations that migrate between cells mid-run.
//!
//! Determinism: all engine-level draws (arrival gaps, device models, cell
//! placement, mobility plans) come from one named [`RngStreams`] stream;
//! per-UE randomness is keyed by each cell's monotone arrival sequence. The
//! same config replays byte-identically regardless of how slab slots were
//! recycled.
//!
//! Cell-id layout: cell *index* `i` serves [`CellId`]`(i + 1)` and owns the
//! DU connection range `(i << CELL_SHIFT) | 1 ..`, so `du_ue_id` stays
//! globally unique across the deployment and control actions that only name
//! a connection can still be routed to the right cell.

use crate::amf::SubscriberRecord;
use crate::device::DeviceModel;
use crate::sim::{RanSimulator, SimConfig};
use crate::ue::{BenignUe, SessionPlan, UeBehavior};
use crate::RanEvent;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use xsec_control::{ControlAction, MitigationAction};
use xsec_netsim::{ChannelConfig, RngStreams};
use xsec_proto::{L3Message, NasMessage};
use xsec_types::{CellId, Duration, Plmn, Supi, Timestamp, Tmsi, TrafficClass, UeId};

/// Bits of `du_ue_id` above this shift encode the owning cell index.
pub const CELL_SHIFT: u32 = 24;

/// Recovers the owning cell index from a DU connection id.
pub fn cell_of_conn(conn: u32) -> usize {
    (conn >> CELL_SHIFT) as usize
}

/// Periodic registration-storm injection.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Virtual time between storms.
    pub period: Duration,
    /// Simultaneous registrations per storm.
    pub burst: usize,
}

/// Streaming-scenario parameters.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Master seed (engine stream + every per-cell simulator).
    pub seed: u64,
    /// Number of cells in the deployment.
    pub cells: usize,
    /// Distinct benign subscribers to stream end to end.
    pub total_ues: u64,
    /// Mean inter-arrival time between benign session starts.
    pub mean_inter_arrival: Duration,
    /// Relative weights over [`DeviceModel::ALL`].
    pub device_mix: [u32; DeviceModel::COUNT],
    /// Fraction of arrivals presenting a cached TMSI.
    pub warm_start_fraction: f64,
    /// Fraction of UEs that hand over to another cell after their first
    /// session instead of disappearing.
    pub mobility_fraction: f64,
    /// Maximum handovers a mobile UE performs.
    pub max_handovers: u32,
    /// Optional periodic registration storms.
    pub storm: Option<StormConfig>,
    /// Per-cell AMF TMSI retention cap (see `AmfConfig::tmsi_retention`).
    pub tmsi_retention: usize,
    /// Backpressure: arrivals stall while this many UEs are live. This is
    /// the engine's memory ceiling knob — peak slab size never exceeds it
    /// (plus in-flight handovers).
    pub max_live: usize,
    /// Air-interface profile shared by every cell.
    pub channel: ChannelConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            seed: 1,
            cells: 4,
            total_ues: 2_000,
            mean_inter_arrival: Duration::from_millis(2),
            device_mix: [18, 18, 16, 16, 32],
            warm_start_fraction: 0.35,
            mobility_fraction: 0.15,
            max_handovers: 2,
            storm: None,
            tmsi_retention: 4_096,
            max_live: 512,
            channel: ChannelConfig::ideal(),
        }
    }
}

/// What the engine remembers about one live benign session — pruned the
/// moment the UE retires, so the map size is bounded by `max_live`.
#[derive(Debug, Clone)]
struct SessionInfo {
    msin: u64,
    key: u64,
    model: DeviceModel,
    /// Handovers still to perform after the current session ends.
    hops_left: u32,
    /// The TMSI the network last issued (learned from RegistrationAccept).
    tmsi: Option<Tmsi>,
}

/// Aggregate counters for reports and soak gates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Distinct benign subscribers spawned so far.
    pub spawned: u64,
    /// Benign subscribers whose final session ended (no hops left).
    pub completed: u64,
    /// Inter-cell handovers performed.
    pub handovers: u64,
    /// Registration storms fired.
    pub storms: u64,
    /// Currently live UE state machines across all cells.
    pub live: usize,
    /// High-water mark of `live`.
    pub peak_live: usize,
    /// Sum of per-cell slab capacities (allocated slots, live or free).
    pub slab_slots: usize,
    /// Total UE state machines ever created (benign sessions + handover
    /// re-registrations + attacker injections).
    pub sim_ues: u64,
}

/// The lazy, multi-cell scenario generator.
pub struct StreamingScenario {
    config: StreamConfig,
    cells: Vec<RanSimulator>,
    rng: StdRng,
    clock: Timestamp,
    next_arrival: Timestamp,
    next_storm: Option<Timestamp>,
    sessions: HashMap<(usize, UeId), SessionInfo>,
    stats: StreamStats,
}

impl StreamingScenario {
    /// Builds the engine: one simulator per cell, no UEs yet.
    pub fn new(config: StreamConfig) -> Self {
        assert!(config.cells >= 1, "need at least one cell");
        assert!(
            config.cells <= (u32::MAX >> CELL_SHIFT) as usize,
            "cell index must fit above CELL_SHIFT"
        );
        let cells = (0..config.cells)
            .map(|i| {
                let mut sim = SimConfig {
                    seed: config.seed.wrapping_add(i as u64),
                    channel: config.channel.clone(),
                    // Streaming runs are open-ended; the driver bounds time.
                    horizon: Duration::from_secs(u64::MAX / 2_000_000),
                    capture_trace: false,
                    ..SimConfig::default()
                };
                sim.gnb.cell = CellId(i as u32 + 1);
                sim.gnb.first_conn = ((i as u32) << CELL_SHIFT) | 1;
                sim.amf.tmsi_retention = Some(config.tmsi_retention);
                RanSimulator::new(sim)
            })
            .collect();
        let rng = RngStreams::new(config.seed).stream("stream-engine");
        let next_storm = config.storm.as_ref().map(|s| Timestamp::ZERO + s.period);
        StreamingScenario {
            config,
            cells,
            rng,
            clock: Timestamp::ZERO,
            next_arrival: Timestamp::ZERO,
            next_storm,
            sessions: HashMap::new(),
            stats: StreamStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// Current virtual time (the last step deadline).
    pub fn now(&self) -> Timestamp {
        self.clock
    }

    /// Live UEs across all cells.
    pub fn live(&self) -> usize {
        self.cells.iter().map(RanSimulator::live_ues).sum()
    }

    /// Current counters. `live`/`peak_live`/`slab_slots`/`sim_ues` are
    /// refreshed on read.
    pub fn stats(&mut self) -> StreamStats {
        self.stats.live = self.live();
        self.stats.peak_live = self.stats.peak_live.max(self.stats.live);
        self.stats.slab_slots = self.cells.iter().map(RanSimulator::slab_capacity).sum();
        self.stats.sim_ues = self.cells.iter().map(RanSimulator::total_ues).sum();
        self.stats.clone()
    }

    /// Whether the stream has fully drained: the benign budget is spent and
    /// every cell's event queue is empty (no session, handover, or attacker
    /// activity still in flight).
    pub fn done(&self) -> bool {
        self.stats.spawned >= self.config.total_ues
            && self.cells.iter().all(RanSimulator::is_idle)
    }

    // --- attacker hooks -----------------------------------------------------

    /// Provisions a subscriber in one cell's core.
    pub fn add_subscriber_at(&mut self, cell: usize, record: SubscriberRecord) {
        self.cells[cell].add_subscriber(record);
    }

    /// Provisions a resolvable stale TMSI in one cell's core.
    pub fn add_stale_tmsi_at(&mut self, cell: usize, tmsi: Tmsi, msin: u64) {
        self.cells[cell].add_stale_tmsi(tmsi, msin);
    }

    /// Installs a UE behavior in one cell, powering on at `at`. Attack
    /// crates use this to drop adversarial (or migrating) UEs into the
    /// stream; the engine does not track them in its session map.
    pub fn add_ue_at(
        &mut self,
        cell: usize,
        behavior: Box<dyn UeBehavior>,
        label: TrafficClass,
        at: Timestamp,
    ) -> UeId {
        self.cells[cell].add_ue(behavior, label, at)
    }

    /// Per-cell gNB counters (admission, rejections, mitigation drops).
    pub fn gnb_stats(&self, cell: usize) -> crate::gnb::GnbStats {
        self.cells[cell].gnb_stats()
    }

    /// Re-homes every cell's enforcement flight recording into `recorder`
    /// so traced control actions land Enforce spans in the shared incident
    /// store. Broadcast actions record once per cell; incident export
    /// dedup absorbs the duplicates.
    pub fn attach_recorder(&mut self, recorder: &xsec_obs::FlightRecorder) {
        for cell in &mut self.cells {
            cell.attach_recorder(recorder);
        }
    }

    // --- control routing ----------------------------------------------------

    /// Routes one RIC control action to the cell(s) it concerns.
    ///
    /// Connection-scoped actions carry the owning cell in their `du_ue_id`
    /// high bits; `QuarantineCell` names its cell outright. `BlacklistRnti`
    /// and `RateLimitCause` arrive without cell attribution (the E2 control
    /// payload has no cell TLV) and C-RNTIs are *not* unique across cells,
    /// so both are enforced deployment-wide — the conservative reading a
    /// real near-RT RIC takes when the scope is ambiguous.
    pub fn apply_control(&mut self, now: Timestamp, control: &ControlAction) {
        match &control.action {
            MitigationAction::ReleaseUe { conn, .. }
            | MitigationAction::ForceReauth { conn } => {
                let cell = cell_of_conn(*conn);
                if let Some(sim) = self.cells.get_mut(cell) {
                    sim.apply_control(now, control);
                }
            }
            MitigationAction::QuarantineCell { cell } => {
                let idx = cell.0.saturating_sub(1) as usize;
                if let Some(sim) = self.cells.get_mut(idx) {
                    sim.apply_control(now, control);
                }
            }
            MitigationAction::BlacklistRnti { .. } | MitigationAction::RateLimitCause { .. } => {
                for sim in &mut self.cells {
                    sim.apply_control(now, control);
                }
            }
        }
    }

    // --- generation ---------------------------------------------------------

    /// Advances every cell to `deadline`, spawning due arrivals first and
    /// performing due handovers after, and returns the merged event stream
    /// (sorted by timestamp; ties resolve in cell order, deterministically).
    pub fn step(&mut self, deadline: Timestamp) -> Vec<RanEvent> {
        self.spawn_due_arrivals(deadline);
        self.spawn_due_storms(deadline);
        // The post-spawn high-water mark: retirements inside run_until only
        // shrink the live set, so this is the step's true peak.
        self.stats.live = self.live();
        self.stats.peak_live = self.stats.peak_live.max(self.stats.live);
        for sim in &mut self.cells {
            sim.run_until(deadline);
        }
        self.clock = deadline;

        let mut merged = Vec::new();
        for idx in 0..self.cells.len() {
            let events = self.cells[idx].take_events();
            for ev in &events {
                self.learn_tmsi(idx, ev);
            }
            merged.extend(events);
        }
        // Stable sort: same-instant events keep cell order, so the merged
        // stream is a pure function of (config, step cadence).
        merged.sort_by_key(|e| e.at);

        self.process_retirements();
        self.stats.live = self.live();
        self.stats.peak_live = self.stats.peak_live.max(self.stats.live);
        merged
    }

    /// Spawns benign arrivals due by `deadline`, respecting `max_live`
    /// backpressure: while the deployment is at capacity the arrival clock
    /// stalls (the would-be arrival happens at the next step instead). The
    /// stall is itself deterministic because `live` is.
    fn spawn_due_arrivals(&mut self, deadline: Timestamp) {
        while self.next_arrival <= deadline && self.stats.spawned < self.config.total_ues {
            if self.live() >= self.config.max_live {
                break;
            }
            let cell = self.rng.gen_range(0..self.config.cells);
            // An arrival that stalled behind backpressure happens when the
            // stall lifts (now), not at its originally drawn instant — the
            // merged stream must never run backwards across steps.
            let at = self.next_arrival.max(self.clock);
            self.spawn_benign(cell, at);
            let u: f64 = self.rng.gen_range(1e-6..1.0f64);
            let gap = (-(u.ln()) * self.config.mean_inter_arrival.as_micros() as f64) as u64;
            self.next_arrival += Duration::from_micros(gap.max(1));
        }
    }

    /// Fires any registration storms due by `deadline`: `burst` simultaneous
    /// arrivals in one cell, drawn from the same subscriber budget.
    fn spawn_due_storms(&mut self, deadline: Timestamp) {
        let Some(storm) = self.config.storm.clone() else { return };
        while let Some(due) = self.next_storm {
            if due > deadline {
                break;
            }
            let cell = self.rng.gen_range(0..self.config.cells);
            for _ in 0..storm.burst {
                if self.stats.spawned >= self.config.total_ues {
                    break;
                }
                self.spawn_benign(cell, due);
            }
            self.stats.storms += 1;
            self.next_storm = Some(due + storm.period);
        }
    }

    /// Provisions one fresh benign subscriber in `cell`, powering on at `at`.
    fn spawn_benign(&mut self, cell: usize, at: Timestamp) {
        let seq = self.stats.spawned;
        self.stats.spawned += 1;

        let msin = 100_000 + seq;
        let key = 0xAB00_0000 + seq;
        let supi = Supi::new(Plmn::TEST, msin);
        let model = self.draw_model();
        let sim = &mut self.cells[cell];
        sim.add_subscriber(SubscriberRecord { supi, key });

        // Warm-start TMSIs live below 0x0100_0000, the floor of the AMF's
        // allocation cursor, so they can never collide with issued ones —
        // and must be unique per subscriber (the modulus only wraps past
        // ~16M spawns): a shared TMSI would alias two identities in the
        // stale map, and the survivor's registration would chase a
        // subscriber that handed over out of the cell.
        let cached_tmsi = if self.rng.gen_bool(self.config.warm_start_fraction) {
            let tmsi = Tmsi(1 + (seq as u32 % 0x00FF_FFFF));
            sim.add_stale_tmsi(tmsi, msin);
            Some(tmsi)
        } else {
            None
        };

        let hops_left = if self.config.max_handovers > 0
            && self.rng.gen_bool(self.config.mobility_fraction)
        {
            self.rng.gen_range(1..=self.config.max_handovers)
        } else {
            0
        };

        let ue = BenignUe::new(model, supi, key, cached_tmsi, &mut self.rng);
        let id = self.cells[cell].add_ue(Box::new(ue), TrafficClass::Benign, at);
        self.sessions
            .insert((cell, id), SessionInfo { msin, key, model, hops_left, tmsi: cached_tmsi });
    }

    fn draw_model(&mut self) -> DeviceModel {
        let total: u32 = self.config.device_mix.iter().sum();
        let mut pick = self.rng.gen_range(0..total);
        for (j, w) in self.config.device_mix.iter().enumerate() {
            if pick < *w {
                return DeviceModel::ALL[j];
            }
            pick -= w;
        }
        DeviceModel::OaiSoftUe
    }

    /// Tracks the TMSI the network last issued to a session, so a handover
    /// carries the *current* identity into the target cell.
    fn learn_tmsi(&mut self, cell: usize, ev: &RanEvent) {
        if let L3Message::Nas(NasMessage::RegistrationAccept { new_tmsi }) = &ev.msg {
            if let Some(id) = ev.ue {
                if let Some(info) = self.sessions.get_mut(&(cell, id)) {
                    info.tmsi = Some(*new_tmsi);
                }
            }
        }
    }

    /// Drains every cell's retirement list: sessions with hops left re-home
    /// to another cell (handover with TMSI carry-over), finished sessions
    /// are forgotten everywhere — subscriber record, stale TMSIs (via the
    /// retention cap), and the engine's own map.
    fn process_retirements(&mut self) {
        for cell in 0..self.cells.len() {
            for id in self.cells[cell].take_retired() {
                let Some(info) = self.sessions.remove(&(cell, id)) else {
                    continue; // attacker-injected UE, not ours to track
                };
                if info.hops_left > 0 && self.config.cells > 1 {
                    self.handover(cell, info);
                } else {
                    self.cells[cell].remove_subscriber(info.msin);
                    self.stats.completed += 1;
                }
            }
        }
    }

    /// Re-registers a retired subscriber in a different cell: the target
    /// core learns the subscriber and the TMSI the source network issued,
    /// the UE presents that TMSI on arrival, and the target AMF reallocates
    /// a fresh one at SMC completion. The source cell forgets the
    /// subscriber entirely.
    fn handover(&mut self, from: usize, info: SessionInfo) {
        let mut target = self.rng.gen_range(0..self.config.cells - 1);
        if target >= from {
            target += 1;
        }
        self.cells[from].remove_subscriber(info.msin);

        let supi = Supi::new(Plmn::TEST, info.msin);
        self.cells[target].add_subscriber(SubscriberRecord { supi, key: info.key });
        if let Some(tmsi) = info.tmsi {
            self.cells[target].add_stale_tmsi(tmsi, info.msin);
        }

        let profile = info.model.profile();
        let hold = profile.hold_time
            + Duration::from_micros(self.rng.gen_range(0..=profile.hold_jitter.as_micros()));
        let plan = SessionPlan {
            // The point of the handover: always present the carried TMSI.
            reuse_tmsi: info.tmsi.is_some(),
            open_pdu_session: self.rng.gen_bool(profile.pdu_session_probability),
            hold,
        };
        let ue = BenignUe::with_plan(info.model, supi, info.key, info.tmsi, plan);

        // Radio gap while the device re-selects the target cell.
        let gap = Duration::from_micros(self.rng.gen_range(2_000..30_000));
        let at = self.clock + gap;
        let id = self.cells[target].add_ue(Box::new(ue), TrafficClass::Benign, at);
        self.sessions.insert(
            (target, id),
            SessionInfo { hops_left: info.hops_left - 1, ..info },
        );
        self.stats.handovers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(mut engine: StreamingScenario, step: Duration) -> (Vec<RanEvent>, StreamStats) {
        let mut events = Vec::new();
        let mut deadline = Timestamp::ZERO + step;
        let mut guard = 0;
        while !engine.done() {
            events.extend(engine.step(deadline));
            deadline += step;
            guard += 1;
            assert!(guard < 100_000, "stream never drained");
        }
        let stats = engine.stats();
        (events, stats)
    }

    fn small(seed: u64) -> StreamConfig {
        StreamConfig {
            seed,
            cells: 3,
            total_ues: 60,
            mean_inter_arrival: Duration::from_millis(5),
            mobility_fraction: 0.4,
            max_handovers: 2,
            max_live: 32,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn streams_the_full_population_and_drains() {
        let (events, stats) = drive(StreamingScenario::new(small(7)), Duration::from_millis(50));
        assert_eq!(stats.spawned, 60);
        assert_eq!(stats.completed, 60);
        assert!(stats.handovers > 0, "mobility fraction should produce handovers");
        assert!(!events.is_empty());
        assert_eq!(stats.live, 0);
    }

    #[test]
    fn replays_byte_identically() {
        let (a, sa) = drive(StreamingScenario::new(small(11)), Duration::from_millis(50));
        let (b, sb) = drive(StreamingScenario::new(small(11)), Duration::from_millis(50));
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn merged_stream_is_time_ordered_with_unique_conns_per_cell() {
        let (events, _) = drive(StreamingScenario::new(small(13)), Duration::from_millis(50));
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at), "stream out of order");
        for ev in &events {
            let idx = cell_of_conn(ev.du_ue_id);
            assert_eq!(
                ev.cell,
                CellId(idx as u32 + 1),
                "du_ue_id {:#x} claims cell {idx} but event is from {:?}",
                ev.du_ue_id,
                ev.cell
            );
        }
    }

    #[test]
    fn handover_reallocates_the_tmsi_in_the_target_cell() {
        let config = StreamConfig {
            seed: 21,
            cells: 2,
            total_ues: 30,
            mobility_fraction: 1.0,
            max_handovers: 1,
            warm_start_fraction: 0.0,
            mean_inter_arrival: Duration::from_millis(5),
            ..StreamConfig::default()
        };
        let (events, stats) = drive(StreamingScenario::new(config), Duration::from_millis(50));
        assert!(stats.handovers >= 20, "expected most UEs to hand over: {stats:?}");

        // A handed-over UE re-registers by *presenting* a TMSI in the target
        // cell; the target AMF then accepts with a *different* TMSI.
        let mut presented = 0;
        for ev in &events {
            if let L3Message::Nas(NasMessage::RegistrationRequest { identity, .. }) = &ev.msg {
                if matches!(identity, xsec_proto::MobileIdentity::FiveGSTmsi(t) if t.0 >= 0x0100_0000)
                {
                    presented += 1;
                }
            }
        }
        assert!(
            presented >= stats.handovers / 2,
            "handover re-registrations should present network-issued TMSIs: \
             {presented} of {} handovers",
            stats.handovers
        );
    }

    #[test]
    fn backpressure_caps_live_population_and_slab_reuse_bounds_slots() {
        let config = StreamConfig {
            seed: 5,
            cells: 2,
            total_ues: 200,
            mean_inter_arrival: Duration::from_micros(200), // arrive much faster than sessions end
            mobility_fraction: 0.0,
            max_live: 24,
            ..StreamConfig::default()
        };
        let mut engine = StreamingScenario::new(config);
        let mut deadline = Timestamp::ZERO + Duration::from_millis(20);
        while !engine.done() {
            engine.step(deadline);
            let live = engine.live();
            assert!(live <= 24, "backpressure violated: {live} live");
            deadline += Duration::from_millis(20);
        }
        let stats = engine.stats();
        assert_eq!(stats.spawned, 200);
        // Slots are recycled: per-cell peaks need not sum to the global
        // peak, but total slots must stay near the ceiling — far fewer than
        // the number of UEs ever streamed.
        assert!(
            stats.slab_slots <= 24 * 2,
            "slab should stay near max_live, got {} slots for {} UEs",
            stats.slab_slots,
            stats.sim_ues
        );
    }

    #[test]
    fn storms_fire_on_schedule() {
        let config = StreamConfig {
            seed: 31,
            cells: 2,
            total_ues: 80,
            storm: Some(StormConfig { period: Duration::from_millis(100), burst: 10 }),
            mobility_fraction: 0.0,
            mean_inter_arrival: Duration::from_millis(10),
            ..StreamConfig::default()
        };
        let (_, stats) = drive(StreamingScenario::new(config), Duration::from_millis(50));
        assert!(stats.storms >= 2, "expected storms: {stats:?}");
        assert_eq!(stats.spawned, 80);
    }

    #[test]
    fn control_actions_route_by_cell() {
        let mut engine = StreamingScenario::new(StreamConfig {
            cells: 3,
            total_ues: 0,
            ..StreamConfig::default()
        });
        // Quarantine cell 2 (index 1): only that cell's gNB should count a
        // mitigation drop when an admission is attempted there.
        let control = ControlAction {
            id: 1,
            ttl: Duration::from_secs(5),
            action: MitigationAction::QuarantineCell { cell: CellId(2) },
            trace: None,
        };
        engine.apply_control(Timestamp::ZERO, &control);
        for cell in 0..3 {
            let supi = Supi::new(Plmn::TEST, 900 + cell as u64);
            engine.add_subscriber_at(cell, SubscriberRecord { supi, key: 0x11 });
            let ue = BenignUe::with_plan(
                DeviceModel::OaiSoftUe,
                supi,
                0x11,
                None,
                SessionPlan {
                    reuse_tmsi: false,
                    open_pdu_session: false,
                    hold: Duration::from_millis(100),
                },
            );
            engine.add_ue_at(cell, Box::new(ue), TrafficClass::Benign, Timestamp(1));
        }
        let mut deadline = Timestamp::ZERO + Duration::from_millis(100);
        for _ in 0..40 {
            engine.step(deadline);
            deadline += Duration::from_millis(100);
        }
        assert_eq!(engine.gnb_stats(0).mitigation_dropped, 0);
        assert!(engine.gnb_stats(1).mitigation_dropped >= 1, "quarantine missed its cell");
        assert_eq!(engine.gnb_stats(2).mitigation_dropped, 0);
        assert_eq!(engine.gnb_stats(0).admitted, 1);
        assert_eq!(engine.gnb_stats(2).admitted, 1);
    }
}
