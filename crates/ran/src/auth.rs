//! Stand-in cryptography for 5G-AKA and SUCI concealment.
//!
//! The paper's threat model assumes attackers "adhere to cryptographic
//! assumptions" — they never break AKA or SUCI encryption, they only abuse
//! *unprotected* messages. We therefore do not need real cryptography, only
//! functions with the right *interface properties*:
//!
//! * [`aka_response`] is deterministic in `(key, rand)` and infeasible to
//!   produce without the key (we use a 64-bit mixer; adversarial behaviors in
//!   `xsec-attacks` simply never call it without a key, honoring the model);
//! * [`conceal_supi`]/[`reveal_supi`] hide the MSIN from an observer without
//!   the network secret and produce a different concealed value per nonce,
//!   exactly like ECIES-based SUCI does from the telemetry's point of view.

/// The home-network "private key" shared by UE SIM profiles and the AMF in
/// this simulation (stands in for the ECIES key pair).
pub const NETWORK_SECRET: u64 = 0x6A5F_3C21_9E84_D7B3;

/// SplitMix64 — a well-distributed 64-bit mixer; our stand-in PRF.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Computes the UE's RES* for a 5G-AKA challenge.
pub fn aka_response(key: u64, rand: u64) -> u64 {
    mix(key ^ mix(rand))
}

/// Verifies a RES* against the expected value for `(key, rand)`.
pub fn aka_verify(key: u64, rand: u64, res: u64) -> bool {
    aka_response(key, rand) == res
}

/// Conceals an MSIN under a fresh nonce: the top 32 bits carry the nonce in
/// clear (like the ECIES ephemeral public key), the bottom 32 bits carry the
/// MSIN XOR-masked with a PRF of the nonce and the network secret.
///
/// MSINs in the simulation fit in 32 bits.
pub fn conceal_supi(msin: u64, nonce: u32) -> u64 {
    let mask = (mix(u64::from(nonce) ^ NETWORK_SECRET) & 0xFFFF_FFFF) as u32;
    (u64::from(nonce) << 32) | u64::from((msin as u32) ^ mask)
}

/// Recovers the MSIN from a concealed identity (home network side).
pub fn reveal_supi(concealed: u64) -> u64 {
    let nonce = (concealed >> 32) as u32;
    let mask = (mix(u64::from(nonce) ^ NETWORK_SECRET) & 0xFFFF_FFFF) as u32;
    u64::from(((concealed & 0xFFFF_FFFF) as u32) ^ mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aka_round_trip() {
        let key = 0xC0FFEE;
        let res = aka_response(key, 42);
        assert!(aka_verify(key, 42, res));
        assert!(!aka_verify(key, 43, res));
        assert!(!aka_verify(key + 1, 42, res));
    }

    #[test]
    fn aka_differs_across_challenges() {
        let key = 7;
        assert_ne!(aka_response(key, 1), aka_response(key, 2));
    }

    #[test]
    fn suci_conceal_reveal_round_trip() {
        for msin in [0u64, 1, 0xDEAD, 0xFFFF_FFFF] {
            for nonce in [0u32, 1, 0xABCD_EF01] {
                assert_eq!(reveal_supi(conceal_supi(msin, nonce)), msin);
            }
        }
    }

    #[test]
    fn same_msin_different_nonce_looks_different() {
        let a = conceal_supi(1234, 1);
        let b = conceal_supi(1234, 2);
        assert_ne!(a, b);
        // ... and even the masked low words differ.
        assert_ne!(a & 0xFFFF_FFFF, b & 0xFFFF_FFFF);
    }

    #[test]
    fn concealed_value_does_not_leak_msin() {
        let concealed = conceal_supi(0x1234_5678, 99);
        assert_ne!(concealed & 0xFFFF_FFFF, 0x1234_5678);
    }
}
