//! The typed mitigation-action vocabulary and its TLV wire codec.
//!
//! Actions ride inside `E2AP Control Request` payloads (the control
//! primitive), so they need a deterministic binary form the RAN agent can
//! decode without any shared in-process state. The payload is a flat TLV
//! sequence — tag byte, `u16` length, value — with one header TLV for the
//! correlation id, one for the TTL, and exactly one action-body TLV. TLV
//! (rather than a fixed struct layout) keeps the control sub-codec
//! forward-extensible the way E2SM payloads are.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use xsec_types::{
    CellId, Duration, EstablishmentCause, ReleaseCause, Result, Rnti, XsecError,
};

fn err(msg: impl Into<String>) -> XsecError {
    XsecError::Codec(msg.into())
}

/// One enforcement primitive the RIC can ask the RAN to apply.
///
/// Scopes differ per action: a single connection (`ReleaseUe`,
/// `ForceReauth`), a single radio identity (`BlacklistRnti`), one
/// establishment cause (`RateLimitCause`), or the whole cell
/// (`QuarantineCell`). Every action is bounded by the TTL carried in its
/// [`ControlAction`] envelope — mitigations decay instead of accreting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MitigationAction {
    /// Release one RRC connection with the given cause.
    ReleaseUe {
        /// DU-local UE association to tear down.
        conn: u32,
        /// Release cause sent to the UE.
        cause: ReleaseCause,
    },
    /// Drop all uplink traffic from a C-RNTI at the MAC and refuse to
    /// re-allocate it while the TTL lasts.
    BlacklistRnti {
        /// The radio identity to silence.
        rnti: Rnti,
    },
    /// Detach one connection with a network abort so the subscriber's next
    /// attach runs the full authentication ladder again (the simulated AMF
    /// always challenges a fresh SUCI registration).
    ForceReauth {
        /// DU-local UE association to detach.
        conn: u32,
    },
    /// Stop admitting *any* new RRC connection on the cell while the TTL
    /// lasts (existing sessions continue).
    QuarantineCell {
        /// The cell to quarantine.
        cell: CellId,
    },
    /// Cap new admissions carrying one establishment cause to
    /// `max_setups` per sliding `window`; excess setup requests are
    /// silently dropped at the MAC.
    RateLimitCause {
        /// The establishment cause under rate control.
        cause: EstablishmentCause,
        /// Admissions allowed per window.
        max_setups: u16,
        /// Sliding window length.
        window: Duration,
    },
}

impl MitigationAction {
    /// A short stable name for reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            MitigationAction::ReleaseUe { .. } => "release-ue",
            MitigationAction::BlacklistRnti { .. } => "blacklist-rnti",
            MitigationAction::ForceReauth { .. } => "force-reauth",
            MitigationAction::QuarantineCell { .. } => "quarantine-cell",
            MitigationAction::RateLimitCause { .. } => "rate-limit-cause",
        }
    }
}

/// A mitigation action plus its control-plane envelope: a correlation id
/// (unique per policy engine) and the TTL bounding the enforcement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlAction {
    /// Correlation id assigned by the policy engine.
    pub id: u32,
    /// How long the RAN should keep enforcing the action.
    pub ttl: Duration,
    /// The enforcement primitive itself.
    pub action: MitigationAction,
    /// Causal trace id linking this action back to the detection that
    /// produced it. Optional on the wire (a trailing TLV, emitted only
    /// when set) so payloads from older encoders — and decoders that
    /// predate tracing — interoperate unchanged.
    pub trace: Option<u64>,
}

// TLV tags. Header TLVs first, then one body tag per action variant.
const TAG_ACTION_ID: u8 = 0x01;
const TAG_TTL: u8 = 0x02;
const TAG_TRACE_ID: u8 = 0x03;
const TAG_RELEASE_UE: u8 = 0x10;
const TAG_BLACKLIST_RNTI: u8 = 0x11;
const TAG_FORCE_REAUTH: u8 = 0x12;
const TAG_QUARANTINE_CELL: u8 = 0x13;
const TAG_RATE_LIMIT_CAUSE: u8 = 0x14;

fn release_cause_code(cause: ReleaseCause) -> u8 {
    match cause {
        ReleaseCause::Normal => 0,
        ReleaseCause::RadioLinkFailure => 1,
        ReleaseCause::NetworkAbort => 2,
        ReleaseCause::Congestion => 3,
    }
}

fn release_cause_from_code(code: u8) -> Result<ReleaseCause> {
    match code {
        0 => Ok(ReleaseCause::Normal),
        1 => Ok(ReleaseCause::RadioLinkFailure),
        2 => Ok(ReleaseCause::NetworkAbort),
        3 => Ok(ReleaseCause::Congestion),
        other => Err(err(format!("unknown release cause code {other}"))),
    }
}

fn establishment_cause_code(cause: EstablishmentCause) -> u8 {
    EstablishmentCause::ALL
        .iter()
        .position(|c| *c == cause)
        .expect("every cause is in ALL") as u8
}

fn establishment_cause_from_code(code: u8) -> Result<EstablishmentCause> {
    EstablishmentCause::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| err(format!("unknown establishment cause code {code}")))
}

/// Longest value one TLV can carry: its length field is a `u16`.
pub const MAX_TLV_VALUE_LEN: usize = u16::MAX as usize;

fn put_tlv(buf: &mut BytesMut, tag: u8, value: &[u8]) -> Result<()> {
    // A value longer than the length field can express would silently
    // truncate `value.len() as u16` and corrupt the frame for every
    // following TLV; refuse before writing anything.
    if value.len() > MAX_TLV_VALUE_LEN {
        return Err(err(format!(
            "TLV value for tag {tag:#04x} is {} bytes; max is {MAX_TLV_VALUE_LEN}",
            value.len()
        )));
    }
    buf.put_u8(tag);
    buf.put_u16(value.len() as u16);
    buf.put_slice(value);
    Ok(())
}

impl ControlAction {
    /// Encodes the action into a Control Request payload (TLV sequence).
    ///
    /// Infallible for every [`MitigationAction`] variant (their bodies are
    /// tiny fixed layouts); kept as the ergonomic entry point.
    /// [`ControlAction::try_encode`] is the checked form.
    pub fn encode(&self) -> Vec<u8> {
        self.try_encode().expect("fixed-layout action bodies fit a u16 TLV length")
    }

    /// Encodes the action, reporting a typed error if any TLV value would
    /// overflow the `u16` length field.
    pub fn try_encode(&self) -> Result<Vec<u8>> {
        let mut buf = BytesMut::with_capacity(32);
        put_tlv(&mut buf, TAG_ACTION_ID, &self.id.to_be_bytes())?;
        put_tlv(&mut buf, TAG_TTL, &self.ttl.as_micros().to_be_bytes())?;
        let mut body = BytesMut::with_capacity(16);
        let tag = match &self.action {
            MitigationAction::ReleaseUe { conn, cause } => {
                body.put_u32(*conn);
                body.put_u8(release_cause_code(*cause));
                TAG_RELEASE_UE
            }
            MitigationAction::BlacklistRnti { rnti } => {
                body.put_u16(rnti.0);
                TAG_BLACKLIST_RNTI
            }
            MitigationAction::ForceReauth { conn } => {
                body.put_u32(*conn);
                TAG_FORCE_REAUTH
            }
            MitigationAction::QuarantineCell { cell } => {
                body.put_u32(cell.0);
                TAG_QUARANTINE_CELL
            }
            MitigationAction::RateLimitCause { cause, max_setups, window } => {
                body.put_u8(establishment_cause_code(*cause));
                body.put_u16(*max_setups);
                body.put_u64(window.as_micros());
                TAG_RATE_LIMIT_CAUSE
            }
        };
        put_tlv(&mut buf, tag, &body)?;
        // The trace id trails the body so fixed `[id, ttl, body]` payload
        // prefixes (and their consumers) are byte-identical with tracing
        // off — the TLV is additive, never reordering.
        if let Some(trace) = self.trace {
            put_tlv(&mut buf, TAG_TRACE_ID, &trace.to_be_bytes())?;
        }
        Ok(buf.to_vec())
    }

    /// Decodes a Control Request payload back into an action.
    ///
    /// Strict: unknown tags, duplicated TLVs, truncation, trailing bytes,
    /// and missing header fields are all errors — a control channel is the
    /// wrong place for silent tolerance.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut buf = Bytes::copy_from_slice(payload);
        let mut id: Option<u32> = None;
        let mut ttl: Option<Duration> = None;
        let mut action: Option<MitigationAction> = None;
        let mut trace: Option<u64> = None;
        while buf.has_remaining() {
            if buf.remaining() < 3 {
                return Err(err("truncated TLV header"));
            }
            let tag = buf.get_u8();
            let len = buf.get_u16() as usize;
            if buf.remaining() < len {
                return Err(err(format!(
                    "truncated TLV value: tag {tag:#04x} wants {len}, have {}",
                    buf.remaining()
                )));
            }
            let mut value = buf.split_to(len);
            match tag {
                TAG_ACTION_ID => {
                    take_exact(&value, 4, "action id")?;
                    set_once(&mut id, value.get_u32(), "action id")?;
                }
                TAG_TTL => {
                    take_exact(&value, 8, "ttl")?;
                    set_once(&mut ttl, Duration::from_micros(value.get_u64()), "ttl")?;
                }
                TAG_TRACE_ID => {
                    take_exact(&value, 8, "trace id")?;
                    set_once(&mut trace, value.get_u64(), "trace id")?;
                }
                TAG_RELEASE_UE => {
                    take_exact(&value, 5, "release body")?;
                    let conn = value.get_u32();
                    let cause = release_cause_from_code(value.get_u8())?;
                    set_once(&mut action, MitigationAction::ReleaseUe { conn, cause }, "body")?;
                }
                TAG_BLACKLIST_RNTI => {
                    take_exact(&value, 2, "blacklist body")?;
                    let rnti = Rnti(value.get_u16());
                    set_once(&mut action, MitigationAction::BlacklistRnti { rnti }, "body")?;
                }
                TAG_FORCE_REAUTH => {
                    take_exact(&value, 4, "reauth body")?;
                    let conn = value.get_u32();
                    set_once(&mut action, MitigationAction::ForceReauth { conn }, "body")?;
                }
                TAG_QUARANTINE_CELL => {
                    take_exact(&value, 4, "quarantine body")?;
                    let cell = CellId(value.get_u32());
                    set_once(&mut action, MitigationAction::QuarantineCell { cell }, "body")?;
                }
                TAG_RATE_LIMIT_CAUSE => {
                    take_exact(&value, 11, "rate limit body")?;
                    let cause = establishment_cause_from_code(value.get_u8())?;
                    let max_setups = value.get_u16();
                    let window = Duration::from_micros(value.get_u64());
                    set_once(
                        &mut action,
                        MitigationAction::RateLimitCause { cause, max_setups, window },
                        "body",
                    )?;
                }
                other => return Err(err(format!("unknown control TLV tag {other:#04x}"))),
            }
        }
        Ok(ControlAction {
            id: id.ok_or_else(|| err("missing action id TLV"))?,
            ttl: ttl.ok_or_else(|| err("missing ttl TLV"))?,
            action: action.ok_or_else(|| err("missing action body TLV"))?,
            // Absent is fine: the trace TLV is optional by design.
            trace,
        })
    }
}

fn take_exact(value: &Bytes, n: usize, what: &str) -> Result<()> {
    if value.remaining() != n {
        Err(err(format!("bad {what} length: want {n}, have {}", value.remaining())))
    } else {
        Ok(())
    }
}

fn set_once<T>(slot: &mut Option<T>, value: T, what: &str) -> Result<()> {
    if slot.is_some() {
        Err(err(format!("duplicate {what} TLV")))
    } else {
        *slot = Some(value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn samples() -> Vec<ControlAction> {
        vec![
            ControlAction {
                id: 1,
                ttl: Duration::from_secs(10),
                action: MitigationAction::ReleaseUe { conn: 7, cause: ReleaseCause::NetworkAbort },
                trace: None,
            },
            ControlAction {
                id: 2,
                ttl: Duration::from_secs(30),
                action: MitigationAction::BlacklistRnti { rnti: Rnti(0x4612) },
                trace: None,
            },
            ControlAction {
                id: 3,
                ttl: Duration::from_secs(5),
                action: MitigationAction::ForceReauth { conn: 12 },
                trace: Some(0x1122_3344_5566_7788),
            },
            ControlAction {
                id: 4,
                ttl: Duration::from_millis(2500),
                action: MitigationAction::QuarantineCell { cell: CellId(1) },
                trace: None,
            },
            ControlAction {
                id: 5,
                ttl: Duration::from_secs(60),
                action: MitigationAction::RateLimitCause {
                    cause: EstablishmentCause::MoSignalling,
                    max_setups: 3,
                    window: Duration::from_millis(500),
                },
                trace: Some(7),
            },
        ]
    }

    #[test]
    fn round_trip_all_samples() {
        for action in samples() {
            let bytes = action.encode();
            assert_eq!(ControlAction::decode(&bytes).unwrap(), action, "failed: {action:?}");
        }
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        for action in samples() {
            let bytes = action.encode();
            // A traced payload cut exactly before its trailing trace TLV is
            // a complete untraced frame by design; every other cut is torn.
            let optional_boundary = action.trace.map(|_| bytes.len() - (3 + 8));
            for cut in 0..bytes.len() {
                if Some(cut) == optional_boundary {
                    let decoded = ControlAction::decode(&bytes[..cut]).unwrap();
                    assert_eq!(decoded, ControlAction { trace: None, ..action.clone() });
                    continue;
                }
                assert!(
                    ControlAction::decode(&bytes[..cut]).is_err(),
                    "{action:?} cut at {cut} decoded"
                );
            }
        }
    }

    #[test]
    fn decode_rejects_duplicates_unknown_tags_and_missing_fields() {
        let action = &samples()[0];
        let mut doubled = action.encode();
        doubled.extend_from_slice(&action.encode());
        assert!(ControlAction::decode(&doubled).is_err(), "duplicate TLVs accepted");

        let mut unknown = action.encode();
        unknown.extend_from_slice(&[0x7F, 0x00, 0x00]);
        assert!(ControlAction::decode(&unknown).is_err(), "unknown tag accepted");

        // Strip the body TLV: header-only payloads are incomplete.
        let header_only = &action.encode()[..7 + 11]; // id TLV (7) + ttl TLV (11)
        assert!(ControlAction::decode(header_only).is_err(), "missing body accepted");
    }

    #[test]
    fn trace_tlv_is_optional_and_trailing() {
        // Tolerated-as-absent: a payload with no trace TLV decodes to
        // `trace: None` — exactly what pre-tracing encoders emit.
        let untraced = &samples()[0];
        assert_eq!(untraced.trace, None);
        let decoded = ControlAction::decode(&untraced.encode()).unwrap();
        assert_eq!(decoded.trace, None);

        // And the converse: stripping the trailing trace TLV off a traced
        // payload yields the same action minus the trace — old decoders
        // that reject tag 0x03 see a frame they already understand.
        let traced = &samples()[2];
        let bytes = traced.encode();
        let stripped = &bytes[..bytes.len() - (3 + 8)]; // tag + len + u64
        let decoded = ControlAction::decode(stripped).unwrap();
        assert_eq!(decoded, ControlAction { trace: None, ..traced.clone() });

        // Duplicated trace TLVs stay errors — optional, not lax.
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes[bytes.len() - (3 + 8)..]);
        assert!(ControlAction::decode(&doubled).is_err(), "duplicate trace TLV accepted");
    }

    #[test]
    fn tlv_length_boundary_is_exact() {
        // Regression: `value.len() as u16` used to truncate silently, so a
        // 65536-byte value encoded a zero length and corrupted the frame.
        let mut buf = BytesMut::new();
        let max = vec![0xAB; MAX_TLV_VALUE_LEN];
        put_tlv(&mut buf, 0x55, &max).unwrap();
        assert_eq!(buf.len(), 3 + MAX_TLV_VALUE_LEN);
        assert_eq!(&buf[..3], &[0x55, 0xFF, 0xFF], "length field must be 0xFFFF");

        let mut buf = BytesMut::new();
        let over = vec![0xAB; MAX_TLV_VALUE_LEN + 1];
        let e = put_tlv(&mut buf, 0x55, &over).unwrap_err();
        assert_eq!(e.category(), "codec");
        assert!(buf.is_empty(), "rejected TLV must not leave partial bytes");
    }

    #[test]
    fn try_encode_succeeds_for_every_action_shape() {
        for action in samples() {
            let bytes = action.try_encode().unwrap();
            assert_eq!(bytes, action.encode());
            assert_eq!(ControlAction::decode(&bytes).unwrap(), action);
        }
    }

    #[test]
    fn cause_codes_cover_every_variant() {
        for cause in EstablishmentCause::ALL {
            assert_eq!(
                establishment_cause_from_code(establishment_cause_code(cause)).unwrap(),
                cause
            );
        }
        for cause in [
            ReleaseCause::Normal,
            ReleaseCause::RadioLinkFailure,
            ReleaseCause::NetworkAbort,
            ReleaseCause::Congestion,
        ] {
            assert_eq!(release_cause_from_code(release_cause_code(cause)).unwrap(), cause);
        }
    }
}
