//! Closed-loop mitigation for the 6G-XSec near-RT RIC.
//!
//! The paper's pipeline ends at explanation: MobiWatch flags a telemetry
//! window, the LLM analyzer names the attack, and the result is shown to an
//! analyst. This crate adds the *actuation* half of the loop — the E2
//! Control path O-RAN provides for exactly this purpose:
//!
//! ```text
//! AnalyzerFinding ──► PolicyEngine ──► ControlAction (TLV payload)
//!                        │                  │
//!                        ▼                  ▼
//!                SupervisionTicket    ActionExecutor ──► E2 ControlRequest
//!                (human queue)              ▲                   │
//!                                           └─── ControlAck ◄───┘
//! ```
//!
//! Four pieces: [`MitigationAction`]/[`ControlAction`] — the typed action
//! vocabulary with a strict TLV wire codec; [`PolicyEngine`] — the
//! rule table mapping detections to actions, with a human-supervision gate
//! for anything below the autonomy bar; [`ActionExecutor`] — delivery
//! tracking with FIFO ack correlation, retries, and TTL expiry; and the
//! [`a1`] module — A1-style runtime policy management ([`PolicyType`]
//! schemas, the versioned [`PolicyStore`], and the [`A1Request`] /
//! [`A1Response`] message API the SMO drives mid-run).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod a1;
pub mod action;
pub mod executor;
pub mod policy;

pub use a1::{
    default_policy_document, default_policy_types, A1OpTally, A1Request, A1Response, Installed,
    PolicyDocument, PolicyOpOutcome, PolicyStore, PolicyType, PolicyValidation, RuleStatus,
    StoredRule, TemplateKind,
};
pub use action::{ControlAction, MitigationAction, MAX_TLV_VALUE_LEN};
pub use executor::{AckResolution, ActionExecutor, ActionState, ExecutorConfig, TrackedAction};
pub use policy::{
    attack_from_title, default_rules, ActionTemplate, PolicyDecision, PolicyEngine, PolicyRule,
    SupervisionTicket, ThreatAssessment,
};
