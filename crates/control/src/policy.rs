//! The detection→action policy engine.
//!
//! The paper closes its loop at the analyst: MobiWatch flags a window, the
//! LLM explains it, a human decides. This module encodes the decision table
//! so the common cases close automatically while everything ambiguous still
//! lands in front of a person. A [`PolicyRule`] maps one attack kind to a
//! list of [`ActionTemplate`]s plus the evidence bar (confidence floor, LLM
//! confirmation) that must be met before the RIC may act on its own.
//!
//! The rule set is not compiled in: it lives in an A1-managed
//! [`PolicyStore`] (see [`crate::a1`]) seeded from the declarative
//! `default_policies.json` document, and [`PolicyEngine::apply`] lets the
//! SMO install, replace, disable, or withdraw rules mid-run.

use crate::a1::{
    default_policy_document, A1Request, A1Response, PolicyOpOutcome, PolicyStore, RuleStatus,
};
use crate::action::{ControlAction, MitigationAction};
use serde::{Deserialize, Serialize};
use xsec_types::{
    AttackKind, CellId, Duration, EstablishmentCause, ReleaseCause, Rnti, Timestamp,
};

/// Everything the policy engine knows about one detection: what the
/// detectors concluded and which network entities are implicated.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreatAssessment {
    /// The attack named by the analyzer, if it named one.
    pub attack: Option<AttackKind>,
    /// Detector confidence in [0, 1] (anomaly score scaled to threshold).
    pub confidence: f32,
    /// True when the cross-model personality check agreed (no
    /// `NeedsHumanReview` verdict).
    pub llm_confirmed: bool,
    /// Virtual time of the detection (latest record in the flagged window).
    pub detected_at: Timestamp,
    /// Cell the flagged telemetry came from.
    pub cell: CellId,
    /// DU connection ids implicated by the flagged records.
    pub suspect_conns: Vec<u32>,
    /// C-RNTIs implicated by the flagged records.
    pub suspect_rntis: Vec<Rnti>,
    /// Most common establishment cause among implicated setup requests.
    pub dominant_cause: Option<EstablishmentCause>,
    /// Causal trace id of the record that triggered the detection; stamped
    /// onto every action the policy engine instantiates for it.
    pub trace: Option<u64>,
}

/// Maps an LLM attack title (the analyzer's free-text naming) back to the
/// typed attack kind. Matching is phrase-based so minor wording drift in
/// the expert blurbs does not silently break the loop, while ordinary
/// vocabulary that merely *contains* a keyword (e.g. "nullable",
/// "annulled") never misclassifies.
pub fn attack_from_title(title: &str) -> Option<AttackKind> {
    let t = title.to_ascii_lowercase();
    if t.contains("bts dos") || t.contains("flooding") || t.contains("signaling storm") {
        Some(AttackKind::BtsDos)
    } else if t.contains("blind dos") || t.contains("tmsi replay") {
        Some(AttackKind::BlindDos)
    } else if t.contains("uplink identity") {
        Some(AttackKind::UplinkIdExtraction)
    } else if t.contains("downlink identity") || t.contains("mitm identity") {
        Some(AttackKind::DownlinkIdExtraction)
    } else if t.contains("null cipher")
        || t.contains("null integrity")
        || t.contains("ea0")
        || t.contains("ia0")
        || t.contains("bidding-down")
        || t.contains("bidding down")
    {
        Some(AttackKind::NullCipher)
    } else {
        None
    }
}

/// An action shape that still needs the assessment's entities filled in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActionTemplate {
    /// Release every suspect connection with the given cause.
    ReleaseSuspects {
        /// Release cause to send.
        cause: ReleaseCause,
    },
    /// Force every suspect connection through re-authentication.
    ForceReauthSuspects,
    /// Blacklist every suspect C-RNTI at the MAC.
    BlacklistSuspectRntis,
    /// Quarantine the whole cell (admission freeze).
    QuarantineCell,
    /// Rate-limit the dominant establishment cause of the flagged window.
    RateLimitDominantCause {
        /// Admissions allowed per window.
        max_setups: u16,
        /// Sliding window length.
        window: Duration,
    },
}

/// One row of the decision table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRule {
    /// Stable id the A1 interface addresses the rule by.
    pub id: String,
    /// Attack kind this rule fires on.
    pub attack: AttackKind,
    /// Minimum detector confidence for autonomous action.
    pub min_confidence: f32,
    /// Require the cross-model personality check to have agreed.
    pub require_llm_confirmation: bool,
    /// TTL stamped onto every action the rule emits.
    pub ttl: Duration,
    /// Actions to instantiate, in order.
    pub templates: Vec<ActionTemplate>,
}

/// What the engine decided to do with one assessment.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyDecision {
    /// Act autonomously: ship these control actions now.
    Act(Vec<ControlAction>),
    /// Below the autonomy bar — escalate to a human with this ticket.
    Supervise(SupervisionTicket),
    /// Nothing actionable (e.g. duplicate alert inside the cooldown).
    StandDown,
}

/// An escalation record for the human-supervision queue.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisionTicket {
    /// The assessment that triggered the escalation.
    pub assessment: ThreatAssessment,
    /// Why the engine refused to act on its own.
    pub reason: String,
}

/// The A1-managed decision table plus per-(attack, cell) cooldown state.
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    store: PolicyStore,
    next_id: u32,
    /// Per-(attack, cell) (kind, cell, acted_at, ttl) memo: while a
    /// mitigation for an attack in one cell is still live we suppress
    /// re-issuing it — MobiWatch keeps alerting on the same window for
    /// several report periods. Keying by cell keeps a detection in cell 1
    /// from muting autonomous action on the same attack in cell 2.
    cooldowns: Vec<(AttackKind, CellId, Timestamp, Duration)>,
}

impl Default for PolicyEngine {
    fn default() -> Self {
        PolicyEngine {
            store: PolicyStore::with_defaults(),
            next_id: 1,
            cooldowns: Vec::new(),
        }
    }
}

/// The default decision table, one rule per attack in the paper's taxonomy,
/// loaded from the declarative `default_policies.json` document.
///
/// BTS DoS floods fresh RNTIs, so blacklisting alone cannot keep up — the
/// lever is rate-limiting the `MoSignalling` establishment cause the flood
/// rides on. Null-cipher victims look benign on the wire; the remedy is
/// tearing down the downgraded sessions so re-attachment renegotiates real
/// algorithms without the MiTM's one-shot strip.
pub fn default_rules() -> Vec<PolicyRule> {
    default_policy_document().rules
}

impl PolicyEngine {
    /// Engine over an explicit rule table, validated against the default
    /// policy types.
    ///
    /// # Panics
    /// Panics if a rule fails schema validation — a compiled-in table that
    /// the schema rejects is a programming error, not an input error.
    pub fn new(rules: Vec<PolicyRule>) -> Self {
        let mut store = PolicyStore::new(crate::a1::default_policy_types());
        for rule in rules {
            store
                .install(rule)
                .unwrap_or_else(|e| panic!("compiled-in rule fails validation: {e}"));
        }
        PolicyEngine { store, next_id: 1, cooldowns: Vec::new() }
    }

    /// The live A1-managed rule store (for reports and tests).
    pub fn store(&self) -> &PolicyStore {
        &self.store
    }

    /// Snapshot of every installed rule's live status.
    pub fn status(&self) -> Vec<RuleStatus> {
        self.store.status()
    }

    /// Applies one A1 policy operation to the live store and answers it.
    ///
    /// Any mutation that touches an attack kind also clears that kind's
    /// cooldowns, so a hot-swapped rule takes effect on the very next
    /// detection instead of waiting out the old rule's TTL.
    pub fn apply(&mut self, request: &A1Request) -> A1Response {
        let op = request.op().to_string();
        let id = request.target_id().to_string();
        let (outcome, version, detail) = match request {
            A1Request::CreatePolicy { rule } => match self.store.install(rule.clone()) {
                Ok(done) => {
                    self.clear_cooldowns(rule.attack);
                    (done.outcome, done.version, String::new())
                }
                Err(e) => (PolicyOpOutcome::RejectedByValidation, 0, e.to_string()),
            },
            A1Request::UpdatePolicy { rule } => match self.store.update(rule.clone()) {
                Ok(done) => {
                    self.clear_cooldowns(rule.attack);
                    (done.outcome, done.version, String::new())
                }
                Err(e) => (PolicyOpOutcome::RejectedByValidation, 0, e.to_string()),
            },
            A1Request::DeletePolicy { id } => match self.store.delete(id) {
                Ok(attack) => {
                    self.clear_cooldowns(attack);
                    (PolicyOpOutcome::Applied, 0, String::new())
                }
                Err(e) => (PolicyOpOutcome::RejectedByValidation, 0, e.to_string()),
            },
            A1Request::SetEnabled { id, enabled } => {
                match self.store.set_enabled(id, *enabled) {
                    Ok((attack, version)) => {
                        self.clear_cooldowns(attack);
                        (PolicyOpOutcome::Applied, version, String::new())
                    }
                    Err(e) => (PolicyOpOutcome::RejectedByValidation, 0, e.to_string()),
                }
            }
            A1Request::QueryStatus => (PolicyOpOutcome::Applied, 0, String::new()),
        };
        A1Response { op, id, outcome, version, detail, status: self.store.status() }
    }

    fn clear_cooldowns(&mut self, attack: AttackKind) {
        self.cooldowns.retain(|(k, _, _, _)| *k != attack);
    }

    /// Decides what to do about one assessment.
    pub fn decide(&mut self, assessment: &ThreatAssessment) -> PolicyDecision {
        let Some(attack) = assessment.attack else {
            return PolicyDecision::Supervise(SupervisionTicket {
                assessment: assessment.clone(),
                reason: "anomaly without a named attack — no autonomous playbook".into(),
            });
        };
        let Some(stored) = self.store.rule_for_attack(attack) else {
            return PolicyDecision::Supervise(SupervisionTicket {
                assessment: assessment.clone(),
                reason: format!("no policy rule for {attack}"),
            });
        };
        if !stored.enabled {
            return PolicyDecision::Supervise(SupervisionTicket {
                assessment: assessment.clone(),
                reason: format!(
                    "rule {:?} for {attack} is disabled via A1 — escalating",
                    stored.rule.id
                ),
            });
        }
        let rule = stored.rule.clone();
        // Written as a negated >= so a non-finite confidence (NaN poisons
        // every comparison) counts as below-floor and escalates, rather
        // than silently passing the gate the way `confidence < floor`
        // would. A1 validation rejects non-finite floors, but the
        // assessment side arrives from the analyzer at runtime — treat it
        // defensively.
        if !(assessment.confidence.is_finite() && assessment.confidence >= rule.min_confidence) {
            return PolicyDecision::Supervise(SupervisionTicket {
                assessment: assessment.clone(),
                reason: format!(
                    "confidence {:.2} below the {:.2} autonomy floor for {attack}",
                    assessment.confidence, rule.min_confidence
                ),
            });
        }
        if rule.require_llm_confirmation && !assessment.llm_confirmed {
            return PolicyDecision::Supervise(SupervisionTicket {
                assessment: assessment.clone(),
                reason: format!("cross-model personalities disagreed on {attack}"),
            });
        }
        if let Some((_, _, acted_at, ttl)) = self
            .cooldowns
            .iter()
            .find(|(k, c, _, _)| *k == attack && *c == assessment.cell)
        {
            if assessment.detected_at < *acted_at + *ttl {
                return PolicyDecision::StandDown;
            }
        }

        let mut actions = Vec::new();
        for template in &rule.templates {
            self.instantiate(template, assessment, rule.ttl, &mut actions);
        }
        for action in &mut actions {
            action.trace = assessment.trace;
        }
        if actions.is_empty() {
            return PolicyDecision::Supervise(SupervisionTicket {
                assessment: assessment.clone(),
                reason: format!(
                    "rule for {attack} matched but the assessment names no target entities"
                ),
            });
        }
        self.cooldowns
            .retain(|(k, c, _, _)| !(*k == attack && *c == assessment.cell));
        self.cooldowns.push((attack, assessment.cell, assessment.detected_at, rule.ttl));
        self.store.record_decision(&rule.id);
        PolicyDecision::Act(actions)
    }

    fn instantiate(
        &mut self,
        template: &ActionTemplate,
        assessment: &ThreatAssessment,
        ttl: Duration,
        out: &mut Vec<ControlAction>,
    ) {
        match template {
            ActionTemplate::ReleaseSuspects { cause } => {
                for &conn in &assessment.suspect_conns {
                    let action = MitigationAction::ReleaseUe { conn, cause: *cause };
                    out.push(self.wrap(action, ttl));
                }
            }
            ActionTemplate::ForceReauthSuspects => {
                for &conn in &assessment.suspect_conns {
                    out.push(self.wrap(MitigationAction::ForceReauth { conn }, ttl));
                }
            }
            ActionTemplate::BlacklistSuspectRntis => {
                for &rnti in &assessment.suspect_rntis {
                    out.push(self.wrap(MitigationAction::BlacklistRnti { rnti }, ttl));
                }
            }
            ActionTemplate::QuarantineCell => {
                let action = MitigationAction::QuarantineCell { cell: assessment.cell };
                out.push(self.wrap(action, ttl));
            }
            ActionTemplate::RateLimitDominantCause { max_setups, window } => {
                if let Some(cause) = assessment.dominant_cause {
                    let action = MitigationAction::RateLimitCause {
                        cause,
                        max_setups: *max_setups,
                        window: *window,
                    };
                    out.push(self.wrap(action, ttl));
                }
            }
        }
    }

    fn wrap(&mut self, action: MitigationAction, ttl: Duration) -> ControlAction {
        let id = self.next_id;
        self.next_id += 1;
        ControlAction { id, ttl, action, trace: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assessment(attack: Option<AttackKind>) -> ThreatAssessment {
        ThreatAssessment {
            attack,
            confidence: 0.9,
            llm_confirmed: true,
            detected_at: Timestamp(1_000_000),
            cell: CellId(1),
            suspect_conns: vec![4, 9],
            suspect_rntis: vec![Rnti(0x0101), Rnti(0x0102)],
            dominant_cause: Some(EstablishmentCause::MoSignalling),
            trace: Some(42),
        }
    }

    #[test]
    fn bts_dos_rule_rate_limits_and_blacklists() {
        let mut engine = PolicyEngine::default();
        let PolicyDecision::Act(actions) = engine.decide(&assessment(Some(AttackKind::BtsDos)))
        else {
            panic!("expected autonomous action");
        };
        assert!(actions
            .iter()
            .any(|a| matches!(a.action, MitigationAction::RateLimitCause { .. })));
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a.action, MitigationAction::BlacklistRnti { .. }))
                .count(),
            2
        );
        // Every instantiated action inherits the assessment's trace id.
        assert!(actions.iter().all(|a| a.trace == Some(42)), "trace id not propagated");
        // Ids are unique.
        let mut ids: Vec<_> = actions.iter().map(|a| a.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), actions.len());
        // The decision is credited to the rule that made it.
        let status = engine.status();
        let bts = status.iter().find(|s| s.attack == AttackKind::BtsDos).unwrap();
        assert_eq!((bts.id.as_str(), bts.decisions), ("bts-dos", 1));
    }

    #[test]
    fn default_rules_come_from_the_declarative_document() {
        // The JSON document must express exactly the paper's playbooks the
        // old compiled-in table held; spot-check the load-bearing rows.
        let rules = default_rules();
        assert_eq!(rules.len(), AttackKind::ALL.len());
        let bts = rules.iter().find(|r| r.attack == AttackKind::BtsDos).unwrap();
        assert_eq!(bts.id, "bts-dos");
        assert_eq!(bts.min_confidence, 0.6);
        assert!(bts.require_llm_confirmation);
        assert_eq!(bts.ttl, Duration::from_secs(10));
        assert_eq!(
            bts.templates,
            vec![
                ActionTemplate::RateLimitDominantCause {
                    max_setups: 1,
                    window: Duration::from_secs(1),
                },
                ActionTemplate::BlacklistSuspectRntis,
            ]
        );
        let nc = rules.iter().find(|r| r.attack == AttackKind::NullCipher).unwrap();
        assert_eq!(nc.id, "null-cipher");
        assert_eq!(
            nc.templates,
            vec![ActionTemplate::ReleaseSuspects { cause: ReleaseCause::NetworkAbort }]
        );
        // And the engine built from them validates cleanly.
        let engine = PolicyEngine::new(rules);
        assert_eq!(engine.status().len(), AttackKind::ALL.len());
    }

    #[test]
    fn anomaly_without_attack_escalates() {
        let mut engine = PolicyEngine::default();
        assert!(matches!(
            engine.decide(&assessment(None)),
            PolicyDecision::Supervise(_)
        ));
    }

    #[test]
    fn low_confidence_and_disagreement_escalate() {
        let mut engine = PolicyEngine::default();
        let mut low = assessment(Some(AttackKind::NullCipher));
        low.confidence = 0.2;
        assert!(matches!(engine.decide(&low), PolicyDecision::Supervise(_)));

        let mut contested = assessment(Some(AttackKind::NullCipher));
        contested.llm_confirmed = false;
        assert!(matches!(engine.decide(&contested), PolicyDecision::Supervise(_)));
    }

    #[test]
    fn non_finite_assessment_confidence_escalates() {
        // Regression for the NaN-permeable floor: `confidence < floor` is
        // false for NaN, so a NaN-scoring assessment used to sail past the
        // autonomy gate and act. It must supervise instead.
        let mut engine = PolicyEngine::default();
        // +inf nominally exceeds any floor but is not a real confidence —
        // all three escalate.
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut poisoned = assessment(Some(AttackKind::NullCipher));
            poisoned.confidence = bad;
            assert!(
                matches!(engine.decide(&poisoned), PolicyDecision::Supervise(_)),
                "confidence {bad} must escalate"
            );
        }
    }

    #[test]
    fn a1_path_rejects_non_finite_confidence_floor() {
        // The same NaN floor arriving over the A1 interface (the path a
        // compromised SMO or rogue xApp would use) must be rejected by
        // validation before it reaches the store.
        let mut engine = PolicyEngine::default();
        let mut rule = default_rules()
            .into_iter()
            .find(|r| r.attack == AttackKind::NullCipher)
            .unwrap();
        rule.min_confidence = f32::NAN;
        let response = engine.apply(&A1Request::CreatePolicy { rule: rule.clone() });
        assert_eq!(response.outcome, PolicyOpOutcome::RejectedByValidation);
        assert!(response.detail.contains("confidence"), "got: {}", response.detail);
        let response = engine.apply(&A1Request::UpdatePolicy { rule });
        assert_eq!(response.outcome, PolicyOpOutcome::RejectedByValidation);
        // The live rule keeps its finite floor, and the gate still works.
        let stored = engine.store().rule_for_attack(AttackKind::NullCipher).unwrap();
        assert!(stored.rule.min_confidence.is_finite());
        let mut low = assessment(Some(AttackKind::NullCipher));
        low.confidence = 0.1;
        assert!(matches!(engine.decide(&low), PolicyDecision::Supervise(_)));
    }

    #[test]
    fn cooldown_suppresses_repeat_alerts_until_ttl_elapses() {
        let mut engine = PolicyEngine::default();
        let first = assessment(Some(AttackKind::NullCipher));
        assert!(matches!(engine.decide(&first), PolicyDecision::Act(_)));

        let mut repeat = first.clone();
        repeat.detected_at = first.detected_at + Duration::from_secs(2);
        assert_eq!(engine.decide(&repeat), PolicyDecision::StandDown);

        let mut later = first.clone();
        later.detected_at = first.detected_at + Duration::from_secs(11);
        assert!(matches!(engine.decide(&later), PolicyDecision::Act(_)));
    }

    #[test]
    fn cooldown_is_scoped_per_cell() {
        // Regression: cooldowns used to be keyed by attack kind alone, so a
        // BTS DoS in cell 1 muted autonomous action for a simultaneous BTS
        // DoS in cell 2.
        let mut engine = PolicyEngine::default();
        let cell1 = assessment(Some(AttackKind::BtsDos));
        assert!(matches!(engine.decide(&cell1), PolicyDecision::Act(_)));

        // Same attack, same instant, different cell: must still act.
        let mut cell2 = cell1.clone();
        cell2.cell = CellId(2);
        assert!(
            matches!(engine.decide(&cell2), PolicyDecision::Act(_)),
            "cell 2 was muted by cell 1's cooldown"
        );

        // Each cell's own repeat is still suppressed.
        let mut repeat1 = cell1.clone();
        repeat1.detected_at = cell1.detected_at + Duration::from_secs(2);
        assert_eq!(engine.decide(&repeat1), PolicyDecision::StandDown);
        let mut repeat2 = cell2.clone();
        repeat2.detected_at = cell2.detected_at + Duration::from_secs(2);
        assert_eq!(engine.decide(&repeat2), PolicyDecision::StandDown);
    }

    #[test]
    fn a1_apply_swaps_rules_and_clears_cooldowns() {
        let mut engine = PolicyEngine::default();
        let first = assessment(Some(AttackKind::NullCipher));
        let PolicyDecision::Act(actions) = engine.decide(&first) else {
            panic!("expected autonomous action");
        };
        assert!(actions.iter().all(|a| matches!(a.action, MitigationAction::ReleaseUe { .. })));

        // Hot-swap the null-cipher playbook to quarantine instead.
        let swapped = PolicyRule {
            id: "null-cipher".into(),
            attack: AttackKind::NullCipher,
            min_confidence: 0.6,
            require_llm_confirmation: true,
            ttl: Duration::from_secs(10),
            templates: vec![ActionTemplate::QuarantineCell],
        };
        let resp = engine.apply(&A1Request::UpdatePolicy { rule: swapped });
        assert_eq!(resp.outcome, PolicyOpOutcome::Superseded);
        assert_eq!(resp.version, 2);

        // The swap cleared the cooldown: a repeat inside the old TTL now
        // acts, and acts with the *new* playbook.
        let mut repeat = first.clone();
        repeat.detected_at = first.detected_at + Duration::from_secs(2);
        let PolicyDecision::Act(actions) = engine.decide(&repeat) else {
            panic!("swap did not take effect");
        };
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0].action, MitigationAction::QuarantineCell { .. }));

        // Disabling escalates; invalid updates are rejected untouched.
        engine.apply(&A1Request::SetEnabled { id: "null-cipher".into(), enabled: false });
        let mut again = first.clone();
        again.detected_at = first.detected_at + Duration::from_secs(30);
        assert!(matches!(engine.decide(&again), PolicyDecision::Supervise(_)));

        let mut bad = default_rules().remove(0);
        bad.ttl = Duration::from_secs(9_999);
        let resp = engine.apply(&A1Request::UpdatePolicy { rule: bad });
        assert_eq!(resp.outcome, PolicyOpOutcome::RejectedByValidation);
        assert!(resp.detail.contains("ttl"), "detail: {}", resp.detail);
    }

    #[test]
    fn titles_map_back_to_attack_kinds() {
        let cases = [
            ("Signaling storm / RRC flooding DoS (BTS DoS)", Some(AttackKind::BtsDos)),
            ("TMSI replay denial of service (Blind DoS)", Some(AttackKind::BlindDos)),
            (
                "Uplink identity extraction (adaptive overshadowing)",
                Some(AttackKind::UplinkIdExtraction),
            ),
            (
                "Downlink identity extraction (MiTM identity request injection)",
                Some(AttackKind::DownlinkIdExtraction),
            ),
            (
                "Security capability bidding-down (null cipher & integrity)",
                Some(AttackKind::NullCipher),
            ),
            // Phrase forms that must still resolve.
            ("Null cipher downgrade", Some(AttackKind::NullCipher)),
            ("EA0 selected by network", Some(AttackKind::NullCipher)),
            ("bidding down of security capabilities", Some(AttackKind::NullCipher)),
            // Regression: bare-"null" keyword matching misclassified
            // ordinary vocabulary as NullCipher.
            ("nullable field in registration accept", None),
            ("session annulled by operator", None),
            ("null pointer in decoder", None),
            ("benign drift", None),
        ];
        for (title, kind) in cases {
            assert_eq!(attack_from_title(title), kind, "{title}");
        }
    }
}
