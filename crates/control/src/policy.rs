//! The detection→action policy engine.
//!
//! The paper closes its loop at the analyst: MobiWatch flags a window, the
//! LLM explains it, a human decides. This module encodes the decision table
//! so the common cases close automatically while everything ambiguous still
//! lands in front of a person. A [`PolicyRule`] maps one attack kind to a
//! list of [`ActionTemplate`]s plus the evidence bar (confidence floor, LLM
//! confirmation) that must be met before the RIC may act on its own.

use crate::action::{ControlAction, MitigationAction};
use xsec_types::{
    AttackKind, CellId, Duration, EstablishmentCause, ReleaseCause, Rnti, Timestamp,
};

/// Everything the policy engine knows about one detection: what the
/// detectors concluded and which network entities are implicated.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreatAssessment {
    /// The attack named by the analyzer, if it named one.
    pub attack: Option<AttackKind>,
    /// Detector confidence in [0, 1] (anomaly score scaled to threshold).
    pub confidence: f32,
    /// True when the cross-model personality check agreed (no
    /// `NeedsHumanReview` verdict).
    pub llm_confirmed: bool,
    /// Virtual time of the detection (latest record in the flagged window).
    pub detected_at: Timestamp,
    /// Cell the flagged telemetry came from.
    pub cell: CellId,
    /// DU connection ids implicated by the flagged records.
    pub suspect_conns: Vec<u32>,
    /// C-RNTIs implicated by the flagged records.
    pub suspect_rntis: Vec<Rnti>,
    /// Most common establishment cause among implicated setup requests.
    pub dominant_cause: Option<EstablishmentCause>,
}

/// Maps an LLM attack title (the analyzer's free-text naming) back to the
/// typed attack kind. Matching is keyword-based so minor phrasing drift in
/// the expert blurbs does not silently break the loop.
pub fn attack_from_title(title: &str) -> Option<AttackKind> {
    let t = title.to_ascii_lowercase();
    if t.contains("bts dos") || t.contains("flooding") || t.contains("signaling storm") {
        Some(AttackKind::BtsDos)
    } else if t.contains("blind dos") || t.contains("tmsi replay") {
        Some(AttackKind::BlindDos)
    } else if t.contains("uplink identity") {
        Some(AttackKind::UplinkIdExtraction)
    } else if t.contains("downlink identity") || t.contains("mitm identity") {
        Some(AttackKind::DownlinkIdExtraction)
    } else if t.contains("null") || t.contains("bidding-down") || t.contains("bidding down") {
        Some(AttackKind::NullCipher)
    } else {
        None
    }
}

/// An action shape that still needs the assessment's entities filled in.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionTemplate {
    /// Release every suspect connection with the given cause.
    ReleaseSuspects {
        /// Release cause to send.
        cause: ReleaseCause,
    },
    /// Force every suspect connection through re-authentication.
    ForceReauthSuspects,
    /// Blacklist every suspect C-RNTI at the MAC.
    BlacklistSuspectRntis,
    /// Quarantine the whole cell (admission freeze).
    QuarantineCell,
    /// Rate-limit the dominant establishment cause of the flagged window.
    RateLimitDominantCause {
        /// Admissions allowed per window.
        max_setups: u16,
        /// Sliding window length.
        window: Duration,
    },
}

/// One row of the decision table.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRule {
    /// Attack kind this rule fires on.
    pub attack: AttackKind,
    /// Minimum detector confidence for autonomous action.
    pub min_confidence: f32,
    /// Require the cross-model personality check to have agreed.
    pub require_llm_confirmation: bool,
    /// TTL stamped onto every action the rule emits.
    pub ttl: Duration,
    /// Actions to instantiate, in order.
    pub templates: Vec<ActionTemplate>,
}

/// What the engine decided to do with one assessment.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyDecision {
    /// Act autonomously: ship these control actions now.
    Act(Vec<ControlAction>),
    /// Below the autonomy bar — escalate to a human with this ticket.
    Supervise(SupervisionTicket),
    /// Nothing actionable (e.g. duplicate alert inside the cooldown).
    StandDown,
}

/// An escalation record for the human-supervision queue.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisionTicket {
    /// The assessment that triggered the escalation.
    pub assessment: ThreatAssessment,
    /// Why the engine refused to act on its own.
    pub reason: String,
}

/// The configurable decision table plus per-attack cooldown state.
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    rules: Vec<PolicyRule>,
    next_id: u32,
    /// Per-attack (kind, acted_at, ttl) memo: while a mitigation for an
    /// attack is still live we suppress re-issuing it — MobiWatch keeps
    /// alerting on the same window for several report periods.
    cooldowns: Vec<(AttackKind, Timestamp, Duration)>,
}

impl Default for PolicyEngine {
    fn default() -> Self {
        PolicyEngine::new(default_rules())
    }
}

/// The default decision table, one rule per attack in the paper's taxonomy.
///
/// BTS DoS floods fresh RNTIs, so blacklisting alone cannot keep up — the
/// lever is rate-limiting the `MoSignalling` establishment cause the flood
/// rides on. Null-cipher victims look benign on the wire; the remedy is
/// tearing down the downgraded sessions so re-attachment renegotiates real
/// algorithms without the MiTM's one-shot strip.
pub fn default_rules() -> Vec<PolicyRule> {
    vec![
        PolicyRule {
            attack: AttackKind::BtsDos,
            min_confidence: 0.6,
            require_llm_confirmation: true,
            ttl: Duration::from_secs(10),
            templates: vec![
                // Aggressive on purpose: one admission per second strangles
                // the flood to noise while a benign UE on the same cause
                // still gets through within a retry.
                ActionTemplate::RateLimitDominantCause {
                    max_setups: 1,
                    window: Duration::from_secs(1),
                },
                ActionTemplate::BlacklistSuspectRntis,
            ],
        },
        PolicyRule {
            attack: AttackKind::BlindDos,
            min_confidence: 0.6,
            require_llm_confirmation: true,
            ttl: Duration::from_secs(10),
            templates: vec![
                ActionTemplate::BlacklistSuspectRntis,
                ActionTemplate::ForceReauthSuspects,
            ],
        },
        PolicyRule {
            attack: AttackKind::UplinkIdExtraction,
            min_confidence: 0.7,
            require_llm_confirmation: true,
            ttl: Duration::from_secs(10),
            templates: vec![ActionTemplate::ForceReauthSuspects],
        },
        PolicyRule {
            attack: AttackKind::DownlinkIdExtraction,
            min_confidence: 0.7,
            require_llm_confirmation: true,
            ttl: Duration::from_secs(10),
            templates: vec![ActionTemplate::ForceReauthSuspects],
        },
        PolicyRule {
            attack: AttackKind::NullCipher,
            min_confidence: 0.6,
            require_llm_confirmation: true,
            ttl: Duration::from_secs(10),
            templates: vec![ActionTemplate::ReleaseSuspects {
                cause: ReleaseCause::NetworkAbort,
            }],
        },
    ]
}

impl PolicyEngine {
    /// Engine over an explicit rule table.
    pub fn new(rules: Vec<PolicyRule>) -> Self {
        PolicyEngine { rules, next_id: 1, cooldowns: Vec::new() }
    }

    /// The rule table (for reports and tests).
    pub fn rules(&self) -> &[PolicyRule] {
        &self.rules
    }

    /// Decides what to do about one assessment.
    pub fn decide(&mut self, assessment: &ThreatAssessment) -> PolicyDecision {
        let Some(attack) = assessment.attack else {
            return PolicyDecision::Supervise(SupervisionTicket {
                assessment: assessment.clone(),
                reason: "anomaly without a named attack — no autonomous playbook".into(),
            });
        };
        let Some(rule) = self.rules.iter().find(|r| r.attack == attack).cloned() else {
            return PolicyDecision::Supervise(SupervisionTicket {
                assessment: assessment.clone(),
                reason: format!("no policy rule for {attack}"),
            });
        };
        if assessment.confidence < rule.min_confidence {
            return PolicyDecision::Supervise(SupervisionTicket {
                assessment: assessment.clone(),
                reason: format!(
                    "confidence {:.2} below the {:.2} autonomy floor for {attack}",
                    assessment.confidence, rule.min_confidence
                ),
            });
        }
        if rule.require_llm_confirmation && !assessment.llm_confirmed {
            return PolicyDecision::Supervise(SupervisionTicket {
                assessment: assessment.clone(),
                reason: format!("cross-model personalities disagreed on {attack}"),
            });
        }
        if let Some((_, acted_at, ttl)) =
            self.cooldowns.iter().find(|(k, _, _)| *k == attack)
        {
            if assessment.detected_at < *acted_at + *ttl {
                return PolicyDecision::StandDown;
            }
        }

        let mut actions = Vec::new();
        for template in &rule.templates {
            self.instantiate(template, assessment, rule.ttl, &mut actions);
        }
        if actions.is_empty() {
            return PolicyDecision::Supervise(SupervisionTicket {
                assessment: assessment.clone(),
                reason: format!(
                    "rule for {attack} matched but the assessment names no target entities"
                ),
            });
        }
        self.cooldowns.retain(|(k, _, _)| *k != attack);
        self.cooldowns.push((attack, assessment.detected_at, rule.ttl));
        PolicyDecision::Act(actions)
    }

    fn instantiate(
        &mut self,
        template: &ActionTemplate,
        assessment: &ThreatAssessment,
        ttl: Duration,
        out: &mut Vec<ControlAction>,
    ) {
        match template {
            ActionTemplate::ReleaseSuspects { cause } => {
                for &conn in &assessment.suspect_conns {
                    let action = MitigationAction::ReleaseUe { conn, cause: *cause };
                    out.push(self.wrap(action, ttl));
                }
            }
            ActionTemplate::ForceReauthSuspects => {
                for &conn in &assessment.suspect_conns {
                    out.push(self.wrap(MitigationAction::ForceReauth { conn }, ttl));
                }
            }
            ActionTemplate::BlacklistSuspectRntis => {
                for &rnti in &assessment.suspect_rntis {
                    out.push(self.wrap(MitigationAction::BlacklistRnti { rnti }, ttl));
                }
            }
            ActionTemplate::QuarantineCell => {
                let action = MitigationAction::QuarantineCell { cell: assessment.cell };
                out.push(self.wrap(action, ttl));
            }
            ActionTemplate::RateLimitDominantCause { max_setups, window } => {
                if let Some(cause) = assessment.dominant_cause {
                    let action = MitigationAction::RateLimitCause {
                        cause,
                        max_setups: *max_setups,
                        window: *window,
                    };
                    out.push(self.wrap(action, ttl));
                }
            }
        }
    }

    fn wrap(&mut self, action: MitigationAction, ttl: Duration) -> ControlAction {
        let id = self.next_id;
        self.next_id += 1;
        ControlAction { id, ttl, action }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assessment(attack: Option<AttackKind>) -> ThreatAssessment {
        ThreatAssessment {
            attack,
            confidence: 0.9,
            llm_confirmed: true,
            detected_at: Timestamp(1_000_000),
            cell: CellId(1),
            suspect_conns: vec![4, 9],
            suspect_rntis: vec![Rnti(0x0101), Rnti(0x0102)],
            dominant_cause: Some(EstablishmentCause::MoSignalling),
        }
    }

    #[test]
    fn bts_dos_rule_rate_limits_and_blacklists() {
        let mut engine = PolicyEngine::default();
        let PolicyDecision::Act(actions) = engine.decide(&assessment(Some(AttackKind::BtsDos)))
        else {
            panic!("expected autonomous action");
        };
        assert!(actions
            .iter()
            .any(|a| matches!(a.action, MitigationAction::RateLimitCause { .. })));
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a.action, MitigationAction::BlacklistRnti { .. }))
                .count(),
            2
        );
        // Ids are unique.
        let mut ids: Vec<_> = actions.iter().map(|a| a.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), actions.len());
    }

    #[test]
    fn anomaly_without_attack_escalates() {
        let mut engine = PolicyEngine::default();
        assert!(matches!(
            engine.decide(&assessment(None)),
            PolicyDecision::Supervise(_)
        ));
    }

    #[test]
    fn low_confidence_and_disagreement_escalate() {
        let mut engine = PolicyEngine::default();
        let mut low = assessment(Some(AttackKind::NullCipher));
        low.confidence = 0.2;
        assert!(matches!(engine.decide(&low), PolicyDecision::Supervise(_)));

        let mut contested = assessment(Some(AttackKind::NullCipher));
        contested.llm_confirmed = false;
        assert!(matches!(engine.decide(&contested), PolicyDecision::Supervise(_)));
    }

    #[test]
    fn cooldown_suppresses_repeat_alerts_until_ttl_elapses() {
        let mut engine = PolicyEngine::default();
        let first = assessment(Some(AttackKind::NullCipher));
        assert!(matches!(engine.decide(&first), PolicyDecision::Act(_)));

        let mut repeat = first.clone();
        repeat.detected_at = first.detected_at + Duration::from_secs(2);
        assert_eq!(engine.decide(&repeat), PolicyDecision::StandDown);

        let mut later = first.clone();
        later.detected_at = first.detected_at + Duration::from_secs(11);
        assert!(matches!(engine.decide(&later), PolicyDecision::Act(_)));
    }

    #[test]
    fn titles_map_back_to_attack_kinds() {
        let cases = [
            ("Signaling storm / RRC flooding DoS (BTS DoS)", AttackKind::BtsDos),
            ("TMSI replay denial of service (Blind DoS)", AttackKind::BlindDos),
            ("Uplink identity extraction (adaptive overshadowing)", AttackKind::UplinkIdExtraction),
            (
                "Downlink identity extraction (MiTM identity request injection)",
                AttackKind::DownlinkIdExtraction,
            ),
            (
                "Security capability bidding-down (null cipher & integrity)",
                AttackKind::NullCipher,
            ),
        ];
        for (title, kind) in cases {
            assert_eq!(attack_from_title(title), Some(kind), "{title}");
        }
        assert_eq!(attack_from_title("benign drift"), None);
    }
}
